//! # rh-analysis — closed-form row-sampling failure model
//!
//! The analytical ground truth the simulator is cross-validated against.
//! Every other correctness argument in this workspace is *differential* —
//! optimized ≡ reference, sharded ≡ serial, distributed ≡ in-process — which
//! can never catch a bug both paths share. This crate computes, in closed
//! form, the quantity the whole PARA arm of the sweep estimates empirically:
//! the probability that a sampling mitigation at rate `p` fails to interrupt
//! a hammering attack.
//!
//! ## The model
//!
//! Per activation, PARA samples (and refreshes the aggressor's neighbors)
//! with probability `p`, independently — one Bernoulli trial per activation.
//! A victim row flips when `mac` *consecutive* activations all escape
//! sampling (every sample resets the victim's accumulated disturbance; see
//! the DRAMSec 2022 row-sampling analysis, and `rh-cli`'s crossval harness
//! for the exact mapping onto the simulator's engine). The failure
//! probability over an attack window of `window` activations is therefore a
//! classical run statistic:
//!
//! ```text
//! P_fail(p, mac, window) = P( ≥ mac consecutive misses among window
//!                             Bernoulli(q = 1 − p) miss trials )
//! ```
//!
//! Two independent evaluations are provided and asserted to agree:
//!
//! * [`p_fail_direct`] — the linear recurrence over the *no-run-yet*
//!   probability, accumulated in complementary form (a sum of small positive
//!   terms, never `1 − (≈1)`), with `q^mac` evaluated in log space via
//!   `ln_1p` so tiny `p` and huge `mac` do not underflow through `1 - p`.
//!   O(window) time, O(mac) space.
//! * [`p_fail_dual`] — a genuinely different algorithm: the run-length
//!   Markov chain over states `0..mac` (trailing-miss-run length, `mac`
//!   absorbing), evolved step by step. O(window · mac) time. Slower, but it
//!   shares no algebra with the recurrence, so agreement within 1e-9 across
//!   the parameter grid (asserted in this crate's tests and re-checked by
//!   `rh-cli bench --analysis`) is a real cross-check, not a tautology.
//!
//! On top of the model: [`wilson_interval`] (the score confidence interval
//! for k-of-n trial outcomes, used by the crossval harness's CI band and by
//! the seeded statistics tests in `rh-mitigations`), and [`required_p`]
//! (the inverse solver behind `rh-cli configure`: the smallest sampling rate
//! meeting a target failure probability, by bisection — `P_fail` is strictly
//! decreasing in `p`).

/// Probability of a run of at least `mac` consecutive misses in `window`
/// independent trials that each miss with probability `1 − p`.
///
/// Evaluated by the complementary linear recurrence. Let `S(n)` be the
/// probability that `n` trials contain **no** run of `mac` misses, and
/// `F(n) = 1 − S(n)`. A new failure ending by trial `n` requires a sampled
/// trial at `n − mac` followed by `mac` misses, in a prefix that had not
/// failed yet:
///
/// ```text
/// F(n) = F(n−1) + p · q^mac · (1 − F(n−mac−1)),   F(n) = 0 for n < mac,
/// F(mac) = q^mac
/// ```
///
/// `F` is accumulated directly (never as `1 − S`), so failure probabilities
/// down at the 1e-300 scale keep full relative precision, and `q^mac` is
/// computed as `exp(mac · ln(1−p))` via [`f64::ln_1p`] so `p = 1e-12`,
/// `mac = 10^6` stays exact instead of rounding through `1.0 - p`.
///
/// Edge conventions: `window < mac` → 0; `p = 0` → 1 whenever the window
/// fits a run; `p = 1` → 0. Panics on `mac == 0` or `p ∉ [0, 1]`.
pub fn p_fail_direct(p: f64, mac: u64, window: u64) -> f64 {
    check_args(p, mac);
    if window < mac {
        return 0.0;
    }
    // q^mac in log space: mac * ln(1-p), exact for tiny p via ln_1p.
    let q_mac = if p >= 1.0 {
        0.0
    } else {
        (mac as f64 * (-p).ln_1p()).exp()
    };
    let len = (mac + 1) as usize;
    // Ring of the last mac+1 values of F; F(n) lives at n % (mac+1).
    // Indices 0..mac start at F(<mac) = 0.
    let mut ring = vec![0.0f64; len];
    ring[(mac % (mac + 1)) as usize] = q_mac;
    let mut f = q_mac;
    for n in (mac + 1)..=window {
        f += p * q_mac * (1.0 - ring[((n - mac - 1) % (mac + 1)) as usize]);
        ring[(n % (mac + 1)) as usize] = f;
    }
    f.min(1.0)
}

/// The same probability as [`p_fail_direct`], by the run-length Markov
/// chain: state `j < mac` is "the trailing run of misses is exactly `j`
/// long", state `mac` absorbs. Each trial moves `j → 0` with probability
/// `p` and `j → j+1` with probability `q`; the absorbed mass after
/// `window` steps is the failure probability, accumulated (like the direct
/// form) as a sum of small positive increments.
///
/// O(window · mac) — the expensive dual kept deliberately algorithm-distinct
/// from the recurrence so the two can cross-check each other.
pub fn p_fail_dual(p: f64, mac: u64, window: u64) -> f64 {
    check_args(p, mac);
    if window < mac {
        return 0.0;
    }
    let q = 1.0 - p;
    let m = mac as usize;
    let mut state = vec![0.0f64; m];
    state[0] = 1.0;
    let mut absorbed = 0.0f64;
    for _ in 0..window {
        let alive = 1.0 - absorbed;
        absorbed += q * state[m - 1];
        for j in (1..m).rev() {
            state[j] = q * state[j - 1];
        }
        state[0] = p * alive;
    }
    absorbed.min(1.0)
}

fn check_args(p: f64, mac: u64) {
    assert!(
        (0.0..=1.0).contains(&p),
        "sampling probability {p} out of [0, 1]"
    );
    assert!(mac >= 1, "a failure run must be at least 1 trial long");
}

/// Smallest sampling probability `p` with
/// `p_fail_direct(p, mac, window) <= target_pfail`, by bisection —
/// `P_fail` is continuous and strictly decreasing in `p` on the nontrivial
/// range, with `P_fail(1) = 0`, so the bracket `[0, 1]` always closes. The
/// returned `p` is the bracket's upper endpoint, so the target is *met*,
/// never just approached from above. Returns 0 when even an unsampled
/// stream meets the target (e.g. `window < mac`).
///
/// Panics unless `target_pfail ∈ (0, 1]` (a target of exactly 0 is
/// unreachable for any finite `p < 1` once the window fits a run).
pub fn required_p(mac: u64, window: u64, target_pfail: f64) -> f64 {
    assert!(
        target_pfail > 0.0 && target_pfail <= 1.0,
        "target failure probability {target_pfail} must be in (0, 1]"
    );
    if p_fail_direct(0.0, mac, window) <= target_pfail {
        return 0.0;
    }
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    // 100 halvings take the bracket below one ulp of f64; each step is one
    // O(window) evaluation.
    for _ in 0..100 {
        let mid = 0.5 * (lo + hi);
        if p_fail_direct(mid, mac, window) > target_pfail {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo <= f64::EPSILON * hi {
            break;
        }
    }
    hi
}

/// Wilson score interval for a binomial proportion: the `[lo, hi]` band
/// within which the true success probability is consistent with observing
/// `successes` out of `trials`, at `z` standard normal deviates of
/// confidence. Unlike the naive ±z·σ Wald band it stays inside `[0, 1]` and
/// behaves at the boundaries (`successes = 0` pins `lo` to exactly 0,
/// `successes = trials` pins `hi` to exactly 1).
///
/// The workspace's seeded statistical tests use wide bands (z ≈ 4.4, a
/// ~1e-5 two-sided tail) so a fixed-seed draw essentially never lands
/// outside; the assertion is then deterministic in practice while still
/// bounding the model error it checks.
pub fn wilson_interval(successes: u64, trials: u64, z: f64) -> (f64, f64) {
    assert!(trials >= 1, "the interval needs at least one trial");
    assert!(successes <= trials, "more successes than trials");
    assert!(z > 0.0 && z.is_finite(), "z must be a positive deviate");
    let n = trials as f64;
    let phat = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (phat + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * (phat * (1.0 - phat) / n + z2 / (4.0 * n * n)).sqrt();
    // At the boundaries the score bound equals 0 / 1 algebraically, but the
    // two-step center±half evaluation lands one ulp inside; pin explicitly.
    let lo = if successes == 0 {
        0.0
    } else {
        (center - half).max(0.0)
    };
    let hi = if successes == trials {
        1.0
    } else {
        (center + half).min(1.0)
    };
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exact failure probability by exhaustive enumeration of every
    /// sample/miss outcome of a short window — the independent ground truth
    /// both closed forms must match.
    fn brute_force(p: f64, mac: u64, window: u64) -> f64 {
        let mut fail = 0.0;
        for outcome in 0u64..(1 << window) {
            let mut run = 0u64;
            let mut longest = 0u64;
            for t in 0..window {
                if outcome & (1 << t) == 0 {
                    run += 1;
                    longest = longest.max(run);
                } else {
                    run = 0;
                }
            }
            if longest >= mac {
                let samples = outcome.count_ones() as i32;
                fail += p.powi(samples) * (1.0 - p).powi(window as i32 - samples);
            }
        }
        fail
    }

    #[test]
    fn both_forms_match_exhaustive_enumeration() {
        for mac in [1u64, 2, 3, 5] {
            for window in [0u64, 1, 2, 4, 7, 11, 14] {
                for p in [0.0, 0.05, 0.3, 0.5, 0.77, 1.0] {
                    let exact = brute_force(p, mac, window);
                    let direct = p_fail_direct(p, mac, window);
                    let dual = p_fail_dual(p, mac, window);
                    assert!(
                        (direct - exact).abs() < 1e-12,
                        "direct p={p} mac={mac} w={window}: {direct} vs exact {exact}"
                    );
                    assert!(
                        (dual - exact).abs() < 1e-12,
                        "dual p={p} mac={mac} w={window}: {dual} vs exact {exact}"
                    );
                }
            }
        }
    }

    /// The tentpole acceptance grid: direct and dual agree within 1e-9
    /// across parameters spanning tiny and large `p`, short and long runs,
    /// and windows from degenerate to thousands of trials.
    #[test]
    fn direct_and_dual_agree_within_1e9_across_the_grid() {
        let mut checked = 0u32;
        for &mac in &[1u64, 2, 3, 5, 8, 13, 21, 64] {
            for &window in &[0u64, 1, 7, 64, 257, 999, 4096] {
                for &p in &[0.0, 1e-6, 1e-3, 0.01, 0.05, 0.2, 0.5, 0.9, 0.999, 1.0] {
                    let direct = p_fail_direct(p, mac, window);
                    let dual = p_fail_dual(p, mac, window);
                    assert!(
                        (direct - dual).abs() < 1e-9,
                        "p={p} mac={mac} w={window}: direct {direct} vs dual {dual}"
                    );
                    assert!((0.0..=1.0).contains(&direct));
                    checked += 1;
                }
            }
        }
        assert_eq!(checked, 8 * 7 * 10, "the whole grid must be exercised");
    }

    #[test]
    fn edges_follow_the_documented_conventions() {
        // A window too short for a run can never fail.
        assert_eq!(p_fail_direct(0.3, 10, 9), 0.0);
        assert_eq!(p_fail_dual(0.3, 10, 9), 0.0);
        // Never sampling fails as soon as the window fits a run.
        assert_eq!(p_fail_direct(0.0, 10, 10), 1.0);
        assert_eq!(p_fail_dual(0.0, 10, 10), 1.0);
        // Always sampling never fails.
        assert_eq!(p_fail_direct(1.0, 1, 1000), 0.0);
        assert_eq!(p_fail_dual(1.0, 1, 1000), 0.0);
        // mac = 1 collapses to "at least one miss": 1 − p^window.
        for &p in &[0.1f64, 0.5, 0.9] {
            let expect = 1.0 - p.powi(20);
            assert!((p_fail_direct(p, 1, 20) - expect).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "out of [0, 1]")]
    fn out_of_range_p_panics() {
        p_fail_direct(1.5, 4, 10);
    }

    #[test]
    #[should_panic(expected = "at least 1 trial")]
    fn zero_mac_panics() {
        p_fail_direct(0.5, 0, 10);
    }

    #[test]
    fn monotone_in_every_argument() {
        // Decreasing in p — up to accumulation noise: adjacent values can sit
        // one ulp apart when both saturate toward 1 (e.g. p = 0.05 vs 0.1 at
        // mac = 8, window = 500), so allow a 1e-12 slack.
        let ps: Vec<f64> = (0..=20).map(|i| i as f64 / 20.0).collect();
        for w in ps.windows(2) {
            assert!(p_fail_direct(w[1], 8, 500) <= p_fail_direct(w[0], 8, 500) + 1e-12);
        }
        // Increasing in window.
        for window in 8..200u64 {
            assert!(p_fail_direct(0.2, 8, window + 1) >= p_fail_direct(0.2, 8, window));
        }
        // Decreasing in mac.
        for mac in 1..40u64 {
            assert!(p_fail_direct(0.2, mac + 1, 500) <= p_fail_direct(0.2, mac, 500));
        }
    }

    /// Log-space q^mac: tiny p with a huge run length must not collapse to
    /// `1 - p == 1`. At window == mac the failure probability *is* q^mac =
    /// exp(mac · ln(1−p)), so the expected value is known in closed form.
    #[test]
    fn tiny_p_large_mac_keeps_precision() {
        let (p, mac) = (1e-12f64, 1_000_000u64);
        let expect = (mac as f64 * (-p).ln_1p()).exp(); // ≈ 1 − 1e-6
        let got = p_fail_direct(p, mac, mac);
        assert!(
            ((1.0 - got) / (1.0 - expect) - 1.0).abs() < 1e-9,
            "q^mac lost precision: got {got}, expected {expect}"
        );
        // The naive 1-p powering would round the complement to ~0 here;
        // the computed complement must stay at the 1e-6 scale.
        assert!((1.0 - got) > 5e-7 && (1.0 - got) < 2e-6);
    }

    #[test]
    fn required_p_brackets_the_target_from_below() {
        for &(mac, window, target) in &[
            (8u64, 1000u64, 0.5f64),
            (4, 500, 0.1),
            (16, 4096, 0.9),
            (32, 2000, 0.01),
        ] {
            let p = required_p(mac, window, target);
            assert!((0.0..=1.0).contains(&p));
            assert!(
                p_fail_direct(p, mac, window) <= target,
                "mac={mac} w={window}: p={p} misses the target"
            );
            // One part in a million less sampling must overshoot: p is the
            // *smallest* adequate rate, not merely an adequate one.
            let shy = p * (1.0 - 1e-6);
            assert!(
                p_fail_direct(shy, mac, window) > target,
                "mac={mac} w={window}: p={p} is not minimal"
            );
        }
    }

    #[test]
    fn required_p_degenerate_cases() {
        // Window too short to ever fail: no sampling needed.
        assert_eq!(required_p(10, 9, 0.5), 0.0);
        // A target of 1 is met by anything, including p = 0.
        assert_eq!(required_p(10, 1000, 1.0), 0.0);
    }

    #[test]
    fn wilson_interval_basics() {
        let (lo, hi) = wilson_interval(50, 100, 2.0);
        assert!(lo < 0.5 && 0.5 < hi, "must contain the point estimate");
        assert!(lo > 0.3 && hi < 0.7, "n=100 at z=2 is not this wide");
        // Boundary pinning.
        let (lo, hi) = wilson_interval(0, 100, 3.0);
        assert_eq!(lo, 0.0);
        assert!(hi > 0.0 && hi < 0.2);
        let (lo, hi) = wilson_interval(100, 100, 3.0);
        assert_eq!(hi, 1.0);
        assert!(lo > 0.8);
        // More trials narrow the band.
        let wide = wilson_interval(5, 10, 2.0);
        let narrow = wilson_interval(500, 1000, 2.0);
        assert!(narrow.1 - narrow.0 < wide.1 - wide.0);
        // Wider z widens the band.
        let z2 = wilson_interval(30, 100, 2.0);
        let z4 = wilson_interval(30, 100, 4.4);
        assert!(z4.0 < z2.0 && z2.1 < z4.1);
    }

    #[test]
    #[should_panic(expected = "more successes than trials")]
    fn wilson_rejects_impossible_counts() {
        wilson_interval(11, 10, 2.0);
    }
}
