pub fn placeholder() {}
