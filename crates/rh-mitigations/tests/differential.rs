//! Differential property tests: the flat-table Graphene/TRR must be
//! action-for-action identical to the retained map-based references
//! (`rh_mitigations::reference`) over seeded random activation streams, and
//! the flat Misra–Gries table must respect the textbook error bound.
//!
//! These are the mitigation-layer twin of `rh-core`'s device differential
//! tests: the proof that swapping `HashMap`/`BTreeMap` counter structures
//! for `FlatCounterTable` is an observational no-op, which is what lets the
//! default sweep's JSON stay byte-identical across the rewrite.

use rh_core::{Geometry, RowAddr, SplitMix64};
use rh_mitigations::reference::{MapGraphene, MapTrr};
use rh_mitigations::{ActionBuf, Graphene, Mitigation, Trr};
use std::collections::HashMap;

/// One random activation stream: mostly a small hot set (aggressors), the
/// rest uniform noise over the whole device, with occasional tREFW-style
/// `reset()` calls — the same shape the engine drives.
fn drive_pair(
    a: &mut dyn Mitigation,
    b: &mut dyn Mitigation,
    geom: &Geometry,
    ops_seed: u64,
    steps: u32,
) -> u64 {
    let mut rng = SplitMix64::new(ops_seed);
    let mut buf_a = ActionBuf::new();
    let mut buf_b = ActionBuf::new();
    let mut total_actions = 0u64;
    let total_rows = geom.total_rows();
    let hot_base = geom.rows_per_bank / 2;
    for step in 0..steps {
        let addr = if rng.chance(0.7) {
            // Hot set: 8 aggressors spaced 2 apart around mid-bank of bank 0.
            RowAddr::bank_row(0, hot_base + 2 * (rng.gen_range(8) as u32))
        } else {
            // Uniform over the WHOLE device — decompose the flat index into
            // all four coordinates so channel/rank > 0 bank regions are
            // differentially exercised too.
            let flat = rng.gen_range(total_rows);
            let row = (flat % geom.rows_per_bank as u64) as u32;
            let bank_linear = (flat / geom.rows_per_bank as u64) as u32;
            RowAddr {
                channel: bank_linear / (geom.banks * geom.ranks),
                rank: (bank_linear / geom.banks) % geom.ranks,
                bank: bank_linear % geom.banks,
                row,
            }
        };
        buf_a.clear();
        buf_b.clear();
        a.on_activate(addr, geom, &mut buf_a);
        b.on_activate(addr, geom, &mut buf_b);
        assert_eq!(
            buf_a.actions(),
            buf_b.actions(),
            "action streams diverged at step {step} on {addr:?}"
        );
        total_actions += buf_a.len() as u64;
        // Occasional tREFW-style flush; note it also rewinds the instances'
        // diagnostic counters, so callers assert on the returned cumulative
        // action count instead.
        if rng.chance(0.0005) {
            a.reset();
            b.reset();
        }
    }
    total_actions
}

#[test]
fn flat_graphene_matches_map_graphene_action_for_action() {
    let geom = Geometry::tiny(4096);
    for seed in 0..3 {
        let mut flat = Graphene::new(16, 40, 2);
        let mut map = MapGraphene::new(16, 40, 2);
        let actions = drive_pair(&mut flat, &mut map, &geom, 0xD1FF + seed, 40_000);
        assert_eq!(flat.refreshes_triggered(), map.refreshes_triggered());
        assert!(actions > 0, "stream must exercise triggers");
    }
}

#[test]
fn flat_trr_matches_map_trr_action_for_action() {
    let geom = Geometry {
        channels: 2,
        ranks: 2,
        banks: 4,
        rows_per_bank: 1024,
    };
    for seed in 0..3 {
        let mut flat = Trr::new(8, 2, 117, 2, &geom);
        let mut map = MapTrr::new(8, 2, 117, 2);
        let actions = drive_pair(&mut flat, &mut map, &geom, 0x7BB + seed, 40_000);
        assert_eq!(flat.targeted_refreshes(), map.targeted_refreshes());
        assert!(actions > 0, "stream must exercise targeted refreshes");
    }
}

/// Graphene's estimates obey the Misra–Gries bound against true counts:
/// `true − W/(k+1) ≤ estimate ≤ true` for a stream of `W` observations
/// through a `k`-entry table.
#[test]
fn graphene_estimates_respect_misra_gries_bound() {
    let geom = Geometry::tiny(2048);
    let k = 12;
    // Threshold high enough that no trigger ever rewinds a counter — the
    // bound as stated holds for the pure counting structure.
    let mut g = Graphene::new(k, u64::MAX / 2, 1);
    let mut truth: HashMap<u32, u64> = HashMap::new();
    let mut rng = SplitMix64::new(99);
    let mut buf = ActionBuf::new();
    let w = 60_000u64;
    for _ in 0..w {
        let row = if rng.chance(0.4) {
            1000 + rng.gen_range(4) as u32
        } else {
            rng.gen_range(2048) as u32
        };
        g.on_activate(RowAddr::bank_row(0, row), &geom, &mut buf);
        *truth.entry(row).or_insert(0) += 1;
    }
    assert!(buf.is_empty(), "threshold must never fire in this test");
    let max_undercount = w / (k as u64 + 1);
    for (&row, &true_count) in &truth {
        let est = g.estimate(RowAddr::bank_row(0, row), &geom);
        assert!(est <= true_count, "row {row}: {est} > true {true_count}");
        assert!(
            est + max_undercount >= true_count,
            "row {row}: {est} misses true {true_count} by more than W/(k+1)"
        );
    }
    // The hot rows must be tracked within the bound's guarantee.
    for hot in 1000..1004 {
        let true_count = truth[&hot];
        assert!(true_count > max_undercount, "hot row must exceed the bound");
        assert!(g.estimate(RowAddr::bank_row(0, hot), &geom) > 0);
    }
}

/// Identically-seeded runs of the full mitigation (not just the raw table)
/// produce identical action streams — the spill/eviction path included.
#[test]
fn identically_seeded_runs_are_identical() {
    let geom = Geometry::tiny(4096);
    let run = |ops_seed: u64| {
        let mut g = Graphene::new(8, 25, 2);
        let mut rng = SplitMix64::new(ops_seed);
        let mut buf = ActionBuf::new();
        let mut log: Vec<RowAddr> = Vec::new();
        for _ in 0..30_000 {
            // 4 hot rows at 15% each — above the Misra–Gries tracking
            // guarantee of 1/(k+1) ≈ 11% for the 8-entry table, so the hot
            // counters provably accumulate through the noise-driven spills.
            let row = if rng.chance(0.6) {
                2048 + rng.gen_range(4) as u32
            } else {
                rng.gen_range(4096) as u32
            };
            buf.clear();
            g.on_activate(RowAddr::bank_row(0, row), &geom, &mut buf);
            for action in buf.actions() {
                if let rh_mitigations::MitigationAction::RefreshRow(r) = action {
                    log.push(*r);
                }
            }
        }
        log
    };
    let a = run(0xABCD);
    let b = run(0xABCD);
    assert!(!a.is_empty(), "stream must produce refreshes");
    assert_eq!(a, b, "identically-seeded runs diverged");
}
