//! Retained map-based counter mitigations — the pre-optimization semantics,
//! kept as executable specifications (mirroring `rh_core::reference`).
//!
//! [`MapGraphene`] and [`MapTrr`] are Graphene and TRR exactly as they stood
//! before the flat-table rework: a `HashMap<RowAddr, u64>` counter table and
//! nested `BTreeMap<BankKey, BTreeMap<RowAddr, u64>>` per-bank tables. They
//! exist for two consumers:
//!
//! * **Differential tests** (`tests/differential.rs`): seeded random
//!   activation streams driven through both implementations must emit
//!   identical action sequences and refresh decisions — the proof that the
//!   flat [`crate::table::FlatCounterTable`] rewrite is an observational
//!   no-op.
//! * **The benchmark harness** (`rh-cli bench`): the "before" side of the
//!   before/after comparison runs the real engine loop over these, so the
//!   reported speedup isolates exactly the counter-structure and dispatch
//!   changes.
//!
//! [`build_reference`] is the map-based twin of `MitigationSpec::build`.

use crate::spec::MitigationSpec;
use crate::{ActionBuf, IncreasedRefresh, Mitigation, NoMitigation, Para};
use rh_core::{Geometry, RowAddr};
use std::collections::{BTreeMap, HashMap};

/// Materialize the map-based twin of `spec.build(..)`: identical behavior,
/// pre-optimization counter structures. PARA, increased-refresh, and the
/// baseline have no counter tables, so they build their shipping forms.
pub fn build_reference(
    spec: &MitigationSpec,
    hc_first: u64,
    radius: u32,
    seed: u64,
) -> Box<dyn Mitigation> {
    match *spec {
        MitigationSpec::None => Box::new(NoMitigation),
        MitigationSpec::Para { probability } => Box::new(Para::new(probability, radius, seed)),
        MitigationSpec::Graphene {
            table_size,
            threshold_divisor,
        } => Box::new(MapGraphene::new(
            table_size,
            (hc_first / threshold_divisor).max(1),
            radius,
        )),
        MitigationSpec::IncreasedRefresh { interval_divisor } => {
            Box::new(IncreasedRefresh::new((hc_first / interval_divisor).max(1)))
        }
        MitigationSpec::Trr {
            table_size,
            refresh_slots,
            sample_interval,
        } => Box::new(MapTrr::new(
            table_size,
            refresh_slots,
            sample_interval,
            radius,
        )),
    }
}

/// Pre-optimization Graphene: Misra–Gries over a `HashMap<RowAddr, u64>`.
#[derive(Debug, Clone)]
pub struct MapGraphene {
    table_size: usize,
    refresh_threshold: u64,
    radius: u32,
    counters: HashMap<RowAddr, u64>,
    spilled: u64,
    refreshes_triggered: u64,
}

impl MapGraphene {
    pub fn new(table_size: usize, refresh_threshold: u64, radius: u32) -> Self {
        assert!(table_size > 0);
        assert!(refresh_threshold > 0);
        Self {
            table_size,
            refresh_threshold,
            radius,
            counters: HashMap::with_capacity(table_size + 1),
            spilled: 0,
            refreshes_triggered: 0,
        }
    }

    pub fn refreshes_triggered(&self) -> u64 {
        self.refreshes_triggered
    }

    /// Estimated activation count for a row (test/diagnostic hook).
    pub fn estimate(&self, addr: RowAddr) -> u64 {
        self.counters.get(&addr).copied().unwrap_or(0)
    }

    fn observe(&mut self, addr: RowAddr) {
        if let Some(c) = self.counters.get_mut(&addr) {
            *c += 1;
        } else if self.counters.len() < self.table_size {
            self.counters.insert(addr, 1);
        } else {
            self.spilled += 1;
            self.counters.retain(|_, c| {
                *c -= 1;
                *c > 0
            });
        }
    }
}

impl Mitigation for MapGraphene {
    fn name(&self) -> String {
        // Same display name as the flat implementation: the two are
        // interchangeable in result tables and bench cell matching.
        format!(
            "graphene(k={},t={})",
            self.table_size, self.refresh_threshold
        )
    }

    fn on_activate(&mut self, addr: RowAddr, geom: &Geometry, out: &mut ActionBuf) {
        self.observe(addr);
        if self.estimate(addr) >= self.refresh_threshold {
            self.counters.remove(&addr);
            self.refreshes_triggered += 1;
            for (victim, _) in addr.neighbors(geom, self.radius) {
                out.refresh_row(victim);
            }
        }
    }

    fn reset(&mut self) {
        self.counters.clear();
        self.spilled = 0;
        self.refreshes_triggered = 0;
    }
}

/// Channel/rank/bank coordinates identifying one per-bank counter table.
type BankKey = (u32, u32, u32);

fn bank_key(addr: RowAddr) -> BankKey {
    (addr.channel, addr.rank, addr.bank)
}

/// Pre-optimization TRR: nested `BTreeMap` per-bank Misra–Gries tables.
#[derive(Debug, Clone)]
pub struct MapTrr {
    table_size: usize,
    refresh_slots: usize,
    sample_interval: u64,
    radius: u32,
    acts_in_window: u64,
    tables: BTreeMap<BankKey, BTreeMap<RowAddr, u64>>,
    targeted_refreshes: u64,
    scratch: Vec<(RowAddr, u64)>,
}

impl MapTrr {
    pub fn new(table_size: usize, refresh_slots: usize, sample_interval: u64, radius: u32) -> Self {
        assert!(table_size > 0);
        assert!(refresh_slots > 0);
        assert!(sample_interval > 0);
        Self {
            table_size,
            refresh_slots,
            sample_interval,
            radius,
            acts_in_window: 0,
            tables: BTreeMap::new(),
            targeted_refreshes: 0,
            scratch: Vec::new(),
        }
    }

    pub fn targeted_refreshes(&self) -> u64 {
        self.targeted_refreshes
    }

    /// Estimated activation count for a row (test/diagnostic hook).
    pub fn estimate(&self, addr: RowAddr) -> u64 {
        self.tables
            .get(&bank_key(addr))
            .and_then(|t| t.get(&addr))
            .copied()
            .unwrap_or(0)
    }

    fn observe(&mut self, addr: RowAddr) {
        let table = self.tables.entry(bank_key(addr)).or_default();
        if let Some(c) = table.get_mut(&addr) {
            *c += 1;
        } else if table.len() < self.table_size {
            table.insert(addr, 1);
        } else {
            table.retain(|_, c| {
                *c -= 1;
                *c > 0
            });
        }
    }

    fn service_windows(&mut self, geom: &Geometry, out: &mut ActionBuf) {
        let mut rows = std::mem::take(&mut self.scratch);
        for table in self.tables.values() {
            rows.clear();
            rows.extend(table.iter().map(|(a, c)| (*a, *c)));
            rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            for &(target, _) in rows.iter().take(self.refresh_slots) {
                self.targeted_refreshes += 1;
                for (victim, _) in target.neighbors(geom, self.radius) {
                    out.refresh_row(victim);
                }
            }
        }
        self.scratch = rows;
    }
}

impl Mitigation for MapTrr {
    fn name(&self) -> String {
        // Same display name as the flat implementation (see MapGraphene).
        format!(
            "trr(k={},slots={},w={})",
            self.table_size, self.refresh_slots, self.sample_interval
        )
    }

    fn on_activate(&mut self, addr: RowAddr, geom: &Geometry, out: &mut ActionBuf) {
        self.observe(addr);
        self.acts_in_window += 1;
        if !self.acts_in_window.is_multiple_of(self.sample_interval) {
            return;
        }
        self.service_windows(geom, out);
    }

    fn reset(&mut self) {
        self.tables.clear();
        self.acts_in_window = 0;
        self.targeted_refreshes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect_actions;

    #[test]
    fn map_graphene_triggers_like_the_original() {
        let geom = Geometry::tiny(64);
        let mut g = MapGraphene::new(4, 50, 1);
        let aggr = RowAddr::bank_row(0, 10);
        for _ in 0..200 {
            collect_actions(&mut g, aggr, &geom);
        }
        assert_eq!(g.refreshes_triggered(), 4);
    }

    #[test]
    fn map_trr_respects_slot_budget() {
        let geom = Geometry::tiny(64);
        let mut trr = MapTrr::new(16, 2, 100, 1);
        let pattern = [RowAddr::bank_row(0, 30), RowAddr::bank_row(0, 32)];
        let mut buf = ActionBuf::new();
        for i in 0..400u64 {
            buf.clear();
            trr.on_activate(pattern[(i % 2) as usize], &geom, &mut buf);
        }
        assert_eq!(trr.targeted_refreshes(), 8);
    }

    #[test]
    fn build_reference_covers_every_spec_with_matching_names() {
        let specs = [
            MitigationSpec::None,
            MitigationSpec::Para { probability: 0.004 },
            MitigationSpec::Graphene {
                table_size: 64,
                threshold_divisor: 8,
            },
            MitigationSpec::IncreasedRefresh {
                interval_divisor: 2,
            },
            MitigationSpec::Trr {
                table_size: 16,
                refresh_slots: 2,
                sample_interval: 1000,
            },
        ];
        for spec in &specs {
            let shipping = spec.build(&Geometry::tiny(64), 2000, 2, 0).name();
            let reference = build_reference(spec, 2000, 2, 0).name();
            assert_eq!(shipping, reference, "names must match for {spec:?}");
        }
    }
}
