//! PARA — Probabilistic Adjacent Row Activation.
//!
//! On each activation the memory controller flips a biased coin; with
//! probability `p` it treats the activated row as an aggressor and refreshes
//! every row in its blast radius. A sufficiently high `p` bounds the chance
//! that `HC_first` activations all escape sampling (the DRAMSec 2022
//! row-sampling analysis derives the exact failure probability); the ISCA
//! 2020 paper shows the `p` needed for a 64ms failure window grows quickly
//! as `HC_first` drops, costing performance.

use crate::{ActionBuf, Mitigation};
use rh_core::{Geometry, RowAddr, SplitMix64};

/// Probabilistic row sampling with per-instance seeded RNG.
#[derive(Debug, Clone)]
pub struct Para {
    /// Sampling probability per activation.
    p: f64,
    /// Victim rows refreshed on a sample extend this far from the aggressor.
    radius: u32,
    rng: SplitMix64,
    samples_taken: u64,
}

impl Para {
    pub fn new(p: f64, radius: u32, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "sampling probability out of range"
        );
        Self {
            p,
            radius,
            rng: SplitMix64::new(seed),
            samples_taken: 0,
        }
    }

    pub fn sampling_probability(&self) -> f64 {
        self.p
    }

    pub fn samples_taken(&self) -> u64 {
        self.samples_taken
    }
}

impl Mitigation for Para {
    fn name(&self) -> String {
        format!("para(p={})", self.p)
    }

    fn on_activate(&mut self, addr: RowAddr, geom: &Geometry, out: &mut ActionBuf) {
        // Exactly one RNG draw per activation, sample or not: two Para
        // instances with the same seed but different `p` consume identical
        // streams, so the set of sampled activations at a lower `p` is a
        // strict subset of those at any higher `p`. The CLI's monotonicity
        // guarantee (flip rate non-increasing in `p`) rests on this.
        if !self.rng.chance(self.p) {
            return;
        }
        self.samples_taken += 1;
        for (victim, _) in addr.neighbors(geom, self.radius) {
            out.refresh_row(victim);
        }
    }

    fn reset(&mut self) {
        // PARA is stateless across refresh windows; crucially the RNG is
        // NOT rewound, or every window would replay identical sampling
        // decisions and the failure statistics would collapse to 0-or-1
        // instead of averaging over windows. Determinism across runs comes
        // from the construction-time seed alone.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{collect_actions, MitigationAction};
    use rh_core::Geometry;

    /// Seeded statistical test: the configured `p` must be consistent with
    /// the observed `sampled`-of-`n` outcome. The tolerance is not a tuned
    /// epsilon — it is the Wilson score interval from `rh-analysis` at the
    /// workspace's standard wide deviate (z ≈ 4.4, ~1e-5 two-sided tail):
    /// deterministic seed, so this either always passes or always fails,
    /// and the band is exactly as wide as binomial noise warrants (a Wald
    /// ±kσ band misbehaves at the small `p` end of this very loop).
    #[test]
    fn empirical_sampling_rate_matches_p() {
        let geom = Geometry::tiny(64);
        let addr = RowAddr::bank_row(0, 32);
        for &p in &[0.001, 0.01, 0.05] {
            let n: u64 = 200_000;
            let mut para = Para::new(p, 1, 0xDEAD_BEEF);
            let mut sampled = 0u64;
            let mut buf = ActionBuf::new();
            for _ in 0..n {
                buf.clear();
                para.on_activate(addr, &geom, &mut buf);
                if !buf.is_empty() {
                    sampled += 1;
                }
            }
            let (lo, hi) = rh_analysis::wilson_interval(sampled, n, 4.417);
            assert!(
                lo <= p && p <= hi,
                "p={p}: sampled {sampled}/{n}, outside the Wilson band [{lo}, {hi}]"
            );
            assert_eq!(para.samples_taken(), sampled);
        }
    }

    #[test]
    fn sampled_actions_cover_blast_radius_clipped() {
        let geom = Geometry::tiny(8);
        let mut para = Para::new(1.0, 2, 7);
        let actions = collect_actions(&mut para, RowAddr::bank_row(0, 0), &geom);
        assert_eq!(
            actions,
            vec![
                MitigationAction::RefreshRow(RowAddr::bank_row(0, 1)),
                MitigationAction::RefreshRow(RowAddr::bank_row(0, 2)),
            ]
        );
    }

    #[test]
    fn p_zero_never_samples() {
        let geom = Geometry::tiny(8);
        let mut para = Para::new(0.0, 1, 1);
        for _ in 0..10_000 {
            assert!(collect_actions(&mut para, RowAddr::bank_row(0, 4), &geom).is_empty());
        }
    }

    #[test]
    fn reset_does_not_rewind_sampling_stream() {
        let geom = Geometry::tiny(8);
        let mut para = Para::new(0.5, 1, 99);
        let first: Vec<bool> = (0..100)
            .map(|_| !collect_actions(&mut para, RowAddr::bank_row(0, 4), &geom).is_empty())
            .collect();
        para.reset();
        let second: Vec<bool> = (0..100)
            .map(|_| !collect_actions(&mut para, RowAddr::bank_row(0, 4), &geom).is_empty())
            .collect();
        // At p=0.5 a 100-draw replay collides with probability 2^-100.
        assert_ne!(
            first, second,
            "refresh-window reset must not replay the same coin flips"
        );
    }
}
