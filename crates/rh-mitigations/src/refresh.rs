//! Increased refresh rate — the oldest deployed RowHammer response.
//!
//! Shortening the refresh interval (DDR3's 64ms → 32ms → …) bounds how many
//! activations fit between two refreshes of any victim. The ISCA 2020 paper
//! shows this mechanism ages worst: as `HC_first` drops below ~32k the
//! required refresh rate consumes unacceptable bandwidth and power. We model
//! it as a full-device refresh every `interval` activations (a time proxy:
//! activations are the unit of simulated time throughout the workspace).

use crate::{ActionBuf, Mitigation};
use rh_core::{Geometry, RowAddr};

/// Periodic full-device refresh every `interval` activations.
#[derive(Debug, Clone)]
pub struct IncreasedRefresh {
    interval: u64,
    since_last: u64,
}

impl IncreasedRefresh {
    pub fn new(interval: u64) -> Self {
        assert!(interval > 0);
        Self {
            interval,
            since_last: 0,
        }
    }

    pub fn interval(&self) -> u64 {
        self.interval
    }
}

impl Mitigation for IncreasedRefresh {
    fn name(&self) -> String {
        format!("refresh(interval={})", self.interval)
    }

    fn on_activate(&mut self, _addr: RowAddr, _geom: &Geometry, out: &mut ActionBuf) {
        self.since_last += 1;
        if self.since_last >= self.interval {
            self.since_last = 0;
            out.refresh_all();
        }
    }

    fn reset(&mut self) {
        self.since_last = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{collect_actions, MitigationAction};
    use rh_core::Geometry;

    #[test]
    fn fires_exactly_every_interval() {
        let geom = Geometry::tiny(8);
        let mut m = IncreasedRefresh::new(10);
        let addr = RowAddr::bank_row(0, 1);
        let mut fired_at = Vec::new();
        for i in 1u64..=35 {
            if !collect_actions(&mut m, addr, &geom).is_empty() {
                fired_at.push(i);
            }
        }
        assert_eq!(fired_at, vec![10, 20, 30]);
    }

    #[test]
    fn reset_restarts_countdown() {
        let geom = Geometry::tiny(8);
        let mut m = IncreasedRefresh::new(10);
        let addr = RowAddr::bank_row(0, 1);
        for _ in 0..9 {
            collect_actions(&mut m, addr, &geom);
        }
        m.reset();
        for _ in 0..9 {
            assert!(collect_actions(&mut m, addr, &geom).is_empty());
        }
        assert_eq!(
            collect_actions(&mut m, addr, &geom),
            vec![MitigationAction::RefreshAll]
        );
    }
}
