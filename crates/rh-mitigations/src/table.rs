//! `FlatCounterTable` — the fixed-capacity, cache-resident counter table
//! shared by every counter-based mitigation.
//!
//! Real trackers are fixed-size hardware structures: Graphene's CAM tables
//! (Park et al., MICRO 2020) hold `k` row/counter pairs in content-
//! addressable storage, and BlockHammer's counting Bloom filters (Yağlıkçı
//! et al., HPCA 2021) are SRAM arrays. Modeling them as a flat open-
//! addressing array is both faster than the previous `HashMap`/`BTreeMap`
//! structures (one multiply-shift hash plus a short linear probe over a
//! few cache lines, instead of SipHash over a 16-byte key or a tree walk)
//! and more faithful to the hardware being modeled.
//!
//! Layout. One contiguous power-of-two-per-bank slab of packed
//! `(key, count)` slots: a table is constructed with `banks` independent
//! regions of `bank_slots` slots each (one region for the single-table case
//! — Graphene — via [`FlatCounterTable::new`]; one region per DRAM bank for
//! TRR via [`FlatCounterTable::banked`], mirroring how hardware lays
//! per-bank tables out in a single SRAM). Within a region, slots are probed
//! linearly from a Fibonacci multiply-shift hash of the key; a region's
//! base is `bank << log2(bank_slots)` — a shift, not a pointer chase
//! through per-bank allocations. `count == 0` marks an empty slot —
//! Misra–Gries never retains a zero-count entry, so no separate occupancy
//! word is needed and a slot is exactly 16 bytes. Regions hold four slots
//! per tracked entry (load factor ≤ 0.25), so probes are short and the
//! sweep's largest table (`k = 64` → 256 slots) is 4 KiB — L1-resident.
//!
//! Determinism. Every operation is a pure function of the operation history:
//! slot placement depends only on keys and insertion order, and the
//! Misra–Gries decrement pass ([`FlatCounterTable::decrement_all_in`])
//! walks a region's slots in ascending index order, reporting evictions in
//! that order and re-packing survivors in that same order. Tie-breaking
//! among evicted entries is therefore *explicit* — lowest slot index first
//! (for keys whose probe sequences collide, the earlier-inserted,
//! lower-slot entry reports first) — rather than whatever a `HashMap`'s
//! iteration order happens to be. Two identically-seeded runs produce
//! identical eviction sequences, which the differential tests assert.
//!
//! Allocation. The slot slab, the per-bank length array, and the rebuild
//! scratch are allocated at construction and never grow: the table is
//! allocation-free after construction, matching the crate-wide hot-path
//! invariant.

/// One packed table slot. `count == 0` ⇔ empty (Misra–Gries never keeps a
/// zero count, so no sentinel key is needed).
#[derive(Debug, Clone, Copy, Default)]
struct Slot {
    key: u64,
    count: u64,
}

/// Outcome of one Misra–Gries observation ([`FlatCounterTable::observe`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Observe {
    /// The key was already tracked or the table had room; its estimated
    /// count after the increment/insert is carried.
    Tracked(u64),
    /// The table was full and the key untracked: every entry was
    /// decremented instead (the Misra–Gries "spill") and the key remains
    /// untracked with estimate 0.
    Spilled,
}

/// Fixed-capacity Misra–Gries counter table over `u64` keys, with one or
/// more independent per-bank regions in a single slab.
///
/// Each region holds at most `capacity` entries (the Misra–Gries `k`); the
/// backing slab is sized at construction and never reallocates.
#[derive(Debug, Clone)]
pub struct FlatCounterTable {
    /// Maximum tracked entries per bank region (Misra–Gries `k`).
    capacity: usize,
    /// Independent regions (1 for the plain single-table case).
    banks: usize,
    /// `bank_slots - 1`; region length is a power of two.
    mask: usize,
    /// Right-shift applied to the Fibonacci hash to land in `0..bank_slots`.
    shift: u32,
    /// `log2(bank_slots)`: a region's slab base is `bank << slot_shift`.
    slot_shift: u32,
    /// Occupied entries per region.
    lens: Box<[u32]>,
    /// All regions' slots, contiguous.
    slots: Box<[Slot]>,
    /// Rebuild target for one region's decrement pass.
    scratch: Box<[Slot]>,
}

/// Fibonacci multiply-shift: spreads consecutive row indices (the common
/// key pattern — aggressors are adjacent rows) across a whole region.
const FIB: u64 = 0x9E37_79B9_7F4A_7C15;

impl FlatCounterTable {
    /// A single-region table tracking at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        Self::banked(capacity, 1)
    }

    /// A table with `banks` independent regions of at most `capacity`
    /// entries each. Region length is the next power of two holding four
    /// slots per entry (minimum 8), keeping the load factor at or below
    /// 0.25 so linear probes stay short.
    pub fn banked(capacity: usize, banks: usize) -> Self {
        assert!(capacity > 0, "counter table needs at least one entry");
        assert!(banks > 0, "counter table needs at least one bank region");
        let bank_slots = (capacity * 4).next_power_of_two().max(8);
        Self {
            capacity,
            banks,
            mask: bank_slots - 1,
            shift: 64 - bank_slots.trailing_zeros(),
            slot_shift: bank_slots.trailing_zeros(),
            lens: vec![0; banks].into_boxed_slice(),
            slots: vec![Slot::default(); banks * bank_slots].into_boxed_slice(),
            scratch: vec![Slot::default(); bank_slots].into_boxed_slice(),
        }
    }

    /// Maximum tracked entries per region (the Misra–Gries `k`).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of independent bank regions.
    pub fn banks(&self) -> usize {
        self.banks
    }

    /// Total tracked entries across all regions.
    pub fn len(&self) -> usize {
        self.lens.iter().map(|&l| l as usize).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.lens.iter().all(|&l| l == 0)
    }

    /// Tracked entries in `bank`'s region.
    pub fn len_in(&self, bank: usize) -> usize {
        self.lens[bank] as usize
    }

    pub fn is_empty_in(&self, bank: usize) -> bool {
        self.lens[bank] == 0
    }

    #[inline(always)]
    fn base(&self, bank: usize) -> usize {
        bank << self.slot_shift
    }

    /// Probe start within a region (local index).
    #[inline(always)]
    fn home(&self, key: u64) -> usize {
        (key.wrapping_mul(FIB) >> self.shift) as usize
    }

    /// Slab index holding `key` in `bank`'s region, if tracked.
    #[inline(always)]
    fn find_in(&self, bank: usize, key: u64) -> Option<usize> {
        let base = self.base(bank);
        let mut li = self.home(key);
        loop {
            let s = self.slots[base + li];
            if s.count == 0 {
                return None;
            }
            if s.key == key {
                return Some(base + li);
            }
            li = (li + 1) & self.mask;
        }
    }

    /// Estimated count of `key` (0 if untracked). Misra–Gries guarantees
    /// `true_count - spills ≤ estimate ≤ true_count`, with at most
    /// `W / (capacity + 1)` spills over a stream of `W` observations.
    #[inline]
    pub fn get(&self, key: u64) -> u64 {
        self.get_in(0, key)
    }

    /// [`FlatCounterTable::get`] against `bank`'s region.
    #[inline]
    pub fn get_in(&self, bank: usize, key: u64) -> u64 {
        self.find_in(bank, key).map_or(0, |i| self.slots[i].count)
    }

    /// One Misra–Gries observation of `key`: increment if tracked, insert at
    /// count 1 if the region has room, otherwise decrement every entry in
    /// the region (reporting evictions to `on_evict` in ascending slot-index
    /// order — the explicit tie-break rule) and leave `key` untracked.
    #[inline]
    pub fn observe(&mut self, key: u64, on_evict: impl FnMut(u64)) -> Observe {
        self.observe_in(0, key, on_evict)
    }

    /// [`FlatCounterTable::observe`] against `bank`'s region.
    #[inline]
    pub fn observe_in(&mut self, bank: usize, key: u64, on_evict: impl FnMut(u64)) -> Observe {
        let base = self.base(bank);
        let mut li = self.home(key);
        loop {
            let s = self.slots[base + li];
            if s.count == 0 {
                break;
            }
            if s.key == key {
                self.slots[base + li].count += 1;
                return Observe::Tracked(self.slots[base + li].count);
            }
            li = (li + 1) & self.mask;
        }
        if (self.lens[bank] as usize) < self.capacity {
            // `li` is the first empty probe slot — exactly where linear
            // probing inserts.
            self.slots[base + li] = Slot { key, count: 1 };
            self.lens[bank] += 1;
            return Observe::Tracked(1);
        }
        self.decrement_all_in(bank, on_evict);
        Observe::Spilled
    }

    /// The Misra–Gries decrement pass over one region: subtract one from
    /// every entry, evicting those that reach zero. Walks slots in
    /// ascending index order; `on_evict` fires in that order (the explicit
    /// deterministic tie-break) and survivors are re-packed in that same
    /// order, so the resulting slot layout — and every subsequent eviction
    /// sequence — is a pure function of the operation history.
    pub fn decrement_all_in(&mut self, bank: usize, mut on_evict: impl FnMut(u64)) {
        let base = self.base(bank);
        let region = base..base + self.mask + 1;
        // Fast path: when no entry survives (a region full of once-seen rows
        // — the steady state of a bank seeing only uniform benign traffic),
        // evict in place; no scratch zeroing, no rebuild.
        if self.slots[region.clone()].iter().all(|s| s.count <= 1) {
            for s in self.slots[region].iter_mut() {
                if s.count == 1 {
                    on_evict(s.key);
                    *s = Slot::default();
                }
            }
            self.lens[bank] = 0;
            return;
        }
        for s in self.scratch.iter_mut() {
            *s = Slot::default();
        }
        let mut survivors = 0;
        for i in region {
            let s = self.slots[i];
            if s.count == 0 {
                continue;
            }
            if s.count == 1 {
                on_evict(s.key);
                continue;
            }
            let mut li = self.home(s.key);
            while self.scratch[li].count != 0 {
                li = (li + 1) & self.mask;
            }
            self.scratch[li] = Slot {
                key: s.key,
                count: s.count - 1,
            };
            survivors += 1;
        }
        self.slots[base..base + self.mask + 1].copy_from_slice(&self.scratch);
        self.lens[bank] = survivors;
    }

    /// [`FlatCounterTable::decrement_all_in`] on the single-region table.
    pub fn decrement_all(&mut self, on_evict: impl FnMut(u64)) {
        self.decrement_all_in(0, on_evict)
    }

    /// Remove `key` from `bank`'s region if tracked (backward-shift
    /// deletion, so no tombstones accumulate and probe chains stay minimal).
    pub fn remove_in(&mut self, bank: usize, key: u64) {
        let Some(abs) = self.find_in(bank, key) else {
            return;
        };
        self.lens[bank] -= 1;
        let base = self.base(bank);
        let mut i = abs - base;
        let mut j = i;
        loop {
            j = (j + 1) & self.mask;
            let s = self.slots[base + j];
            if s.count == 0 {
                break;
            }
            // Shift `j` back into the hole at `i` only if its home position
            // is cyclically outside (i, j] — i.e. the hole does not cut the
            // entry off from its probe chain.
            let home = self.home(s.key);
            let between = if j > i {
                home <= i || home > j
            } else {
                home <= i && home > j
            };
            if between {
                self.slots[base + i] = s;
                i = j;
            }
        }
        self.slots[base + i] = Slot::default();
    }

    /// [`FlatCounterTable::remove_in`] on the single-region table.
    pub fn remove(&mut self, key: u64) {
        self.remove_in(0, key)
    }

    /// Drop every entry in every region, retaining the allocation.
    pub fn clear(&mut self) {
        for s in self.slots.iter_mut() {
            *s = Slot::default();
        }
        for l in self.lens.iter_mut() {
            *l = 0;
        }
    }

    /// Tracked `(key, estimated count)` pairs of `bank`'s region in
    /// ascending slot-index order (deterministic given the operation
    /// history).
    pub fn iter_in(&self, bank: usize) -> impl Iterator<Item = (u64, u64)> + '_ {
        let base = self.base(bank);
        self.slots[base..base + self.mask + 1]
            .iter()
            .filter(|s| s.count != 0)
            .map(|s| (s.key, s.count))
    }

    /// [`FlatCounterTable::iter_in`] on the single-region table.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.iter_in(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rh_core::SplitMix64;
    use std::collections::HashMap;

    fn no_evict(_: u64) {}

    /// Reference Misra–Gries over a HashMap, for differential checking.
    struct MapMg {
        k: usize,
        counts: HashMap<u64, u64>,
    }

    impl MapMg {
        fn observe(&mut self, key: u64) {
            if let Some(c) = self.counts.get_mut(&key) {
                *c += 1;
            } else if self.counts.len() < self.k {
                self.counts.insert(key, 1);
            } else {
                self.counts.retain(|_, c| {
                    *c -= 1;
                    *c > 0
                });
            }
        }
    }

    #[test]
    fn tracks_and_increments() {
        let mut t = FlatCounterTable::new(4);
        assert_eq!(t.observe(7, no_evict), Observe::Tracked(1));
        assert_eq!(t.observe(7, no_evict), Observe::Tracked(2));
        assert_eq!(t.get(7), 2);
        assert_eq!(t.get(8), 0);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn full_table_spills_and_evicts_singletons() {
        let mut t = FlatCounterTable::new(2);
        t.observe(1, no_evict);
        t.observe(1, no_evict);
        t.observe(2, no_evict);
        let mut evicted = Vec::new();
        assert_eq!(t.observe(3, |k| evicted.push(k)), Observe::Spilled);
        // Entry 2 (count 1) is evicted; entry 1 survives decremented; the
        // spilled key 3 is NOT inserted (standard Misra–Gries).
        assert_eq!(evicted, vec![2]);
        assert_eq!(t.get(1), 1);
        assert_eq!(t.get(2), 0);
        assert_eq!(t.get(3), 0);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn banked_regions_are_independent() {
        let mut t = FlatCounterTable::banked(2, 3);
        // Same keys in different banks never interact.
        for bank in 0..3 {
            for _ in 0..=bank {
                t.observe_in(bank, 42, no_evict);
            }
        }
        for bank in 0..3 {
            assert_eq!(t.get_in(bank, 42), bank as u64 + 1);
        }
        // Fill bank 1 and spill it; banks 0 and 2 must be untouched.
        t.observe_in(1, 43, no_evict);
        let mut evicted = Vec::new();
        assert_eq!(t.observe_in(1, 44, |k| evicted.push(k)), Observe::Spilled);
        assert_eq!(evicted, vec![43], "only bank 1's singleton is evicted");
        assert_eq!(t.get_in(1, 42), 1, "bank 1 decremented");
        assert_eq!(t.get_in(0, 42), 1, "bank 0 untouched");
        assert_eq!(t.get_in(2, 42), 3, "bank 2 untouched");
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn remove_preserves_colliding_probe_chains() {
        // Insert enough keys that linear-probe clusters form, then remove
        // from cluster heads and verify every survivor stays findable.
        let mut t = FlatCounterTable::new(32);
        let keys: Vec<u64> = (0..32).map(|i| i * 3 + 1).collect();
        for &k in &keys {
            t.observe(k, no_evict);
            t.observe(k, no_evict);
        }
        for (n, &k) in keys.iter().enumerate() {
            t.remove(k);
            assert_eq!(t.get(k), 0, "removed key {k} still present");
            assert_eq!(t.len(), keys.len() - n - 1);
            for &other in &keys[n + 1..] {
                assert_eq!(t.get(other), 2, "key {other} lost after removing {k}");
            }
        }
        assert!(t.is_empty());
    }

    #[test]
    fn remove_of_untracked_key_is_a_no_op() {
        let mut t = FlatCounterTable::new(4);
        t.observe(5, no_evict);
        t.remove(99);
        assert_eq!(t.get(5), 1);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn clear_retains_capacity_and_empties() {
        let mut t = FlatCounterTable::banked(4, 2);
        for k in 0..4 {
            t.observe_in(0, k, no_evict);
            t.observe_in(1, k, no_evict);
        }
        t.clear();
        assert!(t.is_empty());
        assert!(t.is_empty_in(1));
        assert_eq!(t.get(0), 0);
        assert_eq!(t.observe(9, no_evict), Observe::Tracked(1));
    }

    #[test]
    fn iter_yields_all_entries_in_slot_order() {
        let mut t = FlatCounterTable::new(8);
        for k in [10u64, 20, 30] {
            for _ in 0..k {
                t.observe(k, no_evict);
            }
        }
        let got: HashMap<u64, u64> = t.iter().collect();
        assert_eq!(got, HashMap::from([(10, 10), (20, 20), (30, 30)]));
    }

    /// Differential test: random streams through the flat table and a
    /// HashMap-based Misra–Gries must agree on every count at every step.
    #[test]
    fn matches_map_based_misra_gries_on_random_streams() {
        for seed in 0..4u64 {
            let k = 8;
            let mut flat = FlatCounterTable::new(k);
            let mut map = MapMg {
                k,
                counts: HashMap::new(),
            };
            let mut rng = SplitMix64::new(0xF1A7 + seed);
            for step in 0..20_000 {
                // Zipf-ish mix: a few hot keys plus a long random tail.
                let key = if rng.chance(0.5) {
                    rng.gen_range(4)
                } else {
                    rng.gen_range(1_000)
                };
                flat.observe(key, no_evict);
                map.observe(key);
                if step % 500 == 0 {
                    for probe in 0..1_000u64 {
                        assert_eq!(
                            flat.get(probe),
                            map.counts.get(&probe).copied().unwrap_or(0),
                            "seed {seed} step {step} key {probe}"
                        );
                    }
                    assert_eq!(flat.len(), map.counts.len());
                }
            }
        }
    }

    /// The Misra–Gries error bound: with `k` counters over a stream of `W`
    /// observations, `true − W/(k+1) ≤ estimate ≤ true` for every key.
    #[test]
    fn misra_gries_error_bound_holds() {
        let k = 8;
        let mut t = FlatCounterTable::new(k);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        let mut rng = SplitMix64::new(42);
        let w = 50_000u64;
        for _ in 0..w {
            let key = if rng.chance(0.3) {
                rng.gen_range(3)
            } else {
                rng.gen_range(500)
            };
            t.observe(key, no_evict);
            *truth.entry(key).or_insert(0) += 1;
        }
        let max_undercount = w / (k as u64 + 1);
        for (&key, &true_count) in &truth {
            let est = t.get(key);
            assert!(
                est <= true_count,
                "key {key}: est {est} > true {true_count}"
            );
            assert!(
                est + max_undercount >= true_count,
                "key {key}: est {est} undershoots true {true_count} by more than W/(k+1) = {max_undercount}"
            );
        }
    }

    /// Two identically-seeded runs must produce identical eviction
    /// sequences — the satellite fix for the old HashMap spill step, whose
    /// iteration order was only accidentally deterministic.
    #[test]
    fn eviction_sequences_are_deterministic() {
        let run = || {
            let mut t = FlatCounterTable::new(6);
            let mut rng = SplitMix64::new(0xE71C);
            let mut evictions = Vec::new();
            for _ in 0..30_000 {
                let key = rng.gen_range(200);
                t.observe(key, |k| evictions.push(k));
            }
            (evictions, t.iter().collect::<Vec<_>>())
        };
        let (ev_a, state_a) = run();
        let (ev_b, state_b) = run();
        assert!(!ev_a.is_empty(), "stream must exercise evictions");
        assert_eq!(ev_a, ev_b, "eviction sequences diverged");
        assert_eq!(state_a, state_b, "final slot layouts diverged");
    }

    #[test]
    fn load_factor_is_bounded() {
        for k in [1usize, 2, 3, 15, 16, 64, 100] {
            for banks in [1usize, 4] {
                let t = FlatCounterTable::banked(k, banks);
                let region = t.mask + 1;
                assert!(region.is_power_of_two());
                assert!(region >= 4 * k, "k={k}: {region} slots per region");
                assert!(region >= 8);
                assert_eq!(t.slots.len(), banks * region);
            }
        }
    }
}
