//! Sampling-window Target Row Refresh — the in-DRAM mitigation vendors
//! actually shipped with DDR4/LPDDR4, and the one the ISCA 2020 paper (and
//! the TRRespass line of work) shows collapsing under many-sided hammering.
//!
//! Model. Each bank keeps a small Misra–Gries counter table over the rows
//! activated in that bank. Every `sample_interval` activations (the sampling
//! window — in real parts this piggybacks on REF commands) the mechanism
//! refreshes the neighbors of the `refresh_slots` highest-count rows in each
//! bank's table; the tables are flushed wholesale at every tREFW refresh
//! window boundary (the engine's `reset()` call).
//!
//! The deliberate weakness, faithful to deployed TRR: only a handful of
//! rows per bank are ever targeted per sampling window. Against single- or
//! double-sided hammering the (one or two) aggressors dominate the table and
//! their victims are refreshed every window. Against `n`-sided hammering
//! with `n > refresh_slots`, the untargeted aggressors' victims accumulate
//! disturbance unchecked — the table may even track every aggressor, but the
//! refresh budget cannot cover them, so flips appear once `HC_first` drops
//! below what one refresh window allows. Graphene differs precisely here:
//! it refreshes *whenever any* tracked row crosses a threshold, with no
//! per-window slot budget.
//!
//! The per-bank tables are one banked [`FlatCounterTable`] — a single slab
//! with an independent power-of-two region per linear bank index, keyed by
//! row number, the way hardware lays per-bank trackers out in one SRAM.
//! One shift to the bank's region plus one multiply-shift probe per
//! activation replaces both levels of the previous nested `BTreeMap` (a
//! tree walk over `(channel, rank, bank)` followed by a tree walk over
//! `RowAddr`). Bank iteration order equals linear-index order, which is
//! exactly the old `BTreeMap` key order, and target selection tie-breaks
//! by (count desc, row asc) — so the flat form is action-for-action
//! identical to the retained [`crate::reference::MapTrr`], which the
//! differential tests assert.

use crate::table::FlatCounterTable;
use crate::{ActionBuf, Mitigation};
use rh_core::{Geometry, RowAddr};

/// Per-bank sampling-window TRR with flat Misra–Gries counter tables.
#[derive(Debug, Clone)]
pub struct Trr {
    /// Counter-table entries per bank.
    table_size: usize,
    /// Rows whose neighbors are refreshed per bank per sampling window.
    refresh_slots: usize,
    /// Activations between targeted-refresh opportunities.
    sample_interval: u64,
    /// Victim rows refreshed extend this far from a targeted aggressor.
    radius: u32,
    /// Activations remaining until the next sampling-window service.
    until_sample: u64,
    /// Banked Misra–Gries table: one region per linear bank index.
    tables: FlatCounterTable,
    /// Geometry bank layout captured at construction, for linear bank
    /// index computation and address reconstruction.
    ranks: u32,
    banks: u32,
    targeted_refreshes: u64,
    /// Reusable `(row, count)` target-selection scratch — no per-window
    /// allocation once capacity has grown to the (bounded) table size.
    scratch: Vec<(u32, u64)>,
}

impl Trr {
    /// A TRR instance with per-bank table regions pre-sized for `geom`:
    /// never allocates after construction, so the engine hot path stays
    /// allocation-free end to end.
    pub fn new(
        table_size: usize,
        refresh_slots: usize,
        sample_interval: u64,
        radius: u32,
        geom: &Geometry,
    ) -> Self {
        assert!(table_size > 0);
        assert!(refresh_slots > 0);
        assert!(sample_interval > 0);
        let n = (geom.channels * geom.ranks * geom.banks) as usize;
        Self {
            table_size,
            refresh_slots,
            sample_interval,
            radius,
            until_sample: sample_interval,
            tables: FlatCounterTable::banked(table_size, n),
            ranks: geom.ranks,
            banks: geom.banks,
            targeted_refreshes: 0,
            scratch: Vec::with_capacity(table_size),
        }
    }

    /// Rows targeted (not row-refresh actions) since construction or reset.
    pub fn targeted_refreshes(&self) -> u64 {
        self.targeted_refreshes
    }

    /// Estimated activation count for a row (test/diagnostic hook).
    pub fn estimate(&self, addr: RowAddr) -> u64 {
        self.tables.get_in(self.bank_index(addr), addr.row as u64)
    }

    /// Linear bank index; same ordering as the geometry's flat row index
    /// (and as the old `BTreeMap<(channel, rank, bank), _>` key order).
    #[inline(always)]
    fn bank_index(&self, addr: RowAddr) -> usize {
        ((addr.channel * self.ranks + addr.rank) * self.banks + addr.bank) as usize
    }

    /// Reconstruct the bank coordinates of linear index `i`.
    fn bank_coords(&self, i: usize) -> (u32, u32, u32) {
        let i = i as u32;
        (
            i / (self.ranks * self.banks),
            (i / self.banks) % self.ranks,
            i % self.banks,
        )
    }

    /// Sampling-window service: refresh the neighbors of the top
    /// `refresh_slots` rows of every bank table, ties broken by row number
    /// so target selection is fully deterministic. Uses the reusable scratch
    /// buffer — no per-window allocation.
    fn service_windows(&mut self, geom: &Geometry, out: &mut ActionBuf) {
        let mut rows = std::mem::take(&mut self.scratch);
        let tables = &self.tables;
        let mut targeted = 0;
        for bi in 0..tables.banks() {
            if tables.is_empty_in(bi) {
                continue;
            }
            rows.clear();
            rows.extend(tables.iter_in(bi).map(|(row, c)| (row as u32, c)));
            rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            let (channel, rank, bank) = self.bank_coords(bi);
            for &(row, _) in rows.iter().take(self.refresh_slots) {
                targeted += 1;
                let target = RowAddr {
                    channel,
                    rank,
                    bank,
                    row,
                };
                for (victim, _) in target.neighbors(geom, self.radius) {
                    out.refresh_row(victim);
                }
            }
        }
        self.targeted_refreshes += targeted;
        self.scratch = rows;
    }
}

impl Mitigation for Trr {
    fn name(&self) -> String {
        format!(
            "trr(k={},slots={},w={})",
            self.table_size, self.refresh_slots, self.sample_interval
        )
    }

    #[inline]
    fn on_activate(&mut self, addr: RowAddr, geom: &Geometry, out: &mut ActionBuf) {
        let bi = self.bank_index(addr);
        self.tables.observe_in(bi, addr.row as u64, |_| {});
        self.until_sample -= 1;
        if self.until_sample != 0 {
            return;
        }
        self.until_sample = self.sample_interval;
        // Counters are intentionally NOT rewound after a targeted refresh:
        // real samplers keep favoring the hottest rows, which is exactly why
        // aggressors beyond the slot budget are never serviced.
        self.service_windows(geom, out);
    }

    /// tREFW boundary: flush every bank table and realign sampling windows.
    fn reset(&mut self) {
        self.tables.clear();
        self.until_sample = self.sample_interval;
        self.targeted_refreshes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MitigationAction;
    use rh_core::Geometry;

    /// Drive `w` for `n` activations, returning victim rows refreshed.
    fn drive(trr: &mut Trr, geom: &Geometry, pattern: &[RowAddr], n: u64) -> Vec<RowAddr> {
        let mut refreshed = Vec::new();
        let mut buf = ActionBuf::new();
        for i in 0..n {
            let addr = pattern[(i % pattern.len() as u64) as usize];
            buf.clear();
            trr.on_activate(addr, geom, &mut buf);
            for action in buf.actions() {
                match action {
                    MitigationAction::RefreshRow(r) => refreshed.push(*r),
                    MitigationAction::RefreshAll => unreachable!("TRR never refreshes all"),
                }
            }
        }
        refreshed
    }

    #[test]
    fn double_sided_aggressors_both_targeted_every_window() {
        let geom = Geometry::tiny(64);
        let mut trr = Trr::new(16, 2, 100, 1, &geom);
        let pattern = [RowAddr::bank_row(0, 30), RowAddr::bank_row(0, 32)];
        let refreshed = drive(&mut trr, &geom, &pattern, 400);
        // 4 sampling windows, 2 slots each: the sandwiched victim (row 31)
        // is refreshed twice per window (once as neighbor of each aggressor).
        assert_eq!(trr.targeted_refreshes(), 8);
        let victim_hits = refreshed
            .iter()
            .filter(|r| **r == RowAddr::bank_row(0, 31))
            .count();
        assert_eq!(victim_hits, 8);
    }

    #[test]
    fn slot_budget_leaves_extra_aggressors_unserviced() {
        let geom = Geometry::tiny(64);
        let mut trr = Trr::new(16, 2, 80, 1, &geom);
        // 8-sided: aggressors rows 10,12,..,24 — all fit in the table, but
        // only 2 slots exist. Deterministic tie-break (count desc, then
        // row) always picks rows 10 and 12.
        let pattern: Vec<RowAddr> = (0..8).map(|i| RowAddr::bank_row(0, 10 + 2 * i)).collect();
        let refreshed = drive(&mut trr, &geom, &pattern, 800);
        assert!(refreshed.contains(&RowAddr::bank_row(0, 11)));
        // Victim row 19 sits between aggressors 18 and 20, which never make
        // the top-2 — it must never be refreshed.
        assert!(!refreshed.contains(&RowAddr::bank_row(0, 19)));
    }

    #[test]
    fn tables_are_per_bank() {
        let geom = Geometry {
            channels: 1,
            ranks: 1,
            banks: 2,
            rows_per_bank: 64,
        };
        let mut trr = Trr::new(4, 1, 10, 1, &geom);
        let pattern = [RowAddr::bank_row(0, 20), RowAddr::bank_row(1, 40)];
        let refreshed = drive(&mut trr, &geom, &pattern, 40);
        // Each bank's lone aggressor is that bank's top row: both banks'
        // victims get refreshed even though slots=1.
        assert!(refreshed.iter().any(|r| r.bank == 0 && r.row == 21));
        assert!(refreshed.iter().any(|r| r.bank == 1 && r.row == 41));
    }

    #[test]
    fn misra_gries_estimate_never_exceeds_true_count() {
        let geom = Geometry::tiny(256);
        let mut trr = Trr::new(4, 1, 1_000_000, 1, &geom);
        let aggr = RowAddr::bank_row(0, 100);
        let mut buf = ActionBuf::new();
        for i in 0u32..500 {
            trr.on_activate(aggr, &geom, &mut buf);
            trr.on_activate(RowAddr::bank_row(0, i % 64), &geom, &mut buf);
        }
        assert!(trr.estimate(aggr) <= 500);
        assert!(trr.estimate(aggr) > 0, "heavy hitter must stay tracked");
    }

    #[test]
    fn reset_flushes_tables_and_realigns_window() {
        let geom = Geometry::tiny(64);
        let mut trr = Trr::new(8, 2, 100, 1, &geom);
        let aggr = RowAddr::bank_row(0, 30);
        let mut buf = ActionBuf::new();
        for _ in 0..60 {
            trr.on_activate(aggr, &geom, &mut buf);
        }
        assert!(trr.estimate(aggr) > 0);
        trr.reset();
        assert_eq!(trr.estimate(aggr), 0);
        // 99 activations after a reset must not cross a sampling boundary.
        let refreshed = drive(&mut trr, &geom, &[aggr], 99);
        assert!(refreshed.is_empty());
        let refreshed = drive(&mut trr, &geom, &[aggr], 1);
        assert!(!refreshed.is_empty());
    }

    #[test]
    fn deterministic_across_instances() {
        let geom = Geometry::tiny(128);
        let pattern: Vec<RowAddr> = (0..10).map(|i| RowAddr::bank_row(0, 10 + 2 * i)).collect();
        let mut a = Trr::new(16, 2, 37, 2, &geom);
        let mut b = Trr::new(16, 2, 37, 2, &geom);
        let ra = drive(&mut a, &geom, &pattern, 500);
        let rb = drive(&mut b, &geom, &pattern, 500);
        assert_eq!(ra, rb);
    }

    #[test]
    fn multi_channel_rank_banks_service_their_own_aggressors() {
        // Exercises the linear bank index / coordinate reconstruction over
        // a geometry with every dimension > 1.
        let geom = Geometry {
            channels: 2,
            ranks: 2,
            banks: 4,
            rows_per_bank: 64,
        };
        let pattern: Vec<RowAddr> = (0..8)
            .map(|i| RowAddr {
                channel: i % 2,
                rank: (i / 2) % 2,
                bank: i % 4,
                row: 20 + 2 * i,
            })
            .collect();
        let mut trr = Trr::new(8, 2, 50, 1, &geom);
        let refreshed = drive(&mut trr, &geom, &pattern, 600);
        // Every aggressor is its bank's hottest row, so each one's victims
        // must be refreshed in its own (channel, rank, bank).
        for aggr in &pattern {
            assert!(
                refreshed.iter().any(|r| r.channel == aggr.channel
                    && r.rank == aggr.rank
                    && r.bank == aggr.bank
                    && r.row == aggr.row + 1),
                "victim of {aggr:?} never refreshed"
            );
        }
    }
}
