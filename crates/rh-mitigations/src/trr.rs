//! Sampling-window Target Row Refresh — the in-DRAM mitigation vendors
//! actually shipped with DDR4/LPDDR4, and the one the ISCA 2020 paper (and
//! the TRRespass line of work) shows collapsing under many-sided hammering.
//!
//! Model. Each bank keeps a small Misra–Gries counter table over the rows
//! activated in that bank. Every `sample_interval` activations (the sampling
//! window — in real parts this piggybacks on REF commands) the mechanism
//! refreshes the neighbors of the `refresh_slots` highest-count rows in each
//! bank's table; the tables are flushed wholesale at every tREFW refresh
//! window boundary (the engine's `reset()` call).
//!
//! The deliberate weakness, faithful to deployed TRR: only a handful of
//! rows per bank are ever targeted per sampling window. Against single- or
//! double-sided hammering the (one or two) aggressors dominate the table and
//! their victims are refreshed every window. Against `n`-sided hammering
//! with `n > refresh_slots`, the untargeted aggressors' victims accumulate
//! disturbance unchecked — the table may even track every aggressor, but the
//! refresh budget cannot cover them, so flips appear once `HC_first` drops
//! below what one refresh window allows. Graphene differs precisely here:
//! it refreshes *whenever any* tracked row crosses a threshold, with no
//! per-window slot budget.
//!
//! All state is deterministic (BTreeMaps, count-then-address tie-breaking),
//! so sweeps using TRR stay bit-identical across thread counts.

use crate::{ActionBuf, Mitigation};
use rh_core::{Geometry, RowAddr};
use std::collections::BTreeMap;

/// Channel/rank/bank coordinates identifying one per-bank counter table.
type BankKey = (u32, u32, u32);

/// Per-bank sampling-window TRR with a Misra–Gries counter table.
#[derive(Debug, Clone)]
pub struct Trr {
    /// Counter-table entries per bank.
    table_size: usize,
    /// Rows whose neighbors are refreshed per bank per sampling window.
    refresh_slots: usize,
    /// Activations between targeted-refresh opportunities.
    sample_interval: u64,
    /// Victim rows refreshed extend this far from a targeted aggressor.
    radius: u32,
    /// Activations observed since the last refresh-window flush.
    acts_in_window: u64,
    /// Per-bank Misra–Gries counters: row → estimated count.
    tables: BTreeMap<BankKey, BTreeMap<RowAddr, u64>>,
    targeted_refreshes: u64,
    /// Reusable target-selection scratch, so sampling windows allocate only
    /// until the buffer reaches its steady-state capacity.
    scratch: Vec<(RowAddr, u64)>,
}

impl Trr {
    pub fn new(table_size: usize, refresh_slots: usize, sample_interval: u64, radius: u32) -> Self {
        assert!(table_size > 0);
        assert!(refresh_slots > 0);
        assert!(sample_interval > 0);
        Self {
            table_size,
            refresh_slots,
            sample_interval,
            radius,
            acts_in_window: 0,
            tables: BTreeMap::new(),
            targeted_refreshes: 0,
            scratch: Vec::new(),
        }
    }

    /// Rows targeted (not row-refresh actions) since construction or reset.
    pub fn targeted_refreshes(&self) -> u64 {
        self.targeted_refreshes
    }

    /// Estimated activation count for a row (test/diagnostic hook).
    pub fn estimate(&self, addr: RowAddr) -> u64 {
        self.tables
            .get(&bank_key(addr))
            .and_then(|t| t.get(&addr))
            .copied()
            .unwrap_or(0)
    }

    /// Misra–Gries update on the activated row's bank table.
    fn observe(&mut self, addr: RowAddr) {
        let table = self.tables.entry(bank_key(addr)).or_default();
        if let Some(c) = table.get_mut(&addr) {
            *c += 1;
        } else if table.len() < self.table_size {
            table.insert(addr, 1);
        } else {
            table.retain(|_, c| {
                *c -= 1;
                *c > 0
            });
        }
    }

    /// Sampling-window service: refresh the neighbors of the top
    /// `refresh_slots` rows of every bank table, ties broken by address so
    /// target selection is fully deterministic. Uses the reusable scratch
    /// buffer — no per-window allocation once capacity has grown to the
    /// (bounded) table size.
    fn service_windows(&mut self, geom: &Geometry, out: &mut ActionBuf) {
        let mut rows = std::mem::take(&mut self.scratch);
        for table in self.tables.values() {
            rows.clear();
            rows.extend(table.iter().map(|(a, c)| (*a, *c)));
            rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            for &(target, _) in rows.iter().take(self.refresh_slots) {
                self.targeted_refreshes += 1;
                for (victim, _) in target.neighbors(geom, self.radius) {
                    out.refresh_row(victim);
                }
            }
        }
        self.scratch = rows;
    }
}

fn bank_key(addr: RowAddr) -> BankKey {
    (addr.channel, addr.rank, addr.bank)
}

impl Mitigation for Trr {
    fn name(&self) -> String {
        format!(
            "trr(k={},slots={},w={})",
            self.table_size, self.refresh_slots, self.sample_interval
        )
    }

    fn on_activate(&mut self, addr: RowAddr, geom: &Geometry, out: &mut ActionBuf) {
        self.observe(addr);
        self.acts_in_window += 1;
        if !self.acts_in_window.is_multiple_of(self.sample_interval) {
            return;
        }
        // Counters are intentionally NOT rewound after a targeted refresh:
        // real samplers keep favoring the hottest rows, which is exactly why
        // aggressors beyond the slot budget are never serviced.
        self.service_windows(geom, out);
    }

    /// tREFW boundary: flush every bank table and realign sampling windows.
    fn reset(&mut self) {
        self.tables.clear();
        self.acts_in_window = 0;
        self.targeted_refreshes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MitigationAction;
    use rh_core::Geometry;

    /// Drive `w` for `n` activations, returning victim rows refreshed.
    fn drive(trr: &mut Trr, geom: &Geometry, pattern: &[RowAddr], n: u64) -> Vec<RowAddr> {
        let mut refreshed = Vec::new();
        let mut buf = ActionBuf::new();
        for i in 0..n {
            let addr = pattern[(i % pattern.len() as u64) as usize];
            buf.clear();
            trr.on_activate(addr, geom, &mut buf);
            for action in buf.actions() {
                match action {
                    MitigationAction::RefreshRow(r) => refreshed.push(*r),
                    MitigationAction::RefreshAll => unreachable!("TRR never refreshes all"),
                }
            }
        }
        refreshed
    }

    #[test]
    fn double_sided_aggressors_both_targeted_every_window() {
        let geom = Geometry::tiny(64);
        let mut trr = Trr::new(16, 2, 100, 1);
        let pattern = [RowAddr::bank_row(0, 30), RowAddr::bank_row(0, 32)];
        let refreshed = drive(&mut trr, &geom, &pattern, 400);
        // 4 sampling windows, 2 slots each: the sandwiched victim (row 31)
        // is refreshed twice per window (once as neighbor of each aggressor).
        assert_eq!(trr.targeted_refreshes(), 8);
        let victim_hits = refreshed
            .iter()
            .filter(|r| **r == RowAddr::bank_row(0, 31))
            .count();
        assert_eq!(victim_hits, 8);
    }

    #[test]
    fn slot_budget_leaves_extra_aggressors_unserviced() {
        let geom = Geometry::tiny(64);
        let mut trr = Trr::new(16, 2, 80, 1);
        // 8-sided: aggressors rows 10,12,..,24 — all fit in the table, but
        // only 2 slots exist. Deterministic tie-break (count desc, then
        // address) always picks rows 10 and 12.
        let pattern: Vec<RowAddr> = (0..8).map(|i| RowAddr::bank_row(0, 10 + 2 * i)).collect();
        let refreshed = drive(&mut trr, &geom, &pattern, 800);
        assert!(refreshed.contains(&RowAddr::bank_row(0, 11)));
        // Victim row 19 sits between aggressors 18 and 20, which never make
        // the top-2 — it must never be refreshed.
        assert!(!refreshed.contains(&RowAddr::bank_row(0, 19)));
    }

    #[test]
    fn tables_are_per_bank() {
        let geom = Geometry {
            channels: 1,
            ranks: 1,
            banks: 2,
            rows_per_bank: 64,
        };
        let mut trr = Trr::new(4, 1, 10, 1);
        let pattern = [RowAddr::bank_row(0, 20), RowAddr::bank_row(1, 40)];
        let refreshed = drive(&mut trr, &geom, &pattern, 40);
        // Each bank's lone aggressor is that bank's top row: both banks'
        // victims get refreshed even though slots=1.
        assert!(refreshed.iter().any(|r| r.bank == 0 && r.row == 21));
        assert!(refreshed.iter().any(|r| r.bank == 1 && r.row == 41));
    }

    #[test]
    fn misra_gries_estimate_never_exceeds_true_count() {
        let geom = Geometry::tiny(256);
        let mut trr = Trr::new(4, 1, 1_000_000, 1);
        let aggr = RowAddr::bank_row(0, 100);
        let mut buf = ActionBuf::new();
        for i in 0u32..500 {
            trr.on_activate(aggr, &geom, &mut buf);
            trr.on_activate(RowAddr::bank_row(0, i % 64), &geom, &mut buf);
        }
        assert!(trr.estimate(aggr) <= 500);
        assert!(trr.estimate(aggr) > 0, "heavy hitter must stay tracked");
    }

    #[test]
    fn reset_flushes_tables_and_realigns_window() {
        let geom = Geometry::tiny(64);
        let mut trr = Trr::new(8, 2, 100, 1);
        let aggr = RowAddr::bank_row(0, 30);
        let mut buf = ActionBuf::new();
        for _ in 0..60 {
            trr.on_activate(aggr, &geom, &mut buf);
        }
        assert!(trr.estimate(aggr) > 0);
        trr.reset();
        assert_eq!(trr.estimate(aggr), 0);
        // 99 activations after a reset must not cross a sampling boundary.
        let refreshed = drive(&mut trr, &geom, &[aggr], 99);
        assert!(refreshed.is_empty());
        let refreshed = drive(&mut trr, &geom, &[aggr], 1);
        assert!(!refreshed.is_empty());
    }

    #[test]
    fn deterministic_across_instances() {
        let geom = Geometry::tiny(128);
        let pattern: Vec<RowAddr> = (0..10).map(|i| RowAddr::bank_row(0, 10 + 2 * i)).collect();
        let mut a = Trr::new(16, 2, 37, 2);
        let mut b = Trr::new(16, 2, 37, 2);
        let ra = drive(&mut a, &geom, &pattern, 500);
        let rb = drive(&mut b, &geom, &pattern, 500);
        assert_eq!(ra, rb);
    }
}
