//! Serializable mitigation specifications and the monomorphized
//! [`MitigationKind`] they build.
//!
//! A [`MitigationSpec`] is the declarative identity of a mitigation cell in
//! a sweep plan: plain data (no RNG, no tables) that can be compared and
//! expanded into a fresh instance any number of times; the built instance's
//! `name()` is the single source of display strings. The sweep planner
//! builds a flat list of cells out of specs; executor threads materialize
//! each cell's mitigation locally via [`MitigationSpec::build`], so no
//! mitigation state ever crosses a thread boundary and sharded runs stay
//! bit-identical.
//!
//! [`MitigationKind`] is the enum of all concrete mitigation types. The
//! engine's hot loop is generic over `Mitigation` and runs on a
//! `MitigationKind`, so per-activation dispatch is one match on the variant
//! tag (monomorphized, inlinable) instead of a `Box<dyn Mitigation>` vtable
//! call — and the `on_activate` bodies inline into the loop.
//!
//! Threshold-style parameters are expressed as divisors of `HC_first`
//! (e.g. `threshold_divisor: 8` → trigger at `hc_first / 8`) because the
//! paper configures every mechanism relative to the chip's vulnerability:
//! the same spec is reused across the whole `HC_first` axis.

use crate::{ActionBuf, Graphene, IncreasedRefresh, Mitigation, NoMitigation, Para, Trr};
use rh_core::{Geometry, RowAddr};

/// Declarative description of one mitigation configuration.
#[derive(Debug, Clone, PartialEq)]
pub enum MitigationSpec {
    /// Baseline: periodic auto-refresh only.
    None,
    /// PARA with the given sampling probability.
    Para { probability: f64 },
    /// Graphene-style Misra–Gries counters; triggers at
    /// `hc_first / threshold_divisor` estimated activations.
    Graphene {
        table_size: usize,
        threshold_divisor: u64,
    },
    /// Full-device refresh every `hc_first / interval_divisor` activations.
    IncreasedRefresh { interval_divisor: u64 },
    /// Sampling-window TRR: per-bank tables of `table_size` entries,
    /// `refresh_slots` targeted rows per bank every `sample_interval`
    /// activations.
    Trr {
        table_size: usize,
        refresh_slots: usize,
        sample_interval: u64,
    },
}

impl MitigationSpec {
    /// Materialize a fresh mitigation for a device with geometry `geom`,
    /// the given `hc_first`, neighbor-refresh `radius`, and RNG `seed`
    /// (only PARA is stochastic; the seed is ignored by deterministic
    /// mechanisms). The geometry lets table-based mechanisms pre-size their
    /// counter structures, so nothing on the hot path allocates.
    pub fn build(&self, geom: &Geometry, hc_first: u64, radius: u32, seed: u64) -> MitigationKind {
        match *self {
            Self::None => MitigationKind::None(NoMitigation),
            Self::Para { probability } => {
                MitigationKind::Para(Para::new(probability, radius, seed))
            }
            Self::Graphene {
                table_size,
                threshold_divisor,
            } => MitigationKind::Graphene(Graphene::new(
                table_size,
                (hc_first / threshold_divisor).max(1),
                radius,
            )),
            Self::IncreasedRefresh { interval_divisor } => MitigationKind::IncreasedRefresh(
                IncreasedRefresh::new((hc_first / interval_divisor).max(1)),
            ),
            Self::Trr {
                table_size,
                refresh_slots,
                sample_interval,
            } => MitigationKind::Trr(Trr::new(
                table_size,
                refresh_slots,
                sample_interval,
                radius,
                geom,
            )),
        }
    }
}

/// The closed set of concrete mitigations, for monomorphized dispatch: one
/// match on the variant tag per activation instead of a vtable call, with
/// each `on_activate` body inlined into the engine loop.
#[derive(Debug, Clone)]
pub enum MitigationKind {
    None(NoMitigation),
    Para(Para),
    Graphene(Graphene),
    IncreasedRefresh(IncreasedRefresh),
    Trr(Trr),
}

impl Mitigation for MitigationKind {
    fn name(&self) -> String {
        match self {
            Self::None(m) => m.name(),
            Self::Para(m) => m.name(),
            Self::Graphene(m) => m.name(),
            Self::IncreasedRefresh(m) => m.name(),
            Self::Trr(m) => m.name(),
        }
    }

    #[inline]
    fn on_activate(&mut self, addr: RowAddr, geom: &Geometry, out: &mut ActionBuf) {
        match self {
            Self::None(_) => {}
            Self::Para(m) => m.on_activate(addr, geom, out),
            Self::Graphene(m) => m.on_activate(addr, geom, out),
            Self::IncreasedRefresh(m) => m.on_activate(addr, geom, out),
            Self::Trr(m) => m.on_activate(addr, geom, out),
        }
    }

    fn reset(&mut self) {
        match self {
            Self::None(m) => m.reset(),
            Self::Para(m) => m.reset(),
            Self::Graphene(m) => m.reset(),
            Self::IncreasedRefresh(m) => m.reset(),
            Self::Trr(m) => m.reset(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> Geometry {
        Geometry::tiny(64)
    }

    #[test]
    fn built_names_are_stable_and_distinct() {
        let specs = [
            MitigationSpec::None,
            MitigationSpec::Para { probability: 0.004 },
            MitigationSpec::Graphene {
                table_size: 64,
                threshold_divisor: 8,
            },
            MitigationSpec::IncreasedRefresh {
                interval_divisor: 2,
            },
            MitigationSpec::Trr {
                table_size: 16,
                refresh_slots: 2,
                sample_interval: 1000,
            },
        ];
        let names: std::collections::HashSet<String> = specs
            .iter()
            .map(|s| s.build(&geom(), 2000, 2, 0).name())
            .collect();
        assert_eq!(names.len(), specs.len());
        assert!(names.contains("trr(k=16,slots=2,w=1000)"));
        assert!(names.contains("graphene(k=64,t=250)"));
    }

    #[test]
    fn build_resolves_hc_relative_parameters() {
        let m = MitigationSpec::Graphene {
            table_size: 4,
            threshold_divisor: 8,
        }
        .build(&geom(), 4000, 2, 0);
        assert_eq!(m.name(), "graphene(k=4,t=500)");
        let m = MitigationSpec::IncreasedRefresh {
            interval_divisor: 2,
        }
        .build(&geom(), 4000, 2, 0);
        assert_eq!(m.name(), "refresh(interval=2000)");
    }

    #[test]
    fn build_clamps_degenerate_thresholds() {
        // hc_first below the divisor must not build a zero threshold.
        let m = MitigationSpec::Graphene {
            table_size: 4,
            threshold_divisor: 8,
        }
        .build(&geom(), 3, 1, 0);
        assert_eq!(m.name(), "graphene(k=4,t=1)");
    }

    #[test]
    fn built_instances_are_independent() {
        let spec = MitigationSpec::Trr {
            table_size: 4,
            refresh_slots: 1,
            sample_interval: 10,
        };
        let geom = rh_core::Geometry::tiny(16);
        let addr = rh_core::RowAddr::bank_row(0, 8);
        let mut a = spec.build(&geom, 1000, 1, 0);
        for _ in 0..5 {
            crate::collect_actions(&mut a, addr, &geom);
        }
        // A second build starts from scratch: no shared state.
        let mut b = spec.build(&geom, 1000, 1, 0);
        assert!(crate::collect_actions(&mut b, addr, &geom).is_empty());
    }

    #[test]
    fn kind_dispatch_matches_direct_calls() {
        let geom = Geometry::tiny(64);
        let addr = RowAddr::bank_row(0, 32);
        let mut direct = Graphene::new(4, 10, 1);
        let mut kind = MitigationSpec::Graphene {
            table_size: 4,
            threshold_divisor: 100,
        }
        .build(&geom, 1000, 1, 0);
        assert_eq!(kind.name(), "graphene(k=4,t=10)");
        for _ in 0..20 {
            let a = crate::collect_actions(&mut direct, addr, &geom);
            let b = crate::collect_actions(&mut kind, addr, &geom);
            assert_eq!(a, b);
        }
        kind.reset();
        direct.reset();
        assert_eq!(
            crate::collect_actions(&mut kind, addr, &geom),
            crate::collect_actions(&mut direct, addr, &geom)
        );
    }
}
