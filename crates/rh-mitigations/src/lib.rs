//! # rh-mitigations — mitigation policy layer
//!
//! Every mitigation observes the same per-activation stream through the
//! [`Mitigation`] trait and responds with [`MitigationAction`]s that the
//! engine (in `rh-cli`) applies to the device model. This mirrors how the
//! ISCA 2020 paper evaluates mechanisms: all five see identical activation
//! sequences and differ only in when they refresh potential victims.
//!
//! Implemented policies:
//!
//! * [`NoMitigation`] — baseline; relies solely on periodic auto-refresh.
//! * [`Para`] — Probabilistic Adjacent Row Activation (Kim et al., ISCA
//!   2014): on each activation, with probability `p`, refresh the
//!   aggressor's neighbors. Stateless apart from its RNG.
//! * [`Graphene`] — top-k frequent-row tracking via the Misra–Gries heavy
//!   hitters algorithm (Park et al., MICRO 2020): refresh a tracked row's
//!   neighbors whenever its estimated count crosses a threshold.
//! * [`IncreasedRefresh`] — shorten the effective refresh window by issuing
//!   full-device refreshes every `interval` activations; the paper shows
//!   this scales worst as `HC_first` drops.
//! * [`Trr`] — sampling-window Target Row Refresh: per-bank Misra–Gries
//!   tables with a small per-window targeted-refresh budget, the deployed
//!   mechanism that many-sided (TRRespass-style) patterns defeat.
//!
//! [`MitigationSpec`] is the serializable factory form of all of the above:
//! sweep plans carry specs, and executor threads build fresh instances per
//! cell so sharded runs stay deterministic.

pub mod graphene;
pub mod para;
pub mod refresh;
pub mod spec;
pub mod trr;

pub use graphene::Graphene;
pub use para::Para;
pub use refresh::IncreasedRefresh;
pub use spec::MitigationSpec;
pub use trr::Trr;

use rh_core::{Geometry, RowAddr};

/// An action a mitigation asks the engine to perform on the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MitigationAction {
    /// Refresh one row (restore its charge).
    RefreshRow(RowAddr),
    /// Refresh the entire device.
    RefreshAll,
}

/// A RowHammer mitigation observing the activation stream.
///
/// The engine calls [`Mitigation::on_activate`] for every row activation
/// *before* the activation is applied to the device, and applies the
/// returned actions immediately after it. Implementations must be
/// deterministic given their construction-time seed.
pub trait Mitigation {
    /// Short stable identifier used in result tables (e.g. `"para(p=0.001)"`).
    fn name(&self) -> String;

    /// Observe one activation; return any refreshes to perform.
    fn on_activate(&mut self, addr: RowAddr, geom: &Geometry) -> Vec<MitigationAction>;

    /// Forget all accumulated state (e.g. at a refresh-window boundary).
    fn reset(&mut self);
}

/// Baseline: never intervenes.
#[derive(Debug, Default, Clone)]
pub struct NoMitigation;

impl Mitigation for NoMitigation {
    fn name(&self) -> String {
        "none".to_string()
    }

    fn on_activate(&mut self, _addr: RowAddr, _geom: &Geometry) -> Vec<MitigationAction> {
        Vec::new()
    }

    fn reset(&mut self) {}
}
