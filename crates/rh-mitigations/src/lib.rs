//! # rh-mitigations — mitigation policy layer
//!
//! Every mitigation observes the same per-activation stream through the
//! [`Mitigation`] trait and emits [`MitigationAction`]s into a reusable
//! [`ActionBuf`] sink that the engine (in `rh-cli`) applies to the device
//! model — sink-style rather than `Vec`-returning so the per-activation hot
//! path never allocates. This mirrors how the ISCA 2020 paper evaluates
//! mechanisms: all five see identical activation sequences and differ only
//! in when they refresh potential victims.
//!
//! Implemented policies:
//!
//! * [`NoMitigation`] — baseline; relies solely on periodic auto-refresh.
//! * [`Para`] — Probabilistic Adjacent Row Activation (Kim et al., ISCA
//!   2014): on each activation, with probability `p`, refresh the
//!   aggressor's neighbors. Stateless apart from its RNG.
//! * [`Graphene`] — top-k frequent-row tracking via the Misra–Gries heavy
//!   hitters algorithm (Park et al., MICRO 2020): refresh a tracked row's
//!   neighbors whenever its estimated count crosses a threshold.
//! * [`IncreasedRefresh`] — shorten the effective refresh window by issuing
//!   full-device refreshes every `interval` activations; the paper shows
//!   this scales worst as `HC_first` drops.
//! * [`Trr`] — sampling-window Target Row Refresh: per-bank Misra–Gries
//!   tables with a small per-window targeted-refresh budget, the deployed
//!   mechanism that many-sided (TRRespass-style) patterns defeat.
//!
//! [`MitigationSpec`] is the serializable factory form of all of the above:
//! sweep plans carry specs, and executor threads build fresh instances per
//! cell so sharded runs stay deterministic. [`MitigationKind`] is the
//! monomorphized enum the specs build — the engine dispatches on its variant
//! tag instead of a `Box<dyn Mitigation>` vtable, so `on_activate` bodies
//! inline into the hot loop.
//!
//! Hot-path invariant (matching `rh-workloads::next_access`): **counter
//! tables never allocate after construction.** Graphene's and TRR's
//! Misra–Gries state lives in fixed-capacity [`FlatCounterTable`]s —
//! power-of-two open-addressing arrays sized at construction, with the
//! decrement-pass scratch preallocated alongside — and TRR's target-
//! selection scratch is a reusable buffer bounded by the table size. No
//! mitigation's `on_activate` touches the allocator; the only allocating
//! method is `name()`, called once per run. New counter-based mechanisms
//! must preserve this: build fixed structures in the spec's `build` (which
//! receives the geometry precisely so tables can be pre-sized) and reuse
//! them for the whole run. The retained map-based forms
//! ([`reference::MapGraphene`], [`reference::MapTrr`]) are exempt — they
//! exist only as differential-test references and the benchmark's "before"
//! side.

pub mod graphene;
pub mod para;
pub mod reference;
pub mod refresh;
pub mod spec;
pub mod table;
pub mod trr;

pub use graphene::Graphene;
pub use para::Para;
pub use refresh::IncreasedRefresh;
pub use spec::{MitigationKind, MitigationSpec};
pub use table::FlatCounterTable;
pub use trr::Trr;

use rh_core::{Geometry, RowAddr};

/// An action a mitigation asks the engine to perform on the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MitigationAction {
    /// Refresh one row (restore its charge).
    RefreshRow(RowAddr),
    /// Refresh the entire device.
    RefreshAll,
}

/// Reusable sink for the actions a mitigation emits on one activation.
///
/// The engine allocates one buffer per run and clears it before every
/// [`Mitigation::on_activate`] call, so the per-activation hot path never
/// allocates: on the overwhelmingly common "no action" path nothing is
/// written at all, and when actions do fire they land in the buffer's
/// retained capacity.
#[derive(Debug, Default, Clone)]
pub struct ActionBuf {
    actions: Vec<MitigationAction>,
}

impl ActionBuf {
    pub fn new() -> Self {
        Self::default()
    }

    /// Drop all buffered actions, retaining capacity. The engine calls this
    /// before each `on_activate`; mitigations only append.
    pub fn clear(&mut self) {
        self.actions.clear();
    }

    pub fn push(&mut self, action: MitigationAction) {
        self.actions.push(action);
    }

    /// Append a single-row refresh.
    pub fn refresh_row(&mut self, addr: RowAddr) {
        self.actions.push(MitigationAction::RefreshRow(addr));
    }

    /// Append a full-device refresh.
    pub fn refresh_all(&mut self) {
        self.actions.push(MitigationAction::RefreshAll);
    }

    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// The buffered actions, in emission order.
    pub fn actions(&self) -> &[MitigationAction] {
        &self.actions
    }
}

/// A RowHammer mitigation observing the activation stream.
///
/// The engine calls [`Mitigation::on_activate`] for every row activation
/// *before* the activation is applied to the device, and applies the
/// emitted actions immediately after it. `on_activate` is sink-style: the
/// caller passes a cleared [`ActionBuf`] and the mitigation appends any
/// refreshes to perform, so the no-action fast path writes nothing and the
/// hot path stays allocation-free. Implementations must be deterministic
/// given their construction-time seed.
pub trait Mitigation {
    /// Short stable identifier used in result tables (e.g. `"para(p=0.001)"`).
    fn name(&self) -> String;

    /// Observe one activation; append any refreshes to perform to `out`.
    /// `out` arrives cleared — implementations only append.
    fn on_activate(&mut self, addr: RowAddr, geom: &Geometry, out: &mut ActionBuf);

    /// Forget all accumulated state (e.g. at a refresh-window boundary).
    fn reset(&mut self);
}

/// Baseline: never intervenes.
#[derive(Debug, Default, Clone)]
pub struct NoMitigation;

impl Mitigation for NoMitigation {
    fn name(&self) -> String {
        "none".to_string()
    }

    fn on_activate(&mut self, _addr: RowAddr, _geom: &Geometry, _out: &mut ActionBuf) {}

    fn reset(&mut self) {}
}

/// Test/diagnostic adapter: run one `on_activate` through a scratch buffer
/// and return the emitted actions as an owned `Vec`.
pub fn collect_actions(
    mitigation: &mut dyn Mitigation,
    addr: RowAddr,
    geom: &Geometry,
) -> Vec<MitigationAction> {
    let mut buf = ActionBuf::new();
    mitigation.on_activate(addr, geom, &mut buf);
    buf.actions().to_vec()
}
