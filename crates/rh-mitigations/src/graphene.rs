//! Graphene-style counter mitigation (Park et al., MICRO 2020).
//!
//! Graphene tracks the most frequently activated rows with a small table of
//! counters maintained by the Misra–Gries heavy-hitters algorithm: any row
//! activated more than `W / (k + 1)` times in a window of `W` activations is
//! guaranteed a table entry. When a tracked row's estimated count reaches
//! the refresh threshold, its neighbors are refreshed and its counter
//! rewinds, bounding the disturbance any aggressor can accumulate.
//!
//! The counter table is a [`FlatCounterTable`] — a fixed-capacity
//! open-addressing array keyed by the row's device-wide flat index, modeling
//! Graphene's CAM table as the cache-resident hardware structure it is. The
//! pre-optimization `HashMap` form is retained as
//! [`crate::reference::MapGraphene`]; differential tests assert both emit
//! identical action streams.

use crate::table::{FlatCounterTable, Observe};
use crate::{ActionBuf, Mitigation};
use rh_core::{Geometry, RowAddr};

/// Top-k activated-row tracker with threshold-triggered neighbor refresh.
#[derive(Debug, Clone)]
pub struct Graphene {
    /// Maximum tracked rows (table size `k` in Misra–Gries).
    table_size: usize,
    /// Estimated activation count that triggers a victim refresh.
    refresh_threshold: u64,
    /// Victim rows refreshed extend this far from a hot aggressor.
    radius: u32,
    /// Misra–Gries counters, keyed by the row's flat index.
    counters: FlatCounterTable,
    /// Global decrement "spillover" — counts subtracted from all entries.
    spilled: u64,
    refreshes_triggered: u64,
}

impl Graphene {
    pub fn new(table_size: usize, refresh_threshold: u64, radius: u32) -> Self {
        assert!(table_size > 0);
        assert!(refresh_threshold > 0);
        Self {
            table_size,
            refresh_threshold,
            radius,
            counters: FlatCounterTable::new(table_size),
            spilled: 0,
            refreshes_triggered: 0,
        }
    }

    pub fn refreshes_triggered(&self) -> u64 {
        self.refreshes_triggered
    }

    /// Total Misra–Gries spill events (decrement-all passes) so far.
    pub fn spilled(&self) -> u64 {
        self.spilled
    }

    /// Estimated activation count for a row (test/diagnostic hook).
    /// Misra–Gries guarantees `true_count - spilled ≤ estimate ≤ true_count`.
    pub fn estimate(&self, addr: RowAddr, geom: &Geometry) -> u64 {
        self.counters.get(geom.flat_index(addr) as u64)
    }
}

impl Mitigation for Graphene {
    fn name(&self) -> String {
        format!(
            "graphene(k={},t={})",
            self.table_size, self.refresh_threshold
        )
    }

    #[inline]
    fn on_activate(&mut self, addr: RowAddr, geom: &Geometry, out: &mut ActionBuf) {
        let key = geom.flat_index(addr) as u64;
        match self.counters.observe(key, |_| {}) {
            Observe::Tracked(estimate) if estimate >= self.refresh_threshold => {
                // Drop the entry so a persistent aggressor re-triggers only
                // after another `refresh_threshold` activations (and so no
                // zero-count entry can underflow in the decrement pass).
                self.counters.remove(key);
                self.refreshes_triggered += 1;
                for (victim, _) in addr.neighbors(geom, self.radius) {
                    out.refresh_row(victim);
                }
            }
            Observe::Tracked(_) => {}
            Observe::Spilled => self.spilled += 1,
        }
    }

    fn reset(&mut self) {
        self.counters.clear();
        self.spilled = 0;
        self.refreshes_triggered = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect_actions;
    use rh_core::Geometry;

    #[test]
    fn heavy_hitter_triggers_refresh() {
        let geom = Geometry::tiny(64);
        let mut g = Graphene::new(4, 100, 1);
        let aggr = RowAddr::bank_row(0, 32);
        let mut refreshed = false;
        for _ in 0..100 {
            if !collect_actions(&mut g, aggr, &geom).is_empty() {
                refreshed = true;
            }
        }
        assert!(refreshed, "lone heavy hitter must trigger within threshold");
        assert_eq!(g.refreshes_triggered(), 1);
    }

    #[test]
    fn heavy_hitter_survives_background_noise() {
        let geom = Geometry::tiny(1024);
        // Table of 8; aggressor takes ~1/4 of traffic, noise spreads the rest
        // over 512 cold rows, so Misra–Gries must keep the aggressor tracked.
        let mut g = Graphene::new(8, 200, 1);
        let aggr = RowAddr::bank_row(0, 500);
        let mut triggers = 0;
        for i in 0u32..4000 {
            if i % 4 == 0 {
                if !collect_actions(&mut g, aggr, &geom).is_empty() {
                    triggers += 1;
                }
            } else {
                collect_actions(&mut g, RowAddr::bank_row(0, i % 512), &geom);
            }
        }
        assert!(triggers >= 1, "aggressor escaped the counter table");
    }

    #[test]
    fn estimate_never_exceeds_true_count() {
        let geom = Geometry::tiny(64);
        let mut g = Graphene::new(2, 1_000_000, 1);
        let a = RowAddr::bank_row(0, 1);
        for i in 0u32..300 {
            collect_actions(&mut g, a, &geom);
            collect_actions(&mut g, RowAddr::bank_row(0, 2 + (i % 40)), &geom);
        }
        assert!(g.estimate(a, &geom) <= 300);
        // Misra–Gries error bound: undercount ≤ total decrements.
        assert!(g.estimate(a, &geom) + g.spilled() >= 300);
    }

    #[test]
    fn rewind_retriggers_persistent_aggressor() {
        let geom = Geometry::tiny(64);
        let mut g = Graphene::new(4, 50, 1);
        let aggr = RowAddr::bank_row(0, 10);
        for _ in 0..200 {
            collect_actions(&mut g, aggr, &geom);
        }
        assert_eq!(g.refreshes_triggered(), 4, "expected a trigger per 50 acts");
    }
}
