//! Differential fuzzing of the SoA settle kernels against the eager
//! reference device.
//!
//! Three devices consume the same seeded random operation stream —
//! `EagerDeviceState` (definitional per-activation ground truth), the SoA
//! `DeviceState` pinned to the scalar kernel, and (when the CPU has it) the
//! SoA `DeviceState` pinned to the AVX2 kernel — and must agree on every
//! trait-level observable at every checkpoint. The stream mixes single
//! activations, coalesced runs (`activate_repeat`), targeted row refreshes,
//! and full-device refreshes, with activations biased toward a small hot set
//! of aggressor rows so disturbance actually accumulates past thresholds
//! instead of diffusing uniformly.
//!
//! This is the paper-level exactness bar stated in the kernel module docs:
//! the kernels are alternative *schedules* of identical f64 operations, so
//! equality here is exact (`==` on integer counters), not approximate.

use rh_core::{
    avx2_available, DataPattern, Device, DeviceState, DeviceTables, EagerDeviceState, Geometry,
    Kernel, RowAddr, SplitMix64, VictimModelParams,
};

/// One random operation drawn from the fuzz distribution.
#[derive(Debug, Clone, Copy)]
enum Op {
    Activate(RowAddr),
    ActivateRepeat(RowAddr, u64),
    RefreshRow(RowAddr),
    RefreshAll,
}

/// Draw a row address, biased toward a small hot set so hammer counts
/// actually cross `HC_first` within the budget.
fn draw_addr(rng: &mut SplitMix64, geom: &Geometry) -> RowAddr {
    let hot = rng.next_u64() % 100 < 70;
    let row = if hot {
        // Hot set: 8 rows in the middle of bank 0, adjacent enough that
        // their blast radii overlap (double-/many-sided geometry).
        (geom.rows_per_bank / 2 + (rng.next_u64() % 8) as u32) % geom.rows_per_bank
    } else {
        (rng.next_u64() % u64::from(geom.rows_per_bank)) as u32
    };
    RowAddr {
        channel: 0,
        rank: 0,
        bank: (rng.next_u64() % u64::from(geom.banks)) as u32,
        row,
    }
}

fn draw_op(rng: &mut SplitMix64, geom: &Geometry) -> Op {
    match rng.next_u64() % 100 {
        // Mostly activations: disturbance only accumulates between refreshes.
        0..=69 => Op::Activate(draw_addr(rng, geom)),
        // Coalesced runs exercise `activate_repeat` with n > 1 directly.
        70..=84 => Op::ActivateRepeat(draw_addr(rng, geom), 1 + rng.next_u64() % 512),
        85..=96 => Op::RefreshRow(draw_addr(rng, geom)),
        _ => Op::RefreshAll,
    }
}

fn apply(device: &mut dyn Device, op: Op) {
    match op {
        Op::Activate(a) => device.activate(a),
        Op::ActivateRepeat(a, n) => device.activate_repeat(a, n),
        Op::RefreshRow(a) => device.refresh_row(a),
        Op::RefreshAll => device.refresh_all(),
    }
}

/// The full trait-observable state of a device.
fn observe(device: &dyn Device) -> (u64, u64, u64, u64) {
    (
        device.total_flips(),
        device.flips_1to0(),
        device.flips_0to1(),
        device.refreshes_issued(),
    )
}

/// Run one seeded fuzz case: identical op streams through the eager
/// reference, the scalar SoA device, and (if available) the AVX2 SoA
/// device, with observables compared at every checkpoint.
fn fuzz_case(pattern: DataPattern, seed: u64) {
    let geom = Geometry {
        channels: 1,
        ranks: 1,
        banks: 2,
        rows_per_bank: 128,
    };
    let params = VictimModelParams {
        data_pattern: pattern,
        ..VictimModelParams::with_hc_first(600)
    };
    let device_seed = seed ^ 0xD1CE;

    let mut eager = EagerDeviceState::new(geom, params, device_seed);
    let tables = DeviceTables::shared(geom, params, device_seed).unwrap();
    let mut scalar = DeviceState::with_tables_and_kernel(tables.clone(), Kernel::Scalar);
    let mut avx2 =
        avx2_available().then(|| DeviceState::with_tables_and_kernel(tables, Kernel::Avx2));

    let mut rng = SplitMix64::new(seed);
    let ops = 4_000;
    for i in 0..ops {
        let op = draw_op(&mut rng, &geom);
        apply(&mut eager, op);
        apply(&mut scalar, op);
        if let Some(avx2) = avx2.as_mut() {
            apply(avx2, op);
        }
        // Checkpoint often enough to localize a divergence, cheaply enough
        // to keep the suite fast.
        if i % 257 == 0 || i + 1 == ops {
            let want = observe(&eager);
            assert_eq!(
                observe(&scalar),
                want,
                "scalar kernel diverged from eager reference \
                 (pattern {pattern:?}, seed {seed:#x}, op {i}: {op:?})"
            );
            if let Some(avx2) = avx2.as_ref() {
                assert_eq!(
                    observe(avx2),
                    want,
                    "AVX2 kernel diverged from eager reference \
                     (pattern {pattern:?}, seed {seed:#x}, op {i}: {op:?})"
                );
            }
        }
    }
    // A fuzz run that never flips anything proves nothing about the settle
    // path — the hot-set bias and low HC_first exist to make this hold.
    assert!(
        eager.total_flips() > 0,
        "fuzz case induced no flips (pattern {pattern:?}, seed {seed:#x}); \
         the op distribution no longer stresses the settle path"
    );
}

#[test]
fn kernels_match_eager_reference_on_legacy_pattern() {
    for seed in [0x5EED_0001, 0x5EED_0002, 0x5EED_0003] {
        fuzz_case(DataPattern::Legacy, seed);
    }
}

#[test]
fn kernels_match_eager_reference_on_solid_pattern() {
    for seed in [0x50_1D_01, 0x50_1D_02, 0x50_1D_03] {
        fuzz_case(DataPattern::Solid, seed);
    }
}

#[test]
fn kernels_match_eager_reference_on_checkerboard_pattern() {
    for seed in [0xC4EC_4001, 0xC4EC_4002, 0xC4EC_4003] {
        fuzz_case(DataPattern::Checkerboard, seed);
    }
}

#[test]
fn kernels_match_eager_reference_on_row_stripe_pattern() {
    for seed in [0x57_21_9E_01, 0x57_21_9E_02, 0x57_21_9E_03] {
        fuzz_case(DataPattern::RowStripe, seed);
    }
}
