//! Swappable leak-accumulate-and-settle kernels over the SoA row state.
//!
//! One activation (or a coalesced run of `n` identical activations) touches
//! a contiguous *blast window* of rows around the aggressor. With the row
//! state split into parallel slabs ([`crate::DeviceState`] holds
//! `charge`/`epoch`/`threshold`/`flips`/`meta` vectors), that window is a
//! handful of contiguous lanes per field, and the per-lane update is the
//! same short dataflow everywhere:
//!
//! 1. **epoch-resolve** — a lane whose last-write epoch predates the device
//!    epoch holds a stale (pre-refresh) charge that must read as zero;
//! 2. **accumulate** — add the lane's distance-attenuated quantum `n`
//!    times, keeping the partial sum register-resident (the fp addition
//!    order per lane is exactly the order `n` separate activations would
//!    have used, which is what keeps coalescing bit-exact);
//! 3. **settle** — the rare branch: once charge crosses the lane's
//!    threshold, deterministically reconcile its recorded flips.
//!
//! Two interchangeable implementations sit behind the [`Kernel`] dispatch,
//! selected once per device:
//!
//! * [`Kernel::Scalar`] — straight-line safe Rust, written so the
//!   autovectorizer can do what it likes with steps 1–2; also the fallback
//!   on non-x86-64 targets.
//! * [`Kernel::Avx2`] — `std::arch::x86_64` intrinsics processing four
//!   `f64` lanes per step: epoch compare + blend to zero stale lanes, `n`
//!   vector adds, then a threshold compare whose movemask peels only the
//!   (rare) crossing lanes into the scalar settle tail. Guarded by
//!   `is_x86_feature_detected!` at selection time — never chosen on a CPU
//!   without AVX2 — and bit-identical to the scalar kernel by
//!   construction: the same adds in the same per-lane order, and zeroing a
//!   stale lane by masking produces the same `+0.0` the scalar path
//!   stores.
//!
//! Selection policy ([`KernelChoice::resolve`]): `--kernel auto` picks AVX2
//! when the CPU supports it, else scalar; `--kernel scalar`/`avx2` pin a
//! kernel (pinning AVX2 on a CPU without it is an error, not a silent
//! fallback); and the `RH_FORCE_SCALAR` environment variable (any value
//! except empty or `0`) forces the scalar kernel over *any* choice — the CI
//! fallback-coverage hook. The choice can never affect results — the
//! differential fuzz tests assert scalar ≡ AVX2 ≡ the eager reference bit
//! for bit — only throughput.

use crate::device::{ANTI_CELL_BIT, VULN_MASK};

/// A resolved settle kernel. Selected once per device ([`KernelChoice`]
/// does the policy); the per-activation dispatch is a two-way match on this
/// tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// Safe autovectorization-friendly scalar loop (and the only kernel on
    /// non-x86-64 targets).
    Scalar,
    /// AVX2 intrinsics, 4 × `f64` lanes per step. Only ever constructed via
    /// [`KernelChoice::resolve`] on a CPU that reports AVX2.
    Avx2,
}

impl Kernel {
    /// Stable identifier used in CLI flags and benchmark reports.
    pub fn name(self) -> &'static str {
        match self {
            Self::Scalar => "scalar",
            Self::Avx2 => "avx2",
        }
    }

    /// The kernel `--kernel auto` resolves to on this machine (AVX2 when
    /// detected, unless `RH_FORCE_SCALAR` is set).
    pub fn auto() -> Self {
        KernelChoice::Auto
            .resolve()
            .expect("auto selection always resolves")
    }
}

impl std::fmt::Display for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The user-facing kernel request (`--kernel {auto,scalar,avx2}`), resolved
/// to a concrete [`Kernel`] once per invocation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum KernelChoice {
    /// Pick the fastest kernel the CPU supports (the default).
    #[default]
    Auto,
    /// Pin the scalar kernel.
    Scalar,
    /// Pin the AVX2 kernel; an error on CPUs without AVX2.
    Avx2,
}

impl KernelChoice {
    /// Stable identifier (CLI flag value).
    pub fn name(self) -> &'static str {
        match self {
            Self::Auto => "auto",
            Self::Scalar => "scalar",
            Self::Avx2 => "avx2",
        }
    }

    /// Resolve the request against the running CPU and the
    /// `RH_FORCE_SCALAR` override (which wins over everything, including an
    /// explicit `avx2` request — it exists so CI can force the fallback
    /// kernel through the whole stack without editing workflows per flag).
    pub fn resolve(self) -> Result<Kernel, String> {
        if force_scalar(std::env::var("RH_FORCE_SCALAR").ok().as_deref()) {
            return Ok(Kernel::Scalar);
        }
        match self {
            Self::Scalar => Ok(Kernel::Scalar),
            Self::Auto => Ok(if avx2_available() {
                Kernel::Avx2
            } else {
                Kernel::Scalar
            }),
            Self::Avx2 => {
                if avx2_available() {
                    Ok(Kernel::Avx2)
                } else {
                    Err("--kernel avx2 requested but this CPU does not report AVX2 \
                         (use --kernel auto or scalar)"
                        .to_string())
                }
            }
        }
    }
}

impl std::str::FromStr for KernelChoice {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(Self::Auto),
            "scalar" => Ok(Self::Scalar),
            "avx2" => Ok(Self::Avx2),
            other => Err(format!(
                "unknown kernel '{other}' (expected one of: auto, scalar, avx2)"
            )),
        }
    }
}

impl std::fmt::Display for KernelChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// `RH_FORCE_SCALAR` semantics: set and neither empty nor `0`.
fn force_scalar(value: Option<&str>) -> bool {
    matches!(value, Some(v) if !v.is_empty() && v != "0")
}

/// Whether the running CPU supports the AVX2 kernel.
pub fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Device-wide tallies one settle pass accumulates, applied to the
/// [`crate::DeviceState`] counters after the window walk (so the kernels
/// never re-borrow the device).
#[derive(Debug, Default)]
pub(crate) struct VictimTally {
    pub flips: u64,
    pub flips_1to0: u64,
    pub flips_0to1: u64,
    pub rows_flipped: u64,
}

/// One blast window viewed through the SoA slabs: the same contiguous lane
/// range sliced out of every per-row vector, plus the matching slice of the
/// precomputed quanta template (the aggressor lane carries quantum `0.0`,
/// so the kernels need no skip-the-aggressor branch).
///
/// `floor` is the device-wide threshold floor (the minimum of the whole
/// threshold slab). The accumulate pass compares charges against it instead
/// of loading per-lane thresholds: since `floor <= t` for every lane, a
/// lane crossing its real threshold always crosses the floor too, so the
/// settle sweep (which re-checks `c >= t` per lane) can never be skipped
/// when it would have acted. A false floor trip only costs a redundant
/// sweep. The point is cache traffic: the overwhelmingly common
/// cold-window case (benign traffic over the whole device) touches just
/// the `charge` and `epoch` slabs — the `threshold`/`meta`/`flips` slabs
/// stay untouched unless a crossing is actually plausible.
pub(crate) struct Window<'a> {
    pub charge: &'a mut [f64],
    pub epoch: &'a mut [u64],
    pub threshold: &'a [f64],
    pub flips: &'a mut [u32],
    pub meta: &'a [u32],
    pub quanta: &'a [f64],
    pub floor: f64,
}

impl Window<'_> {
    fn len(&self) -> usize {
        debug_assert_eq!(self.charge.len(), self.epoch.len());
        debug_assert_eq!(self.charge.len(), self.threshold.len());
        debug_assert_eq!(self.charge.len(), self.flips.len());
        debug_assert_eq!(self.charge.len(), self.meta.len());
        debug_assert_eq!(self.charge.len(), self.quanta.len());
        self.charge.len()
    }
}

/// The settle tail: deterministically reconcile a lane's recorded flips
/// with its (threshold-crossing) charge. Shared verbatim by both kernels —
/// and semantically identical to the eager reference's `settle_flips` — so
/// the kernels can only disagree about *when* it runs, never about what it
/// does; since expected flips are a monotone function of charge, running it
/// once at a run's final charge equals running it after every activation.
#[inline]
fn settle_lane(
    c: f64,
    t: f64,
    meta: u32,
    flips: &mut u32,
    hc_first: u64,
    flip_slope: f64,
    tally: &mut VictimTally,
) {
    let vuln = meta & VULN_MASK;
    if vuln == 0 {
        // No charged cells under this pattern/orientation: nothing to flip.
        return;
    }
    let overshoot = (c - t) / hc_first as f64;
    let expected = 1 + (overshoot * flip_slope * vuln as f64) as u32;
    let expected = expected.min(vuln);
    if expected > *flips {
        if *flips == 0 {
            tally.rows_flipped += 1;
        }
        let added = (expected - *flips) as u64;
        tally.flips += added;
        if meta & ANTI_CELL_BIT != 0 {
            tally.flips_0to1 += added;
        } else {
            tally.flips_1to0 += added;
        }
        *flips = expected;
    }
}

/// The settle sweep both kernels share after their accumulate pass: walk
/// the window once more and reconcile the (rare) threshold-crossing lanes.
/// Lanes are independent, so splitting accumulate and settle into two
/// passes cannot change any value — it only keeps the branch out of the
/// accumulate loop so that loop stays a straight-line vector body.
#[inline(always)]
fn settle_window(w: &mut Window<'_>, hc_first: u64, flip_slope: f64, tally: &mut VictimTally) {
    for (((&c, &t), &meta), flips) in w
        .charge
        .iter()
        .zip(w.threshold.iter())
        .zip(w.meta.iter())
        .zip(w.flips.iter_mut())
    {
        if c >= t {
            settle_lane(c, t, meta, flips, hc_first, flip_slope, tally);
        }
    }
}

/// Scalar kernel: a bounds-check-free zipped accumulate pass the
/// autovectorizer is free to widen (the floor check folds into a running
/// max, a clean fp reduction), then the shared settle sweep, entered only
/// when some lane plausibly crossed. The single-activation case (`n == 1`,
/// every non-coalesced workload) skips the repeat loop entirely.
pub(crate) fn leak_window_scalar(
    mut w: Window<'_>,
    n: u64,
    now: u64,
    hc_first: u64,
    flip_slope: f64,
    tally: &mut VictimTally,
) {
    debug_assert!(w.len() > 0);
    let mut peak = f64::NEG_INFINITY;
    if n == 1 {
        for ((c, e), &q) in w.charge.iter_mut().zip(w.epoch.iter_mut()).zip(w.quanta) {
            let base = if *e == now { *c } else { 0.0 };
            *e = now;
            let acc = base + q;
            *c = acc;
            peak = peak.max(acc);
        }
    } else {
        for ((c, e), &q) in w.charge.iter_mut().zip(w.epoch.iter_mut()).zip(w.quanta) {
            let mut acc = if *e == now { *c } else { 0.0 };
            *e = now;
            // Serial adds, never `q * n`: each lane must perform the exact
            // fp addition sequence `n` separate activations would have.
            for _ in 0..n {
                acc += q;
            }
            *c = acc;
            peak = peak.max(acc);
        }
    }
    if peak >= w.floor {
        settle_window(&mut w, hc_first, flip_slope, tally);
    }
}

/// AVX2 kernel: four `f64` lanes per step, scalar remainder and settle
/// tail.
///
/// # Safety
/// The caller must have verified the CPU supports AVX2
/// ([`avx2_available`]); [`KernelChoice::resolve`] is the only constructor
/// of [`Kernel::Avx2`], and it checks.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn leak_window_avx2(
    mut w: Window<'_>,
    n: u64,
    now: u64,
    hc_first: u64,
    flip_slope: f64,
    tally: &mut VictimTally,
) {
    use std::arch::x86_64::*;
    let len = w.len();
    let now_v = _mm256_set1_epi64x(now as i64);
    let floor_v = _mm256_set1_pd(w.floor);
    // Accumulate pass: 4 lanes per step, comparing against the broadcast
    // device-wide threshold floor (see [`Window::floor`]) so the pass never
    // touches the `threshold` slab; the movemask accumulated across the
    // window gates the settle sweep, which re-checks real thresholds.
    let mut crossed_any = 0u32;
    let mut i = 0;
    while i + 4 <= len {
        // Epoch-resolve: lanes whose last-write epoch matches compare to
        // all-ones; masking the charge with that zeroes exactly the stale
        // lanes (to `+0.0`, the same value the scalar path stores).
        let e = _mm256_loadu_si256(w.epoch.as_ptr().add(i) as *const __m256i);
        let fresh = _mm256_cmpeq_epi64(e, now_v);
        let mut c = _mm256_loadu_pd(w.charge.as_ptr().add(i));
        c = _mm256_and_pd(c, _mm256_castsi256_pd(fresh));
        // Every lane is current after this write (an unconditional store is
        // identical to the scalar path's per-lane stamp).
        _mm256_storeu_si256(w.epoch.as_mut_ptr().add(i) as *mut __m256i, now_v);
        // Accumulate: n serial vector adds keep each lane's fp addition
        // order identical to n separate scalar activations.
        let q = _mm256_loadu_pd(w.quanta.as_ptr().add(i));
        for _ in 0..n {
            c = _mm256_add_pd(c, q);
        }
        _mm256_storeu_pd(w.charge.as_mut_ptr().add(i), c);
        crossed_any |= _mm256_movemask_pd(_mm256_cmp_pd::<_CMP_GE_OQ>(c, floor_v)) as u32;
        i += 4;
    }
    // Remainder lanes (windows at bank edges, or the odd lane of the
    // radius-2 five-lane window), scalar accumulate.
    while i < len {
        let q = *w.quanta.get_unchecked(i);
        let e = w.epoch.get_unchecked_mut(i);
        let mut acc = if *e == now {
            *w.charge.get_unchecked(i)
        } else {
            0.0
        };
        *e = now;
        for _ in 0..n {
            acc += q;
        }
        *w.charge.get_unchecked_mut(i) = acc;
        crossed_any |= u32::from(acc >= w.floor);
        i += 1;
    }
    if crossed_any != 0 {
        settle_window(&mut w, hc_first, flip_slope, tally);
    }
}

/// Dispatch a window through the selected kernel.
#[inline]
pub(crate) fn leak_window(
    kernel: Kernel,
    w: Window<'_>,
    n: u64,
    now: u64,
    hc_first: u64,
    flip_slope: f64,
    tally: &mut VictimTally,
) {
    match kernel {
        Kernel::Scalar => leak_window_scalar(w, n, now, hc_first, flip_slope, tally),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Kernel::Avx2 is only constructed by KernelChoice::resolve
        // after is_x86_feature_detected!("avx2") reported support.
        Kernel::Avx2 => unsafe { leak_window_avx2(w, n, now, hc_first, flip_slope, tally) },
        #[cfg(not(target_arch = "x86_64"))]
        Kernel::Avx2 => leak_window_scalar(w, n, now, hc_first, flip_slope, tally),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn choice_names_round_trip_through_from_str() {
        for c in [KernelChoice::Auto, KernelChoice::Scalar, KernelChoice::Avx2] {
            assert_eq!(c.name().parse::<KernelChoice>().unwrap(), c);
            assert_eq!(c.to_string(), c.name());
        }
        let err = "sse9".parse::<KernelChoice>().unwrap_err();
        assert!(err.contains("unknown kernel 'sse9'"), "{err}");
        assert!(err.contains("auto") && err.contains("avx2"), "{err}");
    }

    #[test]
    fn force_scalar_env_semantics() {
        assert!(!force_scalar(None));
        assert!(!force_scalar(Some("")));
        assert!(!force_scalar(Some("0")));
        assert!(force_scalar(Some("1")));
        assert!(force_scalar(Some("yes")));
    }

    #[test]
    fn scalar_pin_always_resolves_and_auto_never_errors() {
        assert_eq!(KernelChoice::Scalar.resolve().unwrap(), Kernel::Scalar);
        let auto = KernelChoice::Auto.resolve().unwrap();
        assert!(matches!(auto, Kernel::Scalar | Kernel::Avx2));
        assert_eq!(Kernel::auto(), auto);
    }

    #[test]
    fn avx2_pin_matches_cpu_support() {
        // Under RH_FORCE_SCALAR the pin silently resolves to scalar (that
        // is the override's documented job), so only check the unforced
        // behavior when the ambient environment is clean.
        if force_scalar(std::env::var("RH_FORCE_SCALAR").ok().as_deref()) {
            assert_eq!(KernelChoice::Avx2.resolve().unwrap(), Kernel::Scalar);
        } else if avx2_available() {
            assert_eq!(KernelChoice::Avx2.resolve().unwrap(), Kernel::Avx2);
        } else {
            let err = KernelChoice::Avx2.resolve().unwrap_err();
            assert!(err.contains("AVX2"), "{err}");
        }
    }
}
