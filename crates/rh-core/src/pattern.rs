//! Stored data patterns and true-/anti-cell orientation — the Section 5
//! victim model of the ISCA 2020 paper.
//!
//! RowHammer disturbance is not a property of addresses alone: how likely a
//! victim cell is to flip depends on **what the cells store**. The paper's
//! Section 5 measures this two ways:
//!
//! * **Data-pattern dependence** (Section 5.1): the charge difference
//!   between an aggressor cell and its victim drives the disturbance, so
//!   patterns that place *opposite* data in aggressor and victim rows
//!   (row-stripe: `0xFF` rows alternating with `0x00` rows) induce the most
//!   flips, while *uniform* patterns (solid: every cell identical) induce
//!   the fewest — across all three DRAM generations tested.
//! * **True- vs anti-cells** (Section 5.2): a DRAM cell encodes logical
//!   `1` either as a charged capacitor (*true-cell*) or as a discharged one
//!   (*anti-cell*), and real devices mix both orientations region by
//!   region. RowHammer discharges capacitors, so true-cells fail `1 → 0`
//!   and anti-cells fail `0 → 1` — and a cell can only fail at all while it
//!   is *charged*, which couples orientation to the stored pattern.
//!
//! This module is the declarative half of that model: [`DataPattern`] names
//! the initialization patterns the sweep can select, and its methods answer
//! the two questions the device model needs per row:
//!
//! 1. [`DataPattern::coupling_factor`] — how strongly does an aggressor at
//!    distance `d` couple into a victim, relative to the legacy
//!    (pattern-agnostic) model? This is a pure function of the distance's
//!    parity, because every pattern here is row-periodic with period ≤ 2,
//!    so it folds into the precomputed attenuation table
//!    (`DeviceTables`) at construction — zero per-activation cost.
//! 2. [`DataPattern::vulnerable_cells`] — how many of a row's cells are
//!    charged (and therefore flippable), given the row's stored data and
//!    its true-/anti-cell orientation? This is precomputed per row into the
//!    device's `meta` slab, so the flip-settling kernels read it with one
//!    load alongside the charge and threshold lanes.
//!
//! The per-row orientation itself is drawn in `DeviceTables` from a
//! dedicated RNG stream derived from the device seed (never from the
//! threshold stream, so enabling the victim model does not perturb legacy
//! thresholds), making the true-/anti-cell layout a pure function of the
//! device seed — asserted by tests.
//!
//! [`DataPattern::Legacy`] is the pre-Section-5 model: factor 1.0 at every
//! distance and every cell vulnerable. Sweeps that do not opt into the new
//! axes run byte-identically to the previous engine.

use std::str::FromStr;

/// Relative coupling strength when aggressor and victim cells store
/// *opposite* data (the worst case the paper's row-stripe pattern
/// constructs): the aggressor wordline swing works against the victim's
/// stored charge.
const OPPOSITE_DATA_FACTOR: f64 = 1.25;

/// Relative coupling strength when aggressor and victim cells store the
/// *same* data (the solid pattern everywhere): part of the disturbance is
/// neutralized, so the victim tolerates more hammers.
const SAME_DATA_FACTOR: f64 = 0.75;

/// Relative coupling strength when the aggressor/victim data relationship
/// alternates cell by cell along the row (the checkerboard pattern at odd
/// distances): a victim cell sees its directly adjacent (opposite-data)
/// neighbor partially cancelled by the in-phase diagonal cells, landing
/// between the solid and row-stripe extremes — which is where the paper's
/// Section 5.1 places the checkered pattern.
const MIXED_DATA_FACTOR: f64 = 1.0;

/// The stored data pattern a sweep initializes every row with.
///
/// Patterns are row-periodic with period ≤ 2, described by the value each
/// *row* stores (per the paper's test methodology, the attacker writes the
/// pattern across the whole hammered region before hammering):
///
/// | pattern        | row content                           | worst case for |
/// |----------------|---------------------------------------|----------------|
/// | `Legacy`       | (pattern-agnostic pre-Section-5 model)| —              |
/// | `Solid`        | every cell `1`                        | fewest flips   |
/// | `Checkerboard` | bits alternate within and across rows | intermediate   |
/// | `RowStripe`    | all-`1` rows alternate with all-`0`   | most flips     |
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DataPattern {
    /// The pre-Section-5 model: unit coupling factor, every cell
    /// vulnerable. Selecting only this pattern reproduces the previous
    /// engine bit for bit.
    Legacy,
    /// Every cell stores `1`: aggressors and victims always agree, so
    /// coupling is weakest, and only rows whose cells are charged when
    /// storing `1` (true-cell rows) can flip.
    Solid,
    /// Classic checkerboard: bits alternate along the row and the phase
    /// flips every row. Half of every row's cells are charged regardless
    /// of orientation, and the within-row alternation leaves odd-distance
    /// coupling between the solid and row-stripe extremes.
    Checkerboard,
    /// All-`1` rows alternating with all-`0` rows: odd-distance neighbors
    /// store opposite data (strongest coupling), and a row is either fully
    /// charged or fully discharged depending on its parity and orientation.
    RowStripe,
}

impl DataPattern {
    /// Every selectable pattern, in canonical (CLI listing) order.
    pub const ALL: [DataPattern; 4] = [
        DataPattern::Legacy,
        DataPattern::Solid,
        DataPattern::Checkerboard,
        DataPattern::RowStripe,
    ];

    /// Stable identifier used in CLI flags and result tables.
    pub fn name(self) -> &'static str {
        match self {
            Self::Legacy => "legacy",
            Self::Solid => "solid",
            Self::Checkerboard => "checkerboard",
            Self::RowStripe => "rowstripe",
        }
    }

    /// Multiplier applied to the legacy coupling strength for a victim at
    /// aggressor distance `d ≥ 1`.
    ///
    /// A pure function of the distance's parity (every pattern is
    /// row-periodic with period ≤ 2), so `DeviceTables` folds it into the
    /// precomputed attenuation table and the per-activation path pays
    /// nothing for it.
    pub fn coupling_factor(self, distance: u32) -> f64 {
        match self {
            Self::Legacy => 1.0,
            // Aggressor and victim rows store identical data everywhere.
            Self::Solid => SAME_DATA_FACTOR,
            // Anti-phase rows at odd distance, in-phase at even — but the
            // within-row alternation partially cancels the odd-distance
            // opposition (see MIXED_DATA_FACTOR).
            Self::Checkerboard => {
                if distance % 2 == 1 {
                    MIXED_DATA_FACTOR
                } else {
                    SAME_DATA_FACTOR
                }
            }
            // Whole rows oppose at odd distance: the paper's worst case.
            Self::RowStripe => {
                if distance % 2 == 1 {
                    OPPOSITE_DATA_FACTOR
                } else {
                    SAME_DATA_FACTOR
                }
            }
        }
    }

    /// Number of a row's `cells_per_row` cells that are *charged* — and
    /// therefore flippable — given the row's in-bank index and its
    /// true-/anti-cell orientation (`anti_cell`).
    ///
    /// A true-cell is charged when it stores `1`; an anti-cell when it
    /// stores `0`. RowHammer can only discharge a charged cell, so this is
    /// the row's flippable-cell budget, and every flip in the row moves in
    /// one direction: `1 → 0` for true-cell rows, `0 → 1` for anti-cell
    /// rows.
    pub fn vulnerable_cells(self, cells_per_row: u32, row: u32, anti_cell: bool) -> u32 {
        match self {
            Self::Legacy => cells_per_row,
            // All cells store `1`: charged iff the row is true-cell.
            Self::Solid => {
                if anti_cell {
                    0
                } else {
                    cells_per_row
                }
            }
            // Half the cells store `1`, half `0` — half are charged under
            // either orientation.
            Self::Checkerboard => cells_per_row / 2,
            // Even rows store all `1`, odd rows all `0`: the row is fully
            // charged exactly when its stored value matches what its
            // orientation keeps charged.
            Self::RowStripe => {
                let stores_ones = row.is_multiple_of(2);
                if stores_ones != anti_cell {
                    cells_per_row
                } else {
                    0
                }
            }
        }
    }
}

impl FromStr for DataPattern {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "legacy" => Ok(Self::Legacy),
            "solid" => Ok(Self::Solid),
            "checkerboard" => Ok(Self::Checkerboard),
            "rowstripe" => Ok(Self::RowStripe),
            other => Err(format!(
                "unknown data pattern '{other}' (expected one of: legacy, solid, \
                 checkerboard, rowstripe)"
            )),
        }
    }
}

impl std::fmt::Display for DataPattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_through_from_str() {
        for p in DataPattern::ALL {
            assert_eq!(p.name().parse::<DataPattern>().unwrap(), p);
            assert_eq!(p.to_string(), p.name());
        }
    }

    #[test]
    fn unknown_pattern_is_rejected_with_the_valid_list() {
        let err = "rowstripes".parse::<DataPattern>().unwrap_err();
        assert!(err.contains("unknown data pattern 'rowstripes'"), "{err}");
        assert!(
            err.contains("legacy") && err.contains("checkerboard"),
            "{err}"
        );
    }

    #[test]
    fn legacy_is_the_identity_model() {
        for d in 1..=6 {
            assert_eq!(DataPattern::Legacy.coupling_factor(d), 1.0);
        }
        for row in 0..4 {
            for anti in [false, true] {
                assert_eq!(DataPattern::Legacy.vulnerable_cells(8192, row, anti), 8192);
            }
        }
    }

    #[test]
    fn coupling_orders_patterns_as_in_section_5() {
        assert_eq!(
            DataPattern::RowStripe.coupling_factor(1),
            OPPOSITE_DATA_FACTOR
        );
        assert_eq!(DataPattern::RowStripe.coupling_factor(2), SAME_DATA_FACTOR);
        assert_eq!(
            DataPattern::RowStripe.coupling_factor(3),
            OPPOSITE_DATA_FACTOR
        );
        assert_eq!(
            DataPattern::Checkerboard.coupling_factor(1),
            MIXED_DATA_FACTOR
        );
        assert_eq!(
            DataPattern::Checkerboard.coupling_factor(2),
            SAME_DATA_FACTOR
        );
        assert_eq!(DataPattern::Solid.coupling_factor(1), SAME_DATA_FACTOR);
        assert_eq!(DataPattern::Solid.coupling_factor(2), SAME_DATA_FACTOR);
        // Distance-1 coupling strictly orders solid < checkerboard <
        // rowstripe — the Section 5.1 pattern ordering.
        assert!(
            DataPattern::Solid.coupling_factor(1) < DataPattern::Checkerboard.coupling_factor(1)
        );
        assert!(
            DataPattern::Checkerboard.coupling_factor(1)
                < DataPattern::RowStripe.coupling_factor(1)
        );
    }

    #[test]
    fn solid_charges_only_true_cell_rows() {
        assert_eq!(DataPattern::Solid.vulnerable_cells(100, 7, false), 100);
        assert_eq!(DataPattern::Solid.vulnerable_cells(100, 7, true), 0);
    }

    #[test]
    fn checkerboard_charges_half_of_every_row() {
        for row in 0..4 {
            for anti in [false, true] {
                assert_eq!(
                    DataPattern::Checkerboard.vulnerable_cells(100, row, anti),
                    50
                );
            }
        }
    }

    #[test]
    fn rowstripe_charge_depends_on_parity_and_orientation() {
        // Even rows store 1s: charged for true-cells only.
        assert_eq!(DataPattern::RowStripe.vulnerable_cells(100, 0, false), 100);
        assert_eq!(DataPattern::RowStripe.vulnerable_cells(100, 0, true), 0);
        // Odd rows store 0s: charged for anti-cells only.
        assert_eq!(DataPattern::RowStripe.vulnerable_cells(100, 1, false), 0);
        assert_eq!(DataPattern::RowStripe.vulnerable_cells(100, 1, true), 100);
    }
}
