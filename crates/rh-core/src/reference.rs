//! Retained eager-zeroing reference device — the pre-optimization semantics,
//! kept as an executable specification.
//!
//! [`EagerDeviceState`] is the device model as it stood before the hot-path
//! rework: `refresh_all` eagerly zeroes every row's charge (O(total_rows)
//! per call), thresholds are re-derived at every construction, coupling
//! attenuation is computed with `powi` per victim per activation, and
//! `flipped_rows` is an end-of-run full-device scan. It exists for two
//! consumers:
//!
//! * **Differential tests** (below): seeded random action sequences driven
//!   through both implementations must produce identical flip counts,
//!   charges, and refresh tallies — the proof that epoch-based lazy refresh
//!   is an observational no-op.
//! * **The benchmark harness** (`rh-cli bench`): the "before" side of the
//!   before/after throughput comparison runs the real experiment loop over
//!   this device, so the reported speedup measures exactly the hot-path
//!   changes and the equivalence check re-runs on every benchmark.
//!
//! The Section 5 victim model (data patterns, true-/anti-cells, on-die
//! ECC) is implemented here in the same eager, straight-line style —
//! per-victim `powi` times the pattern factor, per-row orientation/budget
//! vectors consulted at settle time — so the differential tests extend to
//! the new axes: both devices must agree on the 1→0 / 0→1 split and the
//! post-ECC counts too.

use crate::device::{Device, VictimModelParams, CELL_ORIENTATION_STREAM};
use crate::ecc;
use crate::geometry::{Geometry, RowAddr};
use crate::rng::{derive_seed, SplitMix64};

/// Pre-optimization device model: eager refresh, per-construction threshold
/// derivation, per-activation `powi`, full-scan flip-row counting.
#[derive(Debug, Clone)]
pub struct EagerDeviceState {
    geom: Geometry,
    params: VictimModelParams,
    seed: u64,
    charge: Vec<f64>,
    threshold: Vec<f64>,
    acts: Vec<u64>,
    flips: Vec<u32>,
    /// Per-row true-/anti-cell orientation (true = anti-cell, flips 0→1).
    anti: Vec<bool>,
    /// Per-row charged-cell budget under the selected data pattern.
    vuln: Vec<u32>,
    total_flips: u64,
    total_activations: u64,
    refreshes_issued: u64,
    flips_1to0: u64,
    flips_0to1: u64,
}

impl EagerDeviceState {
    /// Derives thresholds in full on every call — deliberately, as the
    /// pre-optimization engine did per cell.
    pub fn new(geom: Geometry, params: VictimModelParams, seed: u64) -> Self {
        geom.validate()
            .unwrap_or_else(|e| panic!("invalid device geometry: {e}"));
        let n = geom.total_rows() as usize;
        let mut rng = SplitMix64::new(seed);
        let threshold = (0..n)
            .map(|_| params.hc_first as f64 * (1.0 + params.threshold_jitter * rng.next_f64()))
            .collect();
        // Same orientation stream as the optimized tables: the layout is a
        // pure function of the device seed, so both implementations agree.
        let mut orient_rng = SplitMix64::new(derive_seed(seed, &[CELL_ORIENTATION_STREAM]));
        let anti: Vec<bool> = (0..n).map(|_| orient_rng.next_u64() & 1 == 1).collect();
        let vuln = anti
            .iter()
            .enumerate()
            .map(|(i, &a)| {
                params.data_pattern.vulnerable_cells(
                    params.cells_per_row,
                    i as u32 % geom.rows_per_bank,
                    a,
                )
            })
            .collect();
        Self {
            geom,
            params,
            seed,
            charge: vec![0.0; n],
            threshold,
            acts: vec![0; n],
            flips: vec![0; n],
            anti,
            vuln,
            total_flips: 0,
            total_activations: 0,
            refreshes_issued: 0,
            flips_1to0: 0,
            flips_0to1: 0,
        }
    }

    /// Accumulated charge of a row (test/diagnostic hook).
    pub fn charge_of(&self, addr: RowAddr) -> f64 {
        self.charge[self.geom.flat_index(addr)]
    }

    fn settle_flips(&mut self, idx: usize) {
        let c = self.charge[idx];
        let t = self.threshold[idx];
        if c < t {
            return;
        }
        let vuln = self.vuln[idx];
        if vuln == 0 {
            return;
        }
        let overshoot = (c - t) / self.params.hc_first as f64;
        let expected = 1 + (overshoot * self.params.flip_slope * vuln as f64) as u32;
        let expected = expected.min(vuln);
        if expected > self.flips[idx] {
            let added = (expected - self.flips[idx]) as u64;
            self.total_flips += added;
            if self.anti[idx] {
                self.flips_0to1 += added;
            } else {
                self.flips_1to0 += added;
            }
            self.flips[idx] = expected;
        }
    }
}

impl Device for EagerDeviceState {
    fn geometry(&self) -> &Geometry {
        &self.geom
    }

    fn params(&self) -> &VictimModelParams {
        &self.params
    }

    fn activate(&mut self, addr: RowAddr) {
        let idx = self.geom.flat_index(addr);
        self.acts[idx] += 1;
        self.total_activations += 1;
        for (victim, dist) in addr.neighbors(&self.geom, self.params.blast_radius) {
            let vi = self.geom.flat_index(victim);
            self.charge[vi] += self.params.coupling_decay.powi(dist as i32 - 1)
                * self.params.data_pattern.coupling_factor(dist);
            self.settle_flips(vi);
        }
    }

    fn refresh_row(&mut self, addr: RowAddr) {
        let idx = self.geom.flat_index(addr);
        self.charge[idx] = 0.0;
        self.refreshes_issued += 1;
    }

    /// Eager O(total_rows) zeroing — the cost the epoch scheme eliminates.
    fn refresh_all(&mut self) {
        for c in &mut self.charge {
            *c = 0.0;
        }
        self.refreshes_issued += self.geom.total_rows();
    }

    fn total_flips(&self) -> u64 {
        self.total_flips
    }

    /// Full-device scan — the cost the incremental counter eliminates.
    fn flipped_rows(&self) -> u64 {
        self.flips.iter().filter(|&&f| f > 0).count() as u64
    }

    fn flips_per_mact(&self) -> f64 {
        if self.total_activations == 0 {
            return 0.0;
        }
        self.total_flips as f64 * 1e6 / self.total_activations as f64
    }

    fn total_activations(&self) -> u64 {
        self.total_activations
    }

    fn refreshes_issued(&self) -> u64 {
        self.refreshes_issued
    }

    fn flips_1to0(&self) -> u64 {
        self.flips_1to0
    }

    fn flips_0to1(&self) -> u64 {
        self.flips_0to1
    }

    /// Same post-run scan as the optimized device ([`crate::ecc`]): ECC is
    /// an observation filter, not a dynamic, so both paths share the spec.
    fn post_ecc_flips(&self) -> Option<u64> {
        let cw = self.params.ecc_codeword_bits;
        if cw == 0 {
            return None;
        }
        Some(ecc::post_ecc_total(
            self.flips.iter().copied(),
            self.params.cells_per_row,
            cw,
            self.seed,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceState;

    /// Drive both implementations through an identical seeded random action
    /// sequence (activations, targeted refreshes, full refreshes) and assert
    /// they agree on every observable at every checkpoint.
    fn differential_run(
        geom: Geometry,
        params: VictimModelParams,
        device_seed: u64,
        ops_seed: u64,
    ) {
        let mut fast = DeviceState::new(geom, params, device_seed);
        let mut eager = EagerDeviceState::new(geom, params, device_seed);
        let mut rng = SplitMix64::new(ops_seed);
        let rows = geom.rows_per_bank as u64;
        for step in 0..30_000u32 {
            let r = rng.next_f64();
            if r < 0.975 {
                // Hammer a small hot set so thresholds are actually crossed
                // between the (rare) full refreshes below.
                let row = (rng.gen_range(4) * 2 + rows / 2 - 4) as u32;
                let addr = RowAddr::bank_row(0, row);
                fast.activate(addr);
                eager.activate(addr);
            } else if r < 0.9995 {
                let addr = RowAddr::bank_row(0, rng.gen_range(rows) as u32);
                fast.refresh_row(addr);
                eager.refresh_row(addr);
            } else {
                fast.refresh_all();
                eager.refresh_all();
            }
            if step % 1_000 == 0 {
                assert_eq!(fast.total_flips(), eager.total_flips(), "step {step}");
            }
        }
        assert_eq!(fast.total_flips(), eager.total_flips());
        assert_eq!(fast.flipped_rows(), eager.flipped_rows());
        assert_eq!(fast.total_activations(), eager.total_activations());
        assert_eq!(fast.refreshes_issued(), eager.refreshes_issued());
        assert_eq!(fast.flips_1to0(), eager.flips_1to0());
        assert_eq!(fast.flips_0to1(), eager.flips_0to1());
        assert_eq!(fast.post_ecc_flips(), eager.post_ecc_flips());
        assert!(fast.total_flips() > 0, "sequence must exercise flips");
        for row in 0..geom.rows_per_bank {
            let addr = RowAddr::bank_row(0, row);
            assert_eq!(
                fast.charge_of(addr).to_bits(),
                eager.charge_of(addr).to_bits(),
                "charge diverged at row {row}"
            );
        }
        // And the incremental counter agrees with its own full scan too.
        assert_eq!(fast.flipped_rows(), fast.flipped_rows_scan());
    }

    #[test]
    fn epoch_refresh_is_observationally_identical_to_eager() {
        let geom = Geometry::tiny(128);
        differential_run(geom, VictimModelParams::with_hc_first(400), 0xC0FFEE, 1);
        differential_run(geom, VictimModelParams::with_hc_first(1200), 7, 2);
    }

    #[test]
    fn differential_holds_with_zero_jitter_and_wide_blast() {
        let geom = Geometry::tiny(256);
        let params = VictimModelParams {
            threshold_jitter: 0.0,
            blast_radius: 4,
            ..VictimModelParams::with_hc_first(600)
        };
        differential_run(geom, params, 99, 3);
    }

    /// Section 5 axes: both implementations must agree on pattern-scaled
    /// coupling, the 1→0 / 0→1 split, and post-ECC counts.
    #[test]
    fn differential_holds_for_every_data_pattern_with_ecc() {
        use crate::pattern::DataPattern;
        let geom = Geometry::tiny(128);
        for (i, pattern) in DataPattern::ALL.into_iter().enumerate() {
            let params = VictimModelParams {
                data_pattern: pattern,
                ecc_codeword_bits: 128,
                ..VictimModelParams::with_hc_first(400)
            };
            differential_run(geom, params, 0xC0FFEE + i as u64, 1 + i as u64);
        }
    }
}
