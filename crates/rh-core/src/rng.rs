//! Deterministic seeded RNG (SplitMix64).
//!
//! The workspace deliberately avoids external crates, and every stochastic
//! component (victim-cell strength, PARA sampling, benign-traffic mixing)
//! must be reproducible from a single `--seed`, so we carry our own small
//! generator. SplitMix64 passes BigCrush for the output sizes we use and is
//! the canonical seeder for larger PRNGs.

/// SplitMix64 pseudo-random generator (Steele, Lea & Flood, OOPSLA 2014).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed. Distinct seeds yield uncorrelated
    /// streams for all practical purposes.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)` built from the top 53 bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Biased coin flip: `true` with probability `p`.
    ///
    /// Exactly one `next_f64` is consumed per call regardless of outcome, so
    /// two generators with the same seed stay in lockstep across different
    /// `p` values — the property the CLI relies on for common-random-number
    /// comparisons across PARA sampling rates.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Uniform integer in `[0, n)`. `n` must be non-zero.
    pub fn gen_range(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Lemire's multiply-shift reduction; bias is < 2^-32 for our n.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// Derive a child seed from a root seed and a coordinate path.
///
/// This is the workspace's single seed-derivation scheme: every experiment
/// cell in a sweep plan obtains the seeds for its stochastic components by
/// mixing the user's root `--seed` with the cell's coordinates (stream kind,
/// workload identity, ...) through SplitMix64's finalizer. Because a seed is
/// a pure function of `(root, coords)` and never of execution order, a sweep
/// sharded across N threads produces bit-identical results to a serial run.
///
/// Coordinates are pre-multiplied by the SplitMix64 increment so that small
/// consecutive integers (the common case: axis indices) land in well-mixed
/// regions of the state space.
pub fn derive_seed(root: u64, coords: &[u64]) -> u64 {
    let mut out = SplitMix64::new(root).next_u64();
    for &c in coords {
        out = SplitMix64::new(out ^ c.wrapping_mul(0x9E37_79B9_7F4A_7C15)).next_u64();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = SplitMix64::new(9);
        for _ in 0..10_000 {
            assert!(r.gen_range(17) < 17);
        }
    }

    #[test]
    fn derive_seed_is_deterministic() {
        assert_eq!(derive_seed(42, &[1, 2, 3]), derive_seed(42, &[1, 2, 3]));
    }

    #[test]
    fn derive_seed_separates_roots_coords_and_order() {
        let base = derive_seed(42, &[1, 2]);
        assert_ne!(base, derive_seed(43, &[1, 2]), "root must matter");
        assert_ne!(base, derive_seed(42, &[1, 3]), "coords must matter");
        assert_ne!(base, derive_seed(42, &[2, 1]), "order must matter");
        assert_ne!(base, derive_seed(42, &[1]), "depth must matter");
    }

    #[test]
    fn derive_seed_spreads_small_coordinates() {
        // Axis indices are small consecutive integers; the derived seeds
        // must still be pairwise distinct.
        let mut seen = std::collections::HashSet::new();
        for stream in 0..8u64 {
            for i in 0..64u64 {
                assert!(seen.insert(derive_seed(7, &[stream, i])));
            }
        }
    }
}
