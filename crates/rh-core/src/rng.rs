//! Deterministic seeded RNG (SplitMix64).
//!
//! The workspace deliberately avoids external crates, and every stochastic
//! component (victim-cell strength, PARA sampling, benign-traffic mixing)
//! must be reproducible from a single `--seed`, so we carry our own small
//! generator. SplitMix64 passes BigCrush for the output sizes we use and is
//! the canonical seeder for larger PRNGs.

/// SplitMix64 pseudo-random generator (Steele, Lea & Flood, OOPSLA 2014).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed. Distinct seeds yield uncorrelated
    /// streams for all practical purposes.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)` built from the top 53 bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Biased coin flip: `true` with probability `p`.
    ///
    /// Exactly one `next_f64` is consumed per call regardless of outcome, so
    /// two generators with the same seed stay in lockstep across different
    /// `p` values — the property the CLI relies on for common-random-number
    /// comparisons across PARA sampling rates.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Uniform integer in `[0, n)`. `n` must be non-zero.
    pub fn gen_range(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Lemire's multiply-shift reduction; bias is < 2^-32 for our n.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = SplitMix64::new(9);
        for _ in 0..10_000 {
            assert!(r.gen_range(17) < 17);
        }
    }
}
