//! # rh-core — DRAM device model
//!
//! Bottom layer of the RowHammer simulation workspace reproducing
//! Kim et al., *"Revisiting RowHammer: An Experimental Analysis of Modern
//! DRAM Devices and Mitigation Techniques"* (ISCA 2020).
//!
//! This crate knows nothing about mitigations or access patterns. It provides:
//!
//! * [`Geometry`] / [`RowAddr`] — channel/rank/bank/row addressing and
//!   row-adjacency math (blast radius, clipped at bank edges);
//! * [`DeviceState`] — per-row activation accounting and a charge-leakage
//!   victim model parameterized by `HC_first` (the minimum hammer count that
//!   induces the first bit flip) and a distance-attenuated blast radius,
//!   with an allocation-free hot path: `Arc`-shared [`DeviceTables`]
//!   (thresholds + attenuation), epoch-based O(1) `refresh_all`, and an
//!   incrementally-maintained flipped-row counter (see `device` module docs);
//! * [`Device`] — the trait the engine drives, implemented by both the
//!   optimized [`DeviceState`] and the retained eager reference
//!   ([`reference::EagerDeviceState`]) that differential tests and the
//!   benchmark harness compare against;
//! * [`Kernel`] / [`KernelChoice`] — the swappable leak-and-settle kernels
//!   over the structure-of-arrays row state (autovectorization-friendly
//!   scalar, runtime-detected AVX2 intrinsics), selectable via
//!   `--kernel {auto,scalar,avx2}` and the `RH_FORCE_SCALAR` override,
//!   never affecting results (see `kernel` module docs);
//! * [`DataPattern`] and [`ecc`] — the Section 5 victim model: stored data
//!   patterns whose aggressor/victim relationship scales coupling,
//!   seed-derived true-/anti-cell orientation (flip direction tracked as
//!   separate 1→0 / 0→1 tallies), and an optional on-die ECC layer that
//!   masks single-bit flips per codeword;
//! * [`SplitMix64`] — a small deterministic seeded RNG so every experiment
//!   in the workspace is exactly reproducible.
//!
//! Upper layers: `rh-mitigations` (policy), `rh-workloads` (access-pattern
//! generators), `rh-cli` (sweep driver, benchmark harness, JSON reporting).

pub mod device;
pub mod ecc;
pub mod geometry;
pub mod kernel;
pub mod pattern;
pub mod reference;
pub mod rng;

pub use device::{Device, DeviceState, DeviceTables, VictimModelParams};
pub use geometry::{Geometry, RowAddr};
pub use kernel::{avx2_available, Kernel, KernelChoice};
pub use pattern::DataPattern;
pub use reference::EagerDeviceState;
pub use rng::{derive_seed, SplitMix64};
