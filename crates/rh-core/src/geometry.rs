//! DRAM addressing: channel / rank / bank / row, plus row-adjacency math.
//!
//! RowHammer disturbance is physically confined to a *blast radius* of a few
//! rows on either side of an aggressor within the same bank (the ISCA 2020
//! paper observes victims up to 6 rows away on the newest chips, with the
//! overwhelming majority at distance 1–2). All adjacency math here clips at
//! bank edges: row 0 has no lower neighbor, the last row no upper neighbor.

/// Static shape of the simulated DRAM device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Geometry {
    pub channels: u32,
    pub ranks: u32,
    pub banks: u32,
    pub rows_per_bank: u32,
}

impl Geometry {
    /// Tiny geometry for unit tests and quick sweeps.
    pub fn tiny(rows_per_bank: u32) -> Self {
        Self {
            channels: 1,
            ranks: 1,
            banks: 1,
            rows_per_bank,
        }
    }

    /// Check that every dimension is at least 1, so downstream row-adjacency
    /// math (`rows_per_bank - 1` clipping) and dense per-row vectors are
    /// well-defined. Device-model constructors and the sweep config both
    /// call this, so a degenerate geometry fails loudly instead of
    /// underflowing deep inside the hot path.
    pub fn validate(&self) -> Result<(), String> {
        for (dim, v) in [
            ("channels", self.channels),
            ("ranks", self.ranks),
            ("banks", self.banks),
            ("rows_per_bank", self.rows_per_bank),
        ] {
            if v == 0 {
                return Err(format!("geometry.{dim} must be at least 1, got 0"));
            }
        }
        Ok(())
    }

    /// Total number of rows across the whole device.
    pub fn total_rows(&self) -> u64 {
        self.channels as u64 * self.ranks as u64 * self.banks as u64 * self.rows_per_bank as u64
    }

    /// Flat index of a row for dense per-row state vectors.
    pub fn flat_index(&self, addr: RowAddr) -> usize {
        debug_assert!(self.contains(addr));
        let bank_linear = (addr.channel as u64 * self.ranks as u64 + addr.rank as u64)
            * self.banks as u64
            + addr.bank as u64;
        (bank_linear * self.rows_per_bank as u64 + addr.row as u64) as usize
    }

    /// Whether an address is inside this geometry.
    pub fn contains(&self, addr: RowAddr) -> bool {
        addr.channel < self.channels
            && addr.rank < self.ranks
            && addr.bank < self.banks
            && addr.row < self.rows_per_bank
    }
}

/// Address of a single DRAM row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RowAddr {
    pub channel: u32,
    pub rank: u32,
    pub bank: u32,
    pub row: u32,
}

impl RowAddr {
    /// Convenience constructor for single-channel single-rank devices.
    pub fn bank_row(bank: u32, row: u32) -> Self {
        Self {
            channel: 0,
            rank: 0,
            bank,
            row,
        }
    }

    /// Same-bank address at `row`.
    pub fn with_row(self, row: u32) -> Self {
        Self { row, ..self }
    }

    /// Rows within `blast_radius` of this aggressor in the same bank,
    /// clipped at bank edges, paired with their absolute distance (≥ 1).
    ///
    /// Ordering is deterministic: ascending row number. Returned as an
    /// iterator because this sits on the per-activation hot path (device
    /// update and every mitigation's observe step).
    pub fn neighbors(
        self,
        geom: &Geometry,
        blast_radius: u32,
    ) -> impl Iterator<Item = (RowAddr, u32)> {
        let row = self.row;
        let lo = row.saturating_sub(blast_radius);
        // Saturating on both sides: an empty bank yields no neighbors
        // (rather than underflowing `rows_per_bank - 1`), and a row near
        // `u32::MAX` cannot overflow past the clip.
        let hi = row
            .saturating_add(blast_radius)
            .min(geom.rows_per_bank.saturating_sub(1));
        (lo..=hi)
            .filter(move |&r| r != row)
            .map(move |r| (self.with_row(r), row.abs_diff(r)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neighbors_interior() {
        let g = Geometry::tiny(100);
        let n = RowAddr::bank_row(0, 50).neighbors(&g, 2);
        let rows: Vec<(u32, u32)> = n.map(|(a, d)| (a.row, d)).collect();
        assert_eq!(rows, vec![(48, 2), (49, 1), (51, 1), (52, 2)]);
    }

    #[test]
    fn neighbors_clip_at_low_edge() {
        let g = Geometry::tiny(100);
        let n = RowAddr::bank_row(0, 0).neighbors(&g, 3);
        let rows: Vec<(u32, u32)> = n.map(|(a, d)| (a.row, d)).collect();
        assert_eq!(rows, vec![(1, 1), (2, 2), (3, 3)]);
    }

    #[test]
    fn neighbors_clip_at_high_edge() {
        let g = Geometry::tiny(100);
        let n = RowAddr::bank_row(0, 99).neighbors(&g, 3);
        let rows: Vec<(u32, u32)> = n.map(|(a, d)| (a.row, d)).collect();
        assert_eq!(rows, vec![(96, 3), (97, 2), (98, 1)]);
    }

    #[test]
    fn neighbors_one_off_edge() {
        let g = Geometry::tiny(8);
        let n = RowAddr::bank_row(0, 1).neighbors(&g, 2);
        let rows: Vec<(u32, u32)> = n.map(|(a, d)| (a.row, d)).collect();
        assert_eq!(rows, vec![(0, 1), (2, 1), (3, 2)]);
    }

    #[test]
    fn neighbors_radius_larger_than_bank() {
        let g = Geometry::tiny(4);
        let n = RowAddr::bank_row(0, 2).neighbors(&g, 10);
        let rows: Vec<u32> = n.map(|(a, _)| a.row).collect();
        assert_eq!(rows, vec![0, 1, 3]);
    }

    #[test]
    fn neighbors_empty_bank_yields_nothing_without_panic() {
        // rows_per_bank == 0 used to underflow `rows_per_bank - 1`.
        let g = Geometry::tiny(0);
        assert_eq!(RowAddr::bank_row(0, 0).neighbors(&g, 2).count(), 0);
        assert_eq!(RowAddr::bank_row(0, 5).neighbors(&g, 2).count(), 0);
    }

    #[test]
    fn validate_names_the_offending_dimension() {
        assert!(Geometry::tiny(64).validate().is_ok());
        let err = Geometry::tiny(0).validate().unwrap_err();
        assert!(err.contains("rows_per_bank"), "got '{err}'");
        let err = Geometry {
            banks: 0,
            ..Geometry::tiny(64)
        }
        .validate()
        .unwrap_err();
        assert!(err.contains("banks"), "got '{err}'");
    }

    #[test]
    fn flat_index_round_trip_distinct() {
        let g = Geometry {
            channels: 2,
            ranks: 2,
            banks: 4,
            rows_per_bank: 8,
        };
        let mut seen = std::collections::HashSet::new();
        for ch in 0..2 {
            for rk in 0..2 {
                for b in 0..4 {
                    for r in 0..8 {
                        let addr = RowAddr {
                            channel: ch,
                            rank: rk,
                            bank: b,
                            row: r,
                        };
                        assert!(seen.insert(g.flat_index(addr)));
                    }
                }
            }
        }
        assert_eq!(seen.len() as u64, g.total_rows());
    }
}
