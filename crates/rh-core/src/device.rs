//! Per-row activation accounting and the charge-leakage victim model.
//!
//! Model. Each activation of an aggressor row leaks a distance-attenuated
//! quantum of disturbance into every row inside its blast radius:
//! a victim at distance `d` receives `coupling^(d-1)` units, so a victim at
//! distance 1 needs exactly `HC_first` single-sided hammers to flip, and a
//! double-sided victim flips at roughly `HC_first / 2` hammers per aggressor —
//! matching the experimental relationship in the ISCA 2020 paper. Refreshing
//! a row restores its charge (zeroes accumulated disturbance); bit flips
//! already recorded are permanent until the host rewrites the data, so flip
//! counters are cumulative.
//!
//! Cell-to-cell variation: each row draws a threshold jitter factor at device
//! construction from the seeded RNG. Keeping all randomness at construction
//! (never per-activation) means two simulations with the same seed see
//! byte-identical devices, which the CLI exploits for common-random-number
//! comparisons across mitigation configurations.
//!
//! ## Hot-path design
//!
//! The per-activation path is allocation-free and every per-window cost is
//! amortized O(1):
//!
//! * **Shared tables** ([`DeviceTables`]): the immutable, seed-derived parts
//!   of a device (per-row flip thresholds, the `coupling^(d-1)` attenuation
//!   table) live in an `Arc` so every experiment cell simulating the same
//!   device (common-random-number sweeps share the device seed) reuses one
//!   O(total_rows) derivation instead of repeating it per cell.
//! * **Epoch-based lazy refresh**: `refresh_all` — the per-tREFW-window
//!   full-device refresh — bumps a global epoch counter instead of zeroing
//!   `total_rows` charges. A row's charge is valid only if its last-write
//!   epoch matches the global epoch; stale charges read as zero and are
//!   reset lazily on the next write. This turns the dominant O(total_rows)
//!   cost of refresh-heavy configurations (increased-refresh at low
//!   `HC_first`, exactly the regime the paper projects) into O(1).
//! * **Incremental flip accounting**: `flipped_rows` is maintained as a
//!   counter on the 0→nonzero transition in the victim update, replacing the
//!   end-of-run full-device scan ([`DeviceState::flipped_rows_scan`] remains
//!   as the diagnostic reference, asserted equivalent in tests).
//! * **Single-line victim slots** (`RowCell`): everything a victim update
//!   reads or writes — charge, last-write epoch, flip threshold, flip count
//!   — is packed into one 32-byte slot, so the benign traffic's random-row
//!   accesses miss on one cache line instead of four parallel vectors'
//!   worth. See the `RowCell` doc for the layout rationale.
//!
//! ## Section 5 victim model
//!
//! Three stored-data effects from the paper's Section 5 extend the charge
//! model, all precomputed at table-construction time so the per-activation
//! path keeps its shape:
//!
//! * **Data-pattern dependence** ([`DataPattern`]): the selected pattern's
//!   [`DataPattern::coupling_factor`] is folded into the precomputed
//!   attenuation table (it depends only on distance parity), scaling how
//!   hard aggressors couple into victims.
//! * **True-/anti-cell orientation**: each row draws an orientation bit
//!   from a dedicated RNG stream derived from the device seed (separate
//!   from the threshold stream, so legacy thresholds are unperturbed).
//!   Orientation decides each row's flip direction — true-cell rows fail
//!   `1 → 0`, anti-cell rows `0 → 1` — tracked in separate tallies.
//! * **Charged-cell budget**: pattern × orientation × row parity determine
//!   how many of a row's cells are charged and therefore flippable
//!   ([`DataPattern::vulnerable_cells`]); the budget is packed into the
//!   `RowCell` metadata word so the settle path reads it from the same
//!   cache line as the charge and threshold.
//! * **On-die ECC** ([`crate::ecc`]): optional; never touches the dynamics,
//!   applied as a post-run scan over per-row raw flips
//!   ([`DeviceState::post_ecc_flips`]).
//!
//! With [`DataPattern::Legacy`] and ECC disabled (the defaults) every
//! factor is exactly 1.0 and every cell vulnerable: results are
//! byte-identical to the pre-Section-5 engine.
//!
//! The retained eager-zeroing reference implementation lives in
//! [`crate::reference`]; differential tests drive both against seeded random
//! action sequences and assert identical flips, charges, and refresh tallies.

use crate::ecc;
use crate::geometry::{Geometry, RowAddr};
use crate::pattern::DataPattern;
use crate::rng::{derive_seed, SplitMix64};
use std::sync::Arc;

/// Stream discriminator mixed into the device seed for per-row true-/anti-
/// cell orientation (arbitrary constant; keeping orientation off the
/// threshold stream is what makes the Section 5 axes a pure overlay on the
/// legacy model).
pub(crate) const CELL_ORIENTATION_STREAM: u64 = 0xCE11;

/// High bit of [`RowCell::meta`]: set for anti-cell rows (flips are 0→1).
pub(crate) const ANTI_CELL_BIT: u32 = 1 << 31;
/// Low 31 bits of [`RowCell::meta`]: the row's charged (flippable) cells.
pub(crate) const VULN_MASK: u32 = ANTI_CELL_BIT - 1;

/// Parameters of the victim model.
#[derive(Debug, Clone, Copy)]
pub struct VictimModelParams {
    /// Minimum single-sided hammer count inducing the first bit flip in the
    /// most vulnerable row (the paper's `HC_first`; ~139k for DDR3-old,
    /// ~10k for LPDDR4-new, ~4.8k for the weakest chip tested).
    pub hc_first: u64,
    /// Maximum aggressor-to-victim distance with observable disturbance.
    pub blast_radius: u32,
    /// Multiplicative attenuation of coupling per extra row of distance.
    pub coupling_decay: f64,
    /// Number of DRAM cells (bits) per row; caps flips per row.
    pub cells_per_row: u32,
    /// How quickly additional cells flip once charge exceeds threshold,
    /// as a fraction of the row's cells per `HC_first` of overshoot.
    pub flip_slope: f64,
    /// Spread of per-row threshold jitter: row thresholds are uniform in
    /// `[hc_first, hc_first * (1 + jitter))`.
    pub threshold_jitter: f64,
    /// Stored data pattern (Section 5.1/5.2 victim model);
    /// [`DataPattern::Legacy`] reproduces the pattern-agnostic model.
    pub data_pattern: DataPattern,
    /// On-die ECC codeword size in cells; 0 disables ECC (Section 5.3).
    pub ecc_codeword_bits: u32,
}

impl VictimModelParams {
    /// Default number of cells per row (the LPDDR4-class 8 Kib row the
    /// sweep always simulates). Named so config-level validation (e.g. the
    /// ECC codeword bound in `rh-cli`) checks against the same figure
    /// [`VictimModelParams::with_hc_first`] builds with.
    pub const DEFAULT_CELLS_PER_ROW: u32 = 8192;

    /// Defaults roughly calibrated to the paper's LPDDR4-new corner, with
    /// the Section 5 axes off (legacy pattern, no ECC).
    pub fn with_hc_first(hc_first: u64) -> Self {
        Self {
            hc_first,
            blast_radius: 2,
            coupling_decay: 0.35,
            cells_per_row: Self::DEFAULT_CELLS_PER_ROW,
            flip_slope: 0.02,
            threshold_jitter: 0.25,
            data_pattern: DataPattern::Legacy,
            ecc_codeword_bits: 0,
        }
    }
}

/// The common device interface the engine drives: the optimized
/// [`DeviceState`] and the retained eager reference implementation
/// ([`crate::reference::EagerDeviceState`]) are interchangeable behind it,
/// which is what lets the benchmark harness and the differential tests run
/// the identical experiment loop over both.
pub trait Device {
    fn geometry(&self) -> &Geometry;
    fn params(&self) -> &VictimModelParams;
    /// Activate a row: account it and leak disturbance into its blast radius.
    fn activate(&mut self, addr: RowAddr);
    /// Refresh a single row (restore its charge). Flips stay recorded.
    fn refresh_row(&mut self, addr: RowAddr);
    /// Refresh every row in the device.
    fn refresh_all(&mut self);
    fn total_flips(&self) -> u64;
    fn flipped_rows(&self) -> u64;
    fn flips_per_mact(&self) -> f64;
    fn total_activations(&self) -> u64;
    fn refreshes_issued(&self) -> u64;
    /// Flips recorded in true-cell rows (charged `1` discharged to `0`).
    fn flips_1to0(&self) -> u64;
    /// Flips recorded in anti-cell rows (stored `0` read back as `1`).
    fn flips_0to1(&self) -> u64;
    /// Flips still visible after on-die ECC correction; `None` when the
    /// device has no ECC layer (`ecc_codeword_bits == 0`).
    fn post_ecc_flips(&self) -> Option<u64>;
}

/// Immutable, seed-derived per-device tables, shared between every
/// experiment cell that simulates the same device.
///
/// Construction is the only O(total_rows) step (threshold derivation); the
/// sweep executor builds one table set per distinct `(params, seed)` pair
/// and hands `Arc` clones to worker threads, so common-random-number cells
/// stop re-deriving thresholds per cell.
#[derive(Debug)]
pub struct DeviceTables {
    geom: Geometry,
    params: VictimModelParams,
    /// Seed the tables were derived from (also seeds the per-row ECC
    /// placement streams, keeping post-ECC counts a pure seed function).
    seed: u64,
    /// Per-row flip threshold (hc_first with jitter), precomputed.
    threshold: Vec<f64>,
    /// `atten[d - 1] = coupling_decay^(d - 1) * pattern_factor(d)` for `d`
    /// in `1..=blast_radius`, precomputed so the per-activation path never
    /// calls `powi` and pays nothing for data-pattern dependence (the
    /// factor is parity-periodic, see [`DataPattern::coupling_factor`]).
    atten: Vec<f64>,
    /// Per-row [`RowCell::meta`] word: true-/anti-cell orientation bit plus
    /// the charged-cell budget under the selected data pattern.
    meta: Vec<u32>,
}

impl DeviceTables {
    /// Derive the tables for a device. Fails with a clear error on a
    /// degenerate geometry (any zero dimension) or degenerate victim-model
    /// parameters (zero or over-wide `cells_per_row`, an ECC codeword
    /// larger than a row).
    pub fn new(geom: Geometry, params: VictimModelParams, seed: u64) -> Result<Self, String> {
        geom.validate()?;
        if params.cells_per_row == 0 {
            return Err("cells_per_row must be at least 1".to_string());
        }
        if params.cells_per_row > VULN_MASK {
            return Err(format!(
                "cells_per_row {} exceeds the 2^31 - 1 row-metadata budget",
                params.cells_per_row
            ));
        }
        if params.ecc_codeword_bits > params.cells_per_row {
            return Err(format!(
                "ECC codeword of {} bits exceeds the {} cells in a row",
                params.ecc_codeword_bits, params.cells_per_row
            ));
        }
        let n = geom.total_rows() as usize;
        let mut rng = SplitMix64::new(seed);
        let threshold = (0..n)
            .map(|_| params.hc_first as f64 * (1.0 + params.threshold_jitter * rng.next_f64()))
            .collect();
        let atten = (1..=params.blast_radius)
            .map(|d| {
                params.coupling_decay.powi(d as i32 - 1) * params.data_pattern.coupling_factor(d)
            })
            .collect();
        // Orientation comes from its own seed-derived stream so enabling
        // the Section 5 axes never perturbs the threshold stream above —
        // and so the true-/anti-cell layout is a pure function of the
        // device seed, independent of hc_first/pattern (tested below).
        let mut orient_rng = SplitMix64::new(derive_seed(seed, &[CELL_ORIENTATION_STREAM]));
        let rows_per_bank = geom.rows_per_bank;
        let meta = (0..n)
            .map(|i| {
                let anti = orient_rng.next_u64() & 1 == 1;
                let row = i as u32 % rows_per_bank;
                let vuln = params
                    .data_pattern
                    .vulnerable_cells(params.cells_per_row, row, anti);
                u32::from(anti) << 31 | vuln
            })
            .collect();
        Ok(Self {
            geom,
            params,
            seed,
            threshold,
            atten,
            meta,
        })
    }

    /// Like [`DeviceTables::new`], wrapped for sharing across cells/threads.
    pub fn shared(
        geom: Geometry,
        params: VictimModelParams,
        seed: u64,
    ) -> Result<Arc<Self>, String> {
        Ok(Arc::new(Self::new(geom, params, seed)?))
    }

    pub fn geometry(&self) -> &Geometry {
        &self.geom
    }

    pub fn params(&self) -> &VictimModelParams {
        &self.params
    }

    /// Flip threshold of a row (test/diagnostic hook).
    pub fn threshold_of(&self, addr: RowAddr) -> f64 {
        self.threshold[self.geom.flat_index(addr)]
    }

    /// Precomputed coupling attenuation at aggressor distance `d >= 1`
    /// (distance decay × data-pattern factor).
    pub fn attenuation(&self, dist: u32) -> f64 {
        self.atten[(dist - 1) as usize]
    }

    /// Whether a row is an anti-cell row (flips read as 0→1) under this
    /// device seed (test/diagnostic hook).
    pub fn anti_cell_of(&self, addr: RowAddr) -> bool {
        self.meta[self.geom.flat_index(addr)] & ANTI_CELL_BIT != 0
    }

    /// The row's charged — and therefore flippable — cell budget under the
    /// selected data pattern (test/diagnostic hook).
    pub fn vulnerable_cells_of(&self, addr: RowAddr) -> u32 {
        self.meta[self.geom.flat_index(addr)] & VULN_MASK
    }
}

/// Everything a victim update reads or writes, packed into one 32-byte slot
/// so the epoch check, charge accumulation, threshold compare, and flip
/// settling all hit a single cache line per victim. The sweep's benign
/// traffic lands on uniformly random rows of multi-megabyte state vectors;
/// with charge/epoch/flips/threshold in separate vectors (the pre-PR-4
/// layout) each such access missed on several lines, and those misses — not
/// arithmetic — dominated the non-refresh cells. 32 bytes divides the cache
/// line, so a slot never straddles two lines. The row's *threshold* is a
/// per-cell copy of the shared [`DeviceTables`] value (made during the
/// per-cell reset, which already streams over every slot); the per-row
/// *activation* counter lives in a separate vector because only the
/// aggressor row — by construction hot and cached — ever touches it.
///
/// The Section 5 victim model lives in what used to be the padding word:
/// `meta` packs the row's true-/anti-cell orientation ([`ANTI_CELL_BIT`])
/// and its charged-cell budget ([`VULN_MASK`]), copied from the shared
/// tables at cell reset alongside the threshold — the settle path reads
/// both from the same line it was already touching, so the slot stays
/// exactly 32 bytes (size-asserted in tests).
#[derive(Debug, Clone, Copy, Default)]
#[repr(C)]
struct RowCell {
    /// Accumulated disturbance in units of distance-1 hammers. Valid only
    /// while `epoch` matches the device epoch; stale values read as 0.
    charge: f64,
    /// Epoch of the last charge write (or targeted refresh).
    epoch: u64,
    /// Flip threshold (copied from the shared tables at cell reset).
    threshold: f64,
    /// Bit flips recorded (cumulative, monotone).
    flips: u32,
    /// Orientation bit + charged-cell budget (copied from shared tables).
    meta: u32,
}

/// Mutable state of the simulated device: per-row charge, activation
/// counters, and recorded bit flips (`RowCell` per row). Immutable tables
/// are `Arc`-shared ([`DeviceTables`]); refresh is epoch-based (see the
/// module docs).
#[derive(Debug, Clone)]
pub struct DeviceState {
    tables: Arc<DeviceTables>,
    /// Per-row mutable state; see [`RowCell`].
    cells: Vec<RowCell>,
    /// Activations per row since construction/reset (aggressor-side
    /// accounting only; victim updates never touch it — see [`RowCell`]).
    acts: Vec<u64>,
    /// Global refresh epoch; bumped O(1) by `refresh_all`.
    epoch: u64,
    total_flips: u64,
    total_activations: u64,
    refreshes_issued: u64,
    /// Distinct rows with at least one flip, maintained incrementally on the
    /// 0→nonzero transition in the victim update (`leak_cell`).
    flipped_row_count: u64,
    /// Cumulative flips in true-cell rows (charged 1 → 0).
    flips_1to0: u64,
    /// Cumulative flips in anti-cell rows (stored 0 → 1).
    flips_0to1: u64,
}

/// Device-wide tallies one activation's victim walk accumulates, applied to
/// the [`DeviceState`] counters after the walk (so `leak_cell` never
/// re-borrows the device).
#[derive(Debug, Default)]
struct VictimTally {
    flips: u64,
    flips_1to0: u64,
    flips_0to1: u64,
    rows_flipped: u64,
}

/// One victim update: resolve the row's charge against the refresh epoch,
/// accumulate the leaked quantum, and — the cold branch — deterministically
/// reconcile the row's recorded flips with its charge once the threshold
/// (resident in the same [`RowCell`] line) is crossed. Flips scale with,
/// and are capped by, the row's charged-cell budget (`meta`), and are
/// attributed to the 1→0 or 0→1 tally by the row's orientation bit.
///
/// Expected flips are a monotone function of charge, so recorded flips can
/// only grow; this is what makes flip counts monotone under common-random-
/// number mitigation comparisons. Free function over one `&mut RowCell`
/// (with the device-wide tallies in `tally`) so the activation loop can
/// drive it through zipped slice iterators without re-borrowing the device.
#[inline(always)]
fn leak_cell(
    cell: &mut RowCell,
    quantum: f64,
    epoch: u64,
    hc_first: u64,
    flip_slope: f64,
    tally: &mut VictimTally,
) {
    // Lazy epoch resolution: a stale charge reads as zero and is reset on
    // this write.
    if cell.epoch != epoch {
        cell.epoch = epoch;
        cell.charge = 0.0;
    }
    cell.charge += quantum;
    let c = cell.charge;
    let t = cell.threshold;
    if c < t {
        return;
    }
    let vuln = cell.meta & VULN_MASK;
    if vuln == 0 {
        // No charged cells under this pattern/orientation: nothing to flip.
        return;
    }
    let overshoot = (c - t) / hc_first as f64;
    let expected = 1 + (overshoot * flip_slope * vuln as f64) as u32;
    let expected = expected.min(vuln);
    if expected > cell.flips {
        if cell.flips == 0 {
            tally.rows_flipped += 1;
        }
        let added = (expected - cell.flips) as u64;
        tally.flips += added;
        if cell.meta & ANTI_CELL_BIT != 0 {
            tally.flips_0to1 += added;
        } else {
            tally.flips_1to0 += added;
        }
        cell.flips = expected;
    }
}

impl DeviceState {
    /// Build a device with freshly derived tables. Panics on a degenerate
    /// geometry; use [`Geometry::validate`] / [`DeviceTables::new`] first on
    /// untrusted input.
    pub fn new(geom: Geometry, params: VictimModelParams, seed: u64) -> Self {
        let tables = DeviceTables::shared(geom, params, seed)
            .unwrap_or_else(|e| panic!("invalid device geometry: {e}"));
        Self::with_tables(tables)
    }

    /// Build a device around pre-derived shared tables.
    pub fn with_tables(tables: Arc<DeviceTables>) -> Self {
        let mut device = Self {
            tables: tables.clone(),
            cells: Vec::new(),
            acts: Vec::new(),
            epoch: 0,
            total_flips: 0,
            total_activations: 0,
            refreshes_issued: 0,
            flipped_row_count: 0,
            flips_1to0: 0,
            flips_0to1: 0,
        };
        device.reset_for_cell(tables);
        device
    }

    /// Reuse this device's buffers for a new experiment cell: swap in the
    /// cell's tables and reset every row slot in one streaming pass (the
    /// per-row flip counters have to be zeroed for the new cell anyway, so
    /// the charge/epoch words and the threshold copy from the shared tables
    /// ride along in the same write; no reallocation unless the geometry
    /// grew). Equivalent to `DeviceState::with_tables` minus the
    /// allocations — executor threads call this once per cell. Note this is
    /// a per-*cell* O(total_rows) cost; the per-*tREFW-window* `refresh_all`
    /// inside a run stays the O(1) epoch bump.
    pub fn reset_for_cell(&mut self, tables: Arc<DeviceTables>) {
        self.tables = tables;
        let n = self.tables.geom.total_rows() as usize;
        self.cells.clear();
        self.cells.extend(
            self.tables
                .threshold
                .iter()
                .zip(self.tables.meta.iter())
                .map(|(&t, &m)| RowCell {
                    threshold: t,
                    meta: m,
                    ..RowCell::default()
                }),
        );
        debug_assert_eq!(self.cells.len(), n);
        self.acts.clear();
        self.acts.resize(n, 0);
        self.epoch = 0;
        self.total_flips = 0;
        self.total_activations = 0;
        self.refreshes_issued = 0;
        self.flipped_row_count = 0;
        self.flips_1to0 = 0;
        self.flips_0to1 = 0;
    }

    /// The shared immutable tables backing this device.
    pub fn tables(&self) -> &Arc<DeviceTables> {
        &self.tables
    }

    pub fn geometry(&self) -> &Geometry {
        &self.tables.geom
    }

    pub fn params(&self) -> &VictimModelParams {
        &self.tables.params
    }

    /// Activate `addr`: account the activation and leak disturbance into all
    /// rows within the blast radius, recording any new bit flips.
    ///
    /// Allocation-free: victims are addressed by flat-index arithmetic from
    /// the aggressor's index (same bank ⇒ contiguous rows), attenuation
    /// comes from the precomputed table, and each victim's epoch check,
    /// charge accumulation, and settle read hit the one `RowCell` line.
    pub fn activate(&mut self, addr: RowAddr) {
        let idx = self.tables.geom.flat_index(addr);
        self.acts[idx] += 1;
        self.total_activations += 1;
        let row = addr.row;
        let radius = self.tables.params.blast_radius;
        // Victims below and above the aggressor, clipped at bank edges,
        // walked as two distance-major slice iterations zipped with the
        // attenuation table: the quantum is the loop variable (no per-victim
        // abs_diff), there is no skip-the-aggressor branch, and after the
        // single window bounds check every victim access is check-free.
        let below = row.min(radius) as usize;
        let above = (self.tables.geom.rows_per_bank - 1 - row).min(radius) as usize;
        let epoch = self.epoch;
        let p = &self.tables.params;
        let (hc_first, flip_slope) = (p.hc_first, p.flip_slope);
        let atten = &self.tables.atten;
        let mut tally = VictimTally::default();
        let window = &mut self.cells[idx - below..=idx + above];
        let (lower, rest) = window.split_at_mut(below);
        let (_aggressor, upper) = rest.split_first_mut().expect("window holds the aggressor");
        // `lower` holds the below-victims in ascending row order; reversing
        // walks them distance-major so zipping with `atten` pairs each cell
        // with `coupling^(d-1)` (pattern-scaled). Zips clip at the shorter
        // side (`atten` has exactly `radius` entries).
        for (cell, &quantum) in lower.iter_mut().rev().zip(atten.iter()) {
            leak_cell(cell, quantum, epoch, hc_first, flip_slope, &mut tally);
        }
        for (cell, &quantum) in upper.iter_mut().zip(atten.iter()) {
            leak_cell(cell, quantum, epoch, hc_first, flip_slope, &mut tally);
        }
        self.total_flips += tally.flips;
        self.flipped_row_count += tally.rows_flipped;
        self.flips_1to0 += tally.flips_1to0;
        self.flips_0to1 += tally.flips_0to1;
    }

    /// Refresh a single row: restores its charge. Flips stay recorded.
    pub fn refresh_row(&mut self, addr: RowAddr) {
        let idx = self.tables.geom.flat_index(addr);
        let cell = &mut self.cells[idx];
        cell.charge = 0.0;
        cell.epoch = self.epoch;
        self.refreshes_issued += 1;
    }

    /// Refresh every row in the device (e.g. the periodic auto-refresh at
    /// the end of a tREFW window, or an increased-refresh mitigation tick).
    /// O(1): bumps the epoch instead of zeroing every charge.
    pub fn refresh_all(&mut self) {
        self.epoch += 1;
        // Count in row units so the cost metric is comparable with
        // `refresh_row`-based mitigations.
        self.refreshes_issued += self.tables.geom.total_rows();
    }

    /// Total bit flips recorded since construction (pre-ECC).
    pub fn total_flips(&self) -> u64 {
        self.total_flips
    }

    /// Flips recorded in true-cell rows (charged `1` discharged to `0`).
    /// Together with [`DeviceState::flips_0to1`] this partitions
    /// [`DeviceState::total_flips`].
    pub fn flips_1to0(&self) -> u64 {
        self.flips_1to0
    }

    /// Flips recorded in anti-cell rows (stored `0` read back as `1`).
    pub fn flips_0to1(&self) -> u64 {
        self.flips_0to1
    }

    /// Flips still visible after on-die ECC correction, or `None` when ECC
    /// is disabled. A post-run scan over per-row raw flip counts (see
    /// [`crate::ecc`]) — never on the per-activation path, and a pure
    /// function of the device seed and the raw flip state.
    pub fn post_ecc_flips(&self) -> Option<u64> {
        let cw = self.tables.params.ecc_codeword_bits;
        if cw == 0 {
            return None;
        }
        Some(ecc::post_ecc_total(
            self.cells.iter().map(|c| c.flips),
            self.tables.params.cells_per_row,
            cw,
            self.tables.seed,
        ))
    }

    /// Number of distinct rows with at least one flipped bit (O(1) counter).
    pub fn flipped_rows(&self) -> u64 {
        self.flipped_row_count
    }

    /// Reference full-scan count of flipped rows. Diagnostic only: tests
    /// assert it always equals the incrementally-maintained
    /// [`DeviceState::flipped_rows`] counter.
    pub fn flipped_rows_scan(&self) -> u64 {
        self.cells.iter().filter(|c| c.flips > 0).count() as u64
    }

    /// Bit flips per million activations — the sweep's headline metric.
    pub fn flips_per_mact(&self) -> f64 {
        if self.total_activations == 0 {
            return 0.0;
        }
        self.total_flips as f64 * 1e6 / self.total_activations as f64
    }

    pub fn total_activations(&self) -> u64 {
        self.total_activations
    }

    /// Row-refresh operations performed by mitigations and auto-refresh,
    /// counted in row units (a full-device refresh counts every row).
    pub fn refreshes_issued(&self) -> u64 {
        self.refreshes_issued
    }

    /// Activation count of a row since construction.
    pub fn activations_of(&self, addr: RowAddr) -> u64 {
        self.acts[self.tables.geom.flat_index(addr)]
    }

    /// Accumulated charge of a row (test/diagnostic hook), resolved against
    /// the refresh epoch.
    pub fn charge_of(&self, addr: RowAddr) -> f64 {
        let cell = &self.cells[self.tables.geom.flat_index(addr)];
        if cell.epoch == self.epoch {
            cell.charge
        } else {
            0.0
        }
    }
}

impl Device for DeviceState {
    fn geometry(&self) -> &Geometry {
        DeviceState::geometry(self)
    }

    fn params(&self) -> &VictimModelParams {
        DeviceState::params(self)
    }

    fn activate(&mut self, addr: RowAddr) {
        DeviceState::activate(self, addr)
    }

    fn refresh_row(&mut self, addr: RowAddr) {
        DeviceState::refresh_row(self, addr)
    }

    fn refresh_all(&mut self) {
        DeviceState::refresh_all(self)
    }

    fn total_flips(&self) -> u64 {
        DeviceState::total_flips(self)
    }

    fn flipped_rows(&self) -> u64 {
        DeviceState::flipped_rows(self)
    }

    fn flips_per_mact(&self) -> f64 {
        DeviceState::flips_per_mact(self)
    }

    fn total_activations(&self) -> u64 {
        DeviceState::total_activations(self)
    }

    fn refreshes_issued(&self) -> u64 {
        DeviceState::refreshes_issued(self)
    }

    fn flips_1to0(&self) -> u64 {
        DeviceState::flips_1to0(self)
    }

    fn flips_0to1(&self) -> u64 {
        DeviceState::flips_0to1(self)
    }

    fn post_ecc_flips(&self) -> Option<u64> {
        DeviceState::post_ecc_flips(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_jitter(hc: u64) -> VictimModelParams {
        VictimModelParams {
            threshold_jitter: 0.0,
            ..VictimModelParams::with_hc_first(hc)
        }
    }

    #[test]
    fn single_sided_flips_exactly_at_hc_first() {
        let g = Geometry::tiny(16);
        let mut d = DeviceState::new(g, no_jitter(1000), 1);
        let aggr = RowAddr::bank_row(0, 8);
        for _ in 0..999 {
            d.activate(aggr);
        }
        assert_eq!(d.total_flips(), 0);
        d.activate(aggr);
        // Both distance-1 victims cross threshold on the same activation.
        assert_eq!(d.flipped_rows(), 2);
    }

    #[test]
    fn double_sided_flips_at_half_per_aggressor() {
        let g = Geometry::tiny(16);
        let mut d = DeviceState::new(g, no_jitter(1000), 1);
        let (a1, a2) = (RowAddr::bank_row(0, 7), RowAddr::bank_row(0, 9));
        for _ in 0..499 {
            d.activate(a1);
            d.activate(a2);
        }
        let before = d.charge_of(RowAddr::bank_row(0, 8));
        assert!(before < 1000.0);
        d.activate(a1);
        d.activate(a2);
        // Victim row 8 received 2 units/iteration: flips at 500 per side.
        assert!(d.charge_of(RowAddr::bank_row(0, 8)) >= 1000.0);
        assert!(d.total_flips() > 0);
    }

    #[test]
    fn refresh_resets_charge_and_prevents_flips() {
        let g = Geometry::tiny(16);
        let mut d = DeviceState::new(g, no_jitter(1000), 1);
        let aggr = RowAddr::bank_row(0, 8);
        for _ in 0..600 {
            d.activate(aggr);
        }
        d.refresh_row(RowAddr::bank_row(0, 7));
        d.refresh_row(RowAddr::bank_row(0, 9));
        for _ in 0..600 {
            d.activate(aggr);
        }
        // 1200 total hammers but never 1000 within one refresh interval.
        assert_eq!(d.total_flips(), 0);
    }

    #[test]
    fn refresh_all_is_epoch_lazy_but_observably_eager() {
        let g = Geometry::tiny(16);
        let mut d = DeviceState::new(g, no_jitter(1000), 1);
        let aggr = RowAddr::bank_row(0, 8);
        for _ in 0..600 {
            d.activate(aggr);
        }
        assert!(d.charge_of(RowAddr::bank_row(0, 7)) > 0.0);
        d.refresh_all();
        // Charges read as zero immediately, and the refresh tally counts
        // every row even though nothing was eagerly zeroed.
        assert_eq!(d.charge_of(RowAddr::bank_row(0, 7)), 0.0);
        assert_eq!(d.refreshes_issued(), g.total_rows());
        for _ in 0..600 {
            d.activate(aggr);
        }
        assert_eq!(d.total_flips(), 0, "stale pre-refresh charge leaked in");
    }

    #[test]
    fn blast_radius_attenuates_with_distance() {
        let g = Geometry::tiny(16);
        let p = no_jitter(1000);
        let mut d = DeviceState::new(g, p, 1);
        let aggr = RowAddr::bank_row(0, 8);
        d.activate(aggr);
        let c1 = d.charge_of(RowAddr::bank_row(0, 7));
        let c2 = d.charge_of(RowAddr::bank_row(0, 6));
        let c3 = d.charge_of(RowAddr::bank_row(0, 5));
        assert!((c1 - 1.0).abs() < 1e-12);
        assert!((c2 - p.coupling_decay).abs() < 1e-12);
        assert_eq!(c3, 0.0, "beyond blast radius must receive nothing");
    }

    #[test]
    fn edge_rows_have_one_sided_victims() {
        let g = Geometry::tiny(16);
        let mut d = DeviceState::new(g, no_jitter(100), 1);
        let aggr = RowAddr::bank_row(0, 0);
        for _ in 0..100 {
            d.activate(aggr);
        }
        // Only row 1 (and attenuated row 2) can flip; no underflow panic.
        assert!(d.flipped_rows() >= 1);
        assert_eq!(d.activations_of(aggr), 100);
    }

    #[test]
    fn same_seed_same_thresholds() {
        let g = Geometry::tiny(64);
        let p = VictimModelParams::with_hc_first(5000);
        let a = DeviceTables::new(g, p, 123).unwrap();
        let b = DeviceTables::new(g, p, 123).unwrap();
        assert_eq!(a.threshold, b.threshold);
    }

    #[test]
    fn attenuation_table_matches_powi() {
        let p = VictimModelParams::with_hc_first(1000);
        let t = DeviceTables::new(Geometry::tiny(64), p, 0).unwrap();
        for d in 1..=p.blast_radius {
            assert_eq!(t.attenuation(d), p.coupling_decay.powi(d as i32 - 1));
        }
    }

    #[test]
    fn degenerate_geometry_is_rejected_with_clear_error() {
        let p = VictimModelParams::with_hc_first(1000);
        let err = DeviceTables::new(Geometry::tiny(0), p, 0).unwrap_err();
        assert!(err.contains("rows_per_bank"), "got '{err}'");
    }

    #[test]
    fn flip_count_monotone_in_hammer_count() {
        let g = Geometry::tiny(32);
        let mut d = DeviceState::new(g, no_jitter(500), 5);
        let aggr = RowAddr::bank_row(0, 16);
        let mut last = 0;
        for _ in 0..10 {
            for _ in 0..200 {
                d.activate(aggr);
            }
            assert!(d.total_flips() >= last);
            last = d.total_flips();
        }
        assert!(last > 0);
    }

    #[test]
    fn flipped_rows_counter_matches_full_scan() {
        let g = Geometry::tiny(64);
        let mut d = DeviceState::new(g, VictimModelParams::with_hc_first(300), 9);
        let mut rng = SplitMix64::new(77);
        for _ in 0..20_000 {
            // Half the traffic hammers one hot row so thresholds are crossed
            // between the (rare) full refreshes.
            let row = if rng.chance(0.5) {
                32
            } else {
                rng.gen_range(64) as u32
            };
            d.activate(RowAddr::bank_row(0, row));
            if rng.chance(0.0005) {
                d.refresh_all();
            }
        }
        assert!(d.total_flips() > 0, "test must exercise flips");
        assert_eq!(d.flipped_rows(), d.flipped_rows_scan());
    }

    #[test]
    fn shared_tables_produce_identical_devices() {
        let g = Geometry::tiny(64);
        let p = VictimModelParams::with_hc_first(800);
        let tables = DeviceTables::shared(g, p, 5).unwrap();
        let mut a = DeviceState::with_tables(tables.clone());
        let mut b = DeviceState::new(g, p, 5);
        let aggr = RowAddr::bank_row(0, 32);
        for _ in 0..2_000 {
            a.activate(aggr);
            b.activate(aggr);
        }
        assert_eq!(a.total_flips(), b.total_flips());
        assert_eq!(
            a.charge_of(RowAddr::bank_row(0, 31)).to_bits(),
            b.charge_of(RowAddr::bank_row(0, 31)).to_bits()
        );
        assert_eq!(
            Arc::strong_count(&tables),
            2,
            "tables are shared, not cloned"
        );
    }

    #[test]
    fn reset_for_cell_is_equivalent_to_fresh_construction() {
        let g = Geometry::tiny(64);
        let p1 = VictimModelParams::with_hc_first(500);
        let p2 = VictimModelParams::with_hc_first(900);
        let t1 = DeviceTables::shared(g, p1, 3).unwrap();
        let t2 = DeviceTables::shared(g, p2, 3).unwrap();

        // Dirty a device under tables 1, then reset it for tables 2.
        let mut reused = DeviceState::with_tables(t1);
        for _ in 0..1_500 {
            reused.activate(RowAddr::bank_row(0, 20));
        }
        assert!(reused.total_flips() > 0);
        reused.reset_for_cell(t2.clone());
        assert_eq!(reused.total_flips(), 0);
        assert_eq!(reused.flipped_rows(), 0);
        assert_eq!(reused.total_activations(), 0);
        assert_eq!(reused.refreshes_issued(), 0);
        assert_eq!(reused.charge_of(RowAddr::bank_row(0, 19)), 0.0);

        let mut fresh = DeviceState::with_tables(t2);
        let mut rng = SplitMix64::new(11);
        for _ in 0..5_000 {
            let addr = RowAddr::bank_row(0, rng.gen_range(64) as u32);
            reused.activate(addr);
            fresh.activate(addr);
            if rng.chance(0.02) {
                reused.refresh_all();
                fresh.refresh_all();
            }
        }
        assert_eq!(reused.total_flips(), fresh.total_flips());
        assert_eq!(reused.flipped_rows(), fresh.flipped_rows());
        assert_eq!(reused.refreshes_issued(), fresh.refreshes_issued());
        for row in 0..64 {
            let a = reused.charge_of(RowAddr::bank_row(0, row));
            let b = fresh.charge_of(RowAddr::bank_row(0, row));
            assert_eq!(a.to_bits(), b.to_bits(), "charge mismatch at row {row}");
        }
    }

    /// The tentpole's layout constraint: everything a victim update touches
    /// must keep fitting one 32-byte slot (the Section 5 metadata lives in
    /// what used to be padding).
    #[test]
    fn row_cell_is_one_32_byte_slot() {
        assert_eq!(std::mem::size_of::<RowCell>(), 32);
    }

    /// Satellite: true-/anti-cell assignment is a pure function of the
    /// device seed — identical across rebuilds, across `HC_first` values,
    /// and across data patterns; different seeds lay out differently.
    #[test]
    fn cell_orientation_is_a_pure_function_of_device_seed() {
        let g = Geometry::tiny(256);
        let orientations = |hc: u64, pattern: DataPattern, seed: u64| -> Vec<bool> {
            let params = VictimModelParams {
                data_pattern: pattern,
                ..VictimModelParams::with_hc_first(hc)
            };
            let t = DeviceTables::new(g, params, seed).unwrap();
            (0..256)
                .map(|r| t.anti_cell_of(RowAddr::bank_row(0, r)))
                .collect()
        };
        let base = orientations(1000, DataPattern::RowStripe, 42);
        assert_eq!(base, orientations(1000, DataPattern::RowStripe, 42));
        assert_eq!(
            base,
            orientations(5000, DataPattern::Solid, 42),
            "orientation must not depend on hc_first or pattern"
        );
        assert_eq!(base, orientations(1000, DataPattern::Legacy, 42));
        assert_ne!(base, orientations(1000, DataPattern::RowStripe, 43));
        let anti = base.iter().filter(|&&a| a).count();
        assert!(
            (64..192).contains(&anti),
            "orientation should mix both kinds, got {anti}/256 anti"
        );
    }

    #[test]
    fn orientation_stream_does_not_perturb_thresholds() {
        let g = Geometry::tiny(64);
        let legacy = DeviceTables::new(g, VictimModelParams::with_hc_first(1000), 7).unwrap();
        let striped = DeviceTables::new(
            g,
            VictimModelParams {
                data_pattern: DataPattern::RowStripe,
                ..VictimModelParams::with_hc_first(1000)
            },
            7,
        )
        .unwrap();
        assert_eq!(legacy.threshold, striped.threshold);
    }

    #[test]
    fn pattern_scales_the_attenuation_table() {
        let g = Geometry::tiny(64);
        let p = VictimModelParams {
            data_pattern: DataPattern::RowStripe,
            ..VictimModelParams::with_hc_first(1000)
        };
        let t = DeviceTables::new(g, p, 0).unwrap();
        for d in 1..=p.blast_radius {
            assert_eq!(
                t.attenuation(d),
                p.coupling_decay.powi(d as i32 - 1) * p.data_pattern.coupling_factor(d)
            );
        }
    }

    #[test]
    fn solid_pattern_flips_only_true_cell_rows_downward() {
        let g = Geometry::tiny(256);
        let p = VictimModelParams {
            threshold_jitter: 0.0,
            data_pattern: DataPattern::Solid,
            ..VictimModelParams::with_hc_first(400)
        };
        let mut d = DeviceState::new(g, p, 11);
        // Hammer every fourth row so victims of both orientations appear.
        for _ in 0..2_000 {
            for row in (2..254).step_by(4) {
                d.activate(RowAddr::bank_row(0, row));
            }
        }
        assert!(d.total_flips() > 0);
        assert_eq!(d.flips_0to1(), 0, "solid all-1s can only discharge 1→0");
        assert_eq!(d.flips_1to0(), d.total_flips());
        // Every flipped row must be a true-cell row with a nonzero budget.
        for row in 0..256 {
            let addr = RowAddr::bank_row(0, row);
            if d.tables().anti_cell_of(addr) {
                assert_eq!(d.tables().vulnerable_cells_of(addr), 0);
            } else {
                assert_eq!(d.tables().vulnerable_cells_of(addr), p.cells_per_row);
            }
        }
    }

    #[test]
    fn rowstripe_flips_in_both_directions_and_partitions_totals() {
        let g = Geometry::tiny(256);
        let p = VictimModelParams {
            threshold_jitter: 0.0,
            data_pattern: DataPattern::RowStripe,
            ..VictimModelParams::with_hc_first(400)
        };
        let mut d = DeviceState::new(g, p, 11);
        for _ in 0..2_000 {
            for row in (2..254).step_by(4) {
                d.activate(RowAddr::bank_row(0, row));
            }
        }
        assert!(d.total_flips() > 0);
        assert_eq!(d.flips_1to0() + d.flips_0to1(), d.total_flips());
        assert!(d.flips_1to0() > 0, "some victims are charged true-cells");
        assert!(d.flips_0to1() > 0, "some victims are charged anti-cells");
    }

    #[test]
    fn legacy_direction_tallies_partition_total_flips() {
        let g = Geometry::tiny(64);
        let mut d = DeviceState::new(g, VictimModelParams::with_hc_first(300), 9);
        let mut rng = SplitMix64::new(5);
        for _ in 0..20_000 {
            let row = if rng.chance(0.5) {
                32
            } else {
                rng.gen_range(64) as u32
            };
            d.activate(RowAddr::bank_row(0, row));
        }
        assert!(d.total_flips() > 0);
        assert_eq!(d.flips_1to0() + d.flips_0to1(), d.total_flips());
    }

    #[test]
    fn ecc_masks_low_flip_rows_and_is_none_when_disabled() {
        let g = Geometry::tiny(64);
        let base = VictimModelParams {
            threshold_jitter: 0.0,
            ..VictimModelParams::with_hc_first(1000)
        };
        let mut no_ecc = DeviceState::new(g, base, 1);
        assert_eq!(no_ecc.post_ecc_flips(), None);
        no_ecc.activate(RowAddr::bank_row(0, 8));
        assert_eq!(no_ecc.post_ecc_flips(), None);

        let p = VictimModelParams {
            ecc_codeword_bits: 128,
            ..base
        };
        let mut d = DeviceState::new(g, p, 1);
        let aggr = RowAddr::bank_row(0, 8);
        // Just past threshold: each distance-1 victim holds a single flip,
        // which a SEC code fully corrects.
        for _ in 0..1_000 {
            d.activate(aggr);
        }
        assert!(d.total_flips() > 0);
        assert_eq!(d.post_ecc_flips(), Some(0), "single-bit flips are masked");
        // Hammer far past threshold: multi-bit flips per codeword leak out.
        for _ in 0..5_000 {
            d.activate(aggr);
        }
        let post = d.post_ecc_flips().expect("ECC enabled");
        assert!(post > 0, "multi-bit flips must pass through");
        assert!(post <= d.total_flips(), "ECC cannot add flips");
    }

    #[test]
    fn degenerate_victim_params_are_rejected_with_clear_errors() {
        let g = Geometry::tiny(64);
        let err = DeviceTables::new(
            g,
            VictimModelParams {
                cells_per_row: 0,
                ..VictimModelParams::with_hc_first(1000)
            },
            0,
        )
        .unwrap_err();
        assert!(err.contains("cells_per_row"), "got '{err}'");
        let err = DeviceTables::new(
            g,
            VictimModelParams {
                ecc_codeword_bits: 10_000,
                ..VictimModelParams::with_hc_first(1000)
            },
            0,
        )
        .unwrap_err();
        assert!(err.contains("ECC codeword"), "got '{err}'");
    }

    #[test]
    fn reset_for_cell_handles_geometry_growth() {
        let p = VictimModelParams::with_hc_first(500);
        let small = DeviceTables::shared(Geometry::tiny(16), p, 3).unwrap();
        let big = DeviceTables::shared(Geometry::tiny(128), p, 3).unwrap();
        let mut d = DeviceState::with_tables(small);
        d.activate(RowAddr::bank_row(0, 8));
        d.reset_for_cell(big);
        d.activate(RowAddr::bank_row(0, 100));
        assert_eq!(d.total_activations(), 1);
        assert_eq!(d.charge_of(RowAddr::bank_row(0, 99)), 1.0);
    }
}
