//! Per-row activation accounting and the charge-leakage victim model.
//!
//! Model. Each activation of an aggressor row leaks a distance-attenuated
//! quantum of disturbance into every row inside its blast radius:
//! a victim at distance `d` receives `coupling^(d-1)` units, so a victim at
//! distance 1 needs exactly `HC_first` single-sided hammers to flip, and a
//! double-sided victim flips at roughly `HC_first / 2` hammers per aggressor —
//! matching the experimental relationship in the ISCA 2020 paper. Refreshing
//! a row restores its charge (zeroes accumulated disturbance); bit flips
//! already recorded are permanent until the host rewrites the data, so flip
//! counters are cumulative.
//!
//! Cell-to-cell variation: each row draws a threshold jitter factor at device
//! construction from the seeded RNG. Keeping all randomness at construction
//! (never per-activation) means two simulations with the same seed see
//! byte-identical devices, which the CLI exploits for common-random-number
//! comparisons across mitigation configurations.

use crate::geometry::{Geometry, RowAddr};
use crate::rng::SplitMix64;

/// Parameters of the victim model.
#[derive(Debug, Clone, Copy)]
pub struct VictimModelParams {
    /// Minimum single-sided hammer count inducing the first bit flip in the
    /// most vulnerable row (the paper's `HC_first`; ~139k for DDR3-old,
    /// ~10k for LPDDR4-new, ~4.8k for the weakest chip tested).
    pub hc_first: u64,
    /// Maximum aggressor-to-victim distance with observable disturbance.
    pub blast_radius: u32,
    /// Multiplicative attenuation of coupling per extra row of distance.
    pub coupling_decay: f64,
    /// Number of DRAM cells (bits) per row; caps flips per row.
    pub cells_per_row: u32,
    /// How quickly additional cells flip once charge exceeds threshold,
    /// as a fraction of the row's cells per `HC_first` of overshoot.
    pub flip_slope: f64,
    /// Spread of per-row threshold jitter: row thresholds are uniform in
    /// `[hc_first, hc_first * (1 + jitter))`.
    pub threshold_jitter: f64,
}

impl VictimModelParams {
    /// Defaults roughly calibrated to the paper's LPDDR4-new corner.
    pub fn with_hc_first(hc_first: u64) -> Self {
        Self {
            hc_first,
            blast_radius: 2,
            coupling_decay: 0.35,
            cells_per_row: 8192,
            flip_slope: 0.02,
            threshold_jitter: 0.25,
        }
    }
}

/// Mutable state of the simulated device: per-row charge, activation
/// counters, and recorded bit flips.
#[derive(Debug, Clone)]
pub struct DeviceState {
    geom: Geometry,
    params: VictimModelParams,
    /// Accumulated disturbance per row, in units of distance-1 hammers.
    charge: Vec<f64>,
    /// Per-row flip threshold (hc_first with jitter), precomputed.
    threshold: Vec<f64>,
    /// Activations per row since construction.
    acts: Vec<u64>,
    /// Bit flips recorded per row (cumulative, monotone).
    flips: Vec<u32>,
    total_flips: u64,
    total_activations: u64,
    refreshes_issued: u64,
}

impl DeviceState {
    pub fn new(geom: Geometry, params: VictimModelParams, seed: u64) -> Self {
        let n = geom.total_rows() as usize;
        let mut rng = SplitMix64::new(seed);
        let threshold = (0..n)
            .map(|_| params.hc_first as f64 * (1.0 + params.threshold_jitter * rng.next_f64()))
            .collect();
        Self {
            geom,
            params,
            charge: vec![0.0; n],
            threshold,
            acts: vec![0; n],
            flips: vec![0; n],
            total_flips: 0,
            total_activations: 0,
            refreshes_issued: 0,
        }
    }

    pub fn geometry(&self) -> &Geometry {
        &self.geom
    }

    pub fn params(&self) -> &VictimModelParams {
        &self.params
    }

    /// Activate `addr`: account the activation and leak disturbance into all
    /// rows within the blast radius, recording any new bit flips.
    pub fn activate(&mut self, addr: RowAddr) {
        let idx = self.geom.flat_index(addr);
        self.acts[idx] += 1;
        self.total_activations += 1;
        for (victim, dist) in addr.neighbors(&self.geom, self.params.blast_radius) {
            let vi = self.geom.flat_index(victim);
            self.charge[vi] += self.params.coupling_decay.powi(dist as i32 - 1);
            self.settle_flips(vi);
        }
    }

    /// Refresh a single row: restores its charge. Flips stay recorded.
    pub fn refresh_row(&mut self, addr: RowAddr) {
        let idx = self.geom.flat_index(addr);
        self.charge[idx] = 0.0;
        self.refreshes_issued += 1;
    }

    /// Refresh every row in the device (e.g. the periodic auto-refresh at
    /// the end of a tREFW window, or an increased-refresh mitigation tick).
    pub fn refresh_all(&mut self) {
        for c in &mut self.charge {
            *c = 0.0;
        }
        // Count in row units so the cost metric is comparable with
        // `refresh_row`-based mitigations.
        self.refreshes_issued += self.geom.total_rows();
    }

    /// Deterministically reconcile a row's recorded flips with its charge.
    ///
    /// Expected flips are a monotone function of charge, so recorded flips
    /// can only grow; this is what makes flip counts monotone under
    /// common-random-number mitigation comparisons.
    fn settle_flips(&mut self, idx: usize) {
        let c = self.charge[idx];
        let t = self.threshold[idx];
        if c < t {
            return;
        }
        let overshoot = (c - t) / self.params.hc_first as f64;
        let expected =
            1 + (overshoot * self.params.flip_slope * self.params.cells_per_row as f64) as u32;
        let expected = expected.min(self.params.cells_per_row);
        if expected > self.flips[idx] {
            self.total_flips += (expected - self.flips[idx]) as u64;
            self.flips[idx] = expected;
        }
    }

    /// Total bit flips recorded since construction.
    pub fn total_flips(&self) -> u64 {
        self.total_flips
    }

    /// Number of distinct rows with at least one flipped bit.
    pub fn flipped_rows(&self) -> u64 {
        self.flips.iter().filter(|&&f| f > 0).count() as u64
    }

    /// Bit flips per million activations — the sweep's headline metric.
    pub fn flips_per_mact(&self) -> f64 {
        if self.total_activations == 0 {
            return 0.0;
        }
        self.total_flips as f64 * 1e6 / self.total_activations as f64
    }

    pub fn total_activations(&self) -> u64 {
        self.total_activations
    }

    /// Row-refresh operations performed by mitigations and auto-refresh,
    /// counted in row units (a full-device refresh counts every row).
    pub fn refreshes_issued(&self) -> u64 {
        self.refreshes_issued
    }

    /// Activation count of a row since construction.
    pub fn activations_of(&self, addr: RowAddr) -> u64 {
        self.acts[self.geom.flat_index(addr)]
    }

    /// Accumulated charge of a row (test/diagnostic hook).
    pub fn charge_of(&self, addr: RowAddr) -> f64 {
        self.charge[self.geom.flat_index(addr)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_jitter(hc: u64) -> VictimModelParams {
        VictimModelParams {
            threshold_jitter: 0.0,
            ..VictimModelParams::with_hc_first(hc)
        }
    }

    #[test]
    fn single_sided_flips_exactly_at_hc_first() {
        let g = Geometry::tiny(16);
        let mut d = DeviceState::new(g, no_jitter(1000), 1);
        let aggr = RowAddr::bank_row(0, 8);
        for _ in 0..999 {
            d.activate(aggr);
        }
        assert_eq!(d.total_flips(), 0);
        d.activate(aggr);
        // Both distance-1 victims cross threshold on the same activation.
        assert_eq!(d.flipped_rows(), 2);
    }

    #[test]
    fn double_sided_flips_at_half_per_aggressor() {
        let g = Geometry::tiny(16);
        let mut d = DeviceState::new(g, no_jitter(1000), 1);
        let (a1, a2) = (RowAddr::bank_row(0, 7), RowAddr::bank_row(0, 9));
        for _ in 0..499 {
            d.activate(a1);
            d.activate(a2);
        }
        let before = d.charge_of(RowAddr::bank_row(0, 8));
        assert!(before < 1000.0);
        d.activate(a1);
        d.activate(a2);
        // Victim row 8 received 2 units/iteration: flips at 500 per side.
        assert!(d.charge_of(RowAddr::bank_row(0, 8)) >= 1000.0);
        assert!(d.total_flips() > 0);
    }

    #[test]
    fn refresh_resets_charge_and_prevents_flips() {
        let g = Geometry::tiny(16);
        let mut d = DeviceState::new(g, no_jitter(1000), 1);
        let aggr = RowAddr::bank_row(0, 8);
        for _ in 0..600 {
            d.activate(aggr);
        }
        d.refresh_row(RowAddr::bank_row(0, 7));
        d.refresh_row(RowAddr::bank_row(0, 9));
        for _ in 0..600 {
            d.activate(aggr);
        }
        // 1200 total hammers but never 1000 within one refresh interval.
        assert_eq!(d.total_flips(), 0);
    }

    #[test]
    fn blast_radius_attenuates_with_distance() {
        let g = Geometry::tiny(16);
        let p = no_jitter(1000);
        let mut d = DeviceState::new(g, p, 1);
        let aggr = RowAddr::bank_row(0, 8);
        d.activate(aggr);
        let c1 = d.charge_of(RowAddr::bank_row(0, 7));
        let c2 = d.charge_of(RowAddr::bank_row(0, 6));
        let c3 = d.charge_of(RowAddr::bank_row(0, 5));
        assert!((c1 - 1.0).abs() < 1e-12);
        assert!((c2 - p.coupling_decay).abs() < 1e-12);
        assert_eq!(c3, 0.0, "beyond blast radius must receive nothing");
    }

    #[test]
    fn edge_rows_have_one_sided_victims() {
        let g = Geometry::tiny(16);
        let mut d = DeviceState::new(g, no_jitter(100), 1);
        let aggr = RowAddr::bank_row(0, 0);
        for _ in 0..100 {
            d.activate(aggr);
        }
        // Only row 1 (and attenuated row 2) can flip; no underflow panic.
        assert!(d.flipped_rows() >= 1);
        assert_eq!(d.activations_of(aggr), 100);
    }

    #[test]
    fn same_seed_same_thresholds() {
        let g = Geometry::tiny(64);
        let p = VictimModelParams::with_hc_first(5000);
        let a = DeviceState::new(g, p, 123);
        let b = DeviceState::new(g, p, 123);
        assert_eq!(a.threshold, b.threshold);
    }

    #[test]
    fn flip_count_monotone_in_hammer_count() {
        let g = Geometry::tiny(32);
        let mut d = DeviceState::new(g, no_jitter(500), 5);
        let aggr = RowAddr::bank_row(0, 16);
        let mut last = 0;
        for _ in 0..10 {
            for _ in 0..200 {
                d.activate(aggr);
            }
            assert!(d.total_flips() >= last);
            last = d.total_flips();
        }
        assert!(last > 0);
    }
}
