//! Per-row activation accounting and the charge-leakage victim model.
//!
//! Model. Each activation of an aggressor row leaks a distance-attenuated
//! quantum of disturbance into every row inside its blast radius:
//! a victim at distance `d` receives `coupling^(d-1)` units, so a victim at
//! distance 1 needs exactly `HC_first` single-sided hammers to flip, and a
//! double-sided victim flips at roughly `HC_first / 2` hammers per aggressor —
//! matching the experimental relationship in the ISCA 2020 paper. Refreshing
//! a row restores its charge (zeroes accumulated disturbance); bit flips
//! already recorded are permanent until the host rewrites the data, so flip
//! counters are cumulative.
//!
//! Cell-to-cell variation: each row draws a threshold jitter factor at device
//! construction from the seeded RNG. Keeping all randomness at construction
//! (never per-activation) means two simulations with the same seed see
//! byte-identical devices, which the CLI exploits for common-random-number
//! comparisons across mitigation configurations.
//!
//! ## Hot-path design
//!
//! The per-activation path is allocation-free and every per-window cost is
//! amortized O(1):
//!
//! * **Shared tables** ([`DeviceTables`]): the immutable, seed-derived parts
//!   of a device (per-row flip thresholds, the `coupling^(d-1)` attenuation
//!   table and its whole-window quanta template) live in an `Arc` so every
//!   experiment cell simulating the same device (common-random-number
//!   sweeps share the device seed) reuses one O(total_rows) derivation
//!   instead of repeating it per cell.
//! * **Epoch-based lazy refresh**: `refresh_all` — the per-tREFW-window
//!   full-device refresh — bumps a global epoch counter instead of zeroing
//!   `total_rows` charges. A row's charge is valid only if its last-write
//!   epoch matches the global epoch; stale charges read as zero and are
//!   reset lazily on the next write. This turns the dominant O(total_rows)
//!   cost of refresh-heavy configurations (increased-refresh at low
//!   `HC_first`, exactly the regime the paper projects) into O(1).
//! * **Incremental flip accounting**: `flipped_rows` is maintained as a
//!   counter on the 0→nonzero transition in the settle path, replacing the
//!   end-of-run full-device scan ([`DeviceState::flipped_rows_scan`] remains
//!   as the diagnostic reference, asserted equivalent in tests).
//! * **Structure-of-arrays row state + swappable settle kernels**
//!   ([`crate::kernel`]): per-row mutable state lives in parallel
//!   `charge`/`epoch`/`threshold`/`flips`/`meta` slabs, so an activation's
//!   blast window is a handful of *contiguous lanes per field* — exactly
//!   the shape SIMD wants. The leak-accumulate-and-settle step over a
//!   window runs through a [`Kernel`] selected once per device: an
//!   autovectorization-friendly scalar loop or a runtime-detected AVX2
//!   intrinsics kernel (4 × `f64` lanes, rare threshold-crossing lanes
//!   peeled to a scalar settle tail). The aggressor's own lane is included
//!   in the window with quantum `0.0` from the precomputed template —
//!   observationally a no-op (adding `+0.0` to a non-negative charge and
//!   stamping its epoch changes no observable; re-settling an unchanged
//!   charge is idempotent) — so the kernels have no skip-the-aggressor
//!   branch and every window is one dense lane range.
//! * **Coalesced activation runs** ([`DeviceState::activate_repeat`]):
//!   `n` consecutive activations of the same row with nothing in between
//!   collapse into one window pass whose per-lane partial sum stays
//!   register-resident across `n` adds. Bit-exact by construction: each
//!   lane performs the identical fp additions in the identical order, and
//!   since expected flips are a monotone function of final charge, settling
//!   once at the final charge records exactly the flips `n` separate
//!   settles would have.
//!
//! ## Section 5 victim model
//!
//! Three stored-data effects from the paper's Section 5 extend the charge
//! model, all precomputed at table-construction time so the per-activation
//! path keeps its shape:
//!
//! * **Data-pattern dependence** ([`DataPattern`]): the selected pattern's
//!   [`DataPattern::coupling_factor`] is folded into the precomputed
//!   attenuation table (it depends only on distance parity), scaling how
//!   hard aggressors couple into victims.
//! * **True-/anti-cell orientation**: each row draws an orientation bit
//!   from a dedicated RNG stream derived from the device seed (separate
//!   from the threshold stream, so legacy thresholds are unperturbed).
//!   Orientation decides each row's flip direction — true-cell rows fail
//!   `1 → 0`, anti-cell rows `0 → 1` — tracked in separate tallies.
//! * **Charged-cell budget**: pattern × orientation × row parity determine
//!   how many of a row's cells are charged and therefore flippable
//!   ([`DataPattern::vulnerable_cells`]); the budget shares the per-row
//!   `meta` word with the orientation bit, so the settle path reads both
//!   with one load.
//! * **On-die ECC** ([`crate::ecc`]): optional; never touches the dynamics,
//!   applied as a post-run scan over per-row raw flips
//!   ([`DeviceState::post_ecc_flips`]).
//!
//! With [`DataPattern::Legacy`] and ECC disabled (the defaults) every
//! factor is exactly 1.0 and every cell vulnerable: results are
//! byte-identical to the pre-Section-5 engine.
//!
//! The retained eager-zeroing reference implementation lives in
//! [`crate::reference`]; differential tests drive both against seeded random
//! action sequences and assert identical flips, charges, and refresh tallies.

use crate::ecc;
use crate::geometry::{Geometry, RowAddr};
use crate::kernel::{leak_window, Kernel, VictimTally, Window};
use crate::pattern::DataPattern;
use crate::rng::{derive_seed, SplitMix64};
use std::sync::Arc;

/// Stream discriminator mixed into the device seed for per-row true-/anti-
/// cell orientation (arbitrary constant; keeping orientation off the
/// threshold stream is what makes the Section 5 axes a pure overlay on the
/// legacy model).
pub(crate) const CELL_ORIENTATION_STREAM: u64 = 0xCE11;

/// High bit of a row's `meta` word: set for anti-cell rows (flips are 0→1).
pub(crate) const ANTI_CELL_BIT: u32 = 1 << 31;
/// Low 31 bits of a row's `meta` word: the row's charged (flippable) cells.
pub(crate) const VULN_MASK: u32 = ANTI_CELL_BIT - 1;

/// Parameters of the victim model.
#[derive(Debug, Clone, Copy)]
pub struct VictimModelParams {
    /// Minimum single-sided hammer count inducing the first bit flip in the
    /// most vulnerable row (the paper's `HC_first`; ~139k for DDR3-old,
    /// ~10k for LPDDR4-new, ~4.8k for the weakest chip tested).
    pub hc_first: u64,
    /// Maximum aggressor-to-victim distance with observable disturbance.
    pub blast_radius: u32,
    /// Multiplicative attenuation of coupling per extra row of distance.
    pub coupling_decay: f64,
    /// Number of DRAM cells (bits) per row; caps flips per row.
    pub cells_per_row: u32,
    /// How quickly additional cells flip once charge exceeds threshold,
    /// as a fraction of the row's cells per `HC_first` of overshoot.
    pub flip_slope: f64,
    /// Spread of per-row threshold jitter: row thresholds are uniform in
    /// `[hc_first, hc_first * (1 + jitter))`.
    pub threshold_jitter: f64,
    /// Stored data pattern (Section 5.1/5.2 victim model);
    /// [`DataPattern::Legacy`] reproduces the pattern-agnostic model.
    pub data_pattern: DataPattern,
    /// On-die ECC codeword size in cells; 0 disables ECC (Section 5.3).
    pub ecc_codeword_bits: u32,
}

impl VictimModelParams {
    /// Default number of cells per row (the LPDDR4-class 8 Kib row the
    /// sweep always simulates). Named so config-level validation (e.g. the
    /// ECC codeword bound in `rh-cli`) checks against the same figure
    /// [`VictimModelParams::with_hc_first`] builds with.
    pub const DEFAULT_CELLS_PER_ROW: u32 = 8192;

    /// Defaults roughly calibrated to the paper's LPDDR4-new corner, with
    /// the Section 5 axes off (legacy pattern, no ECC).
    pub fn with_hc_first(hc_first: u64) -> Self {
        Self {
            hc_first,
            blast_radius: 2,
            coupling_decay: 0.35,
            cells_per_row: Self::DEFAULT_CELLS_PER_ROW,
            flip_slope: 0.02,
            threshold_jitter: 0.25,
            data_pattern: DataPattern::Legacy,
            ecc_codeword_bits: 0,
        }
    }
}

/// The common device interface the engine drives: the optimized
/// [`DeviceState`] and the retained eager reference implementation
/// ([`crate::reference::EagerDeviceState`]) are interchangeable behind it,
/// which is what lets the benchmark harness and the differential tests run
/// the identical experiment loop over both.
pub trait Device {
    fn geometry(&self) -> &Geometry;
    fn params(&self) -> &VictimModelParams;
    /// Activate a row: account it and leak disturbance into its blast radius.
    fn activate(&mut self, addr: RowAddr);
    /// Apply `n` consecutive activations of the same row with nothing in
    /// between — the engine's activation-run coalescer calls this for runs
    /// of identical aggressor addresses with no interleaved mitigation
    /// action. The default implementation is the definitional `n` single
    /// activations (which is what the eager reference keeps, making it the
    /// ground truth the coalesced [`DeviceState`] override is differentially
    /// tested against).
    fn activate_repeat(&mut self, addr: RowAddr, n: u64) {
        for _ in 0..n {
            self.activate(addr);
        }
    }
    /// Whether pending coalesced activation runs at `a` and `b` may be
    /// applied in either order with bit-identical results — the engine's
    /// license to keep both runs open while their activations interleave.
    /// The conservative default only admits literal repeats (so the eager
    /// reference keeps strict step-at-a-time semantics and plain same-row
    /// coalescing keeps working); [`DeviceState`] widens it to the
    /// precomputed table of commuting same-bank spacings and to
    /// disjoint-window pairs (see `DeviceTables`).
    fn runs_commute(&self, a: RowAddr, b: RowAddr) -> bool {
        a == b
    }
    /// Structure hint for the engine's run-group scan: `Some(m)` promises
    /// that [`Device::runs_commute`] holds for every pair of addresses in
    /// different banks or farther than `m` rows apart in the same bank —
    /// letting the engine rule out conflicts with one bank compare and one
    /// row distance per pending run, and reserve the pairwise
    /// `runs_commute` calls for the rare same-bank near miss. `None` (the
    /// conservative default, kept by the eager reference whose
    /// repeats-only `runs_commute` has no such geometry) means no
    /// structure is promised and the engine must ask pairwise whenever
    /// anything else is pending. [`DeviceState`] returns the largest
    /// non-commuting spacing of its precomputed commutation table.
    fn conflict_radius(&self) -> Option<u32> {
        None
    }
    /// Refresh a single row (restore its charge). Flips stay recorded.
    fn refresh_row(&mut self, addr: RowAddr);
    /// Refresh every row in the device.
    fn refresh_all(&mut self);
    fn total_flips(&self) -> u64;
    fn flipped_rows(&self) -> u64;
    fn flips_per_mact(&self) -> f64;
    fn total_activations(&self) -> u64;
    fn refreshes_issued(&self) -> u64;
    /// Flips recorded in true-cell rows (charged `1` discharged to `0`).
    fn flips_1to0(&self) -> u64;
    /// Flips recorded in anti-cell rows (stored `0` read back as `1`).
    fn flips_0to1(&self) -> u64;
    /// Flips still visible after on-die ECC correction; `None` when the
    /// device has no ECC layer (`ecc_codeword_bits == 0`).
    fn post_ecc_flips(&self) -> Option<u64>;
}

/// Immutable, seed-derived per-device tables, shared between every
/// experiment cell that simulates the same device.
///
/// Construction is the only O(total_rows) step (threshold derivation); the
/// sweep executor builds one table set per distinct `(params, seed)` pair
/// and hands `Arc` clones to worker threads, so common-random-number cells
/// stop re-deriving thresholds per cell.
#[derive(Debug)]
pub struct DeviceTables {
    geom: Geometry,
    params: VictimModelParams,
    /// Seed the tables were derived from (also seeds the per-row ECC
    /// placement streams, keeping post-ECC counts a pure seed function).
    seed: u64,
    /// Per-row flip threshold (hc_first with jitter), precomputed.
    threshold: Vec<f64>,
    /// Minimum of the `threshold` slab: the device-wide threshold floor the
    /// kernels' accumulate pass compares against instead of loading per-lane
    /// thresholds (see [`crate::kernel`] — a floor trip is necessary for any
    /// real crossing, so gating the settle sweep on it is exact, and cold
    /// windows never touch the threshold/meta/flips slabs).
    threshold_floor: f64,
    /// `atten[d - 1] = coupling_decay^(d - 1) * pattern_factor(d)` for `d`
    /// in `1..=blast_radius`, precomputed so the per-activation path never
    /// calls `powi` and pays nothing for data-pattern dependence (the
    /// factor is parity-periodic, see [`DataPattern::coupling_factor`]).
    atten: Vec<f64>,
    /// Whole-window quanta template of length `2 * blast_radius + 1`:
    /// `atten` mirrored around a `0.0` center lane for the aggressor, so an
    /// activation's window is one contiguous slice of this (clipped at bank
    /// edges) and the settle kernels never branch on "is this the
    /// aggressor".
    window_quanta: Vec<f64>,
    /// `commute_spacings[s]` for same-bank row spacings `s in 0..=2r`:
    /// whether pending activation runs of two aggressors `s` rows apart may
    /// be applied in either order with bit-identical results. True exactly
    /// when every lane reached by *both* windows receives the same quantum
    /// from each (then the lane's charge is a sum of equal addends, which
    /// any interleaving evaluates identically); spacings beyond `2r` have
    /// disjoint windows and always commute. With the default radius 2 this
    /// holds for spacing 2 and 4 — precisely the double-/many-sided attack
    /// geometry — which is what lets the engine coalesce alternating
    /// aggressors, not just literal repeats.
    commute_spacings: Vec<bool>,
    /// Largest same-bank spacing with `commute_spacings[s] == false` — the
    /// device's [`Device::conflict_radius`]: any pair of runs in different
    /// banks or farther apart than this always commutes, which is what
    /// lets the engine's group scan skip the pairwise table lookups for
    /// the overwhelmingly common far-apart case.
    conflict_radius: u32,
    /// Per-row metadata word: true-/anti-cell orientation bit
    /// ([`ANTI_CELL_BIT`]) plus the charged-cell budget under the selected
    /// data pattern ([`VULN_MASK`]).
    meta: Vec<u32>,
}

impl DeviceTables {
    /// Derive the tables for a device. Fails with a clear error on a
    /// degenerate geometry (any zero dimension) or degenerate victim-model
    /// parameters (zero or over-wide `cells_per_row`, an ECC codeword
    /// larger than a row).
    pub fn new(geom: Geometry, params: VictimModelParams, seed: u64) -> Result<Self, String> {
        geom.validate()?;
        if params.cells_per_row == 0 {
            return Err("cells_per_row must be at least 1".to_string());
        }
        if params.cells_per_row > VULN_MASK {
            return Err(format!(
                "cells_per_row {} exceeds the 2^31 - 1 row-metadata budget",
                params.cells_per_row
            ));
        }
        if params.ecc_codeword_bits > params.cells_per_row {
            return Err(format!(
                "ECC codeword of {} bits exceeds the {} cells in a row",
                params.ecc_codeword_bits, params.cells_per_row
            ));
        }
        let n = geom.total_rows() as usize;
        let mut rng = SplitMix64::new(seed);
        let threshold: Vec<f64> = (0..n)
            .map(|_| params.hc_first as f64 * (1.0 + params.threshold_jitter * rng.next_f64()))
            .collect();
        let threshold_floor = threshold.iter().copied().fold(f64::INFINITY, f64::min);
        let atten: Vec<f64> = (1..=params.blast_radius)
            .map(|d| {
                params.coupling_decay.powi(d as i32 - 1) * params.data_pattern.coupling_factor(d)
            })
            .collect();
        let radius = params.blast_radius as usize;
        let mut window_quanta = vec![0.0; 2 * radius + 1];
        for d in 1..=radius {
            window_quanta[radius - d] = atten[d - 1];
            window_quanta[radius + d] = atten[d - 1];
        }
        let r = radius as i64;
        let commute_spacings = (0..=2 * r)
            .map(|s| {
                // Lanes at offset i from aggressor A are at offset i - s
                // from aggressor B (B sits s rows above A). The pair
                // commutes unless some lane inside both windows draws
                // bitwise-different quanta from the two.
                (-r..=r).all(|i| {
                    let (da, db) = (i.unsigned_abs(), (i - s).unsigned_abs());
                    da == 0
                        || db == 0
                        || da > r as u64
                        || db > r as u64
                        || atten[da as usize - 1].to_bits() == atten[db as usize - 1].to_bits()
                })
            })
            .collect::<Vec<bool>>();
        let conflict_radius = commute_spacings
            .iter()
            .enumerate()
            .filter(|&(_, commutes)| !commutes)
            .map(|(s, _)| s as u32)
            .max()
            .unwrap_or(0);
        // Orientation comes from its own seed-derived stream so enabling
        // the Section 5 axes never perturbs the threshold stream above —
        // and so the true-/anti-cell layout is a pure function of the
        // device seed, independent of hc_first/pattern (tested below).
        let mut orient_rng = SplitMix64::new(derive_seed(seed, &[CELL_ORIENTATION_STREAM]));
        let rows_per_bank = geom.rows_per_bank;
        let meta = (0..n)
            .map(|i| {
                let anti = orient_rng.next_u64() & 1 == 1;
                let row = i as u32 % rows_per_bank;
                let vuln = params
                    .data_pattern
                    .vulnerable_cells(params.cells_per_row, row, anti);
                u32::from(anti) << 31 | vuln
            })
            .collect();
        Ok(Self {
            geom,
            params,
            seed,
            threshold,
            threshold_floor,
            atten,
            window_quanta,
            commute_spacings,
            conflict_radius,
            meta,
        })
    }

    /// Like [`DeviceTables::new`], wrapped for sharing across cells/threads.
    pub fn shared(
        geom: Geometry,
        params: VictimModelParams,
        seed: u64,
    ) -> Result<Arc<Self>, String> {
        Ok(Arc::new(Self::new(geom, params, seed)?))
    }

    pub fn geometry(&self) -> &Geometry {
        &self.geom
    }

    pub fn params(&self) -> &VictimModelParams {
        &self.params
    }

    /// Flip threshold of a row (test/diagnostic hook).
    pub fn threshold_of(&self, addr: RowAddr) -> f64 {
        self.threshold[self.geom.flat_index(addr)]
    }

    /// Precomputed coupling attenuation at aggressor distance `d >= 1`
    /// (distance decay × data-pattern factor).
    pub fn attenuation(&self, dist: u32) -> f64 {
        self.atten[(dist - 1) as usize]
    }

    /// Whether a row is an anti-cell row (flips read as 0→1) under this
    /// device seed (test/diagnostic hook).
    pub fn anti_cell_of(&self, addr: RowAddr) -> bool {
        self.meta[self.geom.flat_index(addr)] & ANTI_CELL_BIT != 0
    }

    /// The row's charged — and therefore flippable — cell budget under the
    /// selected data pattern (test/diagnostic hook).
    pub fn vulnerable_cells_of(&self, addr: RowAddr) -> u32 {
        self.meta[self.geom.flat_index(addr)] & VULN_MASK
    }
}

/// Mutable state of the simulated device, laid out structure-of-arrays:
/// each per-row field is its own dense slab, so an activation's blast
/// window is a contiguous lane range in every slab and the settle kernels
/// ([`crate::kernel`]) stream it with SIMD loads. Immutable tables are
/// `Arc`-shared ([`DeviceTables`]); refresh is epoch-based (see the module
/// docs).
///
/// The `threshold` and `meta` slabs are per-cell copies of the shared
/// tables, made during the per-cell reset (which already streams over every
/// row to zero the mutable slabs) — keeping the kernels reading from the
/// device's own contiguous memory rather than chasing the `Arc`.
#[derive(Debug, Clone)]
pub struct DeviceState {
    tables: Arc<DeviceTables>,
    /// Accumulated disturbance per row, in units of distance-1 hammers.
    /// Valid only while the row's `epochs` entry matches the device epoch;
    /// stale values read as 0.
    charge: Vec<f64>,
    /// Per-row epoch of the last charge write (or targeted refresh).
    epochs: Vec<u64>,
    /// Per-row flip threshold (copied from the shared tables at cell reset).
    threshold: Vec<f64>,
    /// Per-row recorded bit flips (cumulative, monotone).
    flips: Vec<u32>,
    /// Per-row orientation bit + charged-cell budget (copied from tables).
    meta: Vec<u32>,
    /// Activations per row since construction/reset (aggressor-side
    /// accounting only; victim updates never touch it).
    acts: Vec<u64>,
    /// Settle kernel, selected once at construction (see [`Kernel`]).
    kernel: Kernel,
    /// Global refresh epoch; bumped O(1) by `refresh_all`.
    epoch: u64,
    total_flips: u64,
    total_activations: u64,
    refreshes_issued: u64,
    /// Distinct rows with at least one flip, maintained incrementally on the
    /// 0→nonzero transition in the settle path.
    flipped_row_count: u64,
    /// Cumulative flips in true-cell rows (charged 1 → 0).
    flips_1to0: u64,
    /// Cumulative flips in anti-cell rows (stored 0 → 1).
    flips_0to1: u64,
}

impl DeviceState {
    /// Build a device with freshly derived tables and the auto-selected
    /// kernel. Panics on a degenerate geometry; use [`Geometry::validate`] /
    /// [`DeviceTables::new`] first on untrusted input.
    pub fn new(geom: Geometry, params: VictimModelParams, seed: u64) -> Self {
        let tables = DeviceTables::shared(geom, params, seed)
            .unwrap_or_else(|e| panic!("invalid device geometry: {e}"));
        Self::with_tables(tables)
    }

    /// Build a device around pre-derived shared tables, with the
    /// auto-selected kernel ([`Kernel::auto`]).
    pub fn with_tables(tables: Arc<DeviceTables>) -> Self {
        Self::with_tables_and_kernel(tables, Kernel::auto())
    }

    /// Build a device around pre-derived shared tables with a pinned settle
    /// kernel. The kernel can never affect results (differential fuzz tests
    /// assert it), only throughput.
    pub fn with_tables_and_kernel(tables: Arc<DeviceTables>, kernel: Kernel) -> Self {
        let mut device = Self {
            tables: tables.clone(),
            charge: Vec::new(),
            epochs: Vec::new(),
            threshold: Vec::new(),
            flips: Vec::new(),
            meta: Vec::new(),
            acts: Vec::new(),
            kernel,
            epoch: 0,
            total_flips: 0,
            total_activations: 0,
            refreshes_issued: 0,
            flipped_row_count: 0,
            flips_1to0: 0,
            flips_0to1: 0,
        };
        device.reset_for_cell(tables);
        device
    }

    /// Reuse this device's buffers for a new experiment cell: swap in the
    /// cell's tables and reset every slab in one streaming pass (the
    /// per-row flip counters have to be zeroed for the new cell anyway, so
    /// the charge/epoch slabs and the threshold/meta copies from the shared
    /// tables ride along; no reallocation unless the geometry grew).
    /// Equivalent to `DeviceState::with_tables` minus the allocations —
    /// executor threads call this once per cell. Note this is a per-*cell*
    /// O(total_rows) cost; the per-*tREFW-window* `refresh_all` inside a
    /// run stays the O(1) epoch bump. The selected kernel is retained.
    pub fn reset_for_cell(&mut self, tables: Arc<DeviceTables>) {
        self.tables = tables;
        let n = self.tables.geom.total_rows() as usize;
        self.charge.clear();
        self.charge.resize(n, 0.0);
        self.epochs.clear();
        self.epochs.resize(n, 0);
        self.threshold.clear();
        self.threshold.extend_from_slice(&self.tables.threshold);
        self.flips.clear();
        self.flips.resize(n, 0);
        self.meta.clear();
        self.meta.extend_from_slice(&self.tables.meta);
        self.acts.clear();
        self.acts.resize(n, 0);
        self.epoch = 0;
        self.total_flips = 0;
        self.total_activations = 0;
        self.refreshes_issued = 0;
        self.flipped_row_count = 0;
        self.flips_1to0 = 0;
        self.flips_0to1 = 0;
    }

    /// The shared immutable tables backing this device.
    pub fn tables(&self) -> &Arc<DeviceTables> {
        &self.tables
    }

    /// The settle kernel this device runs.
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// Swap the settle kernel (the benchmark harness re-times cells under
    /// both kernels on one reused device). Takes effect on the next
    /// activation; results are kernel-independent by construction.
    pub fn set_kernel(&mut self, kernel: Kernel) {
        self.kernel = kernel;
    }

    pub fn geometry(&self) -> &Geometry {
        &self.tables.geom
    }

    pub fn params(&self) -> &VictimModelParams {
        &self.tables.params
    }

    /// Activate `addr`: account the activation and leak disturbance into all
    /// rows within the blast radius, recording any new bit flips.
    pub fn activate(&mut self, addr: RowAddr) {
        self.activate_repeat(addr, 1);
    }

    /// Apply `n` consecutive activations of `addr` in one window pass —
    /// bit-identical to `n` separate [`DeviceState::activate`] calls (each
    /// lane performs the same fp additions in the same order, and the
    /// settle is a monotone function of the final charge), but the partial
    /// sums stay register-resident and the window is walked once.
    ///
    /// Allocation-free: the window is a contiguous lane range of the SoA
    /// slabs addressed by flat-index arithmetic (same bank ⇒ contiguous
    /// rows), its quanta are a slice of the precomputed whole-window
    /// template (aggressor lane 0.0), and the walk runs through the settle
    /// kernel selected at construction.
    pub fn activate_repeat(&mut self, addr: RowAddr, n: u64) {
        if n == 0 {
            return;
        }
        let idx = self.tables.geom.flat_index(addr);
        self.acts[idx] += n;
        self.total_activations += n;
        let row = addr.row;
        let radius = self.tables.params.blast_radius;
        // Window bounds below and above the aggressor, clipped at bank
        // edges (bank-contiguous flat indexing keeps the window inside the
        // aggressor's bank).
        let below = row.min(radius) as usize;
        let above = (self.tables.geom.rows_per_bank - 1 - row).min(radius) as usize;
        if below + above == 0 {
            // Zero radius or a single-row bank: no victims to disturb.
            return;
        }
        let (lo, hi) = (idx - below, idx + above);
        let r = radius as usize;
        let p = &self.tables.params;
        let (hc_first, flip_slope) = (p.hc_first, p.flip_slope);
        let mut tally = VictimTally::default();
        let window = Window {
            charge: &mut self.charge[lo..=hi],
            epoch: &mut self.epochs[lo..=hi],
            threshold: &self.threshold[lo..=hi],
            flips: &mut self.flips[lo..=hi],
            meta: &self.meta[lo..=hi],
            quanta: &self.tables.window_quanta[r - below..=r + above],
            floor: self.tables.threshold_floor,
        };
        leak_window(
            self.kernel,
            window,
            n,
            self.epoch,
            hc_first,
            flip_slope,
            &mut tally,
        );
        self.total_flips += tally.flips;
        self.flipped_row_count += tally.rows_flipped;
        self.flips_1to0 += tally.flips_1to0;
        self.flips_0to1 += tally.flips_0to1;
    }

    /// Whether coalesced runs at `a` and `b` commute bit-exactly: different
    /// banks touch disjoint slabs; same-bank pairs consult the precomputed
    /// spacing table (spacings beyond `2r` are disjoint windows). Bank-edge
    /// clipping only removes lanes from a window, so the unclipped table is
    /// conservative there.
    pub fn runs_commute(&self, a: RowAddr, b: RowAddr) -> bool {
        if (a.channel, a.rank, a.bank) != (b.channel, b.rank, b.bank) {
            return true;
        }
        let s = a.row.abs_diff(b.row) as usize;
        self.tables.commute_spacings.get(s).copied().unwrap_or(true)
    }

    /// The largest same-bank spacing at which two runs may fail to
    /// commute, from the precomputed table (see [`Device::conflict_radius`]).
    pub fn conflict_radius(&self) -> u32 {
        self.tables.conflict_radius
    }

    /// Refresh a single row: restores its charge. Flips stay recorded.
    pub fn refresh_row(&mut self, addr: RowAddr) {
        let idx = self.tables.geom.flat_index(addr);
        self.charge[idx] = 0.0;
        self.epochs[idx] = self.epoch;
        self.refreshes_issued += 1;
    }

    /// Refresh every row in the device (e.g. the periodic auto-refresh at
    /// the end of a tREFW window, or an increased-refresh mitigation tick).
    /// O(1): bumps the epoch instead of zeroing every charge.
    pub fn refresh_all(&mut self) {
        self.epoch += 1;
        // Count in row units so the cost metric is comparable with
        // `refresh_row`-based mitigations.
        self.refreshes_issued += self.tables.geom.total_rows();
    }

    /// Total bit flips recorded since construction (pre-ECC).
    pub fn total_flips(&self) -> u64 {
        self.total_flips
    }

    /// Flips recorded in true-cell rows (charged `1` discharged to `0`).
    /// Together with [`DeviceState::flips_0to1`] this partitions
    /// [`DeviceState::total_flips`].
    pub fn flips_1to0(&self) -> u64 {
        self.flips_1to0
    }

    /// Flips recorded in anti-cell rows (stored `0` read back as `1`).
    pub fn flips_0to1(&self) -> u64 {
        self.flips_0to1
    }

    /// Flips still visible after on-die ECC correction, or `None` when ECC
    /// is disabled. A post-run scan over per-row raw flip counts (see
    /// [`crate::ecc`]) — never on the per-activation path, and a pure
    /// function of the device seed and the raw flip state.
    pub fn post_ecc_flips(&self) -> Option<u64> {
        let cw = self.tables.params.ecc_codeword_bits;
        if cw == 0 {
            return None;
        }
        Some(ecc::post_ecc_total(
            self.flips.iter().copied(),
            self.tables.params.cells_per_row,
            cw,
            self.tables.seed,
        ))
    }

    /// Number of distinct rows with at least one flipped bit (O(1) counter).
    pub fn flipped_rows(&self) -> u64 {
        self.flipped_row_count
    }

    /// Reference full-scan count of flipped rows. Diagnostic only: tests
    /// assert it always equals the incrementally-maintained
    /// [`DeviceState::flipped_rows`] counter.
    pub fn flipped_rows_scan(&self) -> u64 {
        self.flips.iter().filter(|&&f| f > 0).count() as u64
    }

    /// Bit flips per million activations — the sweep's headline metric.
    pub fn flips_per_mact(&self) -> f64 {
        if self.total_activations == 0 {
            return 0.0;
        }
        self.total_flips as f64 * 1e6 / self.total_activations as f64
    }

    pub fn total_activations(&self) -> u64 {
        self.total_activations
    }

    /// Row-refresh operations performed by mitigations and auto-refresh,
    /// counted in row units (a full-device refresh counts every row).
    pub fn refreshes_issued(&self) -> u64 {
        self.refreshes_issued
    }

    /// Activation count of a row since construction.
    pub fn activations_of(&self, addr: RowAddr) -> u64 {
        self.acts[self.tables.geom.flat_index(addr)]
    }

    /// Accumulated charge of a row (test/diagnostic hook), resolved against
    /// the refresh epoch.
    pub fn charge_of(&self, addr: RowAddr) -> f64 {
        let idx = self.tables.geom.flat_index(addr);
        if self.epochs[idx] == self.epoch {
            self.charge[idx]
        } else {
            0.0
        }
    }
}

impl Device for DeviceState {
    fn geometry(&self) -> &Geometry {
        DeviceState::geometry(self)
    }

    fn params(&self) -> &VictimModelParams {
        DeviceState::params(self)
    }

    fn activate(&mut self, addr: RowAddr) {
        DeviceState::activate(self, addr)
    }

    fn activate_repeat(&mut self, addr: RowAddr, n: u64) {
        DeviceState::activate_repeat(self, addr, n)
    }

    fn runs_commute(&self, a: RowAddr, b: RowAddr) -> bool {
        DeviceState::runs_commute(self, a, b)
    }

    fn conflict_radius(&self) -> Option<u32> {
        Some(DeviceState::conflict_radius(self))
    }

    fn refresh_row(&mut self, addr: RowAddr) {
        DeviceState::refresh_row(self, addr)
    }

    fn refresh_all(&mut self) {
        DeviceState::refresh_all(self)
    }

    fn total_flips(&self) -> u64 {
        DeviceState::total_flips(self)
    }

    fn flipped_rows(&self) -> u64 {
        DeviceState::flipped_rows(self)
    }

    fn flips_per_mact(&self) -> f64 {
        DeviceState::flips_per_mact(self)
    }

    fn total_activations(&self) -> u64 {
        DeviceState::total_activations(self)
    }

    fn refreshes_issued(&self) -> u64 {
        DeviceState::refreshes_issued(self)
    }

    fn flips_1to0(&self) -> u64 {
        DeviceState::flips_1to0(self)
    }

    fn flips_0to1(&self) -> u64 {
        DeviceState::flips_0to1(self)
    }

    fn post_ecc_flips(&self) -> Option<u64> {
        DeviceState::post_ecc_flips(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_jitter(hc: u64) -> VictimModelParams {
        VictimModelParams {
            threshold_jitter: 0.0,
            ..VictimModelParams::with_hc_first(hc)
        }
    }

    /// Every kernel the running CPU can execute, for kernel-parameterized
    /// tests.
    fn available_kernels() -> Vec<Kernel> {
        let mut kernels = vec![Kernel::Scalar];
        if crate::kernel::avx2_available() {
            kernels.push(Kernel::Avx2);
        }
        kernels
    }

    #[test]
    fn single_sided_flips_exactly_at_hc_first() {
        let g = Geometry::tiny(16);
        let mut d = DeviceState::new(g, no_jitter(1000), 1);
        let aggr = RowAddr::bank_row(0, 8);
        for _ in 0..999 {
            d.activate(aggr);
        }
        assert_eq!(d.total_flips(), 0);
        d.activate(aggr);
        // Both distance-1 victims cross threshold on the same activation.
        assert_eq!(d.flipped_rows(), 2);
    }

    #[test]
    fn double_sided_flips_at_half_per_aggressor() {
        let g = Geometry::tiny(16);
        let mut d = DeviceState::new(g, no_jitter(1000), 1);
        let (a1, a2) = (RowAddr::bank_row(0, 7), RowAddr::bank_row(0, 9));
        for _ in 0..499 {
            d.activate(a1);
            d.activate(a2);
        }
        let before = d.charge_of(RowAddr::bank_row(0, 8));
        assert!(before < 1000.0);
        d.activate(a1);
        d.activate(a2);
        // Victim row 8 received 2 units/iteration: flips at 500 per side.
        assert!(d.charge_of(RowAddr::bank_row(0, 8)) >= 1000.0);
        assert!(d.total_flips() > 0);
    }

    #[test]
    fn refresh_resets_charge_and_prevents_flips() {
        let g = Geometry::tiny(16);
        let mut d = DeviceState::new(g, no_jitter(1000), 1);
        let aggr = RowAddr::bank_row(0, 8);
        for _ in 0..600 {
            d.activate(aggr);
        }
        d.refresh_row(RowAddr::bank_row(0, 7));
        d.refresh_row(RowAddr::bank_row(0, 9));
        for _ in 0..600 {
            d.activate(aggr);
        }
        // 1200 total hammers but never 1000 within one refresh interval.
        assert_eq!(d.total_flips(), 0);
    }

    #[test]
    fn refresh_all_is_epoch_lazy_but_observably_eager() {
        let g = Geometry::tiny(16);
        let mut d = DeviceState::new(g, no_jitter(1000), 1);
        let aggr = RowAddr::bank_row(0, 8);
        for _ in 0..600 {
            d.activate(aggr);
        }
        assert!(d.charge_of(RowAddr::bank_row(0, 7)) > 0.0);
        d.refresh_all();
        // Charges read as zero immediately, and the refresh tally counts
        // every row even though nothing was eagerly zeroed.
        assert_eq!(d.charge_of(RowAddr::bank_row(0, 7)), 0.0);
        assert_eq!(d.refreshes_issued(), g.total_rows());
        for _ in 0..600 {
            d.activate(aggr);
        }
        assert_eq!(d.total_flips(), 0, "stale pre-refresh charge leaked in");
    }

    #[test]
    fn blast_radius_attenuates_with_distance() {
        let g = Geometry::tiny(16);
        let p = no_jitter(1000);
        let mut d = DeviceState::new(g, p, 1);
        let aggr = RowAddr::bank_row(0, 8);
        d.activate(aggr);
        let c1 = d.charge_of(RowAddr::bank_row(0, 7));
        let c2 = d.charge_of(RowAddr::bank_row(0, 6));
        let c3 = d.charge_of(RowAddr::bank_row(0, 5));
        assert!((c1 - 1.0).abs() < 1e-12);
        assert!((c2 - p.coupling_decay).abs() < 1e-12);
        assert_eq!(c3, 0.0, "beyond blast radius must receive nothing");
    }

    #[test]
    fn aggressor_lane_receives_no_charge() {
        // The window includes the aggressor with quantum 0.0; its charge
        // must stay exactly zero (not -0.0, not accumulated).
        let g = Geometry::tiny(16);
        let mut d = DeviceState::new(g, no_jitter(1000), 1);
        let aggr = RowAddr::bank_row(0, 8);
        for _ in 0..500 {
            d.activate(aggr);
        }
        assert_eq!(d.charge_of(aggr).to_bits(), 0.0f64.to_bits());
    }

    #[test]
    fn edge_rows_have_one_sided_victims() {
        let g = Geometry::tiny(16);
        let mut d = DeviceState::new(g, no_jitter(100), 1);
        let aggr = RowAddr::bank_row(0, 0);
        for _ in 0..100 {
            d.activate(aggr);
        }
        // Only row 1 (and attenuated row 2) can flip; no underflow panic.
        assert!(d.flipped_rows() >= 1);
        assert_eq!(d.activations_of(aggr), 100);
    }

    #[test]
    fn same_seed_same_thresholds() {
        let g = Geometry::tiny(64);
        let p = VictimModelParams::with_hc_first(5000);
        let a = DeviceTables::new(g, p, 123).unwrap();
        let b = DeviceTables::new(g, p, 123).unwrap();
        assert_eq!(a.threshold, b.threshold);
    }

    #[test]
    fn attenuation_table_matches_powi() {
        let p = VictimModelParams::with_hc_first(1000);
        let t = DeviceTables::new(Geometry::tiny(64), p, 0).unwrap();
        for d in 1..=p.blast_radius {
            assert_eq!(t.attenuation(d), p.coupling_decay.powi(d as i32 - 1));
        }
    }

    /// The tentpole's window template: `atten` mirrored around a 0.0
    /// aggressor lane, so one contiguous slice covers any clipped window.
    #[test]
    fn window_quanta_template_mirrors_attenuation_around_zero_center() {
        let p = VictimModelParams::with_hc_first(1000);
        let t = DeviceTables::new(Geometry::tiny(64), p, 0).unwrap();
        let r = p.blast_radius as usize;
        assert_eq!(t.window_quanta.len(), 2 * r + 1);
        assert_eq!(t.window_quanta[r].to_bits(), 0.0f64.to_bits());
        for d in 1..=p.blast_radius {
            assert_eq!(t.window_quanta[r - d as usize], t.attenuation(d));
            assert_eq!(t.window_quanta[r + d as usize], t.attenuation(d));
        }
    }

    /// Spacing-2 and spacing-4 aggressor pairs (the double-/many-sided
    /// attack geometry) commute under the default radius-2 model; odd
    /// spacings inside the window do not (a shared lane draws distance-1
    /// quanta from one aggressor and distance-2 from the other).
    #[test]
    fn runs_commute_matches_the_radius_two_geometry() {
        let g = Geometry {
            banks: 2,
            ..Geometry::tiny(64)
        };
        let d = DeviceState::new(g, VictimModelParams::with_hc_first(1000), 1);
        let at = |bank, row| RowAddr {
            channel: 0,
            rank: 0,
            bank,
            row,
        };
        let expected = [true, false, true, false, true];
        for (s, &want) in expected.iter().enumerate() {
            assert_eq!(
                d.runs_commute(at(0, 20), at(0, 20 + s as u32)),
                want,
                "spacing {s}"
            );
            assert_eq!(
                d.runs_commute(at(0, 20 + s as u32), at(0, 20)),
                want,
                "spacing {s} reversed"
            );
        }
        // Beyond 2r the windows are disjoint; other banks always commute.
        assert!(d.runs_commute(at(0, 20), at(0, 25)));
        assert!(d.runs_commute(at(0, 20), at(1, 21)));
        // The structure hint must cover every non-commuting spacing above:
        // at radius 2 the largest is 3.
        assert_eq!(Device::conflict_radius(&d), Some(3));
        for (s, &commutes) in expected.iter().enumerate() {
            if !commutes {
                assert!(s as u32 <= DeviceState::conflict_radius(&d));
            }
        }
    }

    #[test]
    fn degenerate_geometry_is_rejected_with_clear_error() {
        let p = VictimModelParams::with_hc_first(1000);
        let err = DeviceTables::new(Geometry::tiny(0), p, 0).unwrap_err();
        assert!(err.contains("rows_per_bank"), "got '{err}'");
    }

    #[test]
    fn flip_count_monotone_in_hammer_count() {
        let g = Geometry::tiny(32);
        let mut d = DeviceState::new(g, no_jitter(500), 5);
        let aggr = RowAddr::bank_row(0, 16);
        let mut last = 0;
        for _ in 0..10 {
            for _ in 0..200 {
                d.activate(aggr);
            }
            assert!(d.total_flips() >= last);
            last = d.total_flips();
        }
        assert!(last > 0);
    }

    #[test]
    fn flipped_rows_counter_matches_full_scan() {
        let g = Geometry::tiny(64);
        let mut d = DeviceState::new(g, VictimModelParams::with_hc_first(300), 9);
        let mut rng = SplitMix64::new(77);
        for _ in 0..20_000 {
            // Half the traffic hammers one hot row so thresholds are crossed
            // between the (rare) full refreshes.
            let row = if rng.chance(0.5) {
                32
            } else {
                rng.gen_range(64) as u32
            };
            d.activate(RowAddr::bank_row(0, row));
            if rng.chance(0.0005) {
                d.refresh_all();
            }
        }
        assert!(d.total_flips() > 0, "test must exercise flips");
        assert_eq!(d.flipped_rows(), d.flipped_rows_scan());
    }

    #[test]
    fn shared_tables_produce_identical_devices() {
        let g = Geometry::tiny(64);
        let p = VictimModelParams::with_hc_first(800);
        let tables = DeviceTables::shared(g, p, 5).unwrap();
        let mut a = DeviceState::with_tables(tables.clone());
        let mut b = DeviceState::new(g, p, 5);
        let aggr = RowAddr::bank_row(0, 32);
        for _ in 0..2_000 {
            a.activate(aggr);
            b.activate(aggr);
        }
        assert_eq!(a.total_flips(), b.total_flips());
        assert_eq!(
            a.charge_of(RowAddr::bank_row(0, 31)).to_bits(),
            b.charge_of(RowAddr::bank_row(0, 31)).to_bits()
        );
        assert_eq!(
            Arc::strong_count(&tables),
            2,
            "tables are shared, not cloned"
        );
    }

    #[test]
    fn reset_for_cell_is_equivalent_to_fresh_construction() {
        let g = Geometry::tiny(64);
        let p1 = VictimModelParams::with_hc_first(500);
        let p2 = VictimModelParams::with_hc_first(900);
        let t1 = DeviceTables::shared(g, p1, 3).unwrap();
        let t2 = DeviceTables::shared(g, p2, 3).unwrap();

        // Dirty a device under tables 1, then reset it for tables 2.
        let mut reused = DeviceState::with_tables(t1);
        for _ in 0..1_500 {
            reused.activate(RowAddr::bank_row(0, 20));
        }
        assert!(reused.total_flips() > 0);
        reused.reset_for_cell(t2.clone());
        assert_eq!(reused.total_flips(), 0);
        assert_eq!(reused.flipped_rows(), 0);
        assert_eq!(reused.total_activations(), 0);
        assert_eq!(reused.refreshes_issued(), 0);
        assert_eq!(reused.charge_of(RowAddr::bank_row(0, 19)), 0.0);

        let mut fresh = DeviceState::with_tables(t2);
        let mut rng = SplitMix64::new(11);
        for _ in 0..5_000 {
            let addr = RowAddr::bank_row(0, rng.gen_range(64) as u32);
            reused.activate(addr);
            fresh.activate(addr);
            if rng.chance(0.02) {
                reused.refresh_all();
                fresh.refresh_all();
            }
        }
        assert_eq!(reused.total_flips(), fresh.total_flips());
        assert_eq!(reused.flipped_rows(), fresh.flipped_rows());
        assert_eq!(reused.refreshes_issued(), fresh.refreshes_issued());
        for row in 0..64 {
            let a = reused.charge_of(RowAddr::bank_row(0, row));
            let b = fresh.charge_of(RowAddr::bank_row(0, row));
            assert_eq!(a.to_bits(), b.to_bits(), "charge mismatch at row {row}");
        }
    }

    /// The tentpole's coalescing exactness bar: `activate_repeat(addr, n)`
    /// must be bit-identical to `n` separate activations — per-row charges,
    /// flips, direction split, and counters — under every available kernel,
    /// interleaved with targeted and full refreshes.
    #[test]
    fn activate_repeat_is_bit_identical_to_repeated_activates() {
        let g = Geometry::tiny(64);
        let p = VictimModelParams {
            data_pattern: DataPattern::RowStripe,
            ecc_codeword_bits: 128,
            ..VictimModelParams::with_hc_first(300)
        };
        let tables = DeviceTables::shared(g, p, 21).unwrap();
        for kernel in available_kernels() {
            let mut coalesced = DeviceState::with_tables_and_kernel(tables.clone(), kernel);
            let mut stepped = DeviceState::with_tables_and_kernel(tables.clone(), kernel);
            let mut rng = SplitMix64::new(4242);
            for _ in 0..2_000 {
                let row = rng.gen_range(64) as u32;
                let addr = RowAddr::bank_row(0, row);
                let n = 1 + rng.gen_range(40);
                coalesced.activate_repeat(addr, n);
                for _ in 0..n {
                    stepped.activate(addr);
                }
                if rng.chance(0.05) {
                    let r = RowAddr::bank_row(0, rng.gen_range(64) as u32);
                    coalesced.refresh_row(r);
                    stepped.refresh_row(r);
                }
                if rng.chance(0.01) {
                    coalesced.refresh_all();
                    stepped.refresh_all();
                }
            }
            assert!(coalesced.total_flips() > 0, "sequence must exercise flips");
            assert_eq!(coalesced.total_flips(), stepped.total_flips());
            assert_eq!(coalesced.flipped_rows(), stepped.flipped_rows());
            assert_eq!(coalesced.total_activations(), stepped.total_activations());
            assert_eq!(coalesced.flips_1to0(), stepped.flips_1to0());
            assert_eq!(coalesced.flips_0to1(), stepped.flips_0to1());
            assert_eq!(coalesced.post_ecc_flips(), stepped.post_ecc_flips());
            for row in 0..64 {
                let addr = RowAddr::bank_row(0, row);
                assert_eq!(
                    coalesced.charge_of(addr).to_bits(),
                    stepped.charge_of(addr).to_bits(),
                    "kernel {kernel}: charge diverged at row {row}"
                );
                assert_eq!(coalesced.activations_of(addr), stepped.activations_of(addr));
            }
        }
    }

    /// Kernel independence at the device level: a scalar-pinned and an
    /// AVX2-pinned device driven through the same sequence agree bit for
    /// bit (skipped where the CPU has no AVX2 — the differential fuzz suite
    /// covers scalar vs eager there).
    #[test]
    fn scalar_and_avx2_kernels_agree_bit_for_bit() {
        if !crate::kernel::avx2_available() {
            return;
        }
        let g = Geometry::tiny(128);
        let p = VictimModelParams::with_hc_first(400);
        let tables = DeviceTables::shared(g, p, 7).unwrap();
        let mut scalar = DeviceState::with_tables_and_kernel(tables.clone(), Kernel::Scalar);
        let mut avx2 = DeviceState::with_tables_and_kernel(tables, Kernel::Avx2);
        let mut rng = SplitMix64::new(99);
        for _ in 0..30_000 {
            // Half the traffic hammers a hot row so thresholds are crossed
            // between the (rare) full refreshes.
            let row = if rng.chance(0.5) {
                64
            } else {
                rng.gen_range(128) as u32
            };
            let addr = RowAddr::bank_row(0, row);
            scalar.activate(addr);
            avx2.activate(addr);
            if rng.chance(0.0005) {
                scalar.refresh_all();
                avx2.refresh_all();
            }
        }
        assert!(scalar.total_flips() > 0);
        assert_eq!(scalar.total_flips(), avx2.total_flips());
        assert_eq!(scalar.flipped_rows(), avx2.flipped_rows());
        for row in 0..128 {
            let addr = RowAddr::bank_row(0, row);
            assert_eq!(
                scalar.charge_of(addr).to_bits(),
                avx2.charge_of(addr).to_bits(),
                "charge diverged at row {row}"
            );
        }
    }

    /// Satellite: true-/anti-cell assignment is a pure function of the
    /// device seed — identical across rebuilds, across `HC_first` values,
    /// and across data patterns; different seeds lay out differently.
    #[test]
    fn cell_orientation_is_a_pure_function_of_device_seed() {
        let g = Geometry::tiny(256);
        let orientations = |hc: u64, pattern: DataPattern, seed: u64| -> Vec<bool> {
            let params = VictimModelParams {
                data_pattern: pattern,
                ..VictimModelParams::with_hc_first(hc)
            };
            let t = DeviceTables::new(g, params, seed).unwrap();
            (0..256)
                .map(|r| t.anti_cell_of(RowAddr::bank_row(0, r)))
                .collect()
        };
        let base = orientations(1000, DataPattern::RowStripe, 42);
        assert_eq!(base, orientations(1000, DataPattern::RowStripe, 42));
        assert_eq!(
            base,
            orientations(5000, DataPattern::Solid, 42),
            "orientation must not depend on hc_first or pattern"
        );
        assert_eq!(base, orientations(1000, DataPattern::Legacy, 42));
        assert_ne!(base, orientations(1000, DataPattern::RowStripe, 43));
        let anti = base.iter().filter(|&&a| a).count();
        assert!(
            (64..192).contains(&anti),
            "orientation should mix both kinds, got {anti}/256 anti"
        );
    }

    #[test]
    fn orientation_stream_does_not_perturb_thresholds() {
        let g = Geometry::tiny(64);
        let legacy = DeviceTables::new(g, VictimModelParams::with_hc_first(1000), 7).unwrap();
        let striped = DeviceTables::new(
            g,
            VictimModelParams {
                data_pattern: DataPattern::RowStripe,
                ..VictimModelParams::with_hc_first(1000)
            },
            7,
        )
        .unwrap();
        assert_eq!(legacy.threshold, striped.threshold);
    }

    #[test]
    fn pattern_scales_the_attenuation_table() {
        let g = Geometry::tiny(64);
        let p = VictimModelParams {
            data_pattern: DataPattern::RowStripe,
            ..VictimModelParams::with_hc_first(1000)
        };
        let t = DeviceTables::new(g, p, 0).unwrap();
        for d in 1..=p.blast_radius {
            assert_eq!(
                t.attenuation(d),
                p.coupling_decay.powi(d as i32 - 1) * p.data_pattern.coupling_factor(d)
            );
        }
    }

    #[test]
    fn solid_pattern_flips_only_true_cell_rows_downward() {
        let g = Geometry::tiny(256);
        let p = VictimModelParams {
            threshold_jitter: 0.0,
            data_pattern: DataPattern::Solid,
            ..VictimModelParams::with_hc_first(400)
        };
        let mut d = DeviceState::new(g, p, 11);
        // Hammer every fourth row so victims of both orientations appear.
        for _ in 0..2_000 {
            for row in (2..254).step_by(4) {
                d.activate(RowAddr::bank_row(0, row));
            }
        }
        assert!(d.total_flips() > 0);
        assert_eq!(d.flips_0to1(), 0, "solid all-1s can only discharge 1→0");
        assert_eq!(d.flips_1to0(), d.total_flips());
        // Every flipped row must be a true-cell row with a nonzero budget.
        for row in 0..256 {
            let addr = RowAddr::bank_row(0, row);
            if d.tables().anti_cell_of(addr) {
                assert_eq!(d.tables().vulnerable_cells_of(addr), 0);
            } else {
                assert_eq!(d.tables().vulnerable_cells_of(addr), p.cells_per_row);
            }
        }
    }

    #[test]
    fn rowstripe_flips_in_both_directions_and_partitions_totals() {
        let g = Geometry::tiny(256);
        let p = VictimModelParams {
            threshold_jitter: 0.0,
            data_pattern: DataPattern::RowStripe,
            ..VictimModelParams::with_hc_first(400)
        };
        let mut d = DeviceState::new(g, p, 11);
        for _ in 0..2_000 {
            for row in (2..254).step_by(4) {
                d.activate(RowAddr::bank_row(0, row));
            }
        }
        assert!(d.total_flips() > 0);
        assert_eq!(d.flips_1to0() + d.flips_0to1(), d.total_flips());
        assert!(d.flips_1to0() > 0, "some victims are charged true-cells");
        assert!(d.flips_0to1() > 0, "some victims are charged anti-cells");
    }

    #[test]
    fn legacy_direction_tallies_partition_total_flips() {
        let g = Geometry::tiny(64);
        let mut d = DeviceState::new(g, VictimModelParams::with_hc_first(300), 9);
        let mut rng = SplitMix64::new(5);
        for _ in 0..20_000 {
            let row = if rng.chance(0.5) {
                32
            } else {
                rng.gen_range(64) as u32
            };
            d.activate(RowAddr::bank_row(0, row));
        }
        assert!(d.total_flips() > 0);
        assert_eq!(d.flips_1to0() + d.flips_0to1(), d.total_flips());
    }

    #[test]
    fn ecc_masks_low_flip_rows_and_is_none_when_disabled() {
        let g = Geometry::tiny(64);
        let base = VictimModelParams {
            threshold_jitter: 0.0,
            ..VictimModelParams::with_hc_first(1000)
        };
        let mut no_ecc = DeviceState::new(g, base, 1);
        assert_eq!(no_ecc.post_ecc_flips(), None);
        no_ecc.activate(RowAddr::bank_row(0, 8));
        assert_eq!(no_ecc.post_ecc_flips(), None);

        let p = VictimModelParams {
            ecc_codeword_bits: 128,
            ..base
        };
        let mut d = DeviceState::new(g, p, 1);
        let aggr = RowAddr::bank_row(0, 8);
        // Just past threshold: each distance-1 victim holds a single flip,
        // which a SEC code fully corrects.
        for _ in 0..1_000 {
            d.activate(aggr);
        }
        assert!(d.total_flips() > 0);
        assert_eq!(d.post_ecc_flips(), Some(0), "single-bit flips are masked");
        // Hammer far past threshold: multi-bit flips per codeword leak out.
        for _ in 0..5_000 {
            d.activate(aggr);
        }
        let post = d.post_ecc_flips().expect("ECC enabled");
        assert!(post > 0, "multi-bit flips must pass through");
        assert!(post <= d.total_flips(), "ECC cannot add flips");
    }

    #[test]
    fn degenerate_victim_params_are_rejected_with_clear_errors() {
        let g = Geometry::tiny(64);
        let err = DeviceTables::new(
            g,
            VictimModelParams {
                cells_per_row: 0,
                ..VictimModelParams::with_hc_first(1000)
            },
            0,
        )
        .unwrap_err();
        assert!(err.contains("cells_per_row"), "got '{err}'");
        let err = DeviceTables::new(
            g,
            VictimModelParams {
                ecc_codeword_bits: 10_000,
                ..VictimModelParams::with_hc_first(1000)
            },
            0,
        )
        .unwrap_err();
        assert!(err.contains("ECC codeword"), "got '{err}'");
    }

    #[test]
    fn reset_for_cell_handles_geometry_growth() {
        let p = VictimModelParams::with_hc_first(500);
        let small = DeviceTables::shared(Geometry::tiny(16), p, 3).unwrap();
        let big = DeviceTables::shared(Geometry::tiny(128), p, 3).unwrap();
        let mut d = DeviceState::with_tables(small);
        d.activate(RowAddr::bank_row(0, 8));
        d.reset_for_cell(big);
        d.activate(RowAddr::bank_row(0, 100));
        assert_eq!(d.total_activations(), 1);
        assert_eq!(d.charge_of(RowAddr::bank_row(0, 99)), 1.0);
    }
}
