//! On-die ECC — the single-error-correcting layer the paper's Section 5.3
//! shows masking RowHammer on the newest chips.
//!
//! LPDDR4-class devices ship an internal SEC (single-error-correcting) code:
//! each codeword of `codeword_bits` data cells carries enough parity to
//! correct **exactly one** flipped bit. A codeword with a single RowHammer
//! flip therefore reads back clean; a codeword accumulating two or more
//! flips exceeds the correction capability and every flip in it becomes
//! visible (real SEC codes can even miscorrect, which we conservatively
//! round to "all raw flips visible"). The paper's observation — on-die ECC
//! hides the onset of RowHammer but multi-bit flips leak through as the
//! raw error rate rises — falls out of exactly this per-codeword rule,
//! implemented in [`visible_in_codeword`].
//!
//! The device model tracks flips per *row* as aggregate counts, not as cell
//! positions, so applying ECC requires placing a row's `raw` flips into its
//! `⌈cells_per_row / codeword_bits⌉` codewords. Placement is modeled as a
//! deterministic seeded balls-into-bins throw ([`visible_flips`]): flip
//! positions within a row are effectively random (per-cell vulnerability is
//! process variation), and seeding the throw from the device seed and the
//! row index keeps the whole pipeline a pure function of the root seed. At
//! very high raw counts the throw can exceed a codeword's physical bit
//! capacity; that regime is far past the point where ECC passes everything
//! through anyway, so the approximation is harmless.
//!
//! ECC never influences the *dynamics* — charge accumulation, mitigation
//! behavior, and raw flip counts are identical with ECC on or off — it only
//! filters which flips the host observes. Both device implementations
//! therefore apply it as a post-run scan ([`post_ecc_total`]) over the
//! per-row raw flip counts, entirely off the per-activation hot path.

use crate::rng::{derive_seed, SplitMix64};

/// Stream discriminator mixed into the device seed for per-row flip
/// placement (arbitrary constant, distinct from the cell-orientation
/// stream in `device`).
const ECC_PLACEMENT_STREAM: u64 = 0xECC;

/// Number of ECC codewords covering one row of `cells_per_row` cells at
/// `codeword_bits` cells per codeword (the trailing partial codeword
/// counts).
pub fn codeword_count(cells_per_row: u32, codeword_bits: u32) -> u32 {
    debug_assert!(codeword_bits > 0);
    cells_per_row.div_ceil(codeword_bits).max(1)
}

/// Flips visible after correction in one codeword holding `raw` flipped
/// bits: a SEC code corrects a lone flip and is overwhelmed by two or more.
pub fn visible_in_codeword(raw: u32) -> u32 {
    if raw <= 1 {
        0
    } else {
        raw
    }
}

/// Post-ECC visible flips in one row with `raw` flipped cells.
///
/// `codewords` is the reusable per-row placement scratch (one slot per
/// codeword; its length is the codeword count) and `rng` the per-row
/// placement stream. Each flip lands in a uniformly drawn codeword;
/// the result is the sum of [`visible_in_codeword`] over the bins. The
/// scratch is left holding the placement so callers (tests) can audit the
/// per-codeword decision.
pub fn visible_flips(raw: u32, codewords: &mut [u32], rng: &mut SplitMix64) -> u32 {
    codewords.fill(0);
    if codewords.len() <= 1 {
        if let Some(slot) = codewords.first_mut() {
            *slot = raw;
        }
        return visible_in_codeword(raw);
    }
    let n = codewords.len() as u64;
    for _ in 0..raw {
        codewords[rng.gen_range(n) as usize] += 1;
    }
    codewords.iter().map(|&k| visible_in_codeword(k)).sum()
}

/// Apply on-die ECC to a whole device: sum the post-correction visible
/// flips over every row's raw flip count.
///
/// `rows` yields each row's cumulative raw flips in flat-index order;
/// `device_seed` is the seed the device's tables were derived from, so the
/// per-row placement streams — `derive_seed(device_seed, [ECC, row])` — are
/// a pure function of the seed and both device implementations (optimized
/// and eager reference) report identical post-ECC counts for identical raw
/// counts.
pub fn post_ecc_total(
    rows: impl Iterator<Item = u32>,
    cells_per_row: u32,
    codeword_bits: u32,
    device_seed: u64,
) -> u64 {
    let ncw = codeword_count(cells_per_row, codeword_bits) as usize;
    let mut scratch = vec![0u32; ncw];
    let mut visible = 0u64;
    for (idx, raw) in rows.enumerate() {
        if raw == 0 {
            continue;
        }
        let mut rng = SplitMix64::new(derive_seed(
            device_seed,
            &[ECC_PLACEMENT_STREAM, idx as u64],
        ));
        visible += visible_flips(raw, &mut scratch, &mut rng) as u64;
    }
    visible
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codeword_counts_cover_partial_trailing_words() {
        assert_eq!(codeword_count(8192, 128), 64);
        assert_eq!(codeword_count(8192, 100), 82);
        assert_eq!(codeword_count(100, 128), 1);
        assert_eq!(codeword_count(8192, 8192), 1);
    }

    /// The core SEC property the satellite asks for: exactly ≤ 1 flip per
    /// codeword is corrected, ≥ 2 pass through unmasked — checked both on
    /// the per-codeword rule and on randomized whole-row placements, where
    /// the visible total must equal the sum of the per-codeword rule over
    /// the audited placement, and the corrected flips must equal the number
    /// of codewords holding exactly one flip.
    #[test]
    fn corrects_one_per_codeword_and_passes_multi_bit_through() {
        assert_eq!(visible_in_codeword(0), 0);
        assert_eq!(visible_in_codeword(1), 0);
        assert_eq!(visible_in_codeword(2), 2);
        assert_eq!(visible_in_codeword(7), 7);

        let mut rng = SplitMix64::new(0x5EC);
        for trial in 0..200u32 {
            let ncw = 1 + (rng.gen_range(64) as usize);
            let raw = rng.gen_range(300) as u32;
            let mut bins = vec![0u32; ncw];
            let visible = visible_flips(raw, &mut bins, &mut rng.clone());
            assert_eq!(
                bins.iter().sum::<u32>(),
                raw,
                "trial {trial}: placement must conserve flips"
            );
            let expected: u32 = bins.iter().map(|&k| visible_in_codeword(k)).sum();
            assert_eq!(visible, expected, "trial {trial}");
            let singles = bins.iter().filter(|&&k| k == 1).count() as u32;
            assert_eq!(
                raw - visible,
                singles,
                "trial {trial}: corrected flips must be exactly the single-flip codewords"
            );
            assert!(visible <= raw, "trial {trial}: ECC cannot add flips");
        }
    }

    #[test]
    fn single_flip_rows_are_always_masked() {
        for seed in 0..32u64 {
            let mut bins = vec![0u32; 64];
            let mut rng = SplitMix64::new(seed);
            assert_eq!(visible_flips(1, &mut bins, &mut rng), 0);
        }
    }

    #[test]
    fn saturated_rows_pass_everything_through() {
        // Far more flips than 2× the codeword count: every codeword holds
        // ≥ 2 with overwhelming probability, deterministic under the seed.
        let mut bins = vec![0u32; 8];
        let mut rng = SplitMix64::new(9);
        assert_eq!(visible_flips(1_000, &mut bins, &mut rng), 1_000);
    }

    #[test]
    fn single_codeword_rows_skip_placement() {
        let mut bins = vec![0u32; 1];
        let mut rng = SplitMix64::new(1);
        assert_eq!(visible_flips(1, &mut bins, &mut rng), 0);
        assert_eq!(visible_flips(5, &mut bins, &mut rng), 5);
        assert_eq!(bins[0], 5, "scratch holds the audited placement");
    }

    #[test]
    fn post_ecc_total_is_deterministic_and_row_indexed() {
        let rows = [0u32, 1, 3, 0, 40, 2];
        let a = post_ecc_total(rows.iter().copied(), 8192, 128, 0xD5);
        let b = post_ecc_total(rows.iter().copied(), 8192, 128, 0xD5);
        assert_eq!(a, b, "same seed, same rows, same answer");
        assert!(a <= rows.iter().map(|&r| r as u64).sum::<u64>());
        // All-singles input is fully corrected regardless of seed.
        let singles = vec![1u32; 100];
        assert_eq!(post_ecc_total(singles.iter().copied(), 8192, 128, 7), 0);
    }
}
