//! Serializable workload specifications.
//!
//! A [`WorkloadSpec`] is the declarative identity of an attack pattern in a
//! sweep plan: plain data that can be validated against a geometry and
//! expanded into a fresh [`crate::Workload`] instance by any executor thread (the
//! built instance's `name()` is the single source of display strings). The
//! aggressor placement is a pure function of the geometry (victim = mid-bank row, far from edges), so two builds of the
//! same spec over the same geometry produce identical streams given the same
//! benign-mixer seed — the property the sweep's common-random-number
//! comparisons across mitigations rely on.

use crate::{AttackKind, BenignMixer, DoubleSided, ManySided, SingleSided};
use rh_core::{Geometry, RowAddr};

/// The concrete workload type a spec builds: the benign mixer over the
/// monomorphized attack enum. The engine is generic over `Workload`, so
/// running it on this type compiles the whole access-generation path —
/// mixer RNG and attack cursor — into one inlined fill loop with zero
/// virtual dispatch.
pub type BuiltWorkload = BenignMixer<AttackKind>;

/// Declarative description of one attack workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadSpec {
    /// One aggressor hammering the mid-bank victim from below.
    SingleSided,
    /// Two aggressors sandwiching the mid-bank victim.
    DoubleSided,
    /// TRRespass-style: `sides` aggressors spaced two rows apart around the
    /// bank midpoint, every row between them a double-sided victim.
    ManySided { sides: usize },
}

impl WorkloadSpec {
    /// Distinct per-spec constant mixed into the benign-traffic RNG seed, so
    /// every workload draws an independent noise stream while the *same*
    /// workload sees the *same* stream in every cell along the `HC_first`
    /// and mitigation axes.
    pub fn stream_id(&self) -> u64 {
        match self {
            Self::SingleSided => 1,
            Self::DoubleSided => 2,
            Self::ManySided { sides } => 0x100 + *sides as u64,
        }
    }

    /// The bank rows this attack hammers, in ascending order — the rows the
    /// attacker initializes with its chosen data pattern before hammering
    /// (the paper's Section 5 methodology: the stored pattern around the
    /// aggressors is part of the attack, and the device model's
    /// `DataPattern` axis scales victim coupling by it). An
    /// analysis/diagnostic hook in the same spirit as the device model's
    /// `charge_of`/`estimate` accessors: a pure function of the geometry
    /// that mirrors the placement in [`WorkloadSpec::build`] (tests assert
    /// the two agree exactly, including `SingleSided`'s edge-row fallback).
    ///
    /// Panics if the spec does not fit the geometry (the same condition
    /// [`WorkloadSpec::validate`] reports as an error and
    /// [`WorkloadSpec::build`] refuses), matching the assert style of the
    /// concrete constructors.
    pub fn aggressor_rows(&self, geom: &Geometry) -> Vec<u32> {
        self.validate(geom)
            .unwrap_or_else(|e| panic!("spec does not fit geometry: {e}"));
        let victim = geom.rows_per_bank / 2;
        match *self {
            Self::SingleSided => vec![if victim > 0 { victim - 1 } else { victim + 1 }],
            Self::DoubleSided => vec![victim - 1, victim + 1],
            Self::ManySided { sides } => {
                let first = victim - sides as u32;
                (0..sides as u32).map(|i| first + 2 * i).collect()
            }
        }
    }

    /// Check that the pattern fits the geometry (aggressors inside the bank,
    /// victim off the edges).
    pub fn validate(&self, geom: &Geometry) -> Result<(), String> {
        let rows = geom.rows_per_bank;
        if rows < 32 {
            return Err(format!(
                "geometry needs at least 32 rows per bank, got {rows}"
            ));
        }
        if let Self::ManySided { sides } = self {
            let sides = *sides;
            if sides < 2 {
                return Err(format!("many-sided needs at least 2 sides, got {sides}"));
            }
            let mid = (rows / 2) as u64;
            // Aggressors occupy rows [mid - sides, mid + sides - 2].
            if (sides as u64) > mid || mid + sides as u64 - 2 >= rows as u64 {
                return Err(format!(
                    "{} aggressors spaced 2 apart do not fit a {rows}-row bank",
                    sides
                ));
            }
        }
        Ok(())
    }

    /// Materialize the attack stream wrapped in a [`BenignMixer`] drawing
    /// noise from `seed`. Fails if the spec does not fit the geometry.
    /// Returns the concrete [`BuiltWorkload`] type so callers that
    /// monomorphize over it (the engine) pay no per-access dispatch; box it
    /// where `dyn Workload` is wanted.
    pub fn build(
        &self,
        geom: &Geometry,
        benign_fraction: f64,
        seed: u64,
    ) -> Result<BuiltWorkload, String> {
        self.validate(geom)?;
        let victim = RowAddr::bank_row(0, geom.rows_per_bank / 2);
        let attack = match *self {
            Self::SingleSided => AttackKind::SingleSided(SingleSided::targeting(victim)),
            Self::DoubleSided => AttackKind::DoubleSided(DoubleSided::targeting(victim, geom)),
            Self::ManySided { sides } => AttackKind::ManySided(ManySided::new(
                victim.with_row(victim.row - sides as u32),
                sides,
                geom,
            )),
        };
        Ok(BenignMixer::new(attack, benign_fraction, *geom, seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Workload;

    #[test]
    fn built_names_and_stream_ids_are_distinct() {
        let geom = Geometry::tiny(128);
        let specs = [
            WorkloadSpec::SingleSided,
            WorkloadSpec::DoubleSided,
            WorkloadSpec::ManySided { sides: 2 },
            WorkloadSpec::ManySided { sides: 8 },
            WorkloadSpec::ManySided { sides: 16 },
        ];
        let names: std::collections::HashSet<String> = specs
            .iter()
            .map(|s| s.build(&geom, 0.1, 0).unwrap().name())
            .collect();
        let streams: std::collections::HashSet<u64> = specs.iter().map(|s| s.stream_id()).collect();
        assert_eq!(names.len(), specs.len());
        assert_eq!(streams.len(), specs.len());
    }

    #[test]
    #[should_panic(expected = "does not fit geometry")]
    fn aggressor_rows_reject_oversized_specs_like_build_does() {
        // build() returns Err for this spec; the diagnostic hook panics
        // with a clear message instead of underflowing the row math.
        WorkloadSpec::ManySided { sides: 16 }.aggressor_rows(&Geometry::tiny(16));
    }

    #[test]
    fn aggressor_rows_match_the_built_streams() {
        let geom = Geometry::tiny(128);
        for spec in [
            WorkloadSpec::SingleSided,
            WorkloadSpec::DoubleSided,
            WorkloadSpec::ManySided { sides: 6 },
        ] {
            let mut w = spec.build(&geom, 0.0, 0).unwrap();
            let declared = spec.aggressor_rows(&geom);
            let seen: std::collections::BTreeSet<u32> =
                (0..64).map(|_| w.next_access().row).collect();
            assert_eq!(
                declared
                    .iter()
                    .copied()
                    .collect::<std::collections::BTreeSet<u32>>(),
                seen,
                "{spec:?}"
            );
            assert!(declared.windows(2).all(|p| p[0] < p[1]), "ascending order");
        }
    }

    #[test]
    fn many_sided_build_centers_on_mid_bank() {
        let geom = Geometry::tiny(64);
        let mut w = WorkloadSpec::ManySided { sides: 4 }
            .build(&geom, 0.0, 1)
            .unwrap();
        let rows: Vec<u32> = (0..4).map(|_| w.next_access().row).collect();
        // mid = 32, first aggressor at 32 - 4 = 28, spaced 2 apart.
        assert_eq!(rows, vec![28, 30, 32, 34]);
    }

    #[test]
    fn validate_rejects_oversized_patterns() {
        let geom = Geometry::tiny(32);
        // 16 aggressors fill rows 0..=30 exactly; 17 cannot fit.
        assert!(WorkloadSpec::ManySided { sides: 16 }
            .validate(&geom)
            .is_ok());
        assert!(WorkloadSpec::ManySided { sides: 17 }
            .validate(&geom)
            .is_err());
        assert!(WorkloadSpec::ManySided { sides: 1 }
            .validate(&geom)
            .is_err());
        assert!(WorkloadSpec::DoubleSided
            .validate(&Geometry::tiny(16))
            .is_err());
    }

    #[test]
    fn same_spec_same_seed_same_stream() {
        let geom = Geometry::tiny(128);
        let spec = WorkloadSpec::ManySided { sides: 6 };
        let mut a = spec.build(&geom, 0.3, 99).unwrap();
        let mut b = spec.build(&geom, 0.3, 99).unwrap();
        for _ in 0..2000 {
            assert_eq!(a.next_access(), b.next_access());
        }
    }
}
