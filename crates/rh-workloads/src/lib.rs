//! # rh-workloads — hammer-engine access patterns
//!
//! Generators for the activation streams the ISCA 2020 paper drives its
//! chips with: single-sided, double-sided, and many-sided hammering, plus a
//! [`BenignMixer`] that interleaves uniformly random "normal" traffic so
//! mitigations are evaluated under realistic noise rather than pure attack
//! streams.
//!
//! A [`Workload`] is an infinite deterministic iterator over [`RowAddr`]s;
//! the engine in `rh-cli` pulls a fixed budget of activations from it.
//! [`WorkloadSpec`] is the serializable factory form carried by sweep plans:
//! executor threads expand a spec into a fresh stream per cell.
//!
//! Hot-path invariant: `next_access` never allocates. Every generator here
//! steps fixed state (an aggressor cursor, a toggle, an RNG) and returns a
//! `Copy` address; `ManySided` materializes its aggressor list once at
//! construction, and [`Workload::fill_batch`] writes into the engine's
//! reusable chunk buffer (which reaches its steady-state capacity on the
//! first chunk). The only allocating method is `name()`, which the engine
//! calls exactly once per run (for the result row), never per activation.
//! New workloads must preserve this — the per-activation engine loop is
//! allocation-free end to end (see `rh-cli::engine`), and the same
//! invariant extends to `rh-mitigations`: its counter tables
//! (`FlatCounterTable`) never allocate after construction either, so
//! nothing between the workload generator and the device model touches the
//! allocator per activation.

pub mod spec;

pub use spec::{BuiltWorkload, WorkloadSpec};

use rh_core::{Geometry, RowAddr, SplitMix64};

/// An infinite, deterministic stream of row activations.
pub trait Workload {
    /// Short stable identifier used in result tables.
    fn name(&self) -> String;

    /// Produce the next row to activate.
    fn next_access(&mut self) -> RowAddr;

    /// Fill `out` with exactly the next `n` accesses (clearing it first).
    ///
    /// This is the engine's batching hook: pulling a chunk at a time turns
    /// one virtual call per *activation* into one per *chunk*, and — because
    /// default trait methods are instantiated per concrete impl — the
    /// `next_access` calls inside this default body are statically
    /// dispatched and inline into a tight fill loop. The default is correct
    /// for every generator; override only if a workload can batch even more
    /// cheaply. Semantics are identical to `n` successive `next_access`
    /// calls, which keeps batched runs byte-identical to unbatched ones.
    fn fill_batch(&mut self, out: &mut Vec<RowAddr>, n: usize) {
        out.clear();
        // extend over an exact-size iterator: one reservation, no per-item
        // capacity check (unlike a push loop).
        out.extend((0..n).map(|_| self.next_access()));
    }
}

impl<W: Workload + ?Sized> Workload for Box<W> {
    fn name(&self) -> String {
        (**self).name()
    }

    fn next_access(&mut self) -> RowAddr {
        (**self).next_access()
    }

    fn fill_batch(&mut self, out: &mut Vec<RowAddr>, n: usize) {
        // Forward so the *inner* impl's (monomorphized) fill loop runs,
        // rather than the default body paying a virtual hop per access.
        (**self).fill_batch(out, n)
    }
}

/// Classic single-sided hammering: one aggressor row activated repeatedly.
#[derive(Debug, Clone)]
pub struct SingleSided {
    aggressor: RowAddr,
}

impl SingleSided {
    /// Hammer the row adjacent to `victim` from below (or above at edge 0).
    pub fn targeting(victim: RowAddr) -> Self {
        let aggr_row = if victim.row > 0 {
            victim.row - 1
        } else {
            victim.row + 1
        };
        Self {
            aggressor: victim.with_row(aggr_row),
        }
    }

    pub fn new(aggressor: RowAddr) -> Self {
        Self { aggressor }
    }
}

impl Workload for SingleSided {
    fn name(&self) -> String {
        "single_sided".to_string()
    }

    fn next_access(&mut self) -> RowAddr {
        self.aggressor
    }
}

/// Double-sided hammering: alternate the two rows sandwiching the victim.
/// The most efficient pattern on pre-TRR parts — the victim receives full
/// coupling from both sides, halving the per-aggressor hammer count needed.
#[derive(Debug, Clone)]
pub struct DoubleSided {
    below: RowAddr,
    above: RowAddr,
    toggle: bool,
}

impl DoubleSided {
    /// Sandwich `victim`; requires the victim not to sit on a bank edge.
    pub fn targeting(victim: RowAddr, geom: &Geometry) -> Self {
        assert!(
            victim.row > 0 && victim.row + 1 < geom.rows_per_bank,
            "double-sided victim must have neighbors on both sides"
        );
        Self {
            below: victim.with_row(victim.row - 1),
            above: victim.with_row(victim.row + 1),
            toggle: false,
        }
    }
}

impl Workload for DoubleSided {
    fn name(&self) -> String {
        "double_sided".to_string()
    }

    fn next_access(&mut self) -> RowAddr {
        self.toggle = !self.toggle;
        if self.toggle {
            self.below
        } else {
            self.above
        }
    }
}

/// Many-sided hammering (TRRespass-style): cycle through `n` aggressors
/// spaced two rows apart, so every second row between them is a victim
/// hammered from both sides. Defeats small-table TRR/counter mitigations by
/// spreading activations across more rows than the table can track.
#[derive(Debug, Clone)]
pub struct ManySided {
    aggressors: Vec<RowAddr>,
    cursor: usize,
}

impl ManySided {
    /// `n` aggressors starting at `first`, spaced 2 apart within the bank.
    pub fn new(first: RowAddr, n: usize, geom: &Geometry) -> Self {
        assert!(n >= 2, "many-sided needs at least two aggressors");
        let last_row = first.row as u64 + 2 * (n as u64 - 1);
        assert!(
            last_row < geom.rows_per_bank as u64,
            "aggressor set exceeds bank"
        );
        Self {
            aggressors: (0..n as u32)
                .map(|i| first.with_row(first.row + 2 * i))
                .collect(),
            cursor: 0,
        }
    }

    pub fn sides(&self) -> usize {
        self.aggressors.len()
    }
}

impl Workload for ManySided {
    fn name(&self) -> String {
        format!("many_sided(n={})", self.aggressors.len())
    }

    fn next_access(&mut self) -> RowAddr {
        let addr = self.aggressors[self.cursor];
        // Branch instead of `%`: the cycle length is not a compile-time
        // constant, and an integer division per activation is measurable in
        // the batched fill loop.
        self.cursor += 1;
        if self.cursor == self.aggressors.len() {
            self.cursor = 0;
        }
        addr
    }
}

/// The closed set of attack patterns, for monomorphized dispatch: the sweep
/// executor's workload is a [`BenignMixer`]`<AttackKind>`, so the entire
/// per-activation access-generation path — mixer RNG, attack cursor — is
/// static calls that inline into [`Workload::fill_batch`]'s fill loop, with
/// no per-access virtual hop to a boxed inner stream.
#[derive(Debug, Clone)]
pub enum AttackKind {
    SingleSided(SingleSided),
    DoubleSided(DoubleSided),
    ManySided(ManySided),
}

impl Workload for AttackKind {
    fn name(&self) -> String {
        match self {
            Self::SingleSided(w) => w.name(),
            Self::DoubleSided(w) => w.name(),
            Self::ManySided(w) => w.name(),
        }
    }

    #[inline]
    fn next_access(&mut self) -> RowAddr {
        match self {
            Self::SingleSided(w) => w.next_access(),
            Self::DoubleSided(w) => w.next_access(),
            Self::ManySided(w) => w.next_access(),
        }
    }
}

/// Wraps an attack workload, replacing a fraction of accesses with
/// uniformly random benign traffic over the whole device.
#[derive(Debug, Clone)]
pub struct BenignMixer<W> {
    inner: W,
    /// Fraction of accesses that are benign, in `[0, 1]`.
    benign_fraction: f64,
    geom: Geometry,
    rng: SplitMix64,
}

impl<W: Workload> BenignMixer<W> {
    pub fn new(inner: W, benign_fraction: f64, geom: Geometry, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&benign_fraction));
        Self {
            inner,
            benign_fraction,
            geom,
            rng: SplitMix64::new(seed),
        }
    }
}

impl<W: Workload> Workload for BenignMixer<W> {
    fn name(&self) -> String {
        format!("{}+benign({})", self.inner.name(), self.benign_fraction)
    }

    fn next_access(&mut self) -> RowAddr {
        if self.rng.chance(self.benign_fraction) {
            RowAddr {
                channel: self.rng.gen_range(self.geom.channels as u64) as u32,
                rank: self.rng.gen_range(self.geom.ranks as u64) as u32,
                bank: self.rng.gen_range(self.geom.banks as u64) as u32,
                row: self.rng.gen_range(self.geom.rows_per_bank as u64) as u32,
            }
        } else {
            self.inner.next_access()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_sided_repeats_one_row() {
        let mut w = SingleSided::targeting(RowAddr::bank_row(0, 10));
        for _ in 0..10 {
            assert_eq!(w.next_access(), RowAddr::bank_row(0, 9));
        }
    }

    #[test]
    fn single_sided_at_edge_picks_upper_aggressor() {
        let mut w = SingleSided::targeting(RowAddr::bank_row(0, 0));
        assert_eq!(w.next_access(), RowAddr::bank_row(0, 1));
    }

    #[test]
    fn double_sided_alternates_sandwich() {
        let g = Geometry::tiny(32);
        let mut w = DoubleSided::targeting(RowAddr::bank_row(0, 10), &g);
        let seq: Vec<u32> = (0..4).map(|_| w.next_access().row).collect();
        assert_eq!(seq, vec![9, 11, 9, 11]);
    }

    #[test]
    #[should_panic(expected = "both sides")]
    fn double_sided_rejects_edge_victim() {
        let g = Geometry::tiny(32);
        DoubleSided::targeting(RowAddr::bank_row(0, 0), &g);
    }

    #[test]
    fn many_sided_cycles_spaced_aggressors() {
        let g = Geometry::tiny(64);
        let mut w = ManySided::new(RowAddr::bank_row(0, 10), 3, &g);
        let seq: Vec<u32> = (0..6).map(|_| w.next_access().row).collect();
        assert_eq!(seq, vec![10, 12, 14, 10, 12, 14]);
    }

    #[test]
    fn mixer_fraction_is_respected() {
        let g = Geometry::tiny(1024);
        let inner = SingleSided::new(RowAddr::bank_row(0, 100));
        let mut w = BenignMixer::new(inner, 0.3, g, 42);
        let n = 100_000;
        let benign = (0..n)
            .filter(|_| w.next_access() != RowAddr::bank_row(0, 100))
            .count();
        // Random benign rows hit row 100 with probability 1/1024 — negligible.
        let frac = benign as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.01, "benign fraction was {frac}");
    }

    #[test]
    fn fill_batch_matches_sequential_next_access() {
        let g = Geometry::tiny(256);
        let mk = || BenignMixer::new(ManySided::new(RowAddr::bank_row(0, 40), 5, &g), 0.4, g, 123);
        let (mut seq, mut batched) = (mk(), mk());
        let mut buf = Vec::new();
        // Uneven chunk sizes straddle the aggressor cycle and RNG stream.
        for n in [1usize, 7, 64, 3, 100] {
            batched.fill_batch(&mut buf, n);
            assert_eq!(buf.len(), n);
            for (i, &addr) in buf.iter().enumerate() {
                assert_eq!(addr, seq.next_access(), "chunk n={n} item {i}");
            }
        }
        // Boxed dyn workloads forward to the inner impl's fill loop.
        let mut boxed: Box<dyn Workload> = Box::new(mk());
        let mut seq = mk();
        boxed.fill_batch(&mut buf, 50);
        for &addr in &buf {
            assert_eq!(addr, seq.next_access());
        }
    }

    #[test]
    fn mixer_is_deterministic_per_seed() {
        let g = Geometry::tiny(64);
        let mk = || BenignMixer::new(SingleSided::new(RowAddr::bank_row(0, 5)), 0.5, g, 7);
        let (mut a, mut b) = (mk(), mk());
        for _ in 0..1000 {
            assert_eq!(a.next_access(), b.next_access());
        }
    }
}
