//! `rh-cli bench` — the dependency-free benchmark harness that proves the
//! hot-path optimizations.
//!
//! The harness runs a **pinned reference sweep** — a realistic DDR4-class
//! geometry (16 banks × 32K rows/bank) across `HC_first ∈ {4096, 512, 128}`
//! (the paper's Section 8 generational→projected axis, where mitigation
//! overheads explode as chips weaken), all five mitigation arms, three
//! attack patterns, 2M activations per cell — twice through the identical
//! engine loop:
//!
//! * **legacy**: the retained pre-optimization path — a fresh
//!   [`EagerDeviceState`] per cell (thresholds re-derived, eager
//!   O(total_rows) `refresh_all` zeroing, per-activation `powi`, full-scan
//!   flip-row counting) with a fresh action buffer per cell;
//! * **optimized**: the shipping path — `Arc`-shared [`DeviceTables`],
//!   epoch-based O(1) refresh, reused per-worker `DeviceState` + action
//!   sink (exactly what `rh-cli sweep` executes).
//!
//! Both paths must produce **identical** `RunResult`s for every cell — this
//! doubles as the benchmark's determinism/equivalence check, and the run
//! fails (non-zero exit) if it regresses. The report (`BENCH_3.json`)
//! records per-cell and aggregate wall times, activations/sec for both
//! paths, the speedup, and the peak single-cell activation rate.
//!
//! Both paths share the current mitigation implementations (only the
//! device/engine side differs), so the reported speedup is a lower bound on
//! the comparison against the actual pre-PR binary: any mitigation-internal
//! improvement speeds up both sides equally.

use crate::engine::{run_experiment, RunResult};
use crate::exec::{build_table_cache, Worker};
use crate::plan::{CellSpec, SweepPlan, BLAST_RADIUS};
use crate::sweep::SweepConfig;
use rh_core::{EagerDeviceState, Geometry, VictimModelParams};
use rh_mitigations::ActionBuf;
use std::fmt::Write as _;
use std::time::Instant;

/// Options for one benchmark invocation.
#[derive(Debug, Clone)]
pub struct BenchOptions {
    /// Shrink the reference sweep for CI smoke runs (same shape, ~1/64 of
    /// the work: 4 banks × 8K rows, 100K activations/cell).
    pub quick: bool,
    /// Where to write the JSON report.
    pub out_path: String,
}

impl Default for BenchOptions {
    fn default() -> Self {
        Self {
            quick: false,
            out_path: "BENCH_3.json".to_string(),
        }
    }
}

/// The pinned reference sweep. Everything is fixed — seed, geometry, axes —
/// so successive benchmark runs (and CI runs across commits) measure the
/// same simulated work.
pub fn reference_config(quick: bool) -> SweepConfig {
    SweepConfig {
        seed: 0xBE7C4,
        activations: if quick { 100_000 } else { 2_000_000 },
        // The paper's generational→projected axis (Section 8 evaluates
        // mitigations as HC_first drops toward 128): the low end is where
        // increased-refresh-style mitigations become refresh-dominated —
        // exactly the load the epoch-based O(1) refresh targets.
        hc_firsts: vec![4096, 512, 128],
        sides: vec![8],
        para_probabilities: vec![0.004],
        benign_fraction: 0.1,
        auto_refresh_interval: 32_000,
        geometry: if quick {
            Geometry {
                channels: 1,
                ranks: 1,
                banks: 4,
                rows_per_bank: 8 * 1024,
            }
        } else {
            // A realistic DDR4-class device: 16 banks × 32K rows/bank.
            Geometry {
                channels: 1,
                ranks: 1,
                banks: 16,
                rows_per_bank: 32 * 1024,
            }
        },
    }
}

/// Timing of one cell under both paths.
#[derive(Debug, Clone)]
pub struct CellTiming {
    pub workload: String,
    pub mitigation: String,
    pub legacy_secs: f64,
    pub optimized_secs: f64,
}

/// Full benchmark outcome.
#[derive(Debug, Clone)]
pub struct BenchReport {
    pub quick: bool,
    pub geometry: Geometry,
    pub activations_per_cell: u64,
    pub cells: Vec<CellTiming>,
    pub legacy_secs: f64,
    pub optimized_secs: f64,
    pub legacy_acts_per_sec: f64,
    pub optimized_acts_per_sec: f64,
    /// optimized_acts_per_sec / legacy_acts_per_sec.
    pub speedup: f64,
    /// Fastest single optimized cell, in activations/sec.
    pub peak_cell_acts_per_sec: f64,
    /// Whether every cell's results were identical across the two paths.
    pub equivalent: bool,
}

/// Run one cell the pre-optimization way: fresh eager device (thresholds
/// re-derived per cell), fresh action buffer, eager full-device refreshes.
fn run_cell_legacy(plan: &SweepPlan, cell: &CellSpec) -> RunResult {
    let params = VictimModelParams::with_hc_first(cell.hc_first);
    let mut device = EagerDeviceState::new(plan.config.geometry, params, cell.seeds.device);
    let mut workload = cell
        .workload
        .build(
            &plan.config.geometry,
            plan.config.benign_fraction,
            cell.seeds.workload,
        )
        .expect("workloads are validated at plan time");
    let mut mitigation = cell
        .mitigation
        .build(cell.hc_first, BLAST_RADIUS, cell.seeds.mitigation);
    run_experiment(
        &mut device,
        workload.as_mut(),
        mitigation.as_mut(),
        cell.activations,
        cell.auto_refresh_interval,
        &mut ActionBuf::new(),
    )
}

fn results_identical(a: &RunResult, b: &RunResult) -> bool {
    a.workload == b.workload
        && a.mitigation == b.mitigation
        && a.hc_first == b.hc_first
        && a.activations == b.activations
        && a.total_flips == b.total_flips
        && a.flipped_rows == b.flipped_rows
        && a.flips_per_mact.to_bits() == b.flips_per_mact.to_bits()
        && a.refreshes_issued == b.refreshes_issued
}

/// Run the reference sweep under both paths, timing each cell, and check
/// the paths agree on every result.
pub fn run_bench(opts: &BenchOptions) -> Result<BenchReport, String> {
    let cfg = reference_config(opts.quick);
    let plan = SweepPlan::from_config(&cfg)?;
    let tables = build_table_cache(&plan, &plan.grid);
    let mut worker = Worker::new();

    // Warm up both paths on the first cell (page-faults the big vectors in)
    // so the timed loop measures steady-state throughput.
    let warm = &plan.grid[0];
    let _ = run_cell_legacy(&plan, warm);
    let _ = worker.run_cell(&plan, warm, &tables);

    let mut cells = Vec::with_capacity(plan.grid.len());
    let mut equivalent = true;
    let mut legacy_secs = 0.0;
    let mut optimized_secs = 0.0;
    let mut peak = 0.0f64;
    for cell in &plan.grid {
        let t0 = Instant::now();
        let legacy = run_cell_legacy(&plan, cell);
        let lt = t0.elapsed().as_secs_f64();

        let t1 = Instant::now();
        let optimized = worker.run_cell(&plan, cell, &tables);
        let ot = t1.elapsed().as_secs_f64();

        if !results_identical(&legacy, &optimized) {
            equivalent = false;
            eprintln!(
                "bench equivalence FAILED: {} / {} — legacy flips {} vs optimized {}",
                legacy.workload, legacy.mitigation, legacy.total_flips, optimized.total_flips
            );
        }
        legacy_secs += lt;
        optimized_secs += ot;
        peak = peak.max(cell.activations as f64 / ot);
        cells.push(CellTiming {
            workload: optimized.workload.clone(),
            mitigation: optimized.mitigation.clone(),
            legacy_secs: lt,
            optimized_secs: ot,
        });
    }

    let total_acts = (plan.grid.len() as u64 * cfg.activations) as f64;
    let legacy_rate = total_acts / legacy_secs;
    let optimized_rate = total_acts / optimized_secs;
    Ok(BenchReport {
        quick: opts.quick,
        geometry: cfg.geometry,
        activations_per_cell: cfg.activations,
        cells,
        legacy_secs,
        optimized_secs,
        legacy_acts_per_sec: legacy_rate,
        optimized_acts_per_sec: optimized_rate,
        speedup: optimized_rate / legacy_rate,
        peak_cell_acts_per_sec: peak,
        equivalent,
    })
}

fn fnum(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.3}")
    } else {
        "null".to_string()
    }
}

/// Render the report as a JSON document (the `BENCH_3.json` artifact).
pub fn render(report: &BenchReport) -> String {
    let mut rows = String::new();
    for (i, c) in report.cells.iter().enumerate() {
        let sep = if i + 1 < report.cells.len() { "," } else { "" };
        let _ = writeln!(
            rows,
            "    {{\"workload\": \"{}\", \"mitigation\": \"{}\", \
             \"legacy_secs\": {}, \"optimized_secs\": {}, \"speedup\": {}}}{sep}",
            c.workload,
            c.mitigation,
            fnum(c.legacy_secs),
            fnum(c.optimized_secs),
            fnum(c.legacy_secs / c.optimized_secs),
        );
    }
    let g = &report.geometry;
    format!(
        "{{\n  \"bench\": \"reference sweep (hc_first in {{4096,512,128}}, all mitigations)\",\n  \
         \"quick\": {},\n  \
         \"geometry\": {{\"channels\": {}, \"ranks\": {}, \"banks\": {}, \"rows_per_bank\": {}}},\n  \
         \"activations_per_cell\": {},\n  \
         \"cells\": [\n{rows}  ],\n  \
         \"legacy\": {{\"wall_secs\": {}, \"acts_per_sec\": {}}},\n  \
         \"optimized\": {{\"wall_secs\": {}, \"acts_per_sec\": {}, \"peak_cell_acts_per_sec\": {}}},\n  \
         \"speedup\": {},\n  \"equivalent\": {}\n}}",
        report.quick,
        g.channels,
        g.ranks,
        g.banks,
        g.rows_per_bank,
        report.activations_per_cell,
        fnum(report.legacy_secs),
        fnum(report.legacy_acts_per_sec),
        fnum(report.optimized_secs),
        fnum(report.optimized_acts_per_sec),
        fnum(report.peak_cell_acts_per_sec),
        fnum(report.speedup),
        report.equivalent,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_configs_are_valid_plans() {
        for quick in [true, false] {
            let cfg = reference_config(quick);
            let plan = SweepPlan::from_config(&cfg).expect("reference config must plan");
            // 3 hc × (single + double + many-sided(8)) × 5 mitigations.
            assert_eq!(plan.grid.len(), 45);
        }
    }

    #[test]
    fn legacy_and_optimized_paths_agree_on_a_small_cell() {
        let mut cfg = reference_config(true);
        cfg.activations = 20_000;
        cfg.geometry = Geometry::tiny(1024);
        let plan = SweepPlan::from_config(&cfg).unwrap();
        let tables = build_table_cache(&plan, &plan.grid);
        let mut worker = Worker::new();
        for cell in &plan.grid {
            let legacy = run_cell_legacy(&plan, cell);
            let optimized = worker.run_cell(&plan, cell, &tables);
            assert!(
                results_identical(&legacy, &optimized),
                "paths diverged on {} / {}",
                legacy.workload,
                legacy.mitigation
            );
        }
    }

    #[test]
    fn report_renders_valid_shape() {
        let report = BenchReport {
            quick: true,
            geometry: Geometry::tiny(64),
            activations_per_cell: 10,
            cells: vec![CellTiming {
                workload: "w".into(),
                mitigation: "m".into(),
                legacy_secs: 0.5,
                optimized_secs: 0.1,
            }],
            legacy_secs: 0.5,
            optimized_secs: 0.1,
            legacy_acts_per_sec: 20.0,
            optimized_acts_per_sec: 100.0,
            speedup: 5.0,
            peak_cell_acts_per_sec: 100.0,
            equivalent: true,
        };
        let s = render(&report);
        assert!(s.starts_with('{') && s.ends_with('}'));
        assert!(s.contains("\"speedup\": 5.000"));
        assert!(s.contains("\"equivalent\": true"));
        assert!(!s.contains("NaN"));
    }
}
