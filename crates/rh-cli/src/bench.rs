//! `rh-cli bench` — the dependency-free benchmark harness that proves the
//! hot-path optimizations.
//!
//! The harness runs a **pinned reference sweep** — a realistic DDR4-class
//! geometry (16 banks × 32K rows/bank) across `HC_first ∈ {4096, 512, 128}`
//! (the paper's Section 8 generational→projected axis, where mitigation
//! overheads explode as chips weaken), all five mitigation arms, three
//! attack patterns, two stored-data patterns (the legacy model plus the
//! Section 5 worst-case row-stripe) under on-die ECC, 2M activations per
//! cell — twice through the identical experiment semantics:
//!
//! * **legacy**: the retained pre-optimization path — a fresh
//!   [`EagerDeviceState`] per cell (thresholds re-derived, eager
//!   O(total_rows) `refresh_all` zeroing, per-activation `powi`, full-scan
//!   flip-row counting), the **map-based counter mitigations**
//!   (`rh_mitigations::reference`: `HashMap` Graphene, nested-`BTreeMap`
//!   TRR) behind `Box<dyn Mitigation>`, and the unbatched step-at-a-time
//!   loop with one virtual workload call and one virtual mitigation call
//!   per activation;
//! * **optimized**: the shipping path — `Arc`-shared
//!   [`rh_core::DeviceTables`],
//!   epoch-based O(1) refresh, flat cache-resident counter tables
//!   (`FlatCounterTable`), batched workload pulls (`fill_batch`), and
//!   monomorphized `MitigationKind` dispatch (exactly what `rh-cli sweep`
//!   executes).
//!
//! Both paths must produce **identical** `RunResult`s for every cell — this
//! doubles as the benchmark's determinism/equivalence check (and as a
//! differential test of the flat counter tables against their map-based
//! references at full scale — and, since PR 5, of the Section 5 victim
//! model against the eager reference; since PR 6 the optimized path also
//! exercises the SoA settle kernels and the engine's activation-run
//! coalescer), and the run fails (non-zero exit) if it regresses. Each
//! cell is timed `--repeat` times per path and the minimum is reported, so
//! one scheduling hiccup cannot skew a cell. The report (`BENCH_6.json`)
//! records the toolchain (`rustc --version`), git revision, and the settle
//! kernel that ran (`--kernel`, resolved against the CPU and
//! `RH_FORCE_SCALAR`) alongside per-cell times, a per-mitigation
//! breakdown, and aggregate activations/sec for both paths.

use crate::engine::RunResult;
use crate::exec::{build_table_cache, cell_params, Worker};
use crate::plan::{CellSpec, SweepPlan, BLAST_RADIUS};
use crate::sweep::SweepConfig;
use rh_core::{DataPattern, Device, EagerDeviceState, Geometry, Kernel, KernelChoice};
use rh_mitigations::{reference::build_reference, ActionBuf, Mitigation, MitigationAction};
use rh_workloads::Workload;
use std::fmt::Write as _;
use std::time::Instant;

/// Options for one benchmark invocation.
#[derive(Debug, Clone)]
pub struct BenchOptions {
    /// Shrink the reference sweep for CI smoke runs (same shape, ~1/64 of
    /// the work: 4 banks × 8K rows, 100K activations/cell).
    pub quick: bool,
    /// Where to write the JSON report.
    pub out_path: String,
    /// Timing runs per cell per path; the minimum is reported.
    pub repeat: usize,
    /// Only run cells whose `pattern/workload/mitigation` label contains
    /// this.
    pub filter: Option<String>,
    /// Fail the run if aggregate optimized throughput lands below this
    /// (the CI perf guard hook; `None` disables).
    pub min_acts_per_sec: Option<f64>,
    /// Settle-kernel request for the optimized path (`--kernel`); resolved
    /// once per run and recorded in the report.
    pub kernel: KernelChoice,
}

impl Default for BenchOptions {
    fn default() -> Self {
        Self {
            quick: false,
            out_path: "BENCH_6.json".to_string(),
            repeat: 3,
            filter: None,
            min_acts_per_sec: None,
            kernel: KernelChoice::default(),
        }
    }
}

/// The pinned reference sweep. Everything is fixed — seed, geometry, axes —
/// so successive benchmark runs (and CI runs across commits) measure the
/// same simulated work.
pub fn reference_config(quick: bool) -> SweepConfig {
    SweepConfig {
        seed: 0xBE7C4,
        activations: if quick { 100_000 } else { 2_000_000 },
        // The paper's generational→projected axis (Section 8 evaluates
        // mitigations as HC_first drops toward 128): the low end is where
        // increased-refresh-style mitigations become refresh-dominated —
        // exactly the load the epoch-based O(1) refresh targets.
        hc_firsts: vec![4096, 512, 128],
        sides: vec![8],
        para_probabilities: vec![0.004],
        // One legacy slice (comparable with BENCH_4's cells) plus one
        // Section 5 slice: the worst-case row-stripe pattern under on-die
        // ECC, timing the pattern-scaled settle path and the post-ECC scan.
        data_patterns: vec![DataPattern::Legacy, DataPattern::RowStripe],
        ecc_codeword_bits: 128,
        benign_fraction: 0.1,
        auto_refresh_interval: 32_000,
        geometry: if quick {
            Geometry {
                channels: 1,
                ranks: 1,
                banks: 4,
                rows_per_bank: 8 * 1024,
            }
        } else {
            // A realistic DDR4-class device: 16 banks × 32K rows/bank.
            Geometry {
                channels: 1,
                ranks: 1,
                banks: 16,
                rows_per_bank: 32 * 1024,
            }
        },
    }
}

/// Timing of one cell under both paths (minimum over `repeat` runs each).
#[derive(Debug, Clone)]
pub struct CellTiming {
    pub workload: String,
    pub mitigation: String,
    pub hc_first: u64,
    /// Stored data pattern of the cell (Section 5 axis).
    pub data_pattern: String,
    pub legacy_secs: f64,
    pub optimized_secs: f64,
}

/// Aggregate timing of all cells sharing one mitigation family (the name up
/// to its parameter list) — the per-mitigation breakdown that shows where
/// the counter-table rewrite lands.
#[derive(Debug, Clone)]
pub struct MitigationBreakdown {
    pub mitigation: String,
    pub cells: usize,
    pub legacy_secs: f64,
    pub optimized_secs: f64,
}

/// Full benchmark outcome.
#[derive(Debug, Clone)]
pub struct BenchReport {
    pub quick: bool,
    pub geometry: Geometry,
    pub activations_per_cell: u64,
    pub repeat: usize,
    pub filter: Option<String>,
    /// `rustc --version` of the ambient toolchain ("unknown" if absent).
    pub rustc_version: String,
    /// `git rev-parse --short HEAD` ("unknown" outside a checkout).
    pub git_revision: String,
    /// Settle kernel the optimized path actually ran (the `--kernel`
    /// request after resolution against the CPU and `RH_FORCE_SCALAR`) —
    /// recorded so throughput numbers are comparable across runs.
    pub kernel: Kernel,
    pub cells: Vec<CellTiming>,
    pub breakdown: Vec<MitigationBreakdown>,
    pub legacy_secs: f64,
    pub optimized_secs: f64,
    pub legacy_acts_per_sec: f64,
    pub optimized_acts_per_sec: f64,
    /// optimized_acts_per_sec / legacy_acts_per_sec.
    pub speedup: f64,
    /// Fastest single optimized cell, in activations/sec.
    pub peak_cell_acts_per_sec: f64,
    /// Whether every cell's results were identical across the two paths.
    pub equivalent: bool,
}

/// The pre-optimization engine loop: step-at-a-time, one virtual workload
/// call and one virtual mitigation call per activation. Semantics are
/// identical to [`run_experiment`]; only the dispatch/batching differs.
fn run_unbatched(
    device: &mut impl Device,
    workload: &mut dyn Workload,
    mitigation: &mut dyn Mitigation,
    activations: u64,
    auto_refresh_interval: u64,
    actions: &mut ActionBuf,
) -> RunResult {
    let geom = *device.geometry();
    for step in 1..=activations {
        let addr = workload.next_access();
        actions.clear();
        mitigation.on_activate(addr, &geom, actions);
        device.activate(addr);
        for action in actions.actions() {
            match *action {
                MitigationAction::RefreshRow(row) => device.refresh_row(row),
                MitigationAction::RefreshAll => device.refresh_all(),
            }
        }
        if auto_refresh_interval > 0 && step % auto_refresh_interval == 0 {
            device.refresh_all();
            mitigation.reset();
        }
    }
    RunResult {
        workload: workload.name(),
        mitigation: mitigation.name(),
        hc_first: device.params().hc_first,
        data_pattern: device.params().data_pattern.name().to_string(),
        activations,
        total_flips: device.total_flips(),
        flipped_rows: device.flipped_rows(),
        flips_per_mact: device.flips_per_mact(),
        refreshes_issued: device.refreshes_issued(),
        flips_1to0: device.flips_1to0(),
        flips_0to1: device.flips_0to1(),
        post_ecc_flips: device.post_ecc_flips(),
    }
}

/// Run one cell the pre-optimization way: fresh eager device (thresholds
/// re-derived per cell), map-based counter mitigations, fresh action
/// buffer, unbatched dyn-dispatch loop.
fn run_cell_legacy(plan: &SweepPlan, cell: &CellSpec) -> RunResult {
    let params = cell_params(plan, cell);
    let mut device = EagerDeviceState::new(plan.config.geometry, params, cell.seeds.device);
    // Boxed: the legacy loop pays the historical virtual call per access.
    let mut workload: Box<dyn Workload> = Box::new(
        cell.workload
            .build(
                &plan.config.geometry,
                plan.config.benign_fraction,
                cell.seeds.workload,
            )
            .expect("workloads are validated at plan time"),
    );
    let mut mitigation = build_reference(
        &cell.mitigation,
        cell.hc_first,
        BLAST_RADIUS,
        cell.seeds.mitigation,
    );
    run_unbatched(
        &mut device,
        workload.as_mut(),
        mitigation.as_mut(),
        cell.activations,
        cell.auto_refresh_interval,
        &mut ActionBuf::new(),
    )
}

fn results_identical(a: &RunResult, b: &RunResult) -> bool {
    a.workload == b.workload
        && a.mitigation == b.mitigation
        && a.hc_first == b.hc_first
        && a.data_pattern == b.data_pattern
        && a.activations == b.activations
        && a.total_flips == b.total_flips
        && a.flipped_rows == b.flipped_rows
        && a.flips_per_mact.to_bits() == b.flips_per_mact.to_bits()
        && a.refreshes_issued == b.refreshes_issued
        && a.flips_1to0 == b.flips_1to0
        && a.flips_0to1 == b.flips_0to1
        && a.post_ecc_flips == b.post_ecc_flips
}

/// `pattern/workload/mitigation` display label of a cell, for `--filter`
/// matching.
fn cell_label(plan: &SweepPlan, cell: &CellSpec) -> String {
    let workload = cell
        .workload
        .build(
            &plan.config.geometry,
            plan.config.benign_fraction,
            cell.seeds.workload,
        )
        .expect("workloads are validated at plan time")
        .name();
    let mitigation = cell
        .mitigation
        .build(&plan.config.geometry, cell.hc_first, BLAST_RADIUS, 0)
        .name();
    format!("{}/{workload}/{mitigation}", cell.data_pattern.name())
}

/// Output of an external command's first line, or "unknown". Used for the
/// report's toolchain/revision metadata — informational only, never part of
/// the timed or checked work.
fn tool_version(cmd: &str, args: &[&str]) -> String {
    std::process::Command::new(cmd)
        .args(args)
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .and_then(|s| s.lines().next().map(str::trim).map(String::from))
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Mitigation family: the name up to its parameter list.
fn family(mitigation: &str) -> &str {
    mitigation.split('(').next().unwrap_or(mitigation)
}

/// Run the reference sweep under both paths, timing each cell (minimum over
/// `repeat` runs per path), and check the paths agree on every result.
pub fn run_bench(opts: &BenchOptions) -> Result<BenchReport, String> {
    if opts.repeat == 0 {
        return Err("--repeat must be at least 1".to_string());
    }
    let cfg = reference_config(opts.quick);
    let plan = SweepPlan::from_config(&cfg)?;
    let cells: Vec<&CellSpec> = plan
        .grid
        .iter()
        .filter(|cell| match &opts.filter {
            Some(f) => cell_label(&plan, cell).contains(f.as_str()),
            None => true,
        })
        .collect();
    if cells.is_empty() {
        return Err(format!(
            "--filter '{}' matches no bench cells",
            opts.filter.as_deref().unwrap_or("")
        ));
    }
    let tables = build_table_cache(&plan, &plan.grid);
    let kernel = opts.kernel.resolve()?;
    let mut worker = Worker::with_kernel(kernel);

    // Warm up both paths on the first cell (page-faults the big vectors in)
    // so the timed loop measures steady-state throughput.
    let warm = cells[0];
    let _ = run_cell_legacy(&plan, warm);
    let _ = worker.run_cell(&plan, warm, &tables);

    // Repeats are interleaved — the repeat loop wraps the whole cell sweep
    // rather than hammering one cell `repeat` times back-to-back — so a
    // cell's timing samples land minutes apart and the reported minimum is
    // robust against transient load on the host (a slow window then costs
    // one sample of every cell instead of every sample of one cell).
    let mut lt = vec![f64::INFINITY; cells.len()];
    let mut ot = vec![f64::INFINITY; cells.len()];
    let mut results: Vec<Option<RunResult>> = vec![None; cells.len()];
    let mut equivalent = true;
    for rep in 0..opts.repeat {
        for (ci, cell) in cells.iter().enumerate() {
            let t0 = Instant::now();
            let legacy = run_cell_legacy(&plan, cell);
            lt[ci] = lt[ci].min(t0.elapsed().as_secs_f64());

            let t1 = Instant::now();
            let optimized = worker.run_cell(&plan, cell, &tables);
            ot[ci] = ot[ci].min(t1.elapsed().as_secs_f64());

            if rep == 0 {
                if !results_identical(&legacy, &optimized) {
                    equivalent = false;
                    eprintln!(
                        "bench equivalence FAILED: {} / {} — legacy flips {} vs optimized {}",
                        legacy.workload,
                        legacy.mitigation,
                        legacy.total_flips,
                        optimized.total_flips
                    );
                }
                results[ci] = Some(optimized);
            }
        }
    }

    let mut timings = Vec::with_capacity(cells.len());
    let mut legacy_secs = 0.0;
    let mut optimized_secs = 0.0;
    let mut peak = 0.0f64;
    for (ci, cell) in cells.iter().enumerate() {
        let result = results[ci].take().expect("first pass filled every cell");
        legacy_secs += lt[ci];
        optimized_secs += ot[ci];
        peak = peak.max(cell.activations as f64 / ot[ci]);
        timings.push(CellTiming {
            workload: result.workload,
            mitigation: result.mitigation,
            hc_first: cell.hc_first,
            data_pattern: result.data_pattern,
            legacy_secs: lt[ci],
            optimized_secs: ot[ci],
        });
    }

    // Per-mitigation-family aggregation, in first-seen (plan) order.
    let mut breakdown: Vec<MitigationBreakdown> = Vec::new();
    for t in &timings {
        let fam = family(&t.mitigation);
        let row = match breakdown.iter_mut().find(|b| b.mitigation == fam) {
            Some(row) => row,
            None => {
                breakdown.push(MitigationBreakdown {
                    mitigation: fam.to_string(),
                    cells: 0,
                    legacy_secs: 0.0,
                    optimized_secs: 0.0,
                });
                breakdown.last_mut().expect("just pushed")
            }
        };
        row.cells += 1;
        row.legacy_secs += t.legacy_secs;
        row.optimized_secs += t.optimized_secs;
    }

    let total_acts = (cells.len() as u64 * cfg.activations) as f64;
    let legacy_rate = total_acts / legacy_secs;
    let optimized_rate = total_acts / optimized_secs;
    Ok(BenchReport {
        quick: opts.quick,
        geometry: cfg.geometry,
        activations_per_cell: cfg.activations,
        repeat: opts.repeat,
        filter: opts.filter.clone(),
        rustc_version: tool_version("rustc", &["--version"]),
        git_revision: tool_version("git", &["rev-parse", "--short", "HEAD"]),
        kernel,
        cells: timings,
        breakdown,
        legacy_secs,
        optimized_secs,
        legacy_acts_per_sec: legacy_rate,
        optimized_acts_per_sec: optimized_rate,
        speedup: optimized_rate / legacy_rate,
        peak_cell_acts_per_sec: peak,
        equivalent,
    })
}

pub(crate) fn fnum(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.3}")
    } else {
        "null".to_string()
    }
}

/// Minimal JSON string escaping for metadata fields (the hand-rolled
/// emitter elsewhere only handles known-clean names).
pub(crate) fn jstr(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Render the report as a JSON document (the `BENCH_6.json` artifact).
pub fn render(report: &BenchReport) -> String {
    let mut rows = String::new();
    for (i, c) in report.cells.iter().enumerate() {
        let sep = if i + 1 < report.cells.len() { "," } else { "" };
        let _ = writeln!(
            rows,
            "    {{\"workload\": \"{}\", \"mitigation\": \"{}\", \"hc_first\": {}, \
             \"data_pattern\": \"{}\", \
             \"legacy_secs\": {}, \"optimized_secs\": {}, \"speedup\": {}}}{sep}",
            c.workload,
            c.mitigation,
            c.hc_first,
            c.data_pattern,
            fnum(c.legacy_secs),
            fnum(c.optimized_secs),
            fnum(c.legacy_secs / c.optimized_secs),
        );
    }
    let mut fams = String::new();
    for (i, b) in report.breakdown.iter().enumerate() {
        let sep = if i + 1 < report.breakdown.len() {
            ","
        } else {
            ""
        };
        let _ = writeln!(
            fams,
            "    {{\"mitigation\": \"{}\", \"cells\": {}, \"legacy_secs\": {}, \
             \"optimized_secs\": {}, \"speedup\": {}}}{sep}",
            b.mitigation,
            b.cells,
            fnum(b.legacy_secs),
            fnum(b.optimized_secs),
            fnum(b.legacy_secs / b.optimized_secs),
        );
    }
    let g = &report.geometry;
    format!(
        "{{\n  \"bench\": \"reference sweep (hc_first in {{4096,512,128}}, legacy+rowstripe \
         patterns, ECC(128), all mitigations)\",\n  \
         \"quick\": {},\n  \
         \"repeat\": {},\n  \
         \"filter\": {},\n  \
         \"rustc\": {},\n  \
         \"git_revision\": {},\n  \
         \"kernel\": {},\n  \
         \"geometry\": {{\"channels\": {}, \"ranks\": {}, \"banks\": {}, \"rows_per_bank\": {}}},\n  \
         \"activations_per_cell\": {},\n  \
         \"cells\": [\n{rows}  ],\n  \
         \"mitigation_breakdown\": [\n{fams}  ],\n  \
         \"legacy\": {{\"wall_secs\": {}, \"acts_per_sec\": {}}},\n  \
         \"optimized\": {{\"wall_secs\": {}, \"acts_per_sec\": {}, \"peak_cell_acts_per_sec\": {}}},\n  \
         \"speedup\": {},\n  \"equivalent\": {}\n}}",
        report.quick,
        report.repeat,
        report
            .filter
            .as_deref()
            .map_or("null".to_string(), jstr),
        jstr(&report.rustc_version),
        jstr(&report.git_revision),
        jstr(report.kernel.name()),
        g.channels,
        g.ranks,
        g.banks,
        g.rows_per_bank,
        report.activations_per_cell,
        fnum(report.legacy_secs),
        fnum(report.legacy_acts_per_sec),
        fnum(report.optimized_secs),
        fnum(report.optimized_acts_per_sec),
        fnum(report.peak_cell_acts_per_sec),
        fnum(report.speedup),
        report.equivalent,
    )
}

// ---------------------------------------------------------------------------
// Saturation bench (`bench --saturation` → BENCH_7.json)
// ---------------------------------------------------------------------------

/// Options for the distributed saturation benchmark.
#[derive(Debug, Clone)]
pub struct SaturationOptions {
    /// Shrink the per-cell activation budget for CI smoke runs.
    pub quick: bool,
    /// Where to write the JSON report.
    pub out_path: String,
    /// Worker-pool sizes to measure.
    pub worker_counts: Vec<usize>,
    /// Settle-kernel request propagated through the worker protocol.
    pub kernel: KernelChoice,
    /// Fail the run if the peak measured cells/sec lands below this (the
    /// CI perf guard hook; `None` disables).
    pub min_cells_per_sec: Option<f64>,
    /// Worker executable; defaults to the current executable (tests point
    /// it at the real `rh-cli` binary).
    pub worker_program: Option<std::path::PathBuf>,
}

impl Default for SaturationOptions {
    fn default() -> Self {
        Self {
            quick: false,
            out_path: "BENCH_7.json".to_string(),
            worker_counts: vec![1, 2, 4, 8],
            kernel: KernelChoice::default(),
            min_cells_per_sec: None,
            worker_program: None,
        }
    }
}

/// One measured pool size.
#[derive(Debug, Clone)]
pub struct SaturationPoint {
    pub workers: usize,
    pub wall_secs: f64,
    pub cells_per_sec: f64,
    pub acts_per_sec: f64,
    /// `worker:kernel(cells)` per worker, from the response envelope — the
    /// satellite requirement that the merged report records each worker's
    /// resolved kernel.
    pub worker_kernels: Vec<String>,
}

/// Full saturation-bench outcome (`BENCH_7.json`).
#[derive(Debug, Clone)]
pub struct SaturationReport {
    pub quick: bool,
    pub rustc_version: String,
    pub git_revision: String,
    /// The kernel request sent in every shard lease (workers resolve it
    /// locally; per-point resolutions are in [`SaturationPoint`]).
    pub kernel_request: KernelChoice,
    pub activations_per_cell: u64,
    /// Cells per submitted job (grid + PARA sweep).
    pub cells_per_job: u64,
    /// `std::thread::available_parallelism()` on the measuring host. A
    /// flat worker ladder on a 1-CPU host is expected (the pools time-slice
    /// one core), and readers of archived reports need the context to tell
    /// that apart from a real scaling regression.
    pub available_parallelism: usize,
    pub points: Vec<SaturationPoint>,
    pub peak_cells_per_sec: f64,
    /// Every pool size produced bytes identical to the in-process sweep.
    pub identical_bytes: bool,
}

/// Warn when the worker ladder cannot show scaling because the host has a
/// single CPU: every pool size time-slices the same core, so a flat curve
/// is the machine's fault, not the service's. Returns the warning to print
/// (separated from `run_saturation` so the trigger condition is testable).
fn flat_ladder_warning(parallelism: usize, points: &[SaturationPoint]) -> Option<String> {
    if parallelism > 1 || points.len() < 2 {
        return None;
    }
    let (mut lo, mut hi) = (f64::INFINITY, 0.0f64);
    for p in points {
        lo = lo.min(p.cells_per_sec);
        hi = hi.max(p.cells_per_sec);
    }
    // Less than 25% spread across the whole ladder counts as flat.
    if lo > 0.0 && hi / lo < 1.25 {
        Some(format!(
            "saturation: worker ladder is flat (spread {:.2}x) on a host with \
             available_parallelism=1 — pool sizes time-slice one core, so this \
             measures overhead, not scaling",
            hi / lo
        ))
    } else {
        None
    }
}

/// The saturation workload: the **default sweep config** — the exact job a
/// client submits with `{}` — so the measured cells/sec is the service's
/// real per-request throughput, not a synthetic microbenchmark.
pub fn saturation_config(quick: bool) -> SweepConfig {
    SweepConfig {
        activations: if quick { 40_000 } else { 200_000 },
        ..SweepConfig::default()
    }
}

/// Measure end-to-end service throughput (cells/sec, submit-to-envelope)
/// at each requested worker-pool size, verifying every merged document
/// byte-identical against the in-process sweep. Each pool size gets a
/// fresh coordinator so the result cache can never short-circuit a
/// measurement.
pub fn run_saturation(opts: &SaturationOptions) -> Result<SaturationReport, String> {
    if opts.worker_counts.is_empty() {
        return Err("--workers requires at least one pool size".to_string());
    }
    if opts.worker_counts.contains(&0) {
        return Err("--workers pool sizes must be at least 1".to_string());
    }
    let cfg = saturation_config(opts.quick);
    let reference = crate::sweep::run_sweep_with_kernel(
        &cfg,
        std::thread::available_parallelism().map_or(1, |n| n.get()),
        opts.kernel,
    )?;
    let reference_doc = crate::json::render(&reference);
    let cells_per_job = (reference.grid.len() + reference.para_sweep.len()) as u64;

    let mut points = Vec::with_capacity(opts.worker_counts.len());
    let mut identical = true;
    let mut peak = 0.0f64;
    for &workers in &opts.worker_counts {
        let coordinator = crate::serve::Coordinator::start(crate::serve::ServeOptions {
            workers,
            kernel: opts.kernel,
            worker_program: opts.worker_program.clone(),
            ..crate::serve::ServeOptions::default()
        })?;
        let t0 = Instant::now();
        let env = coordinator.submit(None, &cfg)?;
        let wall_secs = t0.elapsed().as_secs_f64();
        coordinator.shutdown();
        if env.document != reference_doc {
            identical = false;
            eprintln!(
                "saturation equivalence FAILED at {workers} workers: distributed document \
                 diverged from the in-process sweep"
            );
        }
        let cells_per_sec = cells_per_job as f64 / wall_secs;
        peak = peak.max(cells_per_sec);
        points.push(SaturationPoint {
            workers,
            wall_secs,
            cells_per_sec,
            acts_per_sec: (cells_per_job * cfg.activations) as f64 / wall_secs,
            worker_kernels: env
                .workers
                .iter()
                .map(|w| format!("{}:{}({})", w.worker, w.kernel, w.cells))
                .collect(),
        });
    }

    let parallelism = std::thread::available_parallelism().map_or(1, |n| n.get());
    if let Some(warning) = flat_ladder_warning(parallelism, &points) {
        eprintln!("{warning}");
    }

    Ok(SaturationReport {
        quick: opts.quick,
        rustc_version: tool_version("rustc", &["--version"]),
        git_revision: tool_version("git", &["rev-parse", "--short", "HEAD"]),
        kernel_request: opts.kernel,
        activations_per_cell: cfg.activations,
        cells_per_job,
        available_parallelism: parallelism,
        points,
        peak_cells_per_sec: peak,
        identical_bytes: identical,
    })
}

/// Render the saturation report (the `BENCH_7.json` artifact).
pub fn render_saturation(report: &SaturationReport) -> String {
    let mut rows = String::new();
    for (i, p) in report.points.iter().enumerate() {
        let sep = if i + 1 < report.points.len() { "," } else { "" };
        let kernels: Vec<String> = p.worker_kernels.iter().map(|k| jstr(k)).collect();
        let _ = writeln!(
            rows,
            "    {{\"workers\": {}, \"wall_secs\": {}, \"cells_per_sec\": {}, \
             \"acts_per_sec\": {}, \"worker_kernels\": [{}]}}{sep}",
            p.workers,
            fnum(p.wall_secs),
            fnum(p.cells_per_sec),
            fnum(p.acts_per_sec),
            kernels.join(", "),
        );
    }
    format!(
        "{{\n  \"bench\": \"distributed sweep saturation (default config via serve/worker, \
         byte-checked against in-process sweep)\",\n  \
         \"quick\": {},\n  \
         \"rustc\": {},\n  \
         \"git_revision\": {},\n  \
         \"kernel_request\": {},\n  \
         \"activations_per_cell\": {},\n  \
         \"cells_per_job\": {},\n  \
         \"available_parallelism\": {},\n  \
         \"points\": [\n{rows}  ],\n  \
         \"peak_cells_per_sec\": {},\n  \
         \"identical_bytes\": {}\n}}",
        report.quick,
        jstr(&report.rustc_version),
        jstr(&report.git_revision),
        jstr(report.kernel_request.name()),
        report.activations_per_cell,
        report.cells_per_job,
        report.available_parallelism,
        fnum(report.peak_cells_per_sec),
        report.identical_bytes,
    )
}

// ---------------------------------------------------------------------------
// Analysis bench (`bench --analysis` → BENCH_8.json)
// ---------------------------------------------------------------------------

/// Options for the closed-form evaluation throughput bench.
#[derive(Debug, Clone)]
pub struct AnalysisOptions {
    /// Drop the largest window from the grid for CI smoke runs.
    pub quick: bool,
    /// Where to write the JSON report.
    pub out_path: String,
    /// Timing runs per grid point; the minimum is reported.
    pub repeat: usize,
    /// Fail the run if the direct form's aggregate throughput lands below
    /// this many evaluations/sec (the CI perf guard hook; `None` disables).
    pub min_evals_per_sec: Option<f64>,
}

impl Default for AnalysisOptions {
    fn default() -> Self {
        Self {
            quick: false,
            out_path: "BENCH_8.json".to_string(),
            repeat: 3,
            min_evals_per_sec: None,
        }
    }
}

/// One timed `(mac, window)` grid point.
#[derive(Debug, Clone)]
pub struct AnalysisPoint {
    pub mac: u64,
    pub window: u64,
    /// Closed-form evaluations timed per form (all sampling rates ×
    /// the inner repetition count).
    pub evals: u64,
    pub direct_secs: f64,
    pub dual_secs: f64,
}

/// Full analysis-bench outcome (`BENCH_8.json`).
#[derive(Debug, Clone)]
pub struct AnalysisReport {
    pub quick: bool,
    pub repeat: usize,
    pub rustc_version: String,
    pub git_revision: String,
    pub points: Vec<AnalysisPoint>,
    pub direct_evals_per_sec: f64,
    pub dual_evals_per_sec: f64,
    /// Bisection solves of `required_p` timed end to end.
    pub solves: u64,
    pub solver_secs: f64,
    pub solves_per_sec: f64,
    /// Largest `|direct − dual|` seen anywhere in the timed grid.
    pub max_divergence: f64,
    /// `max_divergence < 1e-9` — the tentpole's agreement contract,
    /// re-checked on every bench run at full grid scale.
    pub agreement: bool,
}

/// The sampling rates every grid point evaluates (the sweep's PARA axis
/// plus denser coverage toward deployable rates).
const ANALYSIS_PS: [f64; 5] = [0.001, 0.004, 0.016, 0.05, 0.2];

/// Time the closed forms and the inverse solver over a pinned
/// `(mac, window, p)` grid, verifying direct/dual agreement at every
/// point. Pure CPU arithmetic — no simulator involved — so this measures
/// (and guards) the cost of the analytical layer itself: crossval runs
/// thousands of these evaluations, and `configure` answers interactively.
pub fn run_analysis(opts: &AnalysisOptions) -> Result<AnalysisReport, String> {
    if opts.repeat == 0 {
        return Err("--repeat must be at least 1".to_string());
    }
    let macs: &[u64] = &[4, 8, 16, 32, 64];
    let windows: &[u64] = if opts.quick {
        &[1_000, 4_096]
    } else {
        &[1_000, 4_096, 16_384]
    };
    // Inner repetitions make each timing sample long enough to resolve: a
    // single O(window) direct evaluation is sub-microsecond.
    let inner: u64 = if opts.quick { 50 } else { 200 };

    let mut points = Vec::with_capacity(macs.len() * windows.len());
    let mut direct_secs_total = 0.0;
    let mut dual_secs_total = 0.0;
    let mut evals_total = 0u64;
    let mut max_divergence = 0.0f64;
    for &mac in macs {
        for &window in windows {
            // Agreement first (untimed): the bench doubles as the grid-scale
            // re-check of the 1e-9 contract.
            for &p in &ANALYSIS_PS {
                let direct = rh_analysis::p_fail_direct(p, mac, window);
                let dual = rh_analysis::p_fail_dual(p, mac, window);
                max_divergence = max_divergence.max((direct - dual).abs());
            }
            let evals = ANALYSIS_PS.len() as u64 * inner;
            let mut direct_secs = f64::INFINITY;
            let mut dual_secs = f64::INFINITY;
            for _ in 0..opts.repeat {
                let t0 = Instant::now();
                for _ in 0..inner {
                    for &p in &ANALYSIS_PS {
                        std::hint::black_box(rh_analysis::p_fail_direct(
                            std::hint::black_box(p),
                            mac,
                            window,
                        ));
                    }
                }
                direct_secs = direct_secs.min(t0.elapsed().as_secs_f64());
                let t1 = Instant::now();
                for _ in 0..inner {
                    for &p in &ANALYSIS_PS {
                        std::hint::black_box(rh_analysis::p_fail_dual(
                            std::hint::black_box(p),
                            mac,
                            window,
                        ));
                    }
                }
                dual_secs = dual_secs.min(t1.elapsed().as_secs_f64());
            }
            direct_secs_total += direct_secs;
            dual_secs_total += dual_secs;
            evals_total += evals;
            points.push(AnalysisPoint {
                mac,
                window,
                evals,
                direct_secs,
                dual_secs,
            });
        }
    }

    // The inverse solver, timed over the same mac axis at a medium window —
    // each solve is ~100 direct evaluations, the cost `configure` pays.
    let solver_targets: &[f64] = &[0.5, 0.1, 0.01];
    let solve_window = 4_096u64;
    let mut solver_secs = f64::INFINITY;
    let solves = (macs.len() * solver_targets.len()) as u64;
    for _ in 0..opts.repeat {
        let t0 = Instant::now();
        for &mac in macs {
            for &target in solver_targets {
                std::hint::black_box(rh_analysis::required_p(
                    mac,
                    solve_window,
                    std::hint::black_box(target),
                ));
            }
        }
        solver_secs = solver_secs.min(t0.elapsed().as_secs_f64());
    }

    Ok(AnalysisReport {
        quick: opts.quick,
        repeat: opts.repeat,
        rustc_version: tool_version("rustc", &["--version"]),
        git_revision: tool_version("git", &["rev-parse", "--short", "HEAD"]),
        points,
        direct_evals_per_sec: evals_total as f64 / direct_secs_total,
        dual_evals_per_sec: evals_total as f64 / dual_secs_total,
        solves,
        solver_secs,
        solves_per_sec: solves as f64 / solver_secs,
        max_divergence,
        agreement: max_divergence < 1e-9,
    })
}

/// Render the analysis report (the `BENCH_8.json` artifact).
pub fn render_analysis(report: &AnalysisReport) -> String {
    let mut rows = String::new();
    for (i, p) in report.points.iter().enumerate() {
        let sep = if i + 1 < report.points.len() { "," } else { "" };
        let _ = writeln!(
            rows,
            "    {{\"mac\": {}, \"window\": {}, \"evals\": {}, \
             \"direct_evals_per_sec\": {}, \"dual_evals_per_sec\": {}}}{sep}",
            p.mac,
            p.window,
            p.evals,
            fnum(p.evals as f64 / p.direct_secs),
            fnum(p.evals as f64 / p.dual_secs),
        );
    }
    format!(
        "{{\n  \"bench\": \"closed-form failure-model evaluation throughput \
         (direct recurrence, Markov dual, bisection solver)\",\n  \
         \"quick\": {},\n  \
         \"repeat\": {},\n  \
         \"rustc\": {},\n  \
         \"git_revision\": {},\n  \
         \"points\": [\n{rows}  ],\n  \
         \"direct_evals_per_sec\": {},\n  \
         \"dual_evals_per_sec\": {},\n  \
         \"solver\": {{\"solves\": {}, \"wall_secs\": {}, \"solves_per_sec\": {}}},\n  \
         \"max_divergence\": {},\n  \
         \"agreement\": {}\n}}",
        report.quick,
        report.repeat,
        jstr(&report.rustc_version),
        jstr(&report.git_revision),
        fnum(report.direct_evals_per_sec),
        fnum(report.dual_evals_per_sec),
        report.solves,
        fnum(report.solver_secs),
        fnum(report.solves_per_sec),
        // Divergence sits at the 1e-12 scale; fixed 3-decimal formatting
        // would flatten it to 0.000.
        if report.max_divergence.is_finite() {
            format!("{:e}", report.max_divergence)
        } else {
            "null".to_string()
        },
        report.agreement,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_configs_are_valid_plans() {
        for quick in [true, false] {
            let cfg = reference_config(quick);
            let plan = SweepPlan::from_config(&cfg).expect("reference config must plan");
            // 3 hc × 2 patterns × (single + double + many-sided(8)) × 5
            // mitigations.
            assert_eq!(plan.grid.len(), 90);
        }
    }

    #[test]
    fn legacy_and_optimized_paths_agree_on_a_small_cell() {
        let mut cfg = reference_config(true);
        cfg.activations = 20_000;
        cfg.geometry = Geometry::tiny(1024);
        let plan = SweepPlan::from_config(&cfg).unwrap();
        let tables = build_table_cache(&plan, &plan.grid);
        let mut worker = Worker::with_kernel(Kernel::auto());
        for cell in &plan.grid {
            let legacy = run_cell_legacy(&plan, cell);
            let optimized = worker.run_cell(&plan, cell, &tables);
            assert!(
                results_identical(&legacy, &optimized),
                "paths diverged on {} / {}",
                legacy.workload,
                legacy.mitigation
            );
        }
    }

    #[test]
    fn filter_selects_matching_cells_and_rejects_nonsense() {
        let opts = BenchOptions {
            quick: true,
            repeat: 1,
            filter: Some("no-such-cell".to_string()),
            ..BenchOptions::default()
        };
        assert!(run_bench(&opts).is_err());

        let cfg = reference_config(true);
        let plan = SweepPlan::from_config(&cfg).unwrap();
        let matching = plan
            .grid
            .iter()
            .filter(|c| cell_label(&plan, c).contains("graphene"))
            .count();
        assert_eq!(matching, 18, "3 hc × 2 patterns × 3 workloads of graphene");
        // The label's leading pattern component makes the axis filterable.
        let striped = plan
            .grid
            .iter()
            .filter(|c| cell_label(&plan, c).starts_with("rowstripe/"))
            .count();
        assert_eq!(striped, 45);
    }

    #[test]
    fn zero_repeat_is_rejected() {
        let opts = BenchOptions {
            repeat: 0,
            ..BenchOptions::default()
        };
        assert!(run_bench(&opts).is_err());
    }

    #[test]
    fn family_strips_parameter_list() {
        assert_eq!(family("graphene(k=64,t=512)"), "graphene");
        assert_eq!(family("none"), "none");
    }

    #[test]
    fn report_renders_valid_shape() {
        let report = BenchReport {
            quick: true,
            geometry: Geometry::tiny(64),
            activations_per_cell: 10,
            repeat: 3,
            filter: Some("trr".to_string()),
            rustc_version: "rustc 1.0 \"quoted\"".to_string(),
            git_revision: "abc1234".to_string(),
            kernel: Kernel::Scalar,
            cells: vec![CellTiming {
                workload: "w".into(),
                mitigation: "m(k=1)".into(),
                hc_first: 128,
                data_pattern: "rowstripe".into(),
                legacy_secs: 0.5,
                optimized_secs: 0.1,
            }],
            breakdown: vec![MitigationBreakdown {
                mitigation: "m".into(),
                cells: 1,
                legacy_secs: 0.5,
                optimized_secs: 0.1,
            }],
            legacy_secs: 0.5,
            optimized_secs: 0.1,
            legacy_acts_per_sec: 20.0,
            optimized_acts_per_sec: 100.0,
            speedup: 5.0,
            peak_cell_acts_per_sec: 100.0,
            equivalent: true,
        };
        let s = render(&report);
        assert!(s.starts_with('{') && s.ends_with('}'));
        assert!(s.contains("\"speedup\": 5.000"));
        assert!(s.contains("\"equivalent\": true"));
        assert!(s.contains("\"repeat\": 3"));
        assert!(s.contains("\"filter\": \"trr\""));
        assert!(s.contains("\"rustc\": \"rustc 1.0 \\\"quoted\\\"\""));
        assert!(s.contains("\"kernel\": \"scalar\""));
        assert!(s.contains("\"mitigation_breakdown\""));
        assert!(s.contains("\"hc_first\": 128"));
        assert!(s.contains("\"data_pattern\": \"rowstripe\""));
        assert!(!s.contains("NaN"));
    }

    #[test]
    fn metadata_falls_back_to_unknown() {
        assert_eq!(tool_version("definitely-not-a-command-9q", &[]), "unknown");
    }

    #[test]
    fn saturation_rejects_empty_and_zero_pool_sizes() {
        let opts = SaturationOptions {
            worker_counts: vec![],
            ..SaturationOptions::default()
        };
        assert!(run_saturation(&opts).is_err());
        let opts = SaturationOptions {
            worker_counts: vec![1, 0],
            ..SaturationOptions::default()
        };
        assert!(run_saturation(&opts).is_err());
    }

    #[test]
    fn saturation_config_is_the_default_sweep_shape() {
        let full = saturation_config(false);
        let quick = saturation_config(true);
        assert_eq!(full.hc_firsts, SweepConfig::default().hc_firsts);
        assert_eq!(full.activations, 200_000);
        assert_eq!(quick.activations, 40_000);
        // Quick and full are the same *grid* — only the per-cell budget
        // shrinks, so scaling curves stay comparable.
        let full_plan = SweepPlan::from_config(&full).unwrap();
        let quick_plan = SweepPlan::from_config(&quick).unwrap();
        assert_eq!(full_plan.grid.len(), quick_plan.grid.len());
    }

    #[test]
    fn saturation_report_renders_valid_shape() {
        let report = SaturationReport {
            quick: true,
            rustc_version: "rustc 1.0".into(),
            git_revision: "abc".into(),
            kernel_request: KernelChoice::Scalar,
            activations_per_cell: 40_000,
            cells_per_job: 124,
            available_parallelism: 4,
            points: vec![SaturationPoint {
                workers: 2,
                wall_secs: 0.5,
                cells_per_sec: 248.0,
                acts_per_sec: 9_920_000.0,
                worker_kernels: vec!["local-0:scalar(70)".into(), "local-1:scalar(54)".into()],
            }],
            peak_cells_per_sec: 248.0,
            identical_bytes: true,
        };
        let s = render_saturation(&report);
        assert!(s.starts_with('{') && s.ends_with('}'));
        assert!(s.contains("\"workers\": 2"));
        assert!(s.contains("\"cells_per_sec\": 248.000"));
        assert!(s.contains("\"kernel_request\": \"scalar\""));
        assert!(s.contains("\"available_parallelism\": 4"));
        assert!(s.contains("\"identical_bytes\": true"));
        assert!(s.contains("local-1:scalar(54)"));
        assert!(!s.contains("NaN"));
    }

    #[test]
    fn flat_ladder_warning_fires_only_on_single_cpu_flat_curves() {
        let point = |workers: usize, cells_per_sec: f64| SaturationPoint {
            workers,
            wall_secs: 1.0,
            cells_per_sec,
            acts_per_sec: cells_per_sec * 1000.0,
            worker_kernels: vec![],
        };
        let flat = vec![point(1, 100.0), point(2, 104.0), point(4, 98.0)];
        let scaling = vec![point(1, 100.0), point(2, 190.0), point(4, 350.0)];
        // Single CPU + flat curve: warn, naming the spread.
        let warning = flat_ladder_warning(1, &flat).expect("flat ladder on 1 CPU must warn");
        assert!(warning.contains("available_parallelism=1"), "{warning}");
        // Real scaling, one CPU claimed: the curve speaks for itself.
        assert_eq!(flat_ladder_warning(1, &scaling), None);
        // Multi-CPU host: a flat curve is a real finding, not noise.
        assert_eq!(flat_ladder_warning(4, &flat), None);
        // A single point has no spread to judge.
        assert_eq!(flat_ladder_warning(1, &flat[..1]), None);
    }
}
