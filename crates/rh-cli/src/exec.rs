//! Cell execution: shard a plan's cells across worker threads and merge
//! results back into plan order.
//!
//! Cells are embarrassingly parallel — each one materializes its own device,
//! workload, and mitigation from plain specs and seeds — so the executor is
//! a work-stealing loop over an atomic cursor: dependency-free, and immune
//! to scheduling order because every result is written to its cell's slot
//! and the merged vector is returned in plan order. `--threads 1` and
//! `--threads N` therefore produce identical results, which the integration
//! tests and the CI determinism job assert byte-for-byte on the JSON.

use crate::engine::{run_experiment, RunResult};
use crate::plan::{CellSpec, SweepPlan, BLAST_RADIUS};
use rh_core::VictimModelParams;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Run one cell: build its components from specs + seeds and drive the
/// engine. Pure function of `(plan, cell)` — no shared state.
fn run_cell(plan: &SweepPlan, cell: &CellSpec) -> RunResult {
    let params = VictimModelParams::with_hc_first(cell.hc_first);
    let mut workload = cell
        .workload
        .build(
            &plan.config.geometry,
            plan.config.benign_fraction,
            cell.seeds.workload,
        )
        .expect("workloads are validated at plan time");
    let mut mitigation = cell
        .mitigation
        .build(cell.hc_first, BLAST_RADIUS, cell.seeds.mitigation);
    run_experiment(
        plan.config.geometry,
        params,
        cell.seeds.device,
        workload.as_mut(),
        mitigation.as_mut(),
        cell.activations,
        cell.auto_refresh_interval,
    )
}

/// Execute `cells` on up to `threads` workers; results come back merged in
/// cell order regardless of which worker ran what.
pub fn execute_cells(plan: &SweepPlan, cells: &[CellSpec], threads: usize) -> Vec<RunResult> {
    let threads = threads.max(1).min(cells.len().max(1));
    if threads == 1 {
        return cells.iter().map(|cell| run_cell(plan, cell)).collect();
    }

    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<RunResult>>> = cells.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(cell) = cells.get(i) else { break };
                let result = run_cell(plan, cell);
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every cell executed exactly once")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::SweepConfig;

    fn tiny_plan() -> SweepPlan {
        let cfg = SweepConfig {
            activations: 3_000,
            hc_firsts: vec![500, 1000],
            sides: vec![4],
            geometry: rh_core::Geometry::tiny(64),
            ..SweepConfig::default()
        };
        SweepPlan::from_config(&cfg).unwrap()
    }

    fn flat(results: &[RunResult]) -> Vec<(String, String, u64, u64)> {
        results
            .iter()
            .map(|r| {
                (
                    r.workload.clone(),
                    r.mitigation.clone(),
                    r.total_flips,
                    r.refreshes_issued,
                )
            })
            .collect()
    }

    #[test]
    fn sharded_execution_matches_serial_in_order() {
        let plan = tiny_plan();
        let serial = execute_cells(&plan, &plan.grid, 1);
        for threads in [2, 3, 8] {
            let sharded = execute_cells(&plan, &plan.grid, threads);
            assert_eq!(flat(&serial), flat(&sharded), "threads={threads}");
        }
    }

    #[test]
    fn thread_count_larger_than_cells_is_fine() {
        let plan = tiny_plan();
        let cells = &plan.para_sweep;
        let results = execute_cells(&plan, cells, 64);
        assert_eq!(results.len(), cells.len());
    }

    #[test]
    fn empty_cell_list_yields_empty_results() {
        let plan = tiny_plan();
        assert!(execute_cells(&plan, &[], 4).is_empty());
    }
}
