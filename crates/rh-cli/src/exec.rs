//! Cell execution: shard a plan's cells across worker threads and merge
//! results back into plan order.
//!
//! Cells are embarrassingly parallel — each one materializes its own
//! workload and mitigation from plain specs and seeds — so the executor
//! deals cells round-robin into per-thread shards up front: each shard
//! carries exclusive `&mut` references to its cells' result slots, so
//! every slot is written exactly once by exactly one thread with no lock
//! and no post-join unwrapping hazard (the type system rules out both
//! double-writes and cross-thread contention). Results land in plan order
//! regardless of scheduling, so `--threads 1` and `--threads N` produce
//! identical results, which the integration tests and the CI determinism
//! job assert byte-for-byte on the JSON. Round-robin (not contiguous
//! chunks) because the plan's grid cycles mitigations fastest: dealing
//! spreads the expensive mitigation families evenly across threads.
//!
//! The same per-cell machinery (the crate-internal `Worker::run_cell` over
//! a `build_table_cache` table set) is the execution core of the
//! distributed service's worker process ([`crate::worker`]): a shard lease
//! there is just this module's shard concept serialized across a process
//! boundary.
//!
//! Hot-path amortization across cells:
//!
//! * **Shared device tables**: the immutable seed-derived tables
//!   ([`DeviceTables`]) are built once per distinct `(hc_first, device
//!   seed)` pair up front and `Arc`-shared with every worker — the sweep's
//!   common-random-number structure means all cells at one `HC_first` share
//!   one table set instead of re-deriving O(total_rows) thresholds per cell.
//! * **Per-worker device reuse**: each worker owns one [`DeviceState`] and
//!   one [`rh_mitigations::ActionBuf`] for its whole shard, resetting them
//!   per cell
//!   (`reset_for_cell`) instead of reallocating charge/activation/flip
//!   vectors for every cell.

use crate::engine::{run_experiment, EngineScratch, RunResult};
use crate::plan::{CellSpec, SweepPlan, BLAST_RADIUS};
use rh_core::{DataPattern, DeviceState, DeviceTables, Kernel, VictimModelParams};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Shared immutable tables per distinct `(hc_first, data_pattern,
/// device_seed)` device — the data pattern is part of the table identity
/// because it scales the precomputed attenuation and the per-row
/// charged-cell budgets. The threshold vector inside is pattern-invariant,
/// so a multi-pattern sweep re-derives it once per pattern; that is a
/// deliberate trade-off (a per-sweep O(total_rows) cost, dwarfed by cell
/// execution) to keep `DeviceTables` a single self-contained `Arc` rather
/// than a two-level sharing structure.
pub(crate) type TableCache = BTreeMap<(u64, DataPattern, u64), Arc<DeviceTables>>;

/// The victim-model parameters one cell simulates: the sweep's `HC_first`
/// point plus the cell's Section 5 axes (data pattern from the cell, ECC
/// from the sweep-wide config). The one place specs become device
/// parameters — the sharded executor and the benchmark's legacy path both
/// build from here, so the two can never disagree on what a cell means.
pub(crate) fn cell_params(plan: &SweepPlan, cell: &CellSpec) -> VictimModelParams {
    VictimModelParams {
        data_pattern: cell.data_pattern,
        ecc_codeword_bits: plan.config.ecc_codeword_bits,
        ..VictimModelParams::with_hc_first(cell.hc_first)
    }
}

/// Derive the tables every cell in the shard will need, exactly once each.
pub(crate) fn build_table_cache(plan: &SweepPlan, cells: &[CellSpec]) -> TableCache {
    let mut cache = TableCache::new();
    for cell in cells {
        cache
            .entry((cell.hc_first, cell.data_pattern, cell.seeds.device))
            .or_insert_with(|| {
                DeviceTables::shared(
                    plan.config.geometry,
                    cell_params(plan, cell),
                    cell.seeds.device,
                )
                .expect("geometry and victim params are validated at plan time")
            });
    }
    cache
}

/// One worker's reusable simulation state: a device whose buffers persist
/// across the cells this worker executes, and the engine scratch (action
/// sink + workload chunk buffer).
pub(crate) struct Worker {
    device: Option<DeviceState>,
    scratch: EngineScratch,
    /// Settle kernel every device this worker builds runs under.
    kernel: Kernel,
}

impl Worker {
    /// A worker pinned to `kernel` (the `--kernel` flag, resolved once per
    /// invocation).
    pub(crate) fn with_kernel(kernel: Kernel) -> Self {
        Self {
            device: None,
            scratch: EngineScratch::new(),
            kernel,
        }
    }

    /// Run one cell: build workload + mitigation from specs and seeds, reuse
    /// the worker's device. The result is a pure function of `(plan, cell)`
    /// — reuse never leaks state between cells (`reset_for_cell` is asserted
    /// equivalent to fresh construction in rh-core's tests).
    pub(crate) fn run_cell(
        &mut self,
        plan: &SweepPlan,
        cell: &CellSpec,
        tables: &TableCache,
    ) -> RunResult {
        let cell_tables = tables[&(cell.hc_first, cell.data_pattern, cell.seeds.device)].clone();
        let device = match self.device.as_mut() {
            Some(device) => {
                device.reset_for_cell(cell_tables);
                device
            }
            None => self.device.insert(DeviceState::with_tables_and_kernel(
                cell_tables,
                self.kernel,
            )),
        };
        let mut workload = cell
            .workload
            .build(
                &plan.config.geometry,
                plan.config.benign_fraction,
                cell.seeds.workload,
            )
            .expect("workloads are validated at plan time");
        // MitigationKind, not Box<dyn Mitigation>: the engine monomorphizes
        // over it, so per-activation dispatch is an inlined variant match.
        let mut mitigation = cell.mitigation.build(
            &plan.config.geometry,
            cell.hc_first,
            BLAST_RADIUS,
            cell.seeds.mitigation,
        );
        run_experiment(
            device,
            &mut workload,
            &mut mitigation,
            cell.activations,
            cell.auto_refresh_interval,
            &mut self.scratch,
        )
    }
}

/// Execute `cells` on up to `threads` workers; results come back merged in
/// cell order regardless of which worker ran what.
pub fn execute_cells(plan: &SweepPlan, cells: &[CellSpec], threads: usize) -> Vec<RunResult> {
    execute_cells_with_kernel(plan, cells, threads, Kernel::auto())
}

/// [`execute_cells`] with the settle kernel pinned (the `--kernel` flag,
/// resolved by the caller). The kernel can never affect results — only
/// throughput — so every kernel produces the identical result vector.
pub fn execute_cells_with_kernel(
    plan: &SweepPlan,
    cells: &[CellSpec],
    threads: usize,
    kernel: Kernel,
) -> Vec<RunResult> {
    let threads = threads.max(1).min(cells.len().max(1));
    let tables = build_table_cache(plan, cells);
    if threads == 1 {
        let mut worker = Worker::with_kernel(kernel);
        return cells
            .iter()
            .map(|cell| worker.run_cell(plan, cell, &tables))
            .collect();
    }

    // Write-once result slots: deal (cell, &mut slot) pairs round-robin
    // into per-thread shards, so each thread owns exclusive mutable access
    // to exactly the slots it will fill (see the module docs).
    let mut results: Vec<Option<RunResult>> = (0..cells.len()).map(|_| None).collect();
    let mut shards: Vec<Vec<(&CellSpec, &mut Option<RunResult>)>> =
        (0..threads).map(|_| Vec::new()).collect();
    for (i, (cell, slot)) in cells.iter().zip(results.iter_mut()).enumerate() {
        shards[i % threads].push((cell, slot));
    }
    std::thread::scope(|scope| {
        for shard in shards {
            let tables = &tables;
            scope.spawn(move || {
                let mut worker = Worker::with_kernel(kernel);
                for (cell, slot) in shard {
                    *slot = Some(worker.run_cell(plan, cell, tables));
                }
            });
        }
    });
    results
        .into_iter()
        .map(|slot| slot.expect("every cell executed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::SweepConfig;

    fn tiny_plan() -> SweepPlan {
        let cfg = SweepConfig {
            activations: 3_000,
            hc_firsts: vec![500, 1000],
            sides: vec![4],
            geometry: rh_core::Geometry::tiny(64),
            ..SweepConfig::default()
        };
        SweepPlan::from_config(&cfg).unwrap()
    }

    fn flat(results: &[RunResult]) -> Vec<(String, String, u64, u64)> {
        results
            .iter()
            .map(|r| {
                (
                    r.workload.clone(),
                    r.mitigation.clone(),
                    r.total_flips,
                    r.refreshes_issued,
                )
            })
            .collect()
    }

    #[test]
    fn sharded_execution_matches_serial_in_order() {
        let plan = tiny_plan();
        let serial = execute_cells(&plan, &plan.grid, 1);
        for threads in [2, 3, 8] {
            let sharded = execute_cells(&plan, &plan.grid, threads);
            assert_eq!(flat(&serial), flat(&sharded), "threads={threads}");
        }
    }

    #[test]
    fn pinned_kernels_produce_identical_results() {
        let plan = tiny_plan();
        let auto = execute_cells(&plan, &plan.grid, 2);
        let scalar = execute_cells_with_kernel(&plan, &plan.grid, 2, Kernel::Scalar);
        assert_eq!(flat(&auto), flat(&scalar));
        if rh_core::avx2_available() {
            let avx2 = execute_cells_with_kernel(&plan, &plan.grid, 2, Kernel::Avx2);
            assert_eq!(flat(&auto), flat(&avx2));
        }
    }

    #[test]
    fn table_cache_is_shared_per_device_not_per_cell() {
        let plan = tiny_plan();
        let tables = build_table_cache(&plan, &plan.grid);
        // 2 hc_first values × 1 pattern × 1 shared device seed — far fewer
        // than cells.
        assert_eq!(tables.len(), 2);
        assert!(plan.grid.len() > tables.len());
    }

    #[test]
    fn table_cache_keys_distinguish_data_patterns() {
        let cfg = SweepConfig {
            activations: 1_000,
            hc_firsts: vec![500],
            sides: vec![4],
            data_patterns: vec![
                rh_core::DataPattern::Legacy,
                rh_core::DataPattern::RowStripe,
            ],
            geometry: rh_core::Geometry::tiny(64),
            ..SweepConfig::default()
        };
        let plan = SweepPlan::from_config(&cfg).unwrap();
        let tables = build_table_cache(&plan, &plan.grid);
        // 1 hc × 2 patterns: pattern-scaled attenuation/budgets must not be
        // shared across patterns.
        assert_eq!(tables.len(), 2);
        let results = execute_cells(&plan, &plan.grid, 2);
        assert_eq!(results.len(), plan.grid.len());
    }

    #[test]
    fn worker_reuse_matches_fresh_workers() {
        // Serial path reuses ONE worker for every cell; per-cell fresh
        // workers must agree, proving reset_for_cell leaks nothing.
        let plan = tiny_plan();
        let tables = build_table_cache(&plan, &plan.grid);
        let reused = execute_cells(&plan, &plan.grid, 1);
        let fresh: Vec<RunResult> = plan
            .grid
            .iter()
            .map(|cell| Worker::with_kernel(Kernel::auto()).run_cell(&plan, cell, &tables))
            .collect();
        assert_eq!(flat(&reused), flat(&fresh));
    }

    #[test]
    fn thread_count_larger_than_cells_is_fine() {
        let plan = tiny_plan();
        let cells = &plan.para_sweep;
        let results = execute_cells(&plan, cells, 64);
        assert_eq!(results.len(), cells.len());
    }

    #[test]
    fn empty_cell_list_yields_empty_results() {
        let plan = tiny_plan();
        assert!(execute_cells(&plan, &[], 4).is_empty());
    }
}
