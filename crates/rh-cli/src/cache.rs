//! The coordinator's LRU result cache.
//!
//! Keyed by the canonical `(config_hash, seed)` pair
//! ([`crate::proto::config_key`]): two requests with the same key *plan the
//! same cells under the same random universe*, so their merged documents are
//! byte-identical by the determinism invariant — serving the stored bytes
//! is indistinguishable from re-executing, except ~10⁶× cheaper. The hash
//! half canonicalizes spelling (field order, explicit defaults, duplicate
//! axis values), so a client cannot dodge the cache by reordering fields.
//!
//! Capacity is bounded (default [`DEFAULT_CAPACITY`]) with
//! least-recently-*used* eviction — a hit refreshes recency, so a hot
//! config pinned by steady traffic survives a scan of one-off configs.
//! Recency is a logical clock, not wall time: deterministic, test-friendly,
//! and immune to clock steps.
//!
//! The cache stores the rendered document (the exact bytes a client
//! receives), not the [`crate::sweep::SweepOutput`] — the service's unit of
//! work is "bytes for a config", and storing post-render means a hit skips
//! rendering too.
//!
//! ## The persistent layer
//!
//! [`PersistentCache`] (enabled with `serve --cache-dir`) puts the same
//! key→document mapping on disk so a coordinator restart keeps its history:
//! append-only jsonl segments (`cache-NNNNNNNN.jsonl`), one record per
//! line, each carrying an FNV-1a checksum over `hash:seed:document`. The
//! durability contract is *detect, don't trust*: a torn tail (crash mid
//! append) or a garbled record (bit rot, truncation, a chaos test) fails
//! the checksum or the parse and is **skipped with a counted warning** —
//! never served, never fatal. Appends after a torn tail go to a fresh
//! segment so the damage cannot spread. The in-memory [`ResultCache`] LRU
//! fronts the disk layer: hot documents are served from memory, the disk is
//! only read on an LRU miss, and every disk read re-verifies the checksum.

use crate::faults::FaultPlan;
use crate::proto::{fnv1a64, jstr, parse, Value};
use std::collections::HashMap;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Default number of cached sweep documents. A default-config document is
/// ~60 KiB, so the default bound keeps the cache comfortably in tens of
/// MiB even with large custom grids.
pub const DEFAULT_CAPACITY: usize = 128;

/// The cache key: `(config_hash, seed)`.
pub type Key = (u64, u64);

struct Entry {
    document: String,
    /// Logical timestamp of the last hit or insert.
    used: u64,
}

/// A bounded LRU map from [`Key`] to rendered sweep documents, with hit
/// accounting (the coordinator surfaces `cache_hits` in every response
/// envelope — the observable served-from-cache counter).
pub struct ResultCache {
    entries: HashMap<Key, Entry>,
    capacity: usize,
    clock: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl ResultCache {
    pub fn new(capacity: usize) -> Self {
        Self {
            entries: HashMap::new(),
            capacity: capacity.max(1),
            clock: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Look up a document, refreshing its recency and counting the
    /// hit/miss.
    pub fn get(&mut self, key: Key) -> Option<String> {
        let stamp = self.tick();
        match self.entries.get_mut(&key) {
            Some(entry) => {
                entry.used = stamp;
                self.hits += 1;
                Some(entry.document.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert (or refresh) a document, evicting the least-recently-used
    /// entry if the cache is at capacity.
    pub fn put(&mut self, key: Key, document: String) {
        let stamp = self.tick();
        if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity {
            if let Some(&victim) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.used)
                .map(|(k, _)| k)
            {
                self.entries.remove(&victim);
                self.evictions += 1;
            }
        }
        self.entries.insert(
            key,
            Entry {
                document,
                used: stamp,
            },
        );
    }

    /// Lifetime count of [`ResultCache::get`] calls that returned a
    /// document.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Count a served-from-cache response that bypassed [`ResultCache::get`]
    /// (the coordinator's persistent tier): keeps the envelope's
    /// `cache_hits` counter meaning "responses served without execution"
    /// regardless of which tier answered.
    pub fn count_hit(&mut self) {
        self.hits += 1;
    }

    /// Lifetime count of [`ResultCache::get`] calls that missed.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Lifetime count of entries pushed out by capacity pressure (surfaced
    /// in every response envelope, so an undersized `--cache-capacity` is
    /// observable instead of just slow).
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

// ---------------------------------------------------------------------------
// Persistent on-disk cache
// ---------------------------------------------------------------------------

/// Rotate to a fresh segment once the active one exceeds this many bytes.
/// Segments stay small enough that a corrupt region quarantines little.
pub const SEGMENT_ROTATE_BYTES: u64 = 8 << 20;

/// Where a record's bytes live on disk.
#[derive(Debug, Clone, Copy)]
struct RecordLoc {
    segment: u64,
    offset: u64,
    len: u64,
}

/// Crash-safe persistent result cache: append-only checksummed jsonl
/// segments under one directory. See the module docs for the durability
/// contract.
pub struct PersistentCache {
    dir: PathBuf,
    index: HashMap<Key, RecordLoc>,
    /// Sequence number of the segment appends go to.
    active_segment: u64,
    /// Byte length of the active segment (== next append offset).
    active_len: u64,
    /// Records skipped as torn or corrupt, over the cache's lifetime
    /// (restore scan + read-time verification).
    corrupt_skipped: u64,
    rotate_bytes: u64,
}

fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("cache-{seq:08}.jsonl"))
}

/// Encode one record line (no trailing newline).
fn encode_record(key: Key, document: &str) -> String {
    let (hash, seed) = key;
    let sum = record_sum(key, document);
    format!(
        "{{\"hash\":{hash},\"seed\":{seed},\"sum\":{sum},\"document\":{}}}",
        jstr(document)
    )
}

fn record_sum(key: Key, document: &str) -> u64 {
    fnv1a64(format!("{}:{}:{document}", key.0, key.1).as_bytes())
}

/// Decode and verify one record line. `None` means torn/garbled.
fn decode_record(line: &str) -> Option<(Key, String)> {
    let v = parse(line).ok()?;
    let hash = v.get("hash").and_then(Value::as_u64)?;
    let seed = v.get("seed").and_then(Value::as_u64)?;
    let sum = v.get("sum").and_then(Value::as_u64)?;
    let document = v.get("document").and_then(Value::as_str)?.to_string();
    (record_sum((hash, seed), &document) == sum).then_some(((hash, seed), document))
}

impl PersistentCache {
    /// Open (creating if needed) the cache under `dir`, scanning every
    /// segment to rebuild the key index. Torn and corrupt records are
    /// skipped with a counted warning; later records for a key win.
    pub fn open(dir: &Path) -> Result<Self, String> {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cache-dir {}: cannot create: {e}", dir.display()))?;
        let mut segments: Vec<u64> = std::fs::read_dir(dir)
            .map_err(|e| format!("cache-dir {}: cannot read: {e}", dir.display()))?
            .filter_map(|entry| {
                let name = entry.ok()?.file_name().into_string().ok()?;
                name.strip_prefix("cache-")?
                    .strip_suffix(".jsonl")?
                    .parse::<u64>()
                    .ok()
            })
            .collect();
        segments.sort_unstable();

        let mut cache = Self {
            dir: dir.to_path_buf(),
            index: HashMap::new(),
            active_segment: segments.last().map_or(1, |&s| s),
            active_len: 0,
            corrupt_skipped: 0,
            rotate_bytes: SEGMENT_ROTATE_BYTES,
        };
        let mut tail_is_torn = false;
        for &seq in &segments {
            let path = segment_path(dir, seq);
            let bytes = std::fs::read(&path)
                .map_err(|e| format!("cache segment {}: cannot read: {e}", path.display()))?;
            let mut offset = 0u64;
            for chunk in bytes.split_inclusive(|&b| b == b'\n') {
                let terminated = chunk.ends_with(b"\n");
                let line_bytes = if terminated {
                    &chunk[..chunk.len() - 1]
                } else {
                    chunk
                };
                let line = std::str::from_utf8(line_bytes).unwrap_or("");
                if !terminated || line.trim().is_empty() {
                    // A torn tail (crash mid-append) — expected damage.
                    if !line.trim().is_empty() {
                        cache.skip(&path, offset, "torn record (no terminator)");
                        if seq == cache.active_segment {
                            tail_is_torn = true;
                        }
                    }
                } else {
                    match decode_record(line) {
                        Some((key, _)) => {
                            cache.index.insert(
                                key,
                                RecordLoc {
                                    segment: seq,
                                    offset,
                                    len: line_bytes.len() as u64,
                                },
                            );
                        }
                        None => cache.skip(&path, offset, "garbled record (checksum/parse)"),
                    }
                }
                offset += chunk.len() as u64;
            }
            if seq == cache.active_segment {
                cache.active_len = offset;
            }
        }
        if tail_is_torn {
            // Never append after a torn tail: the next record would fuse
            // with the fragment and both would be unreadable.
            cache.active_segment += 1;
            cache.active_len = 0;
        }
        Ok(cache)
    }

    fn skip(&mut self, path: &Path, offset: u64, why: &str) {
        self.corrupt_skipped += 1;
        eprintln!(
            "rh-cache: skipping {} at {} byte {offset} (record #{} skipped so far)",
            why,
            path.display(),
            self.corrupt_skipped
        );
    }

    /// Read a document back, re-verifying its checksum (the file may have
    /// been damaged since the open-time scan). A failed verification counts
    /// as corrupt and un-indexes the record.
    pub fn get(&mut self, key: Key) -> Option<String> {
        let loc = *self.index.get(&key)?;
        let path = segment_path(&self.dir, loc.segment);
        let read = (|| -> std::io::Result<Vec<u8>> {
            let mut file = std::fs::File::open(&path)?;
            file.seek(SeekFrom::Start(loc.offset))?;
            let mut buf = vec![0u8; loc.len as usize];
            file.read_exact(&mut buf)?;
            Ok(buf)
        })();
        let decoded = read
            .ok()
            .and_then(|buf| String::from_utf8(buf).ok())
            .and_then(|line| decode_record(&line));
        match decoded {
            Some((k, document)) if k == key => Some(document),
            _ => {
                self.skip(&path, loc.offset, "unreadable record on get");
                self.index.remove(&key);
                None
            }
        }
    }

    /// Append a record (flushed before returning, so a coordinator crash
    /// right after a job completes loses nothing already acknowledged),
    /// rotating segments at the size bound.
    pub fn put(&mut self, key: Key, document: &str) -> Result<(), String> {
        if self.active_len >= self.rotate_bytes {
            self.active_segment += 1;
            self.active_len = 0;
        }
        let path = segment_path(&self.dir, self.active_segment);
        let line = encode_record(key, document);
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| format!("cache segment {}: cannot open: {e}", path.display()))?;
        file.write_all(line.as_bytes())
            .and_then(|()| file.write_all(b"\n"))
            .and_then(|()| file.flush())
            .map_err(|e| format!("cache segment {}: write failed: {e}", path.display()))?;
        self.index.insert(
            key,
            RecordLoc {
                segment: self.active_segment,
                offset: self.active_len,
                len: line.len() as u64,
            },
        );
        self.active_len += line.len() as u64 + 1;
        Ok(())
    }

    /// Number of keys currently readable from disk.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Lifetime count of records skipped as torn or corrupt.
    pub fn corrupt_skipped(&self) -> u64 {
        self.corrupt_skipped
    }

    /// Override the rotation bound (tests exercise rotation without
    /// writing megabytes).
    pub fn set_rotate_bytes(&mut self, bytes: u64) {
        self.rotate_bytes = bytes.max(1);
    }
}

/// Apply a fault plan's `corrupt-cache-record=N` directives to the segments
/// under `dir`: flip one seeded byte inside the N-th record line (1-based,
/// in segment order). Returns how many records were actually clobbered.
/// This is the coordinator-side injection point for the chaos suite — the
/// corruption happens *before* [`PersistentCache::open`] scans the
/// directory, exactly like damage at rest.
pub fn corrupt_cache_segments(dir: &Path, plan: &FaultPlan) -> Result<u64, String> {
    let targets = plan.corrupt_cache_records();
    if targets.is_empty() || !dir.exists() {
        return Ok(0);
    }
    let mut segments: Vec<u64> = std::fs::read_dir(dir)
        .map_err(|e| format!("cache-dir {}: cannot read: {e}", dir.display()))?
        .filter_map(|entry| {
            let name = entry.ok()?.file_name().into_string().ok()?;
            name.strip_prefix("cache-")?
                .strip_suffix(".jsonl")?
                .parse::<u64>()
                .ok()
        })
        .collect();
    segments.sort_unstable();

    let mut ordinal = 0u64;
    let mut clobbered = 0u64;
    for seq in segments {
        let path = segment_path(dir, seq);
        let mut bytes = std::fs::read(&path)
            .map_err(|e| format!("cache segment {}: cannot read: {e}", path.display()))?;
        let mut changed = false;
        let mut line_start = 0usize;
        for end in 0..bytes.len() {
            if bytes[end] != b'\n' {
                continue;
            }
            ordinal += 1;
            if targets.contains(&ordinal) {
                let line = bytes[line_start..end].to_vec();
                if let Some((offset, byte)) = plan.corrupt_byte_for(ordinal, &line) {
                    bytes[line_start + offset] = byte;
                    changed = true;
                    clobbered += 1;
                }
            }
            line_start = end + 1;
        }
        if changed {
            std::fs::write(&path, &bytes)
                .map_err(|e| format!("cache segment {}: write failed: {e}", path.display()))?;
        }
    }
    Ok(clobbered)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_returns_stored_bytes_and_counts() {
        let mut c = ResultCache::new(4);
        assert_eq!(c.get((1, 1)), None);
        c.put((1, 1), "doc-a".into());
        assert_eq!(c.get((1, 1)).as_deref(), Some("doc-a"));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn seed_is_part_of_the_key() {
        let mut c = ResultCache::new(4);
        c.put((7, 1), "seed-1".into());
        assert_eq!(c.get((7, 2)), None, "same config hash, different seed");
        c.put((7, 2), "seed-2".into());
        assert_eq!(c.get((7, 1)).as_deref(), Some("seed-1"));
        assert_eq!(c.get((7, 2)).as_deref(), Some("seed-2"));
    }

    #[test]
    fn evicts_least_recently_used_not_least_recently_inserted() {
        let mut c = ResultCache::new(2);
        c.put((1, 0), "a".into());
        c.put((2, 0), "b".into());
        // Touch the older entry so the newer one becomes the LRU victim.
        assert!(c.get((1, 0)).is_some());
        c.put((3, 0), "c".into());
        assert_eq!(c.len(), 2);
        assert!(c.get((1, 0)).is_some(), "recently used must survive");
        assert_eq!(c.get((2, 0)), None, "LRU entry must be evicted");
        assert!(c.get((3, 0)).is_some());
        assert_eq!(c.evictions(), 1, "the push-out must be counted");
    }

    #[test]
    fn reinsert_refreshes_instead_of_evicting() {
        let mut c = ResultCache::new(2);
        c.put((1, 0), "a".into());
        c.put((2, 0), "b".into());
        c.put((1, 0), "a2".into());
        assert_eq!(c.len(), 2, "refresh must not evict");
        assert_eq!(c.get((1, 0)).as_deref(), Some("a2"));
        assert_eq!(c.get((2, 0)).as_deref(), Some("b"));
        assert_eq!(c.evictions(), 0, "a refresh is not an eviction");
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut c = ResultCache::new(0);
        c.put((1, 0), "a".into());
        assert_eq!(c.len(), 1);
        assert_eq!(c.get((1, 0)).as_deref(), Some("a"));
    }

    // -- Persistent layer --

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "rh-cache-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn persistent_round_trip_survives_reopen() {
        let dir = scratch("roundtrip");
        {
            let mut c = PersistentCache::open(&dir).unwrap();
            c.put((1, 2), "doc with\nnewlines and \"quotes\"").unwrap();
            c.put((3, 4), "other").unwrap();
            // Append-only update: the later record wins.
            c.put((1, 2), "doc v2").unwrap();
            assert_eq!(c.get((1, 2)).as_deref(), Some("doc v2"));
        }
        let mut c = PersistentCache::open(&dir).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.corrupt_skipped(), 0);
        assert_eq!(c.get((1, 2)).as_deref(), Some("doc v2"));
        assert_eq!(c.get((3, 4)).as_deref(), Some("other"));
        assert_eq!(c.get((9, 9)), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_skipped_counted_and_quarantined() {
        let dir = scratch("torn");
        {
            let mut c = PersistentCache::open(&dir).unwrap();
            c.put((1, 1), "good").unwrap();
        }
        // Simulate a crash mid-append: an unterminated record fragment.
        let seg = segment_path(&dir, 1);
        let mut bytes = std::fs::read(&seg).unwrap();
        bytes.extend_from_slice(br#"{"hash":2,"seed":2,"sum":3,"docu"#);
        std::fs::write(&seg, &bytes).unwrap();

        let mut c = PersistentCache::open(&dir).unwrap();
        assert_eq!(c.corrupt_skipped(), 1, "the torn tail must be counted");
        assert_eq!(c.get((1, 1)).as_deref(), Some("good"), "good prefix holds");
        // New appends must go to a fresh segment, not after the fragment.
        c.put((5, 5), "post-crash").unwrap();
        assert!(segment_path(&dir, 2).exists());
        let reread = PersistentCache::open(&dir).unwrap().get((5, 5));
        assert_eq!(reread.as_deref(), Some("post-crash"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn garbled_record_fails_checksum_and_is_skipped() {
        let dir = scratch("garble");
        {
            let mut c = PersistentCache::open(&dir).unwrap();
            c.put((1, 1), "aaaa").unwrap();
            c.put((2, 2), "bbbb").unwrap();
            c.put((3, 3), "cccc").unwrap();
        }
        let plan = FaultPlan::parse("seed=5,corrupt-cache-record=2").unwrap();
        assert_eq!(corrupt_cache_segments(&dir, &plan).unwrap(), 1);

        let mut c = PersistentCache::open(&dir).unwrap();
        assert_eq!(c.corrupt_skipped(), 1);
        assert_eq!(c.get((1, 1)).as_deref(), Some("aaaa"));
        assert_eq!(c.get((2, 2)), None, "the clobbered record must not serve");
        assert_eq!(c.get((3, 3)).as_deref(), Some("cccc"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn segments_rotate_at_the_size_bound() {
        let dir = scratch("rotate");
        let mut c = PersistentCache::open(&dir).unwrap();
        c.set_rotate_bytes(64);
        for i in 0..8u64 {
            c.put((i, 0), &format!("document-{i}-padding-padding"))
                .unwrap();
        }
        let segments = std::fs::read_dir(&dir).unwrap().count();
        assert!(segments > 1, "64-byte bound must force rotation");
        let mut c = PersistentCache::open(&dir).unwrap();
        for i in 0..8u64 {
            assert_eq!(
                c.get((i, 0)).as_deref(),
                Some(format!("document-{i}-padding-padding").as_str()),
                "rotation must not lose records"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn get_reverifies_and_unindexes_damage_after_open() {
        let dir = scratch("reverify");
        let mut c = PersistentCache::open(&dir).unwrap();
        c.put((1, 1), "pristine").unwrap();
        // Damage the segment *after* the open-time scan.
        let seg = segment_path(&dir, 1);
        let mut bytes = std::fs::read(&seg).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] = if bytes[mid] == b'#' { b'~' } else { b'#' };
        std::fs::write(&seg, &bytes).unwrap();
        assert_eq!(c.get((1, 1)), None, "a read must re-verify the checksum");
        assert_eq!(c.corrupt_skipped(), 1);
        assert_eq!(c.get((1, 1)), None, "the record must be un-indexed");
        assert_eq!(c.corrupt_skipped(), 1, "second miss is a plain miss");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
