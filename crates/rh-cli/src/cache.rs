//! The coordinator's LRU result cache.
//!
//! Keyed by the canonical `(config_hash, seed)` pair
//! ([`crate::proto::config_key`]): two requests with the same key *plan the
//! same cells under the same random universe*, so their merged documents are
//! byte-identical by the determinism invariant — serving the stored bytes
//! is indistinguishable from re-executing, except ~10⁶× cheaper. The hash
//! half canonicalizes spelling (field order, explicit defaults, duplicate
//! axis values), so a client cannot dodge the cache by reordering fields.
//!
//! Capacity is bounded (default [`DEFAULT_CAPACITY`]) with
//! least-recently-*used* eviction — a hit refreshes recency, so a hot
//! config pinned by steady traffic survives a scan of one-off configs.
//! Recency is a logical clock, not wall time: deterministic, test-friendly,
//! and immune to clock steps.
//!
//! The cache stores the rendered document (the exact bytes a client
//! receives), not the [`crate::sweep::SweepOutput`] — the service's unit of
//! work is "bytes for a config", and storing post-render means a hit skips
//! rendering too.

use std::collections::HashMap;

/// Default number of cached sweep documents. A default-config document is
/// ~60 KiB, so the default bound keeps the cache comfortably in tens of
/// MiB even with large custom grids.
pub const DEFAULT_CAPACITY: usize = 128;

/// The cache key: `(config_hash, seed)`.
pub type Key = (u64, u64);

struct Entry {
    document: String,
    /// Logical timestamp of the last hit or insert.
    used: u64,
}

/// A bounded LRU map from [`Key`] to rendered sweep documents, with hit
/// accounting (the coordinator surfaces `cache_hits` in every response
/// envelope — the observable served-from-cache counter).
pub struct ResultCache {
    entries: HashMap<Key, Entry>,
    capacity: usize,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl ResultCache {
    pub fn new(capacity: usize) -> Self {
        Self {
            entries: HashMap::new(),
            capacity: capacity.max(1),
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Look up a document, refreshing its recency and counting the
    /// hit/miss.
    pub fn get(&mut self, key: Key) -> Option<String> {
        let stamp = self.tick();
        match self.entries.get_mut(&key) {
            Some(entry) => {
                entry.used = stamp;
                self.hits += 1;
                Some(entry.document.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert (or refresh) a document, evicting the least-recently-used
    /// entry if the cache is at capacity.
    pub fn put(&mut self, key: Key, document: String) {
        let stamp = self.tick();
        if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity {
            if let Some(&victim) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.used)
                .map(|(k, _)| k)
            {
                self.entries.remove(&victim);
            }
        }
        self.entries.insert(
            key,
            Entry {
                document,
                used: stamp,
            },
        );
    }

    /// Lifetime count of [`ResultCache::get`] calls that returned a
    /// document.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime count of [`ResultCache::get`] calls that missed.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_returns_stored_bytes_and_counts() {
        let mut c = ResultCache::new(4);
        assert_eq!(c.get((1, 1)), None);
        c.put((1, 1), "doc-a".into());
        assert_eq!(c.get((1, 1)).as_deref(), Some("doc-a"));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn seed_is_part_of_the_key() {
        let mut c = ResultCache::new(4);
        c.put((7, 1), "seed-1".into());
        assert_eq!(c.get((7, 2)), None, "same config hash, different seed");
        c.put((7, 2), "seed-2".into());
        assert_eq!(c.get((7, 1)).as_deref(), Some("seed-1"));
        assert_eq!(c.get((7, 2)).as_deref(), Some("seed-2"));
    }

    #[test]
    fn evicts_least_recently_used_not_least_recently_inserted() {
        let mut c = ResultCache::new(2);
        c.put((1, 0), "a".into());
        c.put((2, 0), "b".into());
        // Touch the older entry so the newer one becomes the LRU victim.
        assert!(c.get((1, 0)).is_some());
        c.put((3, 0), "c".into());
        assert_eq!(c.len(), 2);
        assert!(c.get((1, 0)).is_some(), "recently used must survive");
        assert_eq!(c.get((2, 0)), None, "LRU entry must be evicted");
        assert!(c.get((3, 0)).is_some());
    }

    #[test]
    fn reinsert_refreshes_instead_of_evicting() {
        let mut c = ResultCache::new(2);
        c.put((1, 0), "a".into());
        c.put((2, 0), "b".into());
        c.put((1, 0), "a2".into());
        assert_eq!(c.len(), 2, "refresh must not evict");
        assert_eq!(c.get((1, 0)).as_deref(), Some("a2"));
        assert_eq!(c.get((2, 0)).as_deref(), Some("b"));
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut c = ResultCache::new(0);
        c.put((1, 0), "a".into());
        assert_eq!(c.len(), 1);
        assert_eq!(c.get((1, 0)).as_deref(), Some("a"));
    }
}
