//! The paper's experiment grid: `HC_first` × mitigation × workload, plus a
//! PARA sampling-probability sweep with common random numbers.

use crate::engine::{run_experiment, RunResult};
use rh_core::{Geometry, RowAddr, VictimModelParams};
use rh_mitigations::{Graphene, IncreasedRefresh, Mitigation, NoMitigation, Para};
use rh_workloads::{BenignMixer, DoubleSided, ManySided, SingleSided, Workload};

/// Configuration of one full sweep.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    pub seed: u64,
    /// Activation budget per experiment cell.
    pub activations: u64,
    /// `HC_first` values to sweep (the paper's generational axis:
    /// DDR3-old ≈ 139k down to the weakest chip ≈ 4.8k).
    pub hc_firsts: Vec<u64>,
    /// PARA sampling probabilities for the monotonicity sweep.
    pub para_probabilities: Vec<f64>,
    /// Fraction of benign traffic mixed into every attack stream.
    pub benign_fraction: f64,
    pub geometry: Geometry,
}

impl Default for SweepConfig {
    fn default() -> Self {
        Self {
            seed: 0xC0FFEE,
            activations: 200_000,
            hc_firsts: vec![2_000, 4_000, 8_000, 16_000],
            para_probabilities: vec![0.0, 0.001, 0.004, 0.016],
            benign_fraction: 0.1,
            geometry: Geometry {
                channels: 1,
                ranks: 1,
                banks: 4,
                rows_per_bank: 4096,
            },
        }
    }
}

/// All results of one sweep invocation.
#[derive(Debug, Clone)]
pub struct SweepOutput {
    pub config: SweepConfig,
    /// The main grid: every (hc_first, workload, mitigation) cell.
    pub grid: Vec<RunResult>,
    /// PARA sweep at the lowest `HC_first`, double-sided workload.
    pub para_sweep: Vec<RunResult>,
    /// Whether flips were non-increasing in PARA's sampling probability.
    pub para_monotone: bool,
}

const BLAST_RADIUS: u32 = 2;
const PARA_SALT: u64 = 0x5A17;

const WORKLOAD_COUNT: usize = 3;
/// Index of the double-sided workload in [`make_workload`]; the PARA
/// monotonicity sweep reuses it so both see the same activation stream.
const DOUBLE_SIDED: usize = 1;

/// Build one of the sweep's workloads. A single constructor (rather than a
/// per-call-site copy) guarantees the PARA sweep and the grid use identical
/// streams: same victim, same benign fraction, same per-workload RNG salt.
fn make_workload(cfg: &SweepConfig, i: usize) -> Box<dyn Workload> {
    let geom = cfg.geometry;
    assert!(
        geom.rows_per_bank >= 32,
        "sweep geometry needs at least 32 rows per bank"
    );
    // A mid-bank victim far from edges; identical across cells so results
    // are comparable along the HC_first and mitigation axes.
    let victim = RowAddr::bank_row(0, geom.rows_per_bank / 2);
    let (attack, salt): (Box<dyn Workload>, u64) = match i {
        0 => (Box::new(SingleSided::targeting(victim)), 0x51),
        DOUBLE_SIDED => (Box::new(DoubleSided::targeting(victim, &geom)), 0xD5),
        2 => (
            Box::new(ManySided::new(victim.with_row(victim.row - 8), 4, &geom)),
            0x3A,
        ),
        _ => unreachable!("workload index out of range"),
    };
    Box::new(BenignMixer::new(
        attack,
        cfg.benign_fraction,
        geom,
        cfg.seed ^ salt,
    ))
}

const MITIGATION_COUNT: usize = 4;

fn make_mitigation(cfg: &SweepConfig, hc_first: u64, i: usize) -> Box<dyn Mitigation> {
    match i {
        0 => Box::new(NoMitigation),
        1 => Box::new(Para::new(0.004, BLAST_RADIUS, cfg.seed ^ PARA_SALT)),
        2 => Box::new(Graphene::new(16, (hc_first / 4).max(1), BLAST_RADIUS)),
        3 => Box::new(IncreasedRefresh::new((hc_first / 2).max(1))),
        _ => unreachable!("mitigation index out of range"),
    }
}

/// Run the full grid plus the PARA sweep.
pub fn run_sweep(cfg: &SweepConfig) -> SweepOutput {
    let mut grid = Vec::new();
    for &hc in &cfg.hc_firsts {
        let params = VictimModelParams::with_hc_first(hc);
        for wi in 0..WORKLOAD_COUNT {
            for mi in 0..MITIGATION_COUNT {
                // Fresh workload and mitigation per cell so every cell
                // sees identical streams (same seeds, fresh state).
                let mut w = make_workload(cfg, wi);
                let mut m = make_mitigation(cfg, hc, mi);
                grid.push(run_experiment(
                    cfg.geometry,
                    params,
                    cfg.seed,
                    w.as_mut(),
                    m.as_mut(),
                    cfg.activations,
                    0,
                ));
            }
        }
    }

    // PARA monotonicity sweep: lowest HC_first (hardest case), double-sided
    // attack, common random numbers — same device seed, same PARA seed, and
    // one RNG draw per activation regardless of outcome, so the sampled set
    // at a lower p is a subset of the set at any higher p and the flip
    // count is provably non-increasing in p.
    let hc = *cfg.hc_firsts.iter().min().expect("non-empty hc_firsts");
    let params = VictimModelParams::with_hc_first(hc);
    // Evaluate in ascending p regardless of the order the user supplied, so
    // the monotonicity check compares along the physical axis.
    let mut probabilities = cfg.para_probabilities.clone();
    probabilities.sort_by(|a, b| a.total_cmp(b));
    let mut para_sweep = Vec::new();
    for &p in &probabilities {
        let mut w = make_workload(cfg, DOUBLE_SIDED);
        let mut m = Para::new(p, BLAST_RADIUS, cfg.seed ^ PARA_SALT);
        para_sweep.push(run_experiment(
            cfg.geometry,
            params,
            cfg.seed,
            &mut w,
            &mut m,
            cfg.activations,
            0,
        ));
    }
    let para_monotone = para_sweep
        .windows(2)
        .all(|w| w[1].total_flips <= w[0].total_flips);

    SweepOutput {
        config: cfg.clone(),
        grid,
        para_sweep,
        para_monotone,
    }
}
