//! The paper's experiment grid, rebuilt as a plan → shard → execute → merge
//! pipeline: [`SweepConfig`] is declarative user input, [`crate::plan`]
//! expands it into order-independent cells, [`crate::exec`] runs them across
//! threads, and [`run_sweep`] merges everything into a [`SweepOutput`] that
//! is a pure function of the config (thread count never changes the bytes).

use crate::engine::RunResult;
use crate::exec::execute_cells_with_kernel;
use crate::plan::SweepPlan;
use rh_core::{DataPattern, Geometry, KernelChoice, VictimModelParams};

/// Configuration of one full sweep.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    pub seed: u64,
    /// Activation budget per experiment cell.
    pub activations: u64,
    /// `HC_first` values to sweep (the paper's generational axis:
    /// DDR3-old ≈ 139k down to the weakest chip ≈ 4.8k).
    pub hc_firsts: Vec<u64>,
    /// Aggressor counts for the many-sided (TRRespass-style) workload axis.
    pub sides: Vec<usize>,
    /// PARA sampling probabilities for the monotonicity sweep.
    pub para_probabilities: Vec<f64>,
    /// Stored data patterns to sweep (Section 5 victim model). The default
    /// — `[DataPattern::Legacy]` alone — reproduces the pattern-agnostic
    /// engine byte for byte.
    pub data_patterns: Vec<DataPattern>,
    /// On-die ECC codeword size in cells; 0 disables the ECC layer. When
    /// enabled, every result reports post-ECC visible flips alongside the
    /// raw (pre-ECC) counts.
    pub ecc_codeword_bits: u32,
    /// Fraction of benign traffic mixed into every attack stream.
    pub benign_fraction: f64,
    /// Periodic full-device refresh (the tREFW window) in activations;
    /// 0 disables auto-refresh entirely.
    pub auto_refresh_interval: u64,
    pub geometry: Geometry,
}

impl Default for SweepConfig {
    fn default() -> Self {
        Self {
            seed: 0xC0FFEE,
            activations: 200_000,
            hc_firsts: vec![2_000, 4_000, 8_000, 16_000],
            sides: vec![2, 4, 8, 16],
            para_probabilities: vec![0.0, 0.001, 0.004, 0.016],
            data_patterns: vec![DataPattern::Legacy],
            ecc_codeword_bits: 0,
            benign_fraction: 0.1,
            // A tREFW window that separates the regimes: at the top of the
            // default HC_first axis one window cannot accumulate enough
            // disturbance even many-sided, while at the bottom it easily can
            // — reproducing the paper's "newer chips break deployed TRR".
            auto_refresh_interval: 32_000,
            geometry: Geometry {
                channels: 1,
                ranks: 1,
                banks: 4,
                rows_per_bank: 4096,
            },
        }
    }
}

/// Order-preserving deduplication.
fn dedup_in_order<T: PartialEq + Copy>(values: &[T]) -> Vec<T> {
    let mut out: Vec<T> = Vec::with_capacity(values.len());
    for &v in values {
        if !out.contains(&v) {
            out.push(v);
        }
    }
    out
}

impl SweepConfig {
    /// The canonical form of the config: duplicate axis values collapsed
    /// (order-preserving for `hc_firsts`/`sides`) and PARA probabilities
    /// sorted ascending so the monotonicity sweep runs along the physical
    /// axis. Called in exactly one place — [`SweepPlan::from_config`],
    /// which carries the result in its `config` field for reporters — so
    /// the emitted config always describes exactly the grid that ran.
    pub fn normalized(&self) -> Self {
        let mut para_probabilities = dedup_in_order(&self.para_probabilities);
        para_probabilities.sort_by(|a, b| a.total_cmp(b));
        Self {
            hc_firsts: dedup_in_order(&self.hc_firsts),
            sides: dedup_in_order(&self.sides),
            data_patterns: dedup_in_order(&self.data_patterns),
            para_probabilities,
            ..self.clone()
        }
    }

    /// Whether the Section 5 victim-model axes are in play: any data
    /// pattern beyond the legacy model, or on-die ECC. Gates the extra
    /// per-result fields the JSON reporter emits, so sweeps with the axes
    /// unset stay byte-identical to the pre-Section-5 output.
    pub fn extended_victim_model(&self) -> bool {
        self.ecc_codeword_bits != 0 || self.data_patterns != vec![DataPattern::Legacy]
    }

    /// Semantic validation shared by the CLI and [`SweepPlan::from_config`].
    pub fn validate(&self) -> Result<(), String> {
        self.geometry.validate()?;
        if self.activations == 0 {
            return Err("activations must be at least 1".to_string());
        }
        if self.hc_firsts.is_empty() {
            return Err("at least one HC_first value is required".to_string());
        }
        if self.hc_firsts.contains(&0) {
            return Err("HC_first values must be positive".to_string());
        }
        if let Some(s) = self.sides.iter().find(|&&s| s < 2) {
            return Err(format!("many-sided aggressor count {s} must be at least 2"));
        }
        if self.para_probabilities.is_empty() {
            return Err("at least one PARA probability is required".to_string());
        }
        if let Some(p) = self
            .para_probabilities
            .iter()
            .find(|p| !(0.0..=1.0).contains(*p))
        {
            return Err(format!("PARA probability {p} must be in [0, 1]"));
        }
        if !(0.0..=1.0).contains(&self.benign_fraction) {
            return Err(format!(
                "benign fraction {} must be in [0, 1]",
                self.benign_fraction
            ));
        }
        if self.data_patterns.is_empty() {
            return Err("at least one data pattern is required".to_string());
        }
        // Geometry-style validation of the ECC axis: the codeword must be a
        // real (nonzero) slice of a row. The same checks guard
        // `DeviceTables::new`, but failing here keeps the error at config
        // level instead of deep inside a worker thread. Sweeps always
        // simulate the default row width, so the bound is the shared const.
        if self.ecc_codeword_bits > VictimModelParams::DEFAULT_CELLS_PER_ROW {
            return Err(format!(
                "ECC codeword of {} bits exceeds the {} cells in a row",
                self.ecc_codeword_bits,
                VictimModelParams::DEFAULT_CELLS_PER_ROW
            ));
        }
        Ok(())
    }
}

/// All results of one sweep invocation.
#[derive(Debug, Clone)]
pub struct SweepOutput {
    pub config: SweepConfig,
    /// The main grid: every (hc_first, workload, mitigation) cell.
    pub grid: Vec<RunResult>,
    /// PARA sweep at the lowest `HC_first`, double-sided workload, in
    /// ascending-probability order.
    pub para_sweep: Vec<RunResult>,
    /// Whether flips were non-increasing in PARA's sampling probability.
    pub para_monotone: bool,
}

/// Plan the full grid plus the PARA sweep, execute the cells on up to
/// `threads` workers, and merge results in plan order.
pub fn run_sweep(cfg: &SweepConfig, threads: usize) -> Result<SweepOutput, String> {
    run_sweep_with_kernel(cfg, threads, KernelChoice::Auto)
}

/// [`run_sweep`] with the settle kernel pinned (`--kernel`). Like the
/// thread count, the kernel can never change the output bytes — resolution
/// errors (pinning AVX2 on a CPU without it) surface here, before any cell
/// runs.
pub fn run_sweep_with_kernel(
    cfg: &SweepConfig,
    threads: usize,
    kernel: KernelChoice,
) -> Result<SweepOutput, String> {
    let kernel = kernel.resolve()?;
    let plan = SweepPlan::from_config(cfg)?;
    let grid = execute_cells_with_kernel(&plan, &plan.grid, threads, kernel);
    let para_sweep = execute_cells_with_kernel(&plan, &plan.para_sweep, threads, kernel);
    // Monotone because all PARA cells share device, workload stream, and
    // sampling RNG (common random numbers): the activations sampled at a
    // lower p are a subset of those sampled at any higher p.
    let para_monotone = para_sweep
        .windows(2)
        .all(|w| w[1].total_flips <= w[0].total_flips);

    Ok(SweepOutput {
        config: plan.config,
        grid,
        para_sweep,
        para_monotone,
    })
}
