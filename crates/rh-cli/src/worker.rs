//! `rh-cli worker` — the execution half of the distributed sweep service.
//!
//! A worker is deliberately dumb: it connects to a coordinator (over the
//! stdio pipes the coordinator spawned it with, or a TCP stream when
//! started with `--connect`), announces itself with a versioned `hello`
//! line, and then serves shard leases one at a time. Each lease carries the
//! *normalized config plus cell indices* — the worker re-expands
//! [`SweepPlan::from_config`] locally (the plan is a pure function of the
//! config, seeds included), slices out the leased cells, and executes them
//! through the very same [`crate::exec`] machinery the in-process sweep
//! uses. Per-cell results stream back as they complete (bit-exact: floats
//! travel as IEEE bit patterns), so the coordinator can merge and
//! checkpoint incrementally and a dying worker loses at most the cell it
//! was computing.
//!
//! ## Supervised lifecycle
//!
//! The hello carries [`crate::proto::PROTO_VERSION`] and the worker's
//! `--config-epoch`; a coordinator with a different version or epoch
//! answers with a terminal `reject` line instead of a lease, and the worker
//! exits nonzero — skew fails at attach time, never as garbage in a merge.
//! While a shard executes, a side thread pulses `heartbeat` lines (under
//! the shared writer lock, so lines never interleave) letting the
//! coordinator tell a long-running cell from a dead socket. With
//! `--retry N`, a failed connect or a dropped connection is retried with
//! seeded, capped exponential backoff — but a `reject` is never retried.
//!
//! ## Fault injection
//!
//! `--fault-plan` (see [`crate::faults`]) schedules deterministic crashes
//! (`crash-after-cells=N`, the generalization of the legacy
//! `--exit-after-cells N`), injected stalls, dropped/garbled protocol
//! lines, and delayed greetings. Heartbeats are exempt from line counting
//! so the schedule stays deterministic regardless of timing.
//!
//! Kernel selection composes the same way it does everywhere else: the
//! lease carries the coordinator's `--kernel` request, the worker resolves
//! it against its own CPU, and its own `RH_FORCE_SCALAR` environment wins
//! over any request ([`rh_core::KernelChoice::resolve`]). The resolved name
//! is reported back in the `shard_done` line, so the merged report can
//! record what each worker actually ran.

use crate::exec::{build_table_cache, Worker as CellRunner};
use crate::faults::{CellFate, FaultPlan, LineFate};
use crate::plan::SweepPlan;
use crate::proto::{read_line, write_line, FromWorker, ShardList, ToWorker, PROTO_VERSION};
use rh_core::{derive_seed, KernelChoice, SplitMix64};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Interval between heartbeat pulses while a shard is executing.
const HEARTBEAT_MS: u64 = 500;

/// Ceiling for one reconnect backoff step.
const BACKOFF_CAP_MS: u64 = 10_000;

/// Parsed `rh-cli worker` options.
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// Coordinator address to attach to over TCP; `None` means the worker
    /// was spawned by a local coordinator and speaks over stdio.
    pub connect: Option<String>,
    /// Legacy fault knob: drop the connection after this many cells.
    /// Folded into the fault plan (`crash-after-cells`), which wins.
    pub exit_after_cells: Option<u64>,
    /// Deterministic fault schedule for this worker's connections.
    pub fault_plan: FaultPlan,
    /// Config generation announced in the hello; must match the
    /// coordinator's `--config-epoch` or the worker is rejected.
    pub config_epoch: u64,
    /// Reconnect attempts after a failed connect or dropped connection
    /// (`--connect` mode only). 0 = give up immediately, as before.
    pub retries: u32,
    /// Base of the exponential reconnect backoff.
    pub backoff_base_ms: u64,
}

impl Default for WorkerOptions {
    fn default() -> Self {
        Self {
            connect: None,
            exit_after_cells: None,
            fault_plan: FaultPlan::default(),
            config_epoch: 0,
            retries: 0,
            backoff_base_ms: 200,
        }
    }
}

/// How a worker session over one connection ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionEnd {
    /// The coordinator said `shutdown`: done for good.
    Shutdown,
    /// The coordinator hung up without a shutdown (crash or restart) — a
    /// reconnect candidate when retries remain.
    Eof,
    /// The fault plan's scheduled crash fired: die like a crash would.
    Crashed,
    /// The coordinator refused the hello (version/epoch skew). Terminal:
    /// retrying cannot heal it.
    Rejected(String),
}

/// Per-session knobs threaded into [`worker_loop`] (kept separate from
/// [`WorkerOptions`] so in-memory tests can pin the heartbeat cadence).
#[derive(Debug, Clone)]
pub struct SessionOptions {
    pub config_epoch: u64,
    pub heartbeat_interval: Duration,
}

impl Default for SessionOptions {
    fn default() -> Self {
        Self {
            config_epoch: 0,
            heartbeat_interval: Duration::from_millis(HEARTBEAT_MS),
        }
    }
}

/// Entry point for `rh-cli worker`.
pub fn run_worker(opts: &WorkerOptions) -> Result<(), String> {
    let mut base_plan = opts.fault_plan.clone();
    base_plan.merge_exit_after_cells(opts.exit_after_cells);
    let session = SessionOptions {
        config_epoch: opts.config_epoch,
        ..SessionOptions::default()
    };
    match &opts.connect {
        Some(addr) => {
            let mut backoff_rng = SplitMix64::new(derive_seed(base_plan.seed(), &[0xB0FF]));
            let mut attempt: u32 = 0;
            loop {
                // A silent hangup (EOF without shutdown) or a failed
                // connect is retryable; a reject never is.
                let retryable_err = match connect_session(addr, &session, base_plan.clone()) {
                    Ok(SessionEnd::Shutdown | SessionEnd::Crashed) => return Ok(()),
                    Ok(SessionEnd::Rejected(reason)) => {
                        return Err(format!(
                            "worker: coordinator rejected this worker: {reason}"
                        ))
                    }
                    Ok(SessionEnd::Eof) => None,
                    Err(e) => Some(e),
                };
                if attempt >= opts.retries {
                    return match retryable_err {
                        None => Ok(()),
                        Some(e) => Err(e),
                    };
                }
                if let Some(e) = &retryable_err {
                    eprintln!(
                        "worker: attempt {}/{} failed ({e}), backing off",
                        attempt + 1,
                        opts.retries + 1
                    );
                }
                let base = opts.backoff_base_ms.max(1);
                let step = base
                    .checked_shl(attempt.min(16))
                    .unwrap_or(u64::MAX)
                    .min(BACKOFF_CAP_MS);
                let jitter = backoff_rng.gen_range(base);
                std::thread::sleep(Duration::from_millis(step + jitter));
                attempt += 1;
            }
        }
        None => {
            let stdin = std::io::stdin().lock();
            // `Stdout` (not the lock) because the heartbeat thread needs the
            // writer to be `Send`; each write_line locks internally.
            let stdout = std::io::stdout();
            let mut plan = base_plan;
            match worker_loop(stdin, stdout, &session, &mut plan)? {
                SessionEnd::Rejected(reason) => Err(format!(
                    "worker: coordinator rejected this worker: {reason}"
                )),
                _ => Ok(()),
            }
        }
    }
}

fn connect_session(
    addr: &str,
    session: &SessionOptions,
    mut plan: FaultPlan,
) -> Result<SessionEnd, String> {
    let stream =
        TcpStream::connect(addr).map_err(|e| format!("worker: cannot connect to {addr}: {e}"))?;
    let reader = BufReader::new(
        stream
            .try_clone()
            .map_err(|e| format!("worker: clone stream: {e}"))?,
    );
    worker_loop(reader, stream, session, &mut plan)
}

/// Heartbeat coordination between the protocol loop and its pulse thread:
/// which lease is active (if any), and the stop flag for teardown.
struct BeatState {
    active: Option<(u64, u64)>,
    stop: bool,
}

/// The worker protocol loop over any line-oriented transport. Returns how
/// the session ended; `Err` is reserved for transport/protocol failures.
pub fn worker_loop<R: BufRead, W: Write + Send>(
    mut reader: R,
    writer: W,
    session: &SessionOptions,
    plan: &mut FaultPlan,
) -> Result<SessionEnd, String> {
    // What `--kernel auto` resolves to on this host/environment — recorded
    // by the coordinator per worker. Individual leases re-resolve their own
    // request.
    let default_kernel = KernelChoice::Auto.resolve()?;
    if let Some(delay) = plan.connect_delay() {
        std::thread::sleep(delay);
    }

    let writer = Mutex::new(writer);
    let beat = Mutex::new(BeatState {
        active: None,
        stop: false,
    });
    let beat_wake = Condvar::new();

    let out = std::thread::scope(|scope| {
        scope.spawn(|| {
            let mut st = beat.lock().unwrap();
            loop {
                let (next, _) = beat_wake
                    .wait_timeout(st, session.heartbeat_interval)
                    .unwrap();
                st = next;
                if st.stop {
                    return;
                }
                if let Some((job, shard)) = st.active {
                    // Heartbeats bypass the fault plan: line numbering must
                    // not depend on timing. A write error here just means
                    // the main loop is about to find out too.
                    let pulse = FromWorker::Heartbeat { job, shard }.encode();
                    let _ = write_line(&mut *writer.lock().unwrap(), &pulse);
                }
            }
        });

        let result = (|| {
            let hello = FromWorker::Hello {
                kernel: default_kernel.name().to_string(),
                pid: u64::from(std::process::id()),
                proto_version: PROTO_VERSION,
                config_epoch: session.config_epoch,
            };
            send(&writer, plan, &hello.encode()).map_err(|e| format!("worker: hello: {e}"))?;

            loop {
                let line = match read_line(&mut reader) {
                    Ok(Some(line)) => line,
                    // Coordinator hung up without a shutdown.
                    Ok(None) => return Ok(SessionEnd::Eof),
                    Err(e) => return Err(format!("worker: read: {e}")),
                };
                match ToWorker::decode(&line)? {
                    ToWorker::Shutdown => return Ok(SessionEnd::Shutdown),
                    ToWorker::Reject { reason } => return Ok(SessionEnd::Rejected(reason)),
                    ToWorker::Shard {
                        job,
                        shard,
                        list,
                        indices,
                        kernel,
                        config,
                    } => {
                        beat.lock().unwrap().active = Some((job, shard));
                        let alive =
                            run_shard(&writer, plan, job, shard, list, &indices, kernel, &config);
                        beat.lock().unwrap().active = None;
                        if !alive? {
                            // Scheduled crash: die by dropping the
                            // connection, exactly like a real crash.
                            return Ok(SessionEnd::Crashed);
                        }
                    }
                }
            }
        })();

        beat.lock().unwrap().stop = true;
        beat_wake.notify_all();
        result
    });
    out
}

/// Write one protocol line through the fault plan (which may drop or garble
/// it). Heartbeats never pass through here.
fn send<W: Write>(writer: &Mutex<W>, plan: &mut FaultPlan, line: &str) -> std::io::Result<()> {
    match plan.on_line(line) {
        LineFate::Send => write_line(&mut *writer.lock().unwrap(), line),
        LineFate::Drop => Ok(()),
        LineFate::Garble(garbled) => write_line(&mut *writer.lock().unwrap(), &garbled),
    }
}

/// Execute one lease, streaming results. Returns `Ok(false)` when the fault
/// plan's crash fired (the caller drops the connection), `Ok(true)` after a
/// clean `shard_done` or `fail`.
#[allow(clippy::too_many_arguments)]
fn run_shard<W: Write>(
    writer: &Mutex<W>,
    plan: &mut FaultPlan,
    job: u64,
    shard: u64,
    list: ShardList,
    indices: &[usize],
    kernel: KernelChoice,
    config: &crate::sweep::SweepConfig,
) -> Result<bool, String> {
    let fail = |plan: &mut FaultPlan, message: String| -> Result<bool, String> {
        let msg = FromWorker::Fail {
            job,
            shard,
            message,
        };
        send(writer, plan, &msg.encode()).map_err(|e| format!("worker: write: {e}"))?;
        Ok(true)
    };

    let resolved = match kernel.resolve() {
        Ok(k) => k,
        Err(e) => return fail(plan, e),
    };
    let sweep_plan = match SweepPlan::from_config(config) {
        Ok(p) => p,
        Err(e) => return fail(plan, e),
    };
    let cells = match list {
        ShardList::Grid => &sweep_plan.grid,
        ShardList::Para => &sweep_plan.para_sweep,
    };
    if let Some(&bad) = indices.iter().find(|&&i| i >= cells.len()) {
        return fail(
            plan,
            format!(
                "shard index {bad} out of bounds for {} list of {} cells",
                list.name(),
                cells.len()
            ),
        );
    }

    let leased: Vec<_> = indices.iter().map(|&i| cells[i].clone()).collect();
    let tables = build_table_cache(&sweep_plan, &leased);
    let mut runner = CellRunner::with_kernel(resolved);
    for (&index, cell) in indices.iter().zip(&leased) {
        let result = runner.run_cell(&sweep_plan, cell, &tables);
        let msg = FromWorker::Cell {
            job,
            shard,
            index,
            kernel: resolved.name().to_string(),
            result,
        };
        send(writer, plan, &msg.encode()).map_err(|e| format!("worker: write: {e}"))?;
        match plan.on_cell() {
            CellFate::Continue => {}
            CellFate::Stall(pause) => std::thread::sleep(pause),
            CellFate::Crash => return Ok(false),
        }
    }
    let done = FromWorker::ShardDone {
        job,
        shard,
        kernel: resolved.name().to_string(),
    };
    send(writer, plan, &done.encode()).map_err(|e| format!("worker: write: {e}"))?;
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto;
    use crate::sweep::SweepConfig;
    use std::io::Cursor;

    fn small_config() -> SweepConfig {
        SweepConfig {
            activations: 2_000,
            hc_firsts: vec![500],
            sides: vec![2],
            para_probabilities: vec![0.0],
            geometry: rh_core::Geometry::tiny(64),
            ..SweepConfig::default()
        }
    }

    /// A session whose heartbeat can never fire, so scripted outputs stay
    /// exactly the protocol lines.
    fn quiet_session() -> SessionOptions {
        SessionOptions {
            heartbeat_interval: Duration::from_secs(3_600),
            ..SessionOptions::default()
        }
    }

    /// Drive the loop in-memory: feed scripted coordinator lines, collect
    /// the worker's output lines.
    fn drive_plan(script: &[String], mut plan: FaultPlan) -> (Vec<FromWorker>, SessionEnd) {
        let input = script.join("\n") + "\n";
        let mut out: Vec<u8> = Vec::new();
        let end = worker_loop(
            Cursor::new(input.into_bytes()),
            &mut out,
            &quiet_session(),
            &mut plan,
        )
        .unwrap();
        let msgs = String::from_utf8(out)
            .unwrap()
            .lines()
            .map(|l| FromWorker::decode(l).unwrap())
            .collect();
        (msgs, end)
    }

    fn drive(script: &[String], plan: FaultPlan) -> Vec<FromWorker> {
        drive_plan(script, plan).0
    }

    #[test]
    fn worker_says_hello_and_obeys_shutdown() {
        let (msgs, end) = drive_plan(&[ToWorker::Shutdown.encode()], FaultPlan::default());
        assert_eq!(msgs.len(), 1);
        assert!(matches!(&msgs[0], FromWorker::Hello { .. }));
        assert_eq!(end, SessionEnd::Shutdown);
    }

    #[test]
    fn worker_executes_a_shard_bit_exactly() {
        let cfg = small_config();
        let plan = SweepPlan::from_config(&cfg).unwrap();
        let reference = crate::exec::execute_cells(&plan, &plan.grid, 1);
        let lease = ToWorker::Shard {
            job: 1,
            shard: 0,
            list: ShardList::Grid,
            indices: (0..plan.grid.len()).collect(),
            kernel: KernelChoice::Auto,
            config: cfg,
        };
        let msgs = drive(
            &[lease.encode(), ToWorker::Shutdown.encode()],
            FaultPlan::default(),
        );
        let cells: Vec<_> = msgs
            .iter()
            .filter_map(|m| match m {
                FromWorker::Cell { index, result, .. } => Some((*index, result.clone())),
                _ => None,
            })
            .collect();
        assert_eq!(cells.len(), plan.grid.len());
        for (index, result) in &cells {
            let want = &reference[*index];
            assert_eq!(result.total_flips, want.total_flips);
            assert_eq!(
                result.flips_per_mact.to_bits(),
                want.flips_per_mact.to_bits(),
                "cell {index} must cross the codec bit-exactly"
            );
        }
        assert!(
            msgs.iter().any(|m| matches!(
                m,
                FromWorker::ShardDone {
                    job: 1,
                    shard: 0,
                    ..
                }
            )),
            "shard must be closed by shard_done"
        );
    }

    #[test]
    fn crash_fault_drops_connection_mid_shard() {
        let cfg = small_config();
        let plan = SweepPlan::from_config(&cfg).unwrap();
        assert!(plan.grid.len() > 3);
        let lease = ToWorker::Shard {
            job: 1,
            shard: 0,
            list: ShardList::Grid,
            indices: (0..plan.grid.len()).collect(),
            kernel: KernelChoice::Auto,
            config: cfg,
        };
        let (msgs, end) = drive_plan(
            &[lease.encode(), ToWorker::Shutdown.encode()],
            FaultPlan::parse("crash-after-cells=3").unwrap(),
        );
        assert_eq!(end, SessionEnd::Crashed);
        let cells = msgs
            .iter()
            .filter(|m| matches!(m, FromWorker::Cell { .. }))
            .count();
        assert_eq!(cells, 3, "exactly the scheduled cells must stream");
        assert!(
            !msgs
                .iter()
                .any(|m| matches!(m, FromWorker::ShardDone { .. })),
            "a crashed shard must not be acknowledged"
        );
    }

    #[test]
    fn legacy_exit_after_cells_still_crashes() {
        let mut plan = FaultPlan::default();
        plan.merge_exit_after_cells(Some(2));
        let cfg = small_config();
        let lease = ToWorker::Shard {
            job: 1,
            shard: 0,
            list: ShardList::Grid,
            indices: (0..SweepPlan::from_config(&cfg).unwrap().grid.len()).collect(),
            kernel: KernelChoice::Auto,
            config: cfg,
        };
        let (msgs, end) = drive_plan(&[lease.encode(), ToWorker::Shutdown.encode()], plan);
        assert_eq!(end, SessionEnd::Crashed);
        let cells = msgs
            .iter()
            .filter(|m| matches!(m, FromWorker::Cell { .. }))
            .count();
        assert_eq!(cells, 2);
    }

    #[test]
    fn drop_and_garble_faults_shape_the_stream() {
        let cfg = small_config();
        let total = SweepPlan::from_config(&cfg).unwrap().grid.len();
        assert!(total >= 3);
        let lease = ToWorker::Shard {
            job: 1,
            shard: 0,
            list: ShardList::Grid,
            indices: (0..total).collect(),
            kernel: KernelChoice::Auto,
            config: cfg,
        };
        // Line 1 is the hello; line 2 (the first cell) is dropped, line 3
        // (the second cell) is garbled.
        let input = [lease.encode(), ToWorker::Shutdown.encode()].join("\n") + "\n";
        let mut out: Vec<u8> = Vec::new();
        let mut plan = FaultPlan::parse("drop-line=2,garble-line=3").unwrap();
        worker_loop(
            Cursor::new(input.into_bytes()),
            &mut out,
            &quiet_session(),
            &mut plan,
        )
        .unwrap();
        let lines: Vec<String> = String::from_utf8(out)
            .unwrap()
            .lines()
            .map(String::from)
            .collect();
        // hello + (total - 1 surviving cell lines, one of them garbled) +
        // shard_done.
        assert_eq!(lines.len(), 1 + (total - 1) + 1);
        assert!(FromWorker::decode(&lines[0]).is_ok(), "hello survives");
        assert!(
            lines[1].starts_with('#'),
            "the garbled line must be visibly corrupt: {}",
            lines[1]
        );
        assert!(FromWorker::decode(&lines[1]).is_err());
        let decoded_cells = lines
            .iter()
            .filter(|l| matches!(FromWorker::decode(l), Ok(FromWorker::Cell { .. })))
            .count();
        assert_eq!(decoded_cells, total - 2, "one dropped, one garbled");
    }

    #[test]
    fn bad_lease_fails_cleanly_instead_of_crashing() {
        let lease = ToWorker::Shard {
            job: 9,
            shard: 2,
            list: ShardList::Grid,
            indices: vec![usize::MAX],
            kernel: KernelChoice::Auto,
            config: small_config(),
        };
        let msgs = drive(
            &[lease.encode(), ToWorker::Shutdown.encode()],
            FaultPlan::default(),
        );
        match &msgs[1] {
            FromWorker::Fail {
                job: 9,
                shard: 2,
                message,
            } => assert!(message.contains("out of bounds"), "{message}"),
            other => panic!("expected fail, got {other:?}"),
        }
    }

    #[test]
    fn hello_reports_kernel_version_and_epoch() {
        let input = ToWorker::Shutdown.encode() + "\n";
        let mut out: Vec<u8> = Vec::new();
        let session = SessionOptions {
            config_epoch: 7,
            heartbeat_interval: Duration::from_secs(3_600),
        };
        let mut plan = FaultPlan::default();
        worker_loop(
            Cursor::new(input.into_bytes()),
            &mut out,
            &session,
            &mut plan,
        )
        .unwrap();
        let first = String::from_utf8(out)
            .unwrap()
            .lines()
            .next()
            .unwrap()
            .to_string();
        let FromWorker::Hello {
            kernel,
            pid,
            proto_version,
            config_epoch,
        } = FromWorker::decode(&first).unwrap()
        else {
            panic!("first line must be hello");
        };
        assert_eq!(kernel, KernelChoice::Auto.resolve().unwrap().name());
        assert_eq!(pid, u64::from(std::process::id()));
        assert_eq!(proto_version, PROTO_VERSION);
        assert_eq!(config_epoch, 7);
        // And the hello line is valid jsonl for the coordinator's parser.
        let reparsed = proto::parse(&first).unwrap();
        assert_eq!(
            reparsed.get("role").and_then(proto::Value::as_str),
            Some("worker")
        );
    }

    #[test]
    fn reject_ends_the_session_without_retrying() {
        let reject = ToWorker::Reject {
            reason: "config epoch 0 != coordinator epoch 3".into(),
        };
        let (msgs, end) = drive_plan(&[reject.encode()], FaultPlan::default());
        assert_eq!(msgs.len(), 1, "only the hello went out");
        let SessionEnd::Rejected(reason) = end else {
            panic!("expected rejection, got {end:?}");
        };
        assert!(reason.contains("epoch"), "{reason}");
    }

    #[test]
    fn heartbeats_pulse_while_a_shard_stalls() {
        let cfg = small_config();
        let lease = ToWorker::Shard {
            job: 5,
            shard: 11,
            list: ShardList::Grid,
            indices: vec![0, 1],
            kernel: KernelChoice::Auto,
            config: cfg,
        };
        let input = [lease.encode(), ToWorker::Shutdown.encode()].join("\n") + "\n";
        let mut out: Vec<u8> = Vec::new();
        let session = SessionOptions {
            config_epoch: 0,
            heartbeat_interval: Duration::from_millis(20),
        };
        // Stall 400ms after the first cell: the pulse thread gets ~20
        // chances to fire while the lease is active.
        let mut plan = FaultPlan::parse("stall-after-cells=1,stall-ms=400").unwrap();
        worker_loop(
            Cursor::new(input.into_bytes()),
            &mut out,
            &session,
            &mut plan,
        )
        .unwrap();
        let beats = String::from_utf8(out)
            .unwrap()
            .lines()
            .filter(|l| {
                matches!(
                    FromWorker::decode(l),
                    Ok(FromWorker::Heartbeat { job: 5, shard: 11 })
                )
            })
            .count();
        assert!(beats >= 1, "a stalled shard must still pulse heartbeats");
    }
}
