//! `rh-cli worker` — the execution half of the distributed sweep service.
//!
//! A worker is deliberately dumb: it connects to a coordinator (over the
//! stdio pipes the coordinator spawned it with, or a TCP stream when
//! started with `--connect`), announces itself with a `hello` line, and
//! then serves shard leases one at a time. Each lease carries the
//! *normalized config plus cell indices* — the worker re-expands
//! [`SweepPlan::from_config`] locally (the plan is a pure function of the
//! config, seeds included), slices out the leased cells, and executes them
//! through the very same [`crate::exec`] machinery the in-process sweep
//! uses. Per-cell results stream back as they complete (bit-exact: floats
//! travel as IEEE bit patterns), so the coordinator can merge and
//! checkpoint incrementally and a dying worker loses at most the cell it
//! was computing.
//!
//! Kernel selection composes the same way it does everywhere else: the
//! lease carries the coordinator's `--kernel` request, the worker resolves
//! it against its own CPU, and its own `RH_FORCE_SCALAR` environment wins
//! over any request ([`rh_core::KernelChoice::resolve`]). The resolved name
//! is reported back in the `shard_done` line, so the merged report can
//! record what each worker actually ran.
//!
//! Fault injection: `--exit-after-cells N` makes the worker drop its
//! connection (by returning from the loop, which exits the process) after
//! streaming its `N`-th cell — mid-shard, with no `shard_done`. That is
//! exactly what a crash looks like from the coordinator's side, but
//! deterministic, which is what the reassignment tests need.

use crate::exec::{build_table_cache, Worker as CellRunner};
use crate::plan::SweepPlan;
use crate::proto::{read_line, write_line, FromWorker, ShardList, ToWorker};
use rh_core::KernelChoice;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

/// Parsed `rh-cli worker` options.
#[derive(Debug, Clone, Default)]
pub struct WorkerOptions {
    /// Coordinator address to attach to over TCP; `None` means the worker
    /// was spawned by a local coordinator and speaks over stdio.
    pub connect: Option<String>,
    /// Fault injection: drop the connection after this many cells.
    pub exit_after_cells: Option<u64>,
}

/// Entry point for `rh-cli worker`.
pub fn run_worker(opts: &WorkerOptions) -> Result<(), String> {
    match &opts.connect {
        Some(addr) => {
            let stream = TcpStream::connect(addr)
                .map_err(|e| format!("worker: cannot connect to {addr}: {e}"))?;
            let reader = BufReader::new(
                stream
                    .try_clone()
                    .map_err(|e| format!("worker: clone stream: {e}"))?,
            );
            worker_loop(reader, stream, opts.exit_after_cells)
        }
        None => {
            let stdin = std::io::stdin().lock();
            let stdout = std::io::stdout().lock();
            worker_loop(stdin, stdout, opts.exit_after_cells)
        }
    }
}

/// The worker protocol loop over any line-oriented transport. Returns when
/// the coordinator says `shutdown`, closes the connection, or — fault
/// injection — the cell budget runs out mid-shard.
pub fn worker_loop<R: BufRead, W: Write>(
    mut reader: R,
    mut writer: W,
    mut fuel: Option<u64>,
) -> Result<(), String> {
    // What `--kernel auto` resolves to on this host/environment — recorded
    // by the coordinator per worker. Individual leases re-resolve their own
    // request.
    let default_kernel = KernelChoice::Auto.resolve()?;
    let hello = FromWorker::Hello {
        kernel: default_kernel.name().to_string(),
        pid: u64::from(std::process::id()),
    };
    write_line(&mut writer, &hello.encode()).map_err(|e| format!("worker: hello: {e}"))?;

    loop {
        let line = match read_line(&mut reader) {
            Ok(Some(line)) => line,
            // Coordinator hung up: a clean exit, not an error.
            Ok(None) => return Ok(()),
            Err(e) => return Err(format!("worker: read: {e}")),
        };
        match ToWorker::decode(&line)? {
            ToWorker::Shutdown => return Ok(()),
            ToWorker::Shard {
                job,
                shard,
                list,
                indices,
                kernel,
                config,
            } => {
                if !run_shard(
                    &mut writer,
                    job,
                    shard,
                    list,
                    &indices,
                    kernel,
                    &config,
                    &mut fuel,
                )? {
                    // Fuel exhausted mid-shard: die by dropping the
                    // connection, exactly like a crash.
                    return Ok(());
                }
            }
        }
    }
}

/// Execute one lease, streaming results. Returns `Ok(false)` when the fault
/// budget ran out (the caller drops the connection), `Ok(true)` after a
/// clean `shard_done` or `fail`.
#[allow(clippy::too_many_arguments)]
fn run_shard<W: Write>(
    writer: &mut W,
    job: u64,
    shard: u64,
    list: ShardList,
    indices: &[usize],
    kernel: KernelChoice,
    config: &crate::sweep::SweepConfig,
    fuel: &mut Option<u64>,
) -> Result<bool, String> {
    let fail = |writer: &mut W, message: String| -> Result<bool, String> {
        let msg = FromWorker::Fail {
            job,
            shard,
            message,
        };
        write_line(writer, &msg.encode()).map_err(|e| format!("worker: write: {e}"))?;
        Ok(true)
    };

    let resolved = match kernel.resolve() {
        Ok(k) => k,
        Err(e) => return fail(writer, e),
    };
    let plan = match SweepPlan::from_config(config) {
        Ok(p) => p,
        Err(e) => return fail(writer, e),
    };
    let cells = match list {
        ShardList::Grid => &plan.grid,
        ShardList::Para => &plan.para_sweep,
    };
    if let Some(&bad) = indices.iter().find(|&&i| i >= cells.len()) {
        return fail(
            writer,
            format!(
                "shard index {bad} out of bounds for {} list of {} cells",
                list.name(),
                cells.len()
            ),
        );
    }

    let leased: Vec<_> = indices.iter().map(|&i| cells[i].clone()).collect();
    let tables = build_table_cache(&plan, &leased);
    let mut runner = CellRunner::with_kernel(resolved);
    for (&index, cell) in indices.iter().zip(&leased) {
        let result = runner.run_cell(&plan, cell, &tables);
        let msg = FromWorker::Cell {
            job,
            shard,
            index,
            kernel: resolved.name().to_string(),
            result,
        };
        write_line(writer, &msg.encode()).map_err(|e| format!("worker: write: {e}"))?;
        if let Some(budget) = fuel.as_mut() {
            *budget = budget.saturating_sub(1);
            if *budget == 0 {
                return Ok(false);
            }
        }
    }
    let done = FromWorker::ShardDone {
        job,
        shard,
        kernel: resolved.name().to_string(),
    };
    write_line(writer, &done.encode()).map_err(|e| format!("worker: write: {e}"))?;
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto;
    use crate::sweep::SweepConfig;
    use std::io::Cursor;

    fn small_config() -> SweepConfig {
        SweepConfig {
            activations: 2_000,
            hc_firsts: vec![500],
            sides: vec![2],
            para_probabilities: vec![0.0],
            geometry: rh_core::Geometry::tiny(64),
            ..SweepConfig::default()
        }
    }

    /// Drive the loop in-memory: feed scripted coordinator lines, collect
    /// the worker's output lines.
    fn drive(script: &[String], fuel: Option<u64>) -> Vec<FromWorker> {
        let input = script.join("\n") + "\n";
        let mut out: Vec<u8> = Vec::new();
        worker_loop(Cursor::new(input.into_bytes()), &mut out, fuel).unwrap();
        String::from_utf8(out)
            .unwrap()
            .lines()
            .map(|l| FromWorker::decode(l).unwrap())
            .collect()
    }

    #[test]
    fn worker_says_hello_and_obeys_shutdown() {
        let msgs = drive(&[ToWorker::Shutdown.encode()], None);
        assert_eq!(msgs.len(), 1);
        assert!(matches!(&msgs[0], FromWorker::Hello { .. }));
    }

    #[test]
    fn worker_executes_a_shard_bit_exactly() {
        let cfg = small_config();
        let plan = SweepPlan::from_config(&cfg).unwrap();
        let reference = crate::exec::execute_cells(&plan, &plan.grid, 1);
        let lease = ToWorker::Shard {
            job: 1,
            shard: 0,
            list: ShardList::Grid,
            indices: (0..plan.grid.len()).collect(),
            kernel: KernelChoice::Auto,
            config: cfg,
        };
        let msgs = drive(&[lease.encode(), ToWorker::Shutdown.encode()], None);
        let cells: Vec<_> = msgs
            .iter()
            .filter_map(|m| match m {
                FromWorker::Cell { index, result, .. } => Some((*index, result.clone())),
                _ => None,
            })
            .collect();
        assert_eq!(cells.len(), plan.grid.len());
        for (index, result) in &cells {
            let want = &reference[*index];
            assert_eq!(result.total_flips, want.total_flips);
            assert_eq!(
                result.flips_per_mact.to_bits(),
                want.flips_per_mact.to_bits(),
                "cell {index} must cross the codec bit-exactly"
            );
        }
        assert!(
            msgs.iter().any(|m| matches!(
                m,
                FromWorker::ShardDone {
                    job: 1,
                    shard: 0,
                    ..
                }
            )),
            "shard must be closed by shard_done"
        );
    }

    #[test]
    fn fuel_exhaustion_drops_connection_mid_shard() {
        let cfg = small_config();
        let plan = SweepPlan::from_config(&cfg).unwrap();
        assert!(plan.grid.len() > 3);
        let lease = ToWorker::Shard {
            job: 1,
            shard: 0,
            list: ShardList::Grid,
            indices: (0..plan.grid.len()).collect(),
            kernel: KernelChoice::Auto,
            config: cfg,
        };
        let msgs = drive(&[lease.encode(), ToWorker::Shutdown.encode()], Some(3));
        let cells = msgs
            .iter()
            .filter(|m| matches!(m, FromWorker::Cell { .. }))
            .count();
        assert_eq!(cells, 3, "exactly the fuel budget of cells must stream");
        assert!(
            !msgs
                .iter()
                .any(|m| matches!(m, FromWorker::ShardDone { .. })),
            "a crashed shard must not be acknowledged"
        );
    }

    #[test]
    fn bad_lease_fails_cleanly_instead_of_crashing() {
        let lease = ToWorker::Shard {
            job: 9,
            shard: 2,
            list: ShardList::Grid,
            indices: vec![usize::MAX],
            kernel: KernelChoice::Auto,
            config: small_config(),
        };
        let msgs = drive(&[lease.encode(), ToWorker::Shutdown.encode()], None);
        match &msgs[1] {
            FromWorker::Fail {
                job: 9,
                shard: 2,
                message,
            } => assert!(message.contains("out of bounds"), "{message}"),
            other => panic!("expected fail, got {other:?}"),
        }
    }

    #[test]
    fn hello_reports_the_host_default_kernel() {
        let msgs = drive(&[ToWorker::Shutdown.encode()], None);
        let FromWorker::Hello { kernel, pid } = &msgs[0] else {
            panic!("first line must be hello");
        };
        assert_eq!(*kernel, KernelChoice::Auto.resolve().unwrap().name());
        assert_eq!(*pid, u64::from(std::process::id()));
        // And the hello line is valid jsonl for the coordinator's parser.
        let reparsed = proto::parse(&msgs[0].encode()).unwrap();
        assert_eq!(
            reparsed.get("role").and_then(proto::Value::as_str),
            Some("worker")
        );
    }
}
