//! `rh-cli worker` — the execution half of the distributed sweep service.
//!
//! A worker is deliberately dumb: it connects to a coordinator (over the
//! stdio pipes the coordinator spawned it with, or a TCP stream when
//! started with `--connect`), announces itself with a versioned `hello`
//! line, and then serves shard leases one at a time. Each lease carries the
//! *normalized config plus cell indices* — the worker re-expands
//! [`SweepPlan::from_config`] locally (the plan is a pure function of the
//! config, seeds included), slices out the leased cells, and executes them
//! through the very same [`crate::exec`] machinery the in-process sweep
//! uses. Per-cell results stream back as they complete (bit-exact: floats
//! travel as IEEE bit patterns), so the coordinator can merge and
//! checkpoint incrementally and a dying worker loses at most the cell it
//! was computing.
//!
//! ## Supervised lifecycle
//!
//! The hello carries [`crate::proto::PROTO_VERSION`] and the worker's
//! `--config-epoch`; a coordinator with a different version or epoch
//! answers with a terminal `reject` line instead of a lease, and the worker
//! exits nonzero — skew fails at attach time, never as garbage in a merge.
//! With `--auth-token-file` the hello additionally carries a seeded nonce
//! and a shared-secret proof ([`crate::proto::auth_proof`]); a coordinator
//! holding a token rejects hellos that omit or flunk it, same terminal
//! path. While a shard executes, a side thread pulses `heartbeat` lines
//! (under the shared writer lock, so lines never interleave) letting the
//! coordinator tell a long-running cell from a dead socket. With
//! `--retry N`, a failed connect or a dropped connection is retried with
//! seeded, capped exponential backoff — but a `reject` is never retried.
//!
//! ## Mid-shard cancellation
//!
//! Incoming lines are drained by a dedicated reader thread into a small
//! queue, so a `cancel` sent while a shard executes is visible *between
//! cells*: the worker abandons the remaining cells of that lease, answers
//! with `cancel_ack`, and goes back to waiting for leases. Without the
//! reader thread the worker would not touch its socket until the whole
//! shard had streamed — a cancelled job would keep burning CPU for the
//! full lease.
//!
//! ## Fault injection
//!
//! `--fault-plan` (see [`crate::faults`]) schedules deterministic crashes
//! (`crash-after-cells=N`, the generalization of the legacy
//! `--exit-after-cells N`), injected stalls, dropped/garbled protocol
//! lines, and delayed greetings. Heartbeats are exempt from line counting
//! so the schedule stays deterministic regardless of timing.
//!
//! Kernel selection composes the same way it does everywhere else: the
//! lease carries the coordinator's `--kernel` request, the worker resolves
//! it against its own CPU, and its own `RH_FORCE_SCALAR` environment wins
//! over any request ([`rh_core::KernelChoice::resolve`]). The resolved name
//! is reported back in the `shard_done` line, so the merged report can
//! record what each worker actually ran.

use crate::exec::{build_table_cache, Worker as CellRunner};
use crate::faults::{CellFate, FaultPlan, LineFate};
use crate::plan::SweepPlan;
use crate::proto::{
    auth_proof, read_line, write_line, FromWorker, ShardList, ToWorker, PROTO_VERSION,
};
use rh_core::{derive_seed, KernelChoice, SplitMix64};
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Interval between heartbeat pulses while a shard is executing.
const HEARTBEAT_MS: u64 = 500;

/// Ceiling for one reconnect backoff step.
const BACKOFF_CAP_MS: u64 = 10_000;

/// Parsed `rh-cli worker` options.
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// Coordinator address to attach to over TCP; `None` means the worker
    /// was spawned by a local coordinator and speaks over stdio.
    pub connect: Option<String>,
    /// Legacy fault knob: drop the connection after this many cells.
    /// Folded into the fault plan (`crash-after-cells`), which wins.
    pub exit_after_cells: Option<u64>,
    /// Deterministic fault schedule for this worker's connections.
    pub fault_plan: FaultPlan,
    /// Config generation announced in the hello; must match the
    /// coordinator's `--config-epoch` or the worker is rejected.
    pub config_epoch: u64,
    /// Reconnect attempts after a failed connect or dropped connection
    /// (`--connect` mode only). 0 = give up immediately, as before.
    pub retries: u32,
    /// Base of the exponential reconnect backoff.
    pub backoff_base_ms: u64,
    /// Shared secret (the trimmed contents of `--auth-token-file`) proven
    /// in the hello; `None` sends an unauthenticated hello.
    pub auth_token: Option<String>,
}

impl Default for WorkerOptions {
    fn default() -> Self {
        Self {
            connect: None,
            exit_after_cells: None,
            fault_plan: FaultPlan::default(),
            config_epoch: 0,
            retries: 0,
            backoff_base_ms: 200,
            auth_token: None,
        }
    }
}

/// How a worker session over one connection ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionEnd {
    /// The coordinator said `shutdown`: done for good.
    Shutdown,
    /// The coordinator hung up without a shutdown (crash or restart) — a
    /// reconnect candidate when retries remain.
    Eof,
    /// The fault plan's scheduled crash fired: die like a crash would.
    Crashed,
    /// The coordinator refused the hello (version/epoch skew or a failed
    /// auth proof). Terminal: retrying cannot heal it.
    Rejected(String),
}

/// Per-session knobs threaded into [`worker_loop`] (kept separate from
/// [`WorkerOptions`] so in-memory tests can pin the heartbeat cadence).
#[derive(Debug, Clone)]
pub struct SessionOptions {
    pub config_epoch: u64,
    pub heartbeat_interval: Duration,
    /// Shared secret proven in the hello, if any.
    pub auth_token: Option<String>,
}

impl Default for SessionOptions {
    fn default() -> Self {
        Self {
            config_epoch: 0,
            heartbeat_interval: Duration::from_millis(HEARTBEAT_MS),
            auth_token: None,
        }
    }
}

/// Entry point for `rh-cli worker`.
pub fn run_worker(opts: &WorkerOptions) -> Result<(), String> {
    let mut base_plan = opts.fault_plan.clone();
    base_plan.merge_exit_after_cells(opts.exit_after_cells);
    let session = SessionOptions {
        config_epoch: opts.config_epoch,
        auth_token: opts.auth_token.clone(),
        ..SessionOptions::default()
    };
    match &opts.connect {
        Some(addr) => {
            let mut backoff_rng = SplitMix64::new(derive_seed(base_plan.seed(), &[0xB0FF]));
            let mut attempt: u32 = 0;
            loop {
                // A silent hangup (EOF without shutdown) or a failed
                // connect is retryable; a reject never is.
                let retryable_err = match connect_session(addr, &session, base_plan.clone()) {
                    Ok(SessionEnd::Shutdown | SessionEnd::Crashed) => return Ok(()),
                    Ok(SessionEnd::Rejected(reason)) => {
                        return Err(format!(
                            "worker: coordinator rejected this worker: {reason}"
                        ))
                    }
                    Ok(SessionEnd::Eof) => None,
                    Err(e) => Some(e),
                };
                if attempt >= opts.retries {
                    return match retryable_err {
                        None => Ok(()),
                        Some(e) => Err(e),
                    };
                }
                if let Some(e) = &retryable_err {
                    eprintln!(
                        "worker: attempt {}/{} failed ({e}), backing off",
                        attempt + 1,
                        opts.retries + 1
                    );
                }
                let base = opts.backoff_base_ms.max(1);
                let step = base
                    .checked_shl(attempt.min(16))
                    .unwrap_or(u64::MAX)
                    .min(BACKOFF_CAP_MS);
                let jitter = backoff_rng.gen_range(base);
                std::thread::sleep(Duration::from_millis(step + jitter));
                attempt += 1;
            }
        }
        None => {
            // `Stdin`/`Stdout` handles (not the locks) because the reader
            // and heartbeat threads need them to be `Send`; each access
            // locks internally.
            let stdin = BufReader::new(std::io::stdin());
            let stdout = std::io::stdout();
            let mut plan = base_plan;
            match worker_loop(stdin, stdout, &session, &mut plan)? {
                SessionEnd::Rejected(reason) => Err(format!(
                    "worker: coordinator rejected this worker: {reason}"
                )),
                _ => Ok(()),
            }
        }
    }
}

fn connect_session(
    addr: &str,
    session: &SessionOptions,
    mut plan: FaultPlan,
) -> Result<SessionEnd, String> {
    let stream =
        TcpStream::connect(addr).map_err(|e| format!("worker: cannot connect to {addr}: {e}"))?;
    let reader = BufReader::new(
        stream
            .try_clone()
            .map_err(|e| format!("worker: clone stream: {e}"))?,
    );
    // Handle the session-end teardown uses to unblock the reader thread:
    // a full socket shutdown turns its blocked read into EOF and sends the
    // peer a FIN, so a crashed/finished session is visible immediately even
    // when this worker runs inside a long-lived process.
    let teardown = stream
        .try_clone()
        .map_err(|e| format!("worker: clone stream: {e}"))?;
    let unblock: UnblockReader = Box::new(move || {
        let _ = teardown.shutdown(std::net::Shutdown::Both);
    });
    worker_loop_with(reader, stream, session, &mut plan, Some(unblock))
}

/// Heartbeat coordination between the protocol loop and its pulse thread:
/// which lease is active (if any), and the stop flag for teardown.
struct BeatState {
    active: Option<(u64, u64)>,
    stop: bool,
}

/// Decoded coordinator lines, drained off the transport by the reader
/// thread. `run_shard` scans this queue for a mid-shard `cancel` between
/// cells; the protocol loop pops everything else in order.
struct Incoming {
    queue: VecDeque<Result<ToWorker, String>>,
    /// The transport hit EOF or a terminal read/decode error; nothing more
    /// will be queued.
    closed: bool,
}

type Inbox = Arc<(Mutex<Incoming>, Condvar)>;

/// Hook that unblocks the reader thread's pending read at session end
/// (TCP: a full socket shutdown). Transports whose reader unblocks on its
/// own (in-memory cursors, process-exit stdio) pass `None`.
type UnblockReader = Box<dyn FnOnce() + Send>;

/// Pop the next coordinator message in order; `Ok(None)` on clean EOF.
fn next_msg(inbox: &Inbox) -> Result<Option<ToWorker>, String> {
    let (lock, wake) = &**inbox;
    let mut st = lock.lock().unwrap();
    loop {
        if let Some(msg) = st.queue.pop_front() {
            return msg.map(Some);
        }
        if st.closed {
            return Ok(None);
        }
        st = wake.wait(st).unwrap();
    }
}

/// Remove and report a queued `cancel` for `job`, leaving every other
/// message (later leases, the shutdown) untouched and in order.
fn take_cancel(inbox: &Inbox, job: u64) -> bool {
    let mut st = inbox.0.lock().unwrap();
    let hit = st
        .queue
        .iter()
        .position(|m| matches!(m, Ok(ToWorker::Cancel { job: j }) if *j == job));
    match hit {
        Some(at) => {
            st.queue.remove(at);
            true
        }
        None => false,
    }
}

/// The worker protocol loop over any line-oriented transport. Returns how
/// the session ended; `Err` is reserved for transport/protocol failures.
pub fn worker_loop<R, W>(
    reader: R,
    writer: W,
    session: &SessionOptions,
    plan: &mut FaultPlan,
) -> Result<SessionEnd, String>
where
    R: BufRead + Send + 'static,
    W: Write + Send,
{
    worker_loop_with(reader, writer, session, plan, None)
}

fn worker_loop_with<R, W>(
    mut reader: R,
    writer: W,
    session: &SessionOptions,
    plan: &mut FaultPlan,
    unblock: Option<UnblockReader>,
) -> Result<SessionEnd, String>
where
    R: BufRead + Send + 'static,
    W: Write + Send,
{
    // What `--kernel auto` resolves to on this host/environment — recorded
    // by the coordinator per worker. Individual leases re-resolve their own
    // request.
    let default_kernel = KernelChoice::Auto.resolve()?;
    if let Some(delay) = plan.connect_delay() {
        std::thread::sleep(delay);
    }

    let writer = Mutex::new(writer);
    let beat = Mutex::new(BeatState {
        active: None,
        stop: false,
    });
    let beat_wake = Condvar::new();

    let inbox: Inbox = Arc::new((
        Mutex::new(Incoming {
            queue: VecDeque::new(),
            closed: false,
        }),
        Condvar::new(),
    ));
    // The reader runs unscoped with an owned transport half: it must be
    // free to sit in a blocked read while the session ends (the `unblock`
    // hook or process exit releases it), which a scoped join could not
    // tolerate.
    let reader_inbox = Arc::clone(&inbox);
    std::thread::spawn(move || loop {
        let (done, item) = match read_line(&mut reader) {
            Ok(Some(line)) => {
                let msg = ToWorker::decode(&line);
                (msg.is_err(), Some(msg))
            }
            Ok(None) => (true, None),
            Err(e) => (true, Some(Err(format!("worker: read: {e}")))),
        };
        let (lock, wake) = &*reader_inbox;
        let mut st = lock.lock().unwrap();
        if let Some(item) = item {
            st.queue.push_back(item);
        }
        if done {
            st.closed = true;
        }
        wake.notify_all();
        if st.closed {
            return;
        }
    });

    let out = std::thread::scope(|scope| {
        scope.spawn(|| {
            let mut st = beat.lock().unwrap();
            loop {
                // Predicate before wait: on a loaded host the session can
                // finish (and notify) before this thread first blocks, and
                // a lost wakeup here would pin the join for a full
                // heartbeat interval.
                if st.stop {
                    return;
                }
                let (next, _) = beat_wake
                    .wait_timeout(st, session.heartbeat_interval)
                    .unwrap();
                st = next;
                if st.stop {
                    return;
                }
                if let Some((job, shard)) = st.active {
                    // Heartbeats bypass the fault plan: line numbering must
                    // not depend on timing. A write error here just means
                    // the main loop is about to find out too.
                    let pulse = FromWorker::Heartbeat { job, shard }.encode();
                    let _ = write_line(&mut *writer.lock().unwrap(), &pulse);
                }
            }
        });

        let result = (|| {
            let (auth_nonce, auth_proof) = hello_auth(session, plan);
            let hello = FromWorker::Hello {
                kernel: default_kernel.name().to_string(),
                pid: u64::from(std::process::id()),
                proto_version: PROTO_VERSION,
                config_epoch: session.config_epoch,
                auth_nonce,
                auth_proof,
            };
            send(&writer, plan, &hello.encode()).map_err(|e| format!("worker: hello: {e}"))?;

            loop {
                match next_msg(&inbox)? {
                    // Coordinator hung up without a shutdown.
                    None => return Ok(SessionEnd::Eof),
                    Some(ToWorker::Shutdown) => return Ok(SessionEnd::Shutdown),
                    Some(ToWorker::Reject { reason }) => return Ok(SessionEnd::Rejected(reason)),
                    // A cancel for a lease this worker no longer holds (it
                    // finished before the cancel arrived): nothing to
                    // abandon, nothing to ack.
                    Some(ToWorker::Cancel { .. }) => {}
                    Some(ToWorker::Shard {
                        job,
                        shard,
                        list,
                        indices,
                        kernel,
                        config,
                    }) => {
                        beat.lock().unwrap().active = Some((job, shard));
                        let alive = run_shard(
                            &writer, &inbox, plan, job, shard, list, &indices, kernel, &config,
                        );
                        beat.lock().unwrap().active = None;
                        if !alive? {
                            // Scheduled crash: die by dropping the
                            // connection, exactly like a real crash.
                            return Ok(SessionEnd::Crashed);
                        }
                    }
                }
            }
        })();

        beat.lock().unwrap().stop = true;
        beat_wake.notify_all();
        result
    });
    // Unblock (and thereby retire) the reader thread before handing the
    // session end to the caller — over TCP this also sends the FIN that
    // makes a fault-injected crash observable to the coordinator.
    if let Some(unblock) = unblock {
        unblock();
    }
    out
}

/// The auth fields of the hello: a seeded nonce plus the shared-secret
/// proof, or nothing when no token was configured. The `wrong-token` fault
/// arm deliberately derives the proof from a corrupted secret (well-formed,
/// provably wrong), exercising the coordinator's reject path.
fn hello_auth(session: &SessionOptions, plan: &FaultPlan) -> (u64, Option<String>) {
    let nonce = SplitMix64::new(derive_seed(
        plan.seed(),
        &[u64::from(std::process::id()), 0xA07B],
    ))
    .next_u64();
    match (&session.auth_token, plan.wrong_token()) {
        (Some(token), false) => (nonce, Some(auth_proof(token, nonce))),
        (Some(token), true) => (nonce, Some(auth_proof(&format!("{token}-wrong"), nonce))),
        (None, true) => (nonce, Some(auth_proof("wrong-token-fault", nonce))),
        (None, false) => (0, None),
    }
}

/// Write one protocol line through the fault plan (which may drop or garble
/// it). Heartbeats never pass through here.
fn send<W: Write>(writer: &Mutex<W>, plan: &mut FaultPlan, line: &str) -> std::io::Result<()> {
    match plan.on_line(line) {
        LineFate::Send => write_line(&mut *writer.lock().unwrap(), line),
        LineFate::Drop => Ok(()),
        LineFate::Garble(garbled) => write_line(&mut *writer.lock().unwrap(), &garbled),
    }
}

/// Execute one lease, streaming results. Returns `Ok(false)` when the fault
/// plan's crash fired (the caller drops the connection), `Ok(true)` after a
/// clean `shard_done`, `fail`, or acknowledged mid-shard cancel.
#[allow(clippy::too_many_arguments)]
fn run_shard<W: Write>(
    writer: &Mutex<W>,
    inbox: &Inbox,
    plan: &mut FaultPlan,
    job: u64,
    shard: u64,
    list: ShardList,
    indices: &[usize],
    kernel: KernelChoice,
    config: &crate::sweep::SweepConfig,
) -> Result<bool, String> {
    let fail = |plan: &mut FaultPlan, message: String| -> Result<bool, String> {
        let msg = FromWorker::Fail {
            job,
            shard,
            message,
        };
        send(writer, plan, &msg.encode()).map_err(|e| format!("worker: write: {e}"))?;
        Ok(true)
    };

    let resolved = match kernel.resolve() {
        Ok(k) => k,
        Err(e) => return fail(plan, e),
    };
    let sweep_plan = match SweepPlan::from_config(config) {
        Ok(p) => p,
        Err(e) => return fail(plan, e),
    };
    let cells = match list {
        ShardList::Grid => &sweep_plan.grid,
        ShardList::Para => &sweep_plan.para_sweep,
    };
    if let Some(&bad) = indices.iter().find(|&&i| i >= cells.len()) {
        return fail(
            plan,
            format!(
                "shard index {bad} out of bounds for {} list of {} cells",
                list.name(),
                cells.len()
            ),
        );
    }

    let leased: Vec<_> = indices.iter().map(|&i| cells[i].clone()).collect();
    let tables = build_table_cache(&sweep_plan, &leased);
    let mut runner = CellRunner::with_kernel(resolved);
    for (&index, cell) in indices.iter().zip(&leased) {
        // Cancellation is checked at cell boundaries: a `cancel` queued by
        // the reader thread abandons the rest of the lease immediately,
        // and the ack tells the coordinator not to requeue it.
        if take_cancel(inbox, job) {
            let ack = FromWorker::CancelAck { job, shard };
            send(writer, plan, &ack.encode()).map_err(|e| format!("worker: write: {e}"))?;
            return Ok(true);
        }
        let result = runner.run_cell(&sweep_plan, cell, &tables);
        let msg = FromWorker::Cell {
            job,
            shard,
            index,
            kernel: resolved.name().to_string(),
            result,
        };
        send(writer, plan, &msg.encode()).map_err(|e| format!("worker: write: {e}"))?;
        match plan.on_cell() {
            CellFate::Continue => {}
            CellFate::Stall(pause) => std::thread::sleep(pause),
            CellFate::Crash => return Ok(false),
        }
    }
    let done = FromWorker::ShardDone {
        job,
        shard,
        kernel: resolved.name().to_string(),
    };
    send(writer, plan, &done.encode()).map_err(|e| format!("worker: write: {e}"))?;
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto;
    use crate::sweep::SweepConfig;
    use std::io::Cursor;

    fn small_config() -> SweepConfig {
        SweepConfig {
            activations: 2_000,
            hc_firsts: vec![500],
            sides: vec![2],
            para_probabilities: vec![0.0],
            geometry: rh_core::Geometry::tiny(64),
            ..SweepConfig::default()
        }
    }

    /// A session whose heartbeat can never fire, so scripted outputs stay
    /// exactly the protocol lines.
    fn quiet_session() -> SessionOptions {
        SessionOptions {
            heartbeat_interval: Duration::from_secs(3_600),
            ..SessionOptions::default()
        }
    }

    /// Drive the loop in-memory: feed scripted coordinator lines, collect
    /// the worker's output lines.
    fn drive_plan(script: &[String], mut plan: FaultPlan) -> (Vec<FromWorker>, SessionEnd) {
        let input = script.join("\n") + "\n";
        let mut out: Vec<u8> = Vec::new();
        let end = worker_loop(
            Cursor::new(input.into_bytes()),
            &mut out,
            &quiet_session(),
            &mut plan,
        )
        .unwrap();
        let msgs = String::from_utf8(out)
            .unwrap()
            .lines()
            .map(|l| FromWorker::decode(l).unwrap())
            .collect();
        (msgs, end)
    }

    fn drive(script: &[String], plan: FaultPlan) -> Vec<FromWorker> {
        drive_plan(script, plan).0
    }

    #[test]
    fn worker_says_hello_and_obeys_shutdown() {
        let (msgs, end) = drive_plan(&[ToWorker::Shutdown.encode()], FaultPlan::default());
        assert_eq!(msgs.len(), 1);
        assert!(matches!(&msgs[0], FromWorker::Hello { .. }));
        assert_eq!(end, SessionEnd::Shutdown);
    }

    #[test]
    fn worker_executes_a_shard_bit_exactly() {
        let cfg = small_config();
        let plan = SweepPlan::from_config(&cfg).unwrap();
        let reference = crate::exec::execute_cells(&plan, &plan.grid, 1);
        let lease = ToWorker::Shard {
            job: 1,
            shard: 0,
            list: ShardList::Grid,
            indices: (0..plan.grid.len()).collect(),
            kernel: KernelChoice::Auto,
            config: cfg,
        };
        let msgs = drive(
            &[lease.encode(), ToWorker::Shutdown.encode()],
            FaultPlan::default(),
        );
        let cells: Vec<_> = msgs
            .iter()
            .filter_map(|m| match m {
                FromWorker::Cell { index, result, .. } => Some((*index, result.clone())),
                _ => None,
            })
            .collect();
        assert_eq!(cells.len(), plan.grid.len());
        for (index, result) in &cells {
            let want = &reference[*index];
            assert_eq!(result.total_flips, want.total_flips);
            assert_eq!(
                result.flips_per_mact.to_bits(),
                want.flips_per_mact.to_bits(),
                "cell {index} must cross the codec bit-exactly"
            );
        }
        assert!(
            msgs.iter().any(|m| matches!(
                m,
                FromWorker::ShardDone {
                    job: 1,
                    shard: 0,
                    ..
                }
            )),
            "shard must be closed by shard_done"
        );
    }

    #[test]
    fn crash_fault_drops_connection_mid_shard() {
        let cfg = small_config();
        let plan = SweepPlan::from_config(&cfg).unwrap();
        assert!(plan.grid.len() > 3);
        let lease = ToWorker::Shard {
            job: 1,
            shard: 0,
            list: ShardList::Grid,
            indices: (0..plan.grid.len()).collect(),
            kernel: KernelChoice::Auto,
            config: cfg,
        };
        let (msgs, end) = drive_plan(
            &[lease.encode(), ToWorker::Shutdown.encode()],
            FaultPlan::parse("crash-after-cells=3").unwrap(),
        );
        assert_eq!(end, SessionEnd::Crashed);
        let cells = msgs
            .iter()
            .filter(|m| matches!(m, FromWorker::Cell { .. }))
            .count();
        assert_eq!(cells, 3, "exactly the scheduled cells must stream");
        assert!(
            !msgs
                .iter()
                .any(|m| matches!(m, FromWorker::ShardDone { .. })),
            "a crashed shard must not be acknowledged"
        );
    }

    #[test]
    fn legacy_exit_after_cells_still_crashes() {
        let mut plan = FaultPlan::default();
        plan.merge_exit_after_cells(Some(2));
        let cfg = small_config();
        let lease = ToWorker::Shard {
            job: 1,
            shard: 0,
            list: ShardList::Grid,
            indices: (0..SweepPlan::from_config(&cfg).unwrap().grid.len()).collect(),
            kernel: KernelChoice::Auto,
            config: cfg,
        };
        let (msgs, end) = drive_plan(&[lease.encode(), ToWorker::Shutdown.encode()], plan);
        assert_eq!(end, SessionEnd::Crashed);
        let cells = msgs
            .iter()
            .filter(|m| matches!(m, FromWorker::Cell { .. }))
            .count();
        assert_eq!(cells, 2);
    }

    #[test]
    fn drop_and_garble_faults_shape_the_stream() {
        let cfg = small_config();
        let total = SweepPlan::from_config(&cfg).unwrap().grid.len();
        assert!(total >= 3);
        let lease = ToWorker::Shard {
            job: 1,
            shard: 0,
            list: ShardList::Grid,
            indices: (0..total).collect(),
            kernel: KernelChoice::Auto,
            config: cfg,
        };
        // Line 1 is the hello; line 2 (the first cell) is dropped, line 3
        // (the second cell) is garbled.
        let input = [lease.encode(), ToWorker::Shutdown.encode()].join("\n") + "\n";
        let mut out: Vec<u8> = Vec::new();
        let mut plan = FaultPlan::parse("drop-line=2,garble-line=3").unwrap();
        worker_loop(
            Cursor::new(input.into_bytes()),
            &mut out,
            &quiet_session(),
            &mut plan,
        )
        .unwrap();
        let lines: Vec<String> = String::from_utf8(out)
            .unwrap()
            .lines()
            .map(String::from)
            .collect();
        // hello + (total - 1 surviving cell lines, one of them garbled) +
        // shard_done.
        assert_eq!(lines.len(), 1 + (total - 1) + 1);
        assert!(FromWorker::decode(&lines[0]).is_ok(), "hello survives");
        assert!(
            lines[1].starts_with('#'),
            "the garbled line must be visibly corrupt: {}",
            lines[1]
        );
        assert!(FromWorker::decode(&lines[1]).is_err());
        let decoded_cells = lines
            .iter()
            .filter(|l| matches!(FromWorker::decode(l), Ok(FromWorker::Cell { .. })))
            .count();
        assert_eq!(decoded_cells, total - 2, "one dropped, one garbled");
    }

    #[test]
    fn bad_lease_fails_cleanly_instead_of_crashing() {
        let lease = ToWorker::Shard {
            job: 9,
            shard: 2,
            list: ShardList::Grid,
            indices: vec![usize::MAX],
            kernel: KernelChoice::Auto,
            config: small_config(),
        };
        let msgs = drive(
            &[lease.encode(), ToWorker::Shutdown.encode()],
            FaultPlan::default(),
        );
        match &msgs[1] {
            FromWorker::Fail {
                job: 9,
                shard: 2,
                message,
            } => assert!(message.contains("out of bounds"), "{message}"),
            other => panic!("expected fail, got {other:?}"),
        }
    }

    #[test]
    fn hello_reports_kernel_version_and_epoch() {
        let input = ToWorker::Shutdown.encode() + "\n";
        let mut out: Vec<u8> = Vec::new();
        let session = SessionOptions {
            config_epoch: 7,
            heartbeat_interval: Duration::from_secs(3_600),
            ..SessionOptions::default()
        };
        let mut plan = FaultPlan::default();
        worker_loop(
            Cursor::new(input.into_bytes()),
            &mut out,
            &session,
            &mut plan,
        )
        .unwrap();
        let first = String::from_utf8(out)
            .unwrap()
            .lines()
            .next()
            .unwrap()
            .to_string();
        let FromWorker::Hello {
            kernel,
            pid,
            proto_version,
            config_epoch,
            auth_nonce,
            auth_proof,
        } = FromWorker::decode(&first).unwrap()
        else {
            panic!("first line must be hello");
        };
        assert_eq!(kernel, KernelChoice::Auto.resolve().unwrap().name());
        assert_eq!(pid, u64::from(std::process::id()));
        assert_eq!(proto_version, PROTO_VERSION);
        assert_eq!(config_epoch, 7);
        assert_eq!(auth_nonce, 0, "no token configured, no nonce");
        assert_eq!(auth_proof, None, "no token configured, no proof");
        // And the hello line is valid jsonl for the coordinator's parser.
        let reparsed = proto::parse(&first).unwrap();
        assert_eq!(
            reparsed.get("role").and_then(proto::Value::as_str),
            Some("worker")
        );
    }

    #[test]
    fn reject_ends_the_session_without_retrying() {
        let reject = ToWorker::Reject {
            reason: "config epoch 0 != coordinator epoch 3".into(),
        };
        let (msgs, end) = drive_plan(&[reject.encode()], FaultPlan::default());
        assert_eq!(msgs.len(), 1, "only the hello went out");
        let SessionEnd::Rejected(reason) = end else {
            panic!("expected rejection, got {end:?}");
        };
        assert!(reason.contains("epoch"), "{reason}");
    }

    #[test]
    fn heartbeats_pulse_while_a_shard_stalls() {
        let cfg = small_config();
        let lease = ToWorker::Shard {
            job: 5,
            shard: 11,
            list: ShardList::Grid,
            indices: vec![0, 1],
            kernel: KernelChoice::Auto,
            config: cfg,
        };
        let input = [lease.encode(), ToWorker::Shutdown.encode()].join("\n") + "\n";
        let mut out: Vec<u8> = Vec::new();
        let session = SessionOptions {
            config_epoch: 0,
            heartbeat_interval: Duration::from_millis(20),
            ..SessionOptions::default()
        };
        // Stall 400ms after the first cell: the pulse thread gets ~20
        // chances to fire while the lease is active.
        let mut plan = FaultPlan::parse("stall-after-cells=1,stall-ms=400").unwrap();
        worker_loop(
            Cursor::new(input.into_bytes()),
            &mut out,
            &session,
            &mut plan,
        )
        .unwrap();
        let beats = String::from_utf8(out)
            .unwrap()
            .lines()
            .filter(|l| {
                matches!(
                    FromWorker::decode(l),
                    Ok(FromWorker::Heartbeat { job: 5, shard: 11 })
                )
            })
            .count();
        assert!(beats >= 1, "a stalled shard must still pulse heartbeats");
    }

    /// Like [`drive_plan`] but with a caller-supplied session.
    fn drive_session(
        script: &[String],
        mut plan: FaultPlan,
        session: &SessionOptions,
    ) -> (Vec<FromWorker>, SessionEnd) {
        let input = script.join("\n") + "\n";
        let mut out: Vec<u8> = Vec::new();
        let end = worker_loop(
            Cursor::new(input.into_bytes()),
            &mut out,
            session,
            &mut plan,
        )
        .unwrap();
        let msgs = String::from_utf8(out)
            .unwrap()
            .lines()
            .map(|l| FromWorker::decode(l).unwrap())
            .collect();
        (msgs, end)
    }

    #[test]
    fn cancel_abandons_the_lease_mid_shard_with_an_ack() {
        let cfg = small_config();
        let total = SweepPlan::from_config(&cfg).unwrap().grid.len();
        assert!(total > 2);
        let lease = ToWorker::Shard {
            job: 4,
            shard: 1,
            list: ShardList::Grid,
            indices: (0..total).collect(),
            kernel: KernelChoice::Auto,
            config: cfg,
        };
        // The stall guarantees the cancel (queued by the reader thread as
        // soon as the cursor drains) is visible at a cell boundary well
        // before the shard would finish.
        let (msgs, end) = drive_plan(
            &[
                lease.encode(),
                ToWorker::Cancel { job: 4 }.encode(),
                ToWorker::Shutdown.encode(),
            ],
            FaultPlan::parse("stall-after-cells=1,stall-ms=300").unwrap(),
        );
        assert_eq!(end, SessionEnd::Shutdown, "the session outlives the cancel");
        let cells = msgs
            .iter()
            .filter(|m| matches!(m, FromWorker::Cell { .. }))
            .count();
        assert!(cells < total, "the lease must be abandoned early: {cells}");
        assert!(
            msgs.iter()
                .any(|m| matches!(m, FromWorker::CancelAck { job: 4, shard: 1 })),
            "an abandoned lease must be acknowledged"
        );
        assert!(
            !msgs
                .iter()
                .any(|m| matches!(m, FromWorker::ShardDone { .. })),
            "a cancelled lease must not report shard_done"
        );
    }

    #[test]
    fn cancel_for_another_job_leaves_the_lease_alone() {
        let cfg = small_config();
        let total = SweepPlan::from_config(&cfg).unwrap().grid.len();
        let lease = ToWorker::Shard {
            job: 4,
            shard: 1,
            list: ShardList::Grid,
            indices: (0..total).collect(),
            kernel: KernelChoice::Auto,
            config: cfg,
        };
        let (msgs, end) = drive_plan(
            &[
                lease.encode(),
                ToWorker::Cancel { job: 99 }.encode(),
                ToWorker::Shutdown.encode(),
            ],
            FaultPlan::parse("stall-after-cells=1,stall-ms=100").unwrap(),
        );
        assert_eq!(end, SessionEnd::Shutdown);
        let cells = msgs
            .iter()
            .filter(|m| matches!(m, FromWorker::Cell { .. }))
            .count();
        assert_eq!(cells, total, "an unrelated cancel must not shed cells");
        assert!(msgs
            .iter()
            .any(|m| matches!(m, FromWorker::ShardDone { .. })));
        assert!(
            !msgs
                .iter()
                .any(|m| matches!(m, FromWorker::CancelAck { .. })),
            "nothing to acknowledge for a job this worker is not running"
        );
    }

    #[test]
    fn authenticated_hello_carries_a_valid_proof() {
        let session = SessionOptions {
            auth_token: Some("s3cret".into()),
            ..quiet_session()
        };
        let (msgs, _) = drive_session(
            &[ToWorker::Shutdown.encode()],
            FaultPlan::default(),
            &session,
        );
        let FromWorker::Hello {
            auth_nonce,
            auth_proof: proof,
            ..
        } = &msgs[0]
        else {
            panic!("first line must be hello");
        };
        assert_eq!(
            proof.as_deref(),
            Some(auth_proof("s3cret", *auth_nonce).as_str()),
            "the proof must verify against the shared token and the nonce"
        );
    }

    #[test]
    fn wrong_token_fault_sends_a_provably_bad_proof() {
        let session = SessionOptions {
            auth_token: Some("s3cret".into()),
            ..quiet_session()
        };
        let (msgs, _) = drive_session(
            &[ToWorker::Shutdown.encode()],
            FaultPlan::parse("wrong-token=1").unwrap(),
            &session,
        );
        let FromWorker::Hello {
            auth_nonce,
            auth_proof: proof,
            ..
        } = &msgs[0]
        else {
            panic!("first line must be hello");
        };
        let proof = proof.as_deref().expect("the fault still sends a proof");
        assert_ne!(
            proof,
            auth_proof("s3cret", *auth_nonce),
            "the wrong-token fault must fail verification"
        );
    }
}
