//! # rh-cli — sweep driver and reporting layer
//!
//! Top of the workspace: couples the three lower layers and reproduces the
//! paper's core experiment loop as a **plan → shard → execute → merge**
//! pipeline. [`plan`] expands a declarative [`SweepConfig`] into a flat list
//! of order-independent cells (serializable workload/mitigation specs plus
//! seeds derived in `rh-core` from the root seed and cell coordinates);
//! [`exec`] shards the cells across scoped worker threads and merges results
//! back into plan order, so any `--threads` value emits byte-identical JSON;
//! [`engine`] drives one cell's activation stream through a mitigation into
//! the device model — batched (`Workload::fill_batch` chunks) and fully
//! monomorphized (`MitigationKind` enum dispatch, concrete workload type);
//! [`json`] renders results as a JSON table (the shape of the paper's
//! Figures 7–9: bit-flip rate vs. hammer count per mitigation); [`mod@bench`]
//! is the benchmark harness (`rh-cli bench`) that times the optimized hot
//! path against the retained pre-optimization path (eager device, map-based
//! counter mitigations, unbatched dyn dispatch) over a pinned reference
//! sweep and emits `BENCH_6.json`.
//!
//! The distributed layer ([`serve`], [`worker`], [`proto`], [`cache`]) runs
//! the same pipeline across processes and hosts, hardened by [`faults`] — a
//! deterministic, seeded fault-injection plan (`--fault-plan`) that makes
//! every chaos scenario (crashes, stalls, lossy links, corrupt cache
//! segments) a reproducible test of the byte-identity invariant.

pub mod bench;
pub mod cache;
pub mod cli;
pub mod configure;
pub mod engine;
pub mod exec;
pub mod faults;
pub mod json;
pub mod plan;
pub mod proto;
pub mod serve;
pub mod sweep;
pub mod worker;

pub use bench::{run_bench, BenchOptions, BenchReport};
pub use cache::{PersistentCache, ResultCache};
pub use configure::{
    analytic_pfail, empirical_failure_rate, recommended_p, run_configure, ConfigureOptions,
    ConfigureReport, CROSSVAL_Z,
};
pub use engine::{run_experiment, RunResult};
pub use faults::FaultPlan;
pub use plan::{CellSeeds, CellSpec, SweepPlan};
pub use proto::{config_hash, config_key, ResultEnvelope, PROTO_VERSION};
pub use serve::{
    run_cancel, run_serve, run_submit, CancelOptions, Coordinator, ServeOptions, SubmitOptions,
};
pub use sweep::{run_sweep, run_sweep_with_kernel, SweepConfig, SweepOutput};
pub use worker::{run_worker, WorkerOptions};
