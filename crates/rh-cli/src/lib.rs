//! # rh-cli — sweep driver and reporting layer
//!
//! Top of the workspace: couples the three lower layers and reproduces the
//! paper's core experiment loop. [`engine`] drives a workload's activation
//! stream through a mitigation into the device model; [`sweep`] runs the
//! `HC_first` × mitigation × workload grid plus a PARA sampling-probability
//! sweep; [`json`] renders results as a JSON table (the shape of the
//! paper's Figures 7–9: bit-flip rate vs. hammer count per mitigation).

pub mod engine;
pub mod json;
pub mod sweep;

pub use engine::{run_experiment, RunResult};
pub use sweep::{run_sweep, SweepConfig, SweepOutput};
