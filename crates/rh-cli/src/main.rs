//! `rh-cli` — run the RowHammer mitigation sweep and print a JSON table.
//!
//! Thin binary shell: parsing lives in [`rh_cli::cli`] and the pipeline in
//! the library so both are unit-testable. See `rh-cli --help` for options.

use rh_cli::cli::{parse_args, Invocation, USAGE};
use rh_cli::{json, run_sweep};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("sweep") => match parse_args(&args[1..]) {
            Ok(Invocation::Help) => {
                print!("{USAGE}");
                ExitCode::SUCCESS
            }
            Ok(Invocation::Sweep(a)) => match run_sweep(&a.config, a.threads) {
                Ok(out) => {
                    println!("{}", json::render(&out));
                    if out.para_monotone {
                        ExitCode::SUCCESS
                    } else {
                        eprintln!("error: PARA flip counts were not monotone in p");
                        ExitCode::FAILURE
                    }
                }
                Err(e) => {
                    eprintln!("error: {e}\n\n{USAGE}");
                    ExitCode::FAILURE
                }
            },
            Err(e) => {
                eprintln!("error: {e}\n\n{USAGE}");
                ExitCode::FAILURE
            }
        },
        Some("-h" | "--help") | None => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("error: unknown command '{other}'\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}
