//! `rh-cli` — run the RowHammer mitigation sweep and print a JSON table.
//!
//! Thin binary shell: parsing lives in [`rh_cli::cli`] and the pipeline in
//! the library so both are unit-testable. See `rh-cli --help` for options.

use rh_cli::cli::{
    parse_args, parse_bench_args, parse_cancel_args, parse_configure_args, parse_serve_args,
    parse_submit_args, parse_worker_args, BenchInvocation, CancelInvocation, ConfigureInvocation,
    Invocation, ServeInvocation, SubmitInvocation, WorkerInvocation, USAGE,
};
use rh_cli::{
    bench, configure, json, run_cancel, run_serve, run_submit, run_sweep_with_kernel, run_worker,
};
use std::process::ExitCode;

fn run_bench_command(opts: &bench::BenchOptions) -> ExitCode {
    match bench::run_bench(opts) {
        Ok(report) => {
            let doc = bench::render(&report);
            if let Err(e) = std::fs::write(&opts.out_path, format!("{doc}\n")) {
                eprintln!("error: cannot write {}: {e}", opts.out_path);
                return ExitCode::FAILURE;
            }
            println!("{doc}");
            eprintln!(
                "bench: {:.2}x speedup ({:.0} -> {:.0} acts/sec), report at {}",
                report.speedup,
                report.legacy_acts_per_sec,
                report.optimized_acts_per_sec,
                opts.out_path
            );
            if !report.equivalent {
                eprintln!("error: optimized and legacy paths diverged (determinism regression)");
                return ExitCode::FAILURE;
            }
            if let Some(min) = opts.min_acts_per_sec {
                if report.optimized_acts_per_sec < min {
                    eprintln!(
                        "error: optimized throughput {:.0} acts/sec below the \
                         --min-acts-per-sec floor of {min:.0} (perf regression)",
                        report.optimized_acts_per_sec
                    );
                    return ExitCode::FAILURE;
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_saturation_command(opts: &bench::SaturationOptions) -> ExitCode {
    match bench::run_saturation(opts) {
        Ok(report) => {
            let doc = bench::render_saturation(&report);
            if let Err(e) = std::fs::write(&opts.out_path, format!("{doc}\n")) {
                eprintln!("error: cannot write {}: {e}", opts.out_path);
                return ExitCode::FAILURE;
            }
            println!("{doc}");
            eprintln!(
                "saturation: peak {:.1} cells/sec over pools {:?}, report at {}",
                report.peak_cells_per_sec, opts.worker_counts, opts.out_path
            );
            if !report.identical_bytes {
                eprintln!(
                    "error: distributed documents diverged from the in-process sweep \
                     (determinism regression)"
                );
                return ExitCode::FAILURE;
            }
            if let Some(min) = opts.min_cells_per_sec {
                if report.peak_cells_per_sec < min {
                    eprintln!(
                        "error: peak throughput {:.1} cells/sec below the \
                         --min-cells-per-sec floor of {min:.1} (perf regression)",
                        report.peak_cells_per_sec
                    );
                    return ExitCode::FAILURE;
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_analysis_command(opts: &bench::AnalysisOptions) -> ExitCode {
    match bench::run_analysis(opts) {
        Ok(report) => {
            let doc = bench::render_analysis(&report);
            if let Err(e) = std::fs::write(&opts.out_path, format!("{doc}\n")) {
                eprintln!("error: cannot write {}: {e}", opts.out_path);
                return ExitCode::FAILURE;
            }
            println!("{doc}");
            eprintln!(
                "analysis: direct {:.0} evals/sec, dual {:.0} evals/sec, \
                 solver {:.0} solves/sec, report at {}",
                report.direct_evals_per_sec,
                report.dual_evals_per_sec,
                report.solves_per_sec,
                opts.out_path
            );
            if !report.agreement {
                eprintln!(
                    "error: direct and dual closed forms diverged by {:e} (over the 1e-9 \
                     agreement contract)",
                    report.max_divergence
                );
                return ExitCode::FAILURE;
            }
            if let Some(min) = opts.min_evals_per_sec {
                if report.direct_evals_per_sec < min {
                    eprintln!(
                        "error: direct-form throughput {:.0} evals/sec below the \
                         --min-evals-per-sec floor of {min:.0} (perf regression)",
                        report.direct_evals_per_sec
                    );
                    return ExitCode::FAILURE;
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_configure_command(opts: &configure::ConfigureOptions) -> ExitCode {
    match configure::run_configure(opts) {
        Ok(report) => {
            let doc = configure::render_configure(&report);
            println!("{doc}");
            eprintln!(
                "configure: p = {} gives P_fail = {} over {} activations at HC_first {}",
                report.recommended_p, report.analytic_pfail, report.window, report.hc_first
            );
            if report.divergence >= 1e-9 {
                eprintln!(
                    "error: direct and dual closed forms diverged by {:e} at the \
                     recommendation (over the 1e-9 agreement contract)",
                    report.divergence
                );
                return ExitCode::FAILURE;
            }
            if let Some(v) = &report.validation {
                eprintln!(
                    "configure: validation {}/{} failures, band [{}, {}] vs analytic {}",
                    v.failures, v.trials, v.band_lo, v.band_hi, report.analytic_pfail
                );
                if !v.pass {
                    eprintln!(
                        "error: the mini-sweep's failure rate is inconsistent with the \
                         analytical prediction (model or engine drift — see \
                         docs/ARCHITECTURE.md, analytical cross-validation)"
                    );
                    return ExitCode::FAILURE;
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("bench") => match parse_bench_args(&args[1..]) {
            Ok(BenchInvocation::Help) => {
                print!("{USAGE}");
                ExitCode::SUCCESS
            }
            Ok(BenchInvocation::Bench(opts)) => run_bench_command(&opts),
            Ok(BenchInvocation::Saturation(opts)) => run_saturation_command(&opts),
            Ok(BenchInvocation::Analysis(opts)) => run_analysis_command(&opts),
            Err(e) => {
                eprintln!("error: {e}\n\n{USAGE}");
                ExitCode::FAILURE
            }
        },
        Some("configure") => match parse_configure_args(&args[1..]) {
            Ok(ConfigureInvocation::Help) => {
                print!("{USAGE}");
                ExitCode::SUCCESS
            }
            Ok(ConfigureInvocation::Configure(opts)) => run_configure_command(&opts),
            Err(e) => {
                eprintln!("error: {e}\n\n{USAGE}");
                ExitCode::FAILURE
            }
        },
        Some("serve") => match parse_serve_args(&args[1..]) {
            Ok(ServeInvocation::Help) => {
                print!("{USAGE}");
                ExitCode::SUCCESS
            }
            Ok(ServeInvocation::Serve(opts)) => match run_serve(*opts) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            },
            Err(e) => {
                eprintln!("error: {e}\n\n{USAGE}");
                ExitCode::FAILURE
            }
        },
        Some("worker") => match parse_worker_args(&args[1..]) {
            Ok(WorkerInvocation::Help) => {
                print!("{USAGE}");
                ExitCode::SUCCESS
            }
            Ok(WorkerInvocation::Worker(opts)) => match run_worker(&opts) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            },
            Err(e) => {
                eprintln!("error: {e}\n\n{USAGE}");
                ExitCode::FAILURE
            }
        },
        Some("submit") => match parse_submit_args(&args[1..]) {
            Ok(SubmitInvocation::Help) => {
                print!("{USAGE}");
                ExitCode::SUCCESS
            }
            Ok(SubmitInvocation::Submit(opts)) => match run_submit(&opts) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            },
            Err(e) => {
                eprintln!("error: {e}\n\n{USAGE}");
                ExitCode::FAILURE
            }
        },
        Some("cancel") => match parse_cancel_args(&args[1..]) {
            Ok(CancelInvocation::Help) => {
                print!("{USAGE}");
                ExitCode::SUCCESS
            }
            Ok(CancelInvocation::Cancel(opts)) => match run_cancel(&opts) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            },
            Err(e) => {
                eprintln!("error: {e}\n\n{USAGE}");
                ExitCode::FAILURE
            }
        },
        Some("sweep") => match parse_args(&args[1..]) {
            Ok(Invocation::Help) => {
                print!("{USAGE}");
                ExitCode::SUCCESS
            }
            Ok(Invocation::Sweep(a)) => match run_sweep_with_kernel(&a.config, a.threads, a.kernel)
            {
                Ok(out) => {
                    println!("{}", json::render(&out));
                    if out.para_monotone {
                        ExitCode::SUCCESS
                    } else {
                        eprintln!("error: PARA flip counts were not monotone in p");
                        ExitCode::FAILURE
                    }
                }
                Err(e) => {
                    eprintln!("error: {e}\n\n{USAGE}");
                    ExitCode::FAILURE
                }
            },
            Err(e) => {
                eprintln!("error: {e}\n\n{USAGE}");
                ExitCode::FAILURE
            }
        },
        Some("-h" | "--help") | None => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("error: unknown command '{other}'\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}
