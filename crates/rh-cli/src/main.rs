//! `rh-cli` — run the RowHammer mitigation sweep and print a JSON table.
//!
//! Usage:
//! ```text
//! rh-cli sweep [--seed N] [--activations N] [--hc A,B,C,...]
//!              [--para-p P1,P2,...] [--benign-fraction F]
//! ```

use rh_cli::{json, run_sweep, SweepConfig};
use std::process::ExitCode;

const USAGE: &str = "\
rh-cli — RowHammer mitigation sweep (Kim et al., ISCA 2020 reproduction)

USAGE:
    rh-cli sweep [OPTIONS]

OPTIONS:
    --seed <N>              RNG seed for device + mitigations (default 0xC0FFEE)
    --activations <N>       activation budget per experiment cell (default 200000)
    --hc <A,B,...>          HC_first values to sweep (default 2000,4000,8000,16000)
    --para-p <P1,P2,...>    PARA sampling probabilities (default 0.0,0.001,0.004,0.016)
    --benign-fraction <F>   fraction of benign traffic mixed in (default 0.1)
    -h, --help              print this help
";

fn parse_list<T: std::str::FromStr>(s: &str, flag: &str) -> Result<Vec<T>, String> {
    s.split(',')
        .map(|x| {
            x.trim()
                .parse::<T>()
                .map_err(|_| format!("invalid value '{x}' for {flag}"))
        })
        .collect()
}

fn parse_args(args: &[String]) -> Result<SweepConfig, String> {
    let mut cfg = SweepConfig::default();
    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| format!("{flag} requires a value"))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                let v = value(&mut i, "--seed")?;
                cfg.seed = parse_u64_maybe_hex(&v).ok_or(format!("invalid --seed '{v}'"))?;
            }
            "--activations" => {
                let v = value(&mut i, "--activations")?;
                cfg.activations = v
                    .parse()
                    .map_err(|_| format!("invalid --activations '{v}'"))?;
            }
            "--hc" => cfg.hc_firsts = parse_list(&value(&mut i, "--hc")?, "--hc")?,
            "--para-p" => {
                cfg.para_probabilities = parse_list(&value(&mut i, "--para-p")?, "--para-p")?;
            }
            "--benign-fraction" => {
                let v = value(&mut i, "--benign-fraction")?;
                cfg.benign_fraction = v
                    .parse()
                    .map_err(|_| format!("invalid --benign-fraction '{v}'"))?;
            }
            other => return Err(format!("unknown option '{other}'")),
        }
        i += 1;
    }
    if cfg.hc_firsts.is_empty() {
        return Err("--hc requires at least one value".to_string());
    }
    if cfg.hc_firsts.contains(&0) {
        return Err("--hc values must be positive".to_string());
    }
    if let Some(p) = cfg
        .para_probabilities
        .iter()
        .find(|p| !(0.0..=1.0).contains(*p))
    {
        return Err(format!("--para-p value {p} must be in [0, 1]"));
    }
    if !(0.0..=1.0).contains(&cfg.benign_fraction) {
        return Err(format!(
            "--benign-fraction {} must be in [0, 1]",
            cfg.benign_fraction
        ));
    }
    Ok(cfg)
}

fn parse_u64_maybe_hex(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("sweep") => match parse_args(&args[1..]) {
            Ok(cfg) => {
                let out = run_sweep(&cfg);
                println!("{}", json::render(&out));
                if out.para_monotone {
                    ExitCode::SUCCESS
                } else {
                    eprintln!("error: PARA flip counts were not monotone in p");
                    ExitCode::FAILURE
                }
            }
            Err(e) => {
                eprintln!("error: {e}\n\n{USAGE}");
                ExitCode::FAILURE
            }
        },
        Some("-h" | "--help") | None => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("error: unknown command '{other}'\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}
