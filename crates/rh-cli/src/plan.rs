//! Sweep planning: expand a [`SweepConfig`] into a flat, order-independent
//! list of executable cells.
//!
//! The pipeline is **plan → shard → execute → merge**:
//!
//! 1. *Plan* ([`SweepPlan::from_config`]): validate the config and expand
//!    the `HC_first` × workload × mitigation grid (plus the PARA
//!    common-random-number sweep) into [`CellSpec`]s. Each cell carries the
//!    serializable specs of its workload and mitigation and a [`CellSeeds`]
//!    bundle derived in `rh-core` via SplitMix64 over the root seed and the
//!    cell's coordinates.
//! 2. *Shard / execute* ([`crate::exec::execute_cells`]): worker threads
//!    claim cells from an atomic cursor and materialize each cell's device,
//!    workload, and mitigation locally from its specs and seeds.
//! 3. *Merge*: results land back in plan order, so the output is a pure
//!    function of the config — `--threads 1` and `--threads 8` emit
//!    byte-identical JSON.
//!
//! Two properties of this function are load-bearing for the distributed
//! service ([`crate::serve`]/[`crate::worker`]): the plan is a **pure
//! function of the config** (no ambient state, no execution-order
//! dependence), and normalization is **idempotent** — so a coordinator can
//! lease bare cell *indices* over the wire and a worker re-expanding
//! `SweepPlan::from_config` from the normalized config is guaranteed to
//! index the same cells.
//!
//! Seed derivation is deliberately *not* fully per-cell-unique: seeds are
//! derived from exactly the coordinates a stream may depend on, so that the
//! sweep's common-random-number (CRN) comparisons stay valid:
//!
//! * the **device** seed depends only on the root — every cell simulates the
//!   same per-row threshold jitter, making flip counts comparable along the
//!   `HC_first`, workload, and mitigation axes;
//! * a **workload** seed depends on the root and the workload's identity —
//!   each pattern draws independent benign noise, but all mitigations face
//!   the identical stream for a given pattern;
//! * the **mitigation** seed depends only on the root — all PARA instances
//!   share one sampling stream, so (with one RNG draw per activation) the
//!   activations sampled at a lower `p` are a subset of those sampled at any
//!   higher `p`, and the PARA sweep is provably monotone.

use crate::sweep::SweepConfig;
use rh_core::{derive_seed, DataPattern};
use rh_mitigations::MitigationSpec;
use rh_workloads::WorkloadSpec;

/// Aggressor-to-victim coupling reach used by the device model and every
/// neighbor-refreshing mitigation in the sweep.
pub const BLAST_RADIUS: u32 = 2;

/// PARA sampling probability used in the main grid (the paper's ~99.9%
/// protection operating point); the dedicated PARA sweep varies `p`.
pub const GRID_PARA_P: f64 = 0.004;

// Stream discriminators for seed derivation (arbitrary distinct constants).
const DEVICE_STREAM: u64 = 0xD0;
const WORKLOAD_STREAM: u64 = 0xA0;
const MITIGATION_STREAM: u64 = 0x30;

/// Seeds for the stochastic components of one cell. See the module docs for
/// which coordinates each seed may depend on (CRN structure).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellSeeds {
    /// Per-row threshold jitter of the simulated device.
    pub device: u64,
    /// Benign-traffic mixer of the cell's workload.
    pub workload: u64,
    /// Mitigation RNG (only PARA consumes it).
    pub mitigation: u64,
}

impl CellSeeds {
    fn derive(root: u64, workload: &WorkloadSpec) -> Self {
        Self {
            device: derive_seed(root, &[DEVICE_STREAM]),
            workload: derive_seed(root, &[WORKLOAD_STREAM, workload.stream_id()]),
            mitigation: derive_seed(root, &[MITIGATION_STREAM]),
        }
    }
}

/// One executable experiment cell: everything a worker thread needs to run
/// it, independent of every other cell and of execution order.
#[derive(Debug, Clone)]
pub struct CellSpec {
    /// Position in plan (= output) order.
    pub index: usize,
    pub hc_first: u64,
    /// Stored data pattern the cell's device is initialized with. Not a
    /// seed coordinate: all patterns share the CRN device seed, so pattern
    /// comparisons run over identical per-row thresholds and orientations.
    pub data_pattern: DataPattern,
    pub workload: WorkloadSpec,
    pub mitigation: MitigationSpec,
    pub activations: u64,
    /// Full-device refresh period in activations (0 = disabled).
    pub auto_refresh_interval: u64,
    pub seeds: CellSeeds,
}

/// The expanded, validated form of a [`SweepConfig`].
#[derive(Debug, Clone)]
pub struct SweepPlan {
    /// The normalized config the cells were expanded from — the one source
    /// of truth for reporting, so the emitted config always describes
    /// exactly the grid that ran.
    pub config: SweepConfig,
    /// Main grid cells in `HC_first` × workload × mitigation order.
    pub grid: Vec<CellSpec>,
    /// PARA sweep cells in ascending-probability order.
    pub para_sweep: Vec<CellSpec>,
}

/// The grid's mitigation axis. Graphene gets a table large enough to track
/// all aggressors of the widest many-sided pattern (adequate provisioning);
/// TRR gets the small table and 2-slot refresh budget of deployed parts —
/// the contrast the acceptance scenario (and TRRespass) hinges on.
fn mitigation_axis() -> Vec<MitigationSpec> {
    vec![
        MitigationSpec::None,
        MitigationSpec::Para {
            probability: GRID_PARA_P,
        },
        MitigationSpec::Graphene {
            table_size: 64,
            threshold_divisor: 8,
        },
        MitigationSpec::IncreasedRefresh {
            interval_divisor: 2,
        },
        MitigationSpec::Trr {
            table_size: 16,
            refresh_slots: 2,
            sample_interval: 1000,
        },
    ]
}

/// The grid's workload axis: the classic patterns plus one many-sided
/// pattern per configured aggressor count.
fn workload_axis(sides: &[usize]) -> Vec<WorkloadSpec> {
    let mut axis = vec![WorkloadSpec::SingleSided, WorkloadSpec::DoubleSided];
    axis.extend(sides.iter().map(|&sides| WorkloadSpec::ManySided { sides }));
    axis
}

impl SweepPlan {
    /// Validate `cfg` and expand it into executable cells. The config is
    /// normalized exactly once, here ([`SweepConfig::normalized`]) — so
    /// duplicate axis values collapse, the PARA sweep runs in
    /// ascending-probability order, and the plan's `config` field is what
    /// reporters must emit.
    pub fn from_config(cfg: &SweepConfig) -> Result<Self, String> {
        let cfg = cfg.normalized();
        cfg.validate()?;
        let workloads = workload_axis(&cfg.sides);
        for w in &workloads {
            w.validate(&cfg.geometry)?;
        }
        let mitigations = mitigation_axis();
        let hc_firsts = &cfg.hc_firsts;

        let mut grid = Vec::with_capacity(
            hc_firsts.len() * cfg.data_patterns.len() * workloads.len() * mitigations.len(),
        );
        for &hc_first in hc_firsts {
            for &data_pattern in &cfg.data_patterns {
                for workload in &workloads {
                    for mitigation in &mitigations {
                        grid.push(CellSpec {
                            index: grid.len(),
                            hc_first,
                            data_pattern,
                            workload: *workload,
                            mitigation: mitigation.clone(),
                            activations: cfg.activations,
                            auto_refresh_interval: cfg.auto_refresh_interval,
                            seeds: CellSeeds::derive(cfg.seed, workload),
                        });
                    }
                }
            }
        }

        // PARA sweep: hardest case (lowest HC_first), double-sided attack,
        // in the normalized (ascending-p) order so the monotonicity check
        // runs along the physical axis.
        let hc_min = *hc_firsts.iter().min().expect("validated non-empty");
        let para_sweep = cfg
            .para_probabilities
            .iter()
            .enumerate()
            .map(|(index, &probability)| CellSpec {
                index,
                hc_first: hc_min,
                // First pattern on the axis (the legacy model by default):
                // one pattern keeps the PARA sweep's CRN subset argument
                // exact.
                data_pattern: cfg.data_patterns[0],
                workload: WorkloadSpec::DoubleSided,
                mitigation: MitigationSpec::Para { probability },
                activations: cfg.activations,
                auto_refresh_interval: cfg.auto_refresh_interval,
                seeds: CellSeeds::derive(cfg.seed, &WorkloadSpec::DoubleSided),
            })
            .collect();

        Ok(Self {
            config: cfg,
            grid,
            para_sweep,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rh_core::Geometry;

    fn cfg() -> SweepConfig {
        SweepConfig {
            hc_firsts: vec![1000, 2000],
            sides: vec![4, 8],
            para_probabilities: vec![0.004, 0.0, 0.001],
            ..SweepConfig::default()
        }
    }

    #[test]
    fn grid_is_full_cross_product_in_order() {
        let plan = SweepPlan::from_config(&cfg()).unwrap();
        // 2 hc × (2 classic + 2 many-sided) × 5 mitigations.
        assert_eq!(plan.grid.len(), 2 * 4 * 5);
        for (i, cell) in plan.grid.iter().enumerate() {
            assert_eq!(cell.index, i);
        }
        assert_eq!(plan.grid[0].hc_first, 1000);
        assert_eq!(plan.grid.last().unwrap().hc_first, 2000);
    }

    #[test]
    fn para_sweep_is_sorted_and_deduped() {
        let mut c = cfg();
        c.para_probabilities = vec![0.004, 0.0, 0.004, 0.001];
        let plan = SweepPlan::from_config(&c).unwrap();
        let ps: Vec<f64> = plan
            .para_sweep
            .iter()
            .map(|cell| match cell.mitigation {
                MitigationSpec::Para { probability } => probability,
                _ => panic!("PARA sweep must contain only PARA cells"),
            })
            .collect();
        assert_eq!(ps, vec![0.0, 0.001, 0.004]);
    }

    #[test]
    fn duplicate_axis_values_collapse() {
        let mut c = cfg();
        c.hc_firsts = vec![1000, 1000, 2000];
        c.sides = vec![4, 4];
        c.data_patterns = vec![DataPattern::Legacy, DataPattern::Legacy];
        let plan = SweepPlan::from_config(&c).unwrap();
        assert_eq!(plan.grid.len(), 2 * 3 * 5);
    }

    #[test]
    fn data_pattern_axis_multiplies_the_grid_and_shares_seeds() {
        let mut c = cfg();
        c.data_patterns = vec![DataPattern::Legacy, DataPattern::RowStripe];
        let plan = SweepPlan::from_config(&c).unwrap();
        // 2 hc × 2 patterns × 4 workloads × 5 mitigations.
        assert_eq!(plan.grid.len(), 2 * 2 * 4 * 5);
        let first = plan.grid[0].seeds;
        for cell in &plan.grid {
            assert_eq!(
                cell.seeds.device, first.device,
                "patterns share the CRN device seed"
            );
        }
        let patterns: Vec<DataPattern> = plan
            .grid
            .iter()
            .filter(|c| c.hc_first == 1000)
            .map(|c| c.data_pattern)
            .collect();
        assert_eq!(&patterns[..20], vec![DataPattern::Legacy; 20].as_slice());
        assert_eq!(&patterns[20..], vec![DataPattern::RowStripe; 20].as_slice());
        // The PARA sweep pins the first pattern on the axis.
        assert!(plan
            .para_sweep
            .iter()
            .all(|c| c.data_pattern == DataPattern::Legacy));
    }

    #[test]
    fn device_and_mitigation_seeds_shared_workload_seeds_not() {
        let plan = SweepPlan::from_config(&cfg()).unwrap();
        let first = plan.grid[0].seeds;
        for cell in &plan.grid {
            assert_eq!(cell.seeds.device, first.device, "device seed is CRN-shared");
            assert_eq!(cell.seeds.mitigation, first.mitigation);
        }
        let workload_seeds: std::collections::HashSet<u64> =
            plan.grid.iter().map(|c| c.seeds.workload).collect();
        assert_eq!(
            workload_seeds.len(),
            4,
            "each workload draws its own benign stream"
        );
        // PARA sweep shares the double-sided grid stream.
        let double_cell = plan
            .grid
            .iter()
            .find(|c| c.workload == WorkloadSpec::DoubleSided)
            .unwrap();
        assert_eq!(
            plan.para_sweep[0].seeds.workload,
            double_cell.seeds.workload
        );
    }

    #[test]
    fn rejects_patterns_that_do_not_fit() {
        let mut c = cfg();
        c.geometry = Geometry::tiny(64);
        c.sides = vec![64];
        assert!(SweepPlan::from_config(&c).is_err());
    }
}
