//! The jsonl wire protocol of the distributed sweep service.
//!
//! One JSON object per line, hand-rolled like the rest of the workspace's
//! JSON (no external deps). Three conversations share the codec:
//!
//! * **client ↔ coordinator**: a client submits sweep configs (either a bare
//!   config object or `{"type": "submit", "id": ..., "config": {...}}`) and
//!   receives one [`ResultEnvelope`] line per job — cache/dedup metadata plus
//!   the merged sweep document, which is byte-identical to an in-process
//!   `rh-cli sweep` run of the same config;
//! * **coordinator → worker**: [`ToWorker::Shard`] leases carry the
//!   *normalized config plus cell indices*, not materialized cells — the
//!   worker re-expands the plan locally ([`crate::plan::SweepPlan`] is a pure
//!   function of the config), so the wire stays small and a version-skewed
//!   worker can never execute a cell the coordinator didn't mean;
//! * **worker → coordinator**: a [`FromWorker::Hello`] announcing the
//!   worker's resolved settle kernel, then per-cell [`FromWorker::Cell`]
//!   results streamed as they complete (the coordinator merges them
//!   incrementally and checkpoints them), closed by a
//!   [`FromWorker::ShardDone`].
//!
//! ## Exactness
//!
//! [`RunResult`]s cross the wire with `flips_per_mact` encoded as its IEEE
//! bit pattern (`f64::to_bits`), so a result that transited a worker process
//! renders byte-for-byte like one computed in-process — the PR 2 determinism
//! invariant ("sharding never changes the bytes") generalized to process and
//! host boundaries.
//!
//! ## The canonical config hash
//!
//! [`config_hash`] fingerprints what a config *means*, not how it was
//! spelled: the config is parsed (field order and whitespace vanish),
//! defaults are filled in (an omitted field and an explicitly-default field
//! are the same config), normalized ([`SweepConfig::normalized`]: duplicate
//! axis values collapse, PARA probabilities sort), and the result is
//! FNV-1a-hashed over a fixed-order canonical encoding with floats as IEEE
//! bit patterns. Two configs that plan identically hash identically; any
//! axis change moves the hash. The seed is deliberately **excluded** — the
//! cache key is the pair `(config_hash, seed)` ([`config_key`]), keeping the
//! two dedup axes (what to run, which random universe) independently
//! visible.

use crate::engine::RunResult;
use crate::sweep::SweepConfig;
use rh_core::{DataPattern, KernelChoice};
use std::fmt::Write as _;
use std::io::{BufRead, Write};

/// Version of this wire protocol, carried in every worker hello. The
/// coordinator rejects a mismatched worker *before* leasing it anything: a
/// version-skewed worker must fail loudly at attach time, never merge
/// garbage. Bump on any incompatible message change.
///
/// Version 2 added mid-shard cancellation ([`ToWorker::Cancel`] /
/// [`FromWorker::CancelAck`]) and the auth fields on the hello — a v1
/// worker would silently ignore a cancel, so the mix is rejected.
pub const PROTO_VERSION: u64 = 2;

// ---------------------------------------------------------------------------
// JSON value model + parser
// ---------------------------------------------------------------------------

/// A parsed JSON value. Numbers keep their raw text so 64-bit integers
/// (seeds up to `u64::MAX`) survive without a lossy trip through `f64`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Raw number token, converted on demand by [`Value::as_u64`] /
    /// [`Value::as_f64`].
    Num(String),
    Str(String),
    Arr(Vec<Value>),
    /// Key order preserved (irrelevant semantically, handy for tests).
    Obj(Vec<(String, Value)>),
}

impl Value {
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|n| usize::try_from(n).ok())
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }
}

/// Parse one JSON document (trailing whitespace allowed, nothing else).
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", char::from(b), self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Value::Str),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(format!(
                "unexpected byte '{}' at {}",
                char::from(b),
                self.pos
            )),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, text: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_from = self.pos;
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == digits_from {
            return Err(format!("invalid number at byte {start}"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_from = self.pos;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == frac_from {
                return Err(format!("invalid number at byte {start}"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_from = self.pos;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == exp_from {
                return Err(format!("invalid number at byte {start}"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number tokens are ASCII")
            .to_string();
        Ok(Value::Num(text))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00))
                                } else {
                                    return Err("lone high surrogate".to_string());
                                }
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("invalid codepoint {code:#x}"))?,
                            );
                        }
                        other => {
                            return Err(format!("invalid escape '\\{}'", char::from(other)));
                        }
                    }
                }
                Some(b) if b < 0x20 => return Err("raw control byte in string".to_string()),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so boundaries
                    // are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8".to_string())?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or("truncated \\u escape")?;
        let s = std::str::from_utf8(slice).map_err(|_| "invalid \\u escape".to_string())?;
        let v = u32::from_str_radix(s, 16).map_err(|_| format!("invalid \\u escape '{s}'"))?;
        self.pos = end;
        Ok(v)
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            fields.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

/// Escape a string into a quoted JSON literal.
pub fn jstr(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

// ---------------------------------------------------------------------------
// Config codec + canonical hash
// ---------------------------------------------------------------------------

fn want_u64(v: &Value, field: &str) -> Result<u64, String> {
    v.as_u64()
        .ok_or_else(|| format!("config field '{field}' must be a non-negative integer"))
}

fn want_u32(v: &Value, field: &str) -> Result<u32, String> {
    want_u64(v, field)?
        .try_into()
        .map_err(|_| format!("config field '{field}' is out of range"))
}

fn want_f64(v: &Value, field: &str) -> Result<f64, String> {
    v.as_f64()
        .ok_or_else(|| format!("config field '{field}' must be a number"))
}

fn want_list<T>(
    v: &Value,
    field: &str,
    each: impl Fn(&Value) -> Result<T, String>,
) -> Result<Vec<T>, String> {
    v.as_array()
        .ok_or_else(|| format!("config field '{field}' must be an array"))?
        .iter()
        .map(each)
        .collect()
}

/// Decode a `SweepConfig` from a parsed JSON object. Every field is
/// optional — omitted fields take their [`SweepConfig::default`] value, so
/// `{}` means "the default sweep" — and unknown fields are rejected (a
/// typoed axis name must not silently run the default). Field names match
/// the `config` section the sweep reporter emits, so a previous response's
/// config round-trips as a request.
pub fn config_from_value(v: &Value) -> Result<SweepConfig, String> {
    let fields = v
        .as_object()
        .ok_or_else(|| format!("config must be a JSON object, got {}", v.type_name()))?;
    let mut cfg = SweepConfig::default();
    for (key, val) in fields {
        match key.as_str() {
            "seed" => cfg.seed = want_u64(val, key)?,
            "activations" => cfg.activations = want_u64(val, key)?,
            "hc_firsts" => cfg.hc_firsts = want_list(val, key, |x| want_u64(x, key))?,
            "sides" => {
                cfg.sides = want_list(val, key, |x| {
                    x.as_usize()
                        .ok_or_else(|| format!("config field '{key}' must hold integers"))
                })?;
            }
            "para_probabilities" => {
                cfg.para_probabilities = want_list(val, key, |x| want_f64(x, key))?;
            }
            "data_patterns" => {
                cfg.data_patterns = want_list(val, key, |x| {
                    x.as_str()
                        .ok_or_else(|| format!("config field '{key}' must hold strings"))?
                        .parse::<DataPattern>()
                })?;
            }
            "ecc_codeword_bits" => cfg.ecc_codeword_bits = want_u32(val, key)?,
            "benign_fraction" => cfg.benign_fraction = want_f64(val, key)?,
            "refresh_interval" => cfg.auto_refresh_interval = want_u64(val, key)?,
            "geometry" => {
                let geo = val
                    .as_object()
                    .ok_or("config field 'geometry' must be an object")?;
                for (gk, gv) in geo {
                    match gk.as_str() {
                        "channels" => cfg.geometry.channels = want_u32(gv, gk)?,
                        "ranks" => cfg.geometry.ranks = want_u32(gv, gk)?,
                        "banks" => cfg.geometry.banks = want_u32(gv, gk)?,
                        "rows_per_bank" => cfg.geometry.rows_per_bank = want_u32(gv, gk)?,
                        other => return Err(format!("unknown geometry field '{other}'")),
                    }
                }
            }
            other => return Err(format!("unknown config field '{other}'")),
        }
    }
    cfg.validate()?;
    Ok(cfg)
}

/// Encode a config as a single-line JSON object (every field explicit).
/// Floats use Rust's shortest round-trip formatting, so
/// `config_from_value(parse(config_to_json(c)))` reproduces `c` exactly.
pub fn config_to_json(cfg: &SweepConfig) -> String {
    let list = |items: Vec<String>| items.join(",");
    format!(
        "{{\"seed\":{},\"activations\":{},\"hc_firsts\":[{}],\"sides\":[{}],\
         \"para_probabilities\":[{}],\"data_patterns\":[{}],\"ecc_codeword_bits\":{},\
         \"benign_fraction\":{},\"refresh_interval\":{},\"geometry\":{{\"channels\":{},\
         \"ranks\":{},\"banks\":{},\"rows_per_bank\":{}}}}}",
        cfg.seed,
        cfg.activations,
        list(cfg.hc_firsts.iter().map(u64::to_string).collect()),
        list(cfg.sides.iter().map(usize::to_string).collect()),
        list(cfg.para_probabilities.iter().map(f64::to_string).collect()),
        list(cfg.data_patterns.iter().map(|p| jstr(p.name())).collect()),
        cfg.ecc_codeword_bits,
        cfg.benign_fraction,
        cfg.auto_refresh_interval,
        cfg.geometry.channels,
        cfg.geometry.ranks,
        cfg.geometry.banks,
        cfg.geometry.rows_per_bank,
    )
}

/// FNV-1a over raw bytes — the workspace's one content fingerprint, shared
/// by the config hash, checkpoint records, and persistent-cache records.
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Canonical hash of what a config *plans* (seed excluded — see the module
/// docs). Computed over the normalized config's fixed-order encoding with
/// floats as IEEE bit patterns, so spelling differences (field order,
/// whitespace, explicit defaults, duplicate axis values, PARA-probability
/// order) cannot move the hash, while any real axis change must.
pub fn config_hash(cfg: &SweepConfig) -> u64 {
    let n = cfg.normalized();
    let mut s = String::with_capacity(256);
    let _ = write!(s, "activations={};", n.activations);
    let _ = write!(s, "hc={:?};", n.hc_firsts);
    let _ = write!(s, "sides={:?};", n.sides);
    let bits: Vec<u64> = n.para_probabilities.iter().map(|p| p.to_bits()).collect();
    let _ = write!(s, "para_bits={bits:?};");
    let patterns: Vec<&str> = n.data_patterns.iter().map(|p| p.name()).collect();
    let _ = write!(s, "patterns={patterns:?};");
    let _ = write!(s, "ecc={};", n.ecc_codeword_bits);
    let _ = write!(s, "benign_bits={};", n.benign_fraction.to_bits());
    let _ = write!(s, "refresh={};", n.auto_refresh_interval);
    let _ = write!(
        s,
        "geom={}/{}/{}/{}",
        n.geometry.channels, n.geometry.ranks, n.geometry.banks, n.geometry.rows_per_bank
    );
    fnv1a64(s.as_bytes())
}

/// The result-cache / request-dedup key: `(config_hash, seed)`.
pub fn config_key(cfg: &SweepConfig) -> (u64, u64) {
    (config_hash(cfg), cfg.seed)
}

// ---------------------------------------------------------------------------
// Shared-secret authentication
// ---------------------------------------------------------------------------

/// Proof that a peer holds the coordinator's shared secret: the token and a
/// peer-chosen nonce are folded through the workspace fingerprint twice
/// (`H(H(token:nonce):token)`), so the proof reveals neither the token nor a
/// trivially-extendable digest. The nonce binds the proof to one hello; the
/// coordinator recomputes the expected proof from its own token file and
/// compares with [`constant_time_eq`].
pub fn auth_proof(token: &str, nonce: u64) -> String {
    let inner = fnv1a64(format!("{token}:{nonce:#018x}").as_bytes());
    format!(
        "{:016x}",
        fnv1a64(format!("{inner:016x}:{token}").as_bytes())
    )
}

/// Constant-time byte comparison for auth proofs: every byte is examined
/// regardless of where the first mismatch sits, so response timing leaks
/// nothing about how much of a guessed proof was right. (Length is public —
/// valid proofs are always 16 hex digits.)
pub fn constant_time_eq(a: &str, b: &str) -> bool {
    let (a, b) = (a.as_bytes(), b.as_bytes());
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

// ---------------------------------------------------------------------------
// RunResult codec (bit-exact)
// ---------------------------------------------------------------------------

/// Encode a [`RunResult`] as a single-line JSON object. `flips_per_mact`
/// travels as its IEEE-754 bit pattern so the merged document renders
/// byte-identically to an in-process run.
pub fn result_to_json(r: &RunResult) -> String {
    let post = match r.post_ecc_flips {
        Some(n) => n.to_string(),
        None => "null".to_string(),
    };
    format!(
        "{{\"workload\":{},\"mitigation\":{},\"hc_first\":{},\"data_pattern\":{},\
         \"activations\":{},\"total_flips\":{},\"flipped_rows\":{},\
         \"flips_per_mact_bits\":{},\"refreshes_issued\":{},\"flips_1to0\":{},\
         \"flips_0to1\":{},\"post_ecc_flips\":{}}}",
        jstr(&r.workload),
        jstr(&r.mitigation),
        r.hc_first,
        jstr(&r.data_pattern),
        r.activations,
        r.total_flips,
        r.flipped_rows,
        r.flips_per_mact.to_bits(),
        r.refreshes_issued,
        r.flips_1to0,
        r.flips_0to1,
        post,
    )
}

fn field<'v>(v: &'v Value, key: &str) -> Result<&'v Value, String> {
    v.get(key)
        .ok_or_else(|| format!("result object missing field '{key}'"))
}

fn field_str(v: &Value, key: &str) -> Result<String, String> {
    field(v, key)?
        .as_str()
        .map(String::from)
        .ok_or_else(|| format!("result field '{key}' must be a string"))
}

fn field_u64(v: &Value, key: &str) -> Result<u64, String> {
    field(v, key)?
        .as_u64()
        .ok_or_else(|| format!("result field '{key}' must be an integer"))
}

/// Decode a [`RunResult`] from a parsed wire object.
pub fn result_from_value(v: &Value) -> Result<RunResult, String> {
    let post_ecc_flips = match field(v, "post_ecc_flips")? {
        Value::Null => None,
        other => Some(
            other
                .as_u64()
                .ok_or("result field 'post_ecc_flips' must be an integer or null")?,
        ),
    };
    Ok(RunResult {
        workload: field_str(v, "workload")?,
        mitigation: field_str(v, "mitigation")?,
        hc_first: field_u64(v, "hc_first")?,
        data_pattern: field_str(v, "data_pattern")?,
        activations: field_u64(v, "activations")?,
        total_flips: field_u64(v, "total_flips")?,
        flipped_rows: field_u64(v, "flipped_rows")?,
        flips_per_mact: f64::from_bits(field_u64(v, "flips_per_mact_bits")?),
        refreshes_issued: field_u64(v, "refreshes_issued")?,
        flips_1to0: field_u64(v, "flips_1to0")?,
        flips_0to1: field_u64(v, "flips_0to1")?,
        post_ecc_flips,
    })
}

// ---------------------------------------------------------------------------
// Messages
// ---------------------------------------------------------------------------

/// Which of a plan's two cell lists a shard indexes into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardList {
    Grid,
    Para,
}

impl ShardList {
    pub fn name(self) -> &'static str {
        match self {
            Self::Grid => "grid",
            Self::Para => "para",
        }
    }
}

impl std::str::FromStr for ShardList {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "grid" => Ok(Self::Grid),
            "para" => Ok(Self::Para),
            other => Err(format!("unknown shard list '{other}'")),
        }
    }
}

/// Coordinator → worker messages.
#[derive(Debug, Clone)]
pub enum ToWorker {
    /// Lease one shard: execute `indices` of the plan's `list`, streaming a
    /// [`FromWorker::Cell`] per result, then a [`FromWorker::ShardDone`].
    Shard {
        job: u64,
        shard: u64,
        list: ShardList,
        indices: Vec<usize>,
        /// Settle-kernel request, propagated from the coordinator's
        /// `--kernel`; the worker resolves it locally (its own
        /// `RH_FORCE_SCALAR` environment wins, as everywhere).
        kernel: KernelChoice,
        config: SweepConfig,
    },
    /// The coordinator refuses this worker (protocol-version, config-epoch,
    /// or auth mismatch). Terminal: the worker must not retry the same
    /// coordinator — the skew will not heal on its own.
    Reject { reason: String },
    /// The named job was cancelled (client verb or expired deadline): the
    /// worker must abandon any remaining cells it holds for that job
    /// mid-shard and answer with a [`FromWorker::CancelAck`]. Cells already
    /// streamed stay merged (they were bit-exact); no requeue happens — the
    /// job is dead, not rescheduled.
    Cancel { job: u64 },
    /// Drain and exit.
    Shutdown,
}

impl ToWorker {
    pub fn encode(&self) -> String {
        match self {
            Self::Shard {
                job,
                shard,
                list,
                indices,
                kernel,
                config,
            } => {
                let idx: Vec<String> = indices.iter().map(usize::to_string).collect();
                format!(
                    "{{\"type\":\"shard\",\"job\":{job},\"shard\":{shard},\
                     \"list\":{},\"kernel\":{},\"indices\":[{}],\"config\":{}}}",
                    jstr(list.name()),
                    jstr(kernel.name()),
                    idx.join(","),
                    config_to_json(config),
                )
            }
            Self::Reject { reason } => {
                format!("{{\"type\":\"reject\",\"reason\":{}}}", jstr(reason))
            }
            Self::Cancel { job } => format!("{{\"type\":\"cancel\",\"job\":{job}}}"),
            Self::Shutdown => "{\"type\":\"shutdown\"}".to_string(),
        }
    }

    pub fn decode(line: &str) -> Result<Self, String> {
        let v = parse(line)?;
        match field_str(&v, "type")?.as_str() {
            "shard" => Ok(Self::Shard {
                job: field_u64(&v, "job")?,
                shard: field_u64(&v, "shard")?,
                list: field_str(&v, "list")?.parse()?,
                kernel: field_str(&v, "kernel")?.parse()?,
                indices: field(&v, "indices")?
                    .as_array()
                    .ok_or("'indices' must be an array")?
                    .iter()
                    .map(|x| x.as_usize().ok_or_else(|| "bad shard index".to_string()))
                    .collect::<Result<_, _>>()?,
                config: config_from_value(field(&v, "config")?)?,
            }),
            "reject" => Ok(Self::Reject {
                reason: field_str(&v, "reason")?,
            }),
            "cancel" => Ok(Self::Cancel {
                job: field_u64(&v, "job")?,
            }),
            "shutdown" => Ok(Self::Shutdown),
            other => Err(format!("unknown coordinator message type '{other}'")),
        }
    }
}

/// Worker → coordinator messages.
#[derive(Debug, Clone)]
pub enum FromWorker {
    /// First line on every worker connection: identifies the role (so one
    /// TCP listener serves clients and workers), reports the kernel the
    /// worker's default choice resolves to on its CPU/environment, and
    /// carries the handshake the coordinator vets before leasing —
    /// [`PROTO_VERSION`] plus the operator-assigned `config_epoch`
    /// (fleet-rollout generation; a worker started against yesterday's
    /// config generation is cleanly rejected, not silently merged).
    Hello {
        kernel: String,
        pid: u64,
        /// Wire-protocol version; pre-versioning workers decode as 0.
        proto_version: u64,
        /// Operator-assigned config generation; must equal the
        /// coordinator's `--config-epoch`.
        config_epoch: u64,
        /// Worker-chosen nonce the auth proof is bound to (seeded from the
        /// fault-plan seed and pid, so chaos runs replay exactly). 0 when
        /// the worker carries no token.
        auth_nonce: u64,
        /// [`auth_proof`] over the worker's token and `auth_nonce`; absent
        /// when the worker was started without `--auth-token-file`. A
        /// coordinator with a token rejects hellos that omit or flunk this.
        auth_proof: Option<String>,
    },
    /// Liveness pulse emitted from a side thread while a shard executes, so
    /// the coordinator can tell a *computing* worker from a dead socket even
    /// when the current cell is long. Excluded from fault-plan line
    /// numbering and never advances lease progress.
    Heartbeat { job: u64, shard: u64 },
    /// One completed cell, streamed as soon as it finishes. Carries the
    /// kernel the lease's request resolved to on this worker so the
    /// coordinator's per-worker report is correct even if the connection
    /// (or the job) ends before the closing `shard_done`.
    Cell {
        job: u64,
        shard: u64,
        index: usize,
        kernel: String,
        result: RunResult,
    },
    /// Shard complete; `kernel` is what the lease's request resolved to on
    /// this worker (recorded per worker in the response envelope).
    ShardDone {
        job: u64,
        shard: u64,
        kernel: String,
    },
    /// Shard failed permanently (bad config/kernel for this host); the
    /// coordinator fails the job rather than retrying.
    Fail {
        job: u64,
        shard: u64,
        message: String,
    },
    /// Acknowledges a [`ToWorker::Cancel`]: the worker abandoned the rest of
    /// `shard` (its current lease for `job`) without executing it. The
    /// coordinator retires the lease with no requeue.
    CancelAck { job: u64, shard: u64 },
}

impl FromWorker {
    pub fn encode(&self) -> String {
        match self {
            Self::Hello {
                kernel,
                pid,
                proto_version,
                config_epoch,
                auth_nonce,
                auth_proof,
            } => {
                let auth = match auth_proof {
                    Some(proof) => format!(
                        ",\"auth_nonce\":{auth_nonce},\"auth_proof\":{}",
                        jstr(proof)
                    ),
                    None => String::new(),
                };
                format!(
                    "{{\"type\":\"hello\",\"role\":\"worker\",\"proto\":{proto_version},\
                     \"config_epoch\":{config_epoch},\"kernel\":{},\"pid\":{pid}{auth}}}",
                    jstr(kernel)
                )
            }
            Self::Heartbeat { job, shard } => {
                format!("{{\"type\":\"heartbeat\",\"job\":{job},\"shard\":{shard}}}")
            }
            Self::Cell {
                job,
                shard,
                index,
                kernel,
                result,
            } => format!(
                "{{\"type\":\"cell\",\"job\":{job},\"shard\":{shard},\"index\":{index},\
                 \"kernel\":{},\"result\":{}}}",
                jstr(kernel),
                result_to_json(result)
            ),
            Self::ShardDone { job, shard, kernel } => format!(
                "{{\"type\":\"shard_done\",\"job\":{job},\"shard\":{shard},\"kernel\":{}}}",
                jstr(kernel)
            ),
            Self::Fail {
                job,
                shard,
                message,
            } => format!(
                "{{\"type\":\"fail\",\"job\":{job},\"shard\":{shard},\"message\":{}}}",
                jstr(message)
            ),
            Self::CancelAck { job, shard } => {
                format!("{{\"type\":\"cancel_ack\",\"job\":{job},\"shard\":{shard}}}")
            }
        }
    }

    pub fn decode(line: &str) -> Result<Self, String> {
        let v = parse(line)?;
        match field_str(&v, "type")?.as_str() {
            "hello" => Ok(Self::Hello {
                kernel: field_str(&v, "kernel")?,
                pid: field_u64(&v, "pid")?,
                // Absent on pre-versioning workers: decode as version 0 so
                // the coordinator's vetting rejects them cleanly instead of
                // erroring out the whole line.
                proto_version: v.get("proto").and_then(Value::as_u64).unwrap_or(0),
                config_epoch: v.get("config_epoch").and_then(Value::as_u64).unwrap_or(0),
                auth_nonce: v.get("auth_nonce").and_then(Value::as_u64).unwrap_or(0),
                auth_proof: v
                    .get("auth_proof")
                    .and_then(Value::as_str)
                    .map(String::from),
            }),
            "heartbeat" => Ok(Self::Heartbeat {
                job: field_u64(&v, "job")?,
                shard: field_u64(&v, "shard")?,
            }),
            "cell" => Ok(Self::Cell {
                job: field_u64(&v, "job")?,
                shard: field_u64(&v, "shard")?,
                index: field(&v, "index")?
                    .as_usize()
                    .ok_or("'index' must be an integer")?,
                kernel: field_str(&v, "kernel")?,
                result: result_from_value(field(&v, "result")?)?,
            }),
            "shard_done" => Ok(Self::ShardDone {
                job: field_u64(&v, "job")?,
                shard: field_u64(&v, "shard")?,
                kernel: field_str(&v, "kernel")?,
            }),
            "fail" => Ok(Self::Fail {
                job: field_u64(&v, "job")?,
                shard: field_u64(&v, "shard")?,
                message: field_str(&v, "message")?,
            }),
            "cancel_ack" => Ok(Self::CancelAck {
                job: field_u64(&v, "job")?,
                shard: field_u64(&v, "shard")?,
            }),
            other => Err(format!("unknown worker message type '{other}'")),
        }
    }
}

/// Client → coordinator messages. A bare config object (no `"type"` field)
/// is accepted as an implicit submit — sweep configs *are* the request
/// stream.
#[derive(Debug, Clone)]
pub enum ClientMsg {
    /// Optional first line authenticating the connection when the
    /// coordinator holds a shared secret; the client analogue of the worker
    /// hello's auth fields. Answered with `{"type":"hello_ok"}` on success.
    Hello {
        auth_nonce: u64,
        auth_proof: String,
    },
    Submit {
        id: Option<String>,
        config: SweepConfig,
        /// Wall-clock budget for the job; past it the coordinator cancels
        /// the job and answers with an error line instead of a result.
        deadline_ms: Option<u64>,
    },
    Cancel {
        id: String,
    },
}

impl ClientMsg {
    pub fn encode(&self) -> String {
        match self {
            Self::Hello {
                auth_nonce,
                auth_proof,
            } => format!(
                "{{\"type\":\"client_hello\",\"auth_nonce\":{auth_nonce},\
                 \"auth_proof\":{}}}",
                jstr(auth_proof)
            ),
            Self::Submit {
                id,
                config,
                deadline_ms,
            } => {
                let id_part = match id {
                    Some(id) => format!("\"id\":{},", jstr(id)),
                    None => String::new(),
                };
                let deadline_part = match deadline_ms {
                    Some(ms) => format!("\"deadline_ms\":{ms},"),
                    None => String::new(),
                };
                format!(
                    "{{\"type\":\"submit\",{id_part}{deadline_part}\"config\":{}}}",
                    config_to_json(config)
                )
            }
            Self::Cancel { id } => format!("{{\"type\":\"cancel\",\"id\":{}}}", jstr(id)),
        }
    }

    pub fn decode(line: &str) -> Result<Self, String> {
        let v = parse(line)?;
        match v.get("type").and_then(Value::as_str) {
            None => Ok(Self::Submit {
                id: None,
                config: config_from_value(&v)?,
                deadline_ms: None,
            }),
            Some("client_hello") => Ok(Self::Hello {
                auth_nonce: v.get("auth_nonce").and_then(Value::as_u64).unwrap_or(0),
                auth_proof: field_str(&v, "auth_proof")?,
            }),
            Some("submit") => Ok(Self::Submit {
                id: v.get("id").and_then(Value::as_str).map(String::from),
                config: config_from_value(field(&v, "config")?)?,
                deadline_ms: v.get("deadline_ms").and_then(Value::as_u64),
            }),
            Some("cancel") => Ok(Self::Cancel {
                id: field_str(&v, "id")?,
            }),
            Some(other) => Err(format!("unknown client message type '{other}'")),
        }
    }
}

/// Per-worker execution stats recorded in a job's response envelope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerStat {
    /// Coordinator-assigned worker name (`local-0`, `tcp-127.0.0.1:4242`).
    pub worker: String,
    /// The settle kernel the worker's shard requests resolved to.
    pub kernel: String,
    /// Cells this worker contributed to the job.
    pub cells: u64,
}

/// Coordinator → client: the terminal line for one submitted job.
#[derive(Debug, Clone)]
pub struct ResultEnvelope {
    pub id: String,
    pub config_hash: u64,
    pub seed: u64,
    /// This response came straight from the LRU result cache.
    pub served_from_cache: bool,
    /// This request attached to an identical in-flight job instead of
    /// executing again (concurrent dedup).
    pub coalesced: bool,
    /// Coordinator-lifetime count of cache-served responses, *including*
    /// this one — the observable served-from-cache counter.
    pub cache_hits: u64,
    /// Cells executed by workers for this job (0 when cached/coalesced).
    pub executed_cells: u64,
    /// Cells restored from per-shard checkpoints instead of executing.
    pub checkpoint_cells: u64,
    /// Checkpoint records skipped as garbled or torn during restore.
    pub checkpoint_skipped: u64,
    /// Straggler leases speculatively re-executed on another worker.
    pub speculations: u64,
    /// Duplicate cell completions observed (speculation or lossy-link
    /// recovery) — every one was asserted bit-exact against the slot it
    /// duplicated before being counted.
    pub duplicate_cells: u64,
    /// LRU result-cache evictions over the coordinator's lifetime.
    pub evictions: u64,
    /// Jobs admitted and not yet finished when this response was built —
    /// the depth of the admission queue the job just left.
    pub queue_depth: u64,
    /// Milliseconds this job spent admitted-but-unstarted (queue wait:
    /// admission to first merged or restored cell). 0 for cache hits.
    pub queue_wait_ms: u64,
    /// Coordinator-lifetime submits refused by admission control (queue
    /// full or a per-client quota).
    pub rejected_submits: u64,
    /// Coordinator-lifetime hellos (worker or client) that flunked the
    /// shared-secret check.
    pub auth_failures: u64,
    /// Coordinator-lifetime jobs torn down by `cancel` or an expired
    /// deadline.
    pub cancelled_jobs: u64,
    pub workers: Vec<WorkerStat>,
    /// The merged sweep document — byte-identical to `rh-cli sweep` run
    /// in-process with the same config.
    pub document: String,
}

impl ResultEnvelope {
    pub fn encode(&self) -> String {
        let workers: Vec<String> = self
            .workers
            .iter()
            .map(|w| {
                format!(
                    "{{\"worker\":{},\"kernel\":{},\"cells\":{}}}",
                    jstr(&w.worker),
                    jstr(&w.kernel),
                    w.cells
                )
            })
            .collect();
        format!(
            "{{\"type\":\"result\",\"id\":{},\"config_hash\":{},\"seed\":{},\
             \"served_from_cache\":{},\"coalesced\":{},\"cache_hits\":{},\
             \"executed_cells\":{},\"checkpoint_cells\":{},\"checkpoint_skipped\":{},\
             \"speculations\":{},\"duplicate_cells\":{},\"evictions\":{},\
             \"queue_depth\":{},\"queue_wait_ms\":{},\"rejected_submits\":{},\
             \"auth_failures\":{},\"cancelled_jobs\":{},\"workers\":[{}],\
             \"document\":{}}}",
            jstr(&self.id),
            jstr(&format!("{:#018x}", self.config_hash)),
            self.seed,
            self.served_from_cache,
            self.coalesced,
            self.cache_hits,
            self.executed_cells,
            self.checkpoint_cells,
            self.checkpoint_skipped,
            self.speculations,
            self.duplicate_cells,
            self.evictions,
            self.queue_depth,
            self.queue_wait_ms,
            self.rejected_submits,
            self.auth_failures,
            self.cancelled_jobs,
            workers.join(","),
            jstr(&self.document),
        )
    }

    pub fn decode(line: &str) -> Result<Self, String> {
        let v = parse(line)?;
        match field_str(&v, "type")?.as_str() {
            "result" => {}
            "error" => return Err(field_str(&v, "message")?),
            // Admission-control / auth refusal: surface the reason verbatim
            // so `rh-cli submit` exits nonzero with it on stderr.
            "reject" => return Err(format!("rejected: {}", field_str(&v, "reason")?)),
            other => return Err(format!("unexpected response type '{other}'")),
        }
        let hash_text = field_str(&v, "config_hash")?;
        let config_hash = hash_text
            .strip_prefix("0x")
            .and_then(|h| u64::from_str_radix(h, 16).ok())
            .ok_or_else(|| format!("bad config_hash '{hash_text}'"))?;
        let workers = field(&v, "workers")?
            .as_array()
            .ok_or("'workers' must be an array")?
            .iter()
            .map(|w| {
                Ok(WorkerStat {
                    worker: field_str(w, "worker")?,
                    kernel: field_str(w, "kernel")?,
                    cells: field_u64(w, "cells")?,
                })
            })
            .collect::<Result<_, String>>()?;
        Ok(Self {
            id: field_str(&v, "id")?,
            config_hash,
            seed: field_u64(&v, "seed")?,
            served_from_cache: field(&v, "served_from_cache")?
                .as_bool()
                .ok_or("'served_from_cache' must be a bool")?,
            coalesced: field(&v, "coalesced")?
                .as_bool()
                .ok_or("'coalesced' must be a bool")?,
            cache_hits: field_u64(&v, "cache_hits")?,
            executed_cells: field_u64(&v, "executed_cells")?,
            checkpoint_cells: field_u64(&v, "checkpoint_cells")?,
            checkpoint_skipped: v
                .get("checkpoint_skipped")
                .and_then(Value::as_u64)
                .unwrap_or(0),
            speculations: v.get("speculations").and_then(Value::as_u64).unwrap_or(0),
            duplicate_cells: v
                .get("duplicate_cells")
                .and_then(Value::as_u64)
                .unwrap_or(0),
            // PR 9 counters: absent on older envelopes, decode as 0.
            evictions: v.get("evictions").and_then(Value::as_u64).unwrap_or(0),
            queue_depth: v.get("queue_depth").and_then(Value::as_u64).unwrap_or(0),
            queue_wait_ms: v.get("queue_wait_ms").and_then(Value::as_u64).unwrap_or(0),
            rejected_submits: v
                .get("rejected_submits")
                .and_then(Value::as_u64)
                .unwrap_or(0),
            auth_failures: v.get("auth_failures").and_then(Value::as_u64).unwrap_or(0),
            cancelled_jobs: v.get("cancelled_jobs").and_then(Value::as_u64).unwrap_or(0),
            workers,
            document: field_str(&v, "document")?,
        })
    }
}

/// Coordinator → client error line.
pub fn encode_error(id: &str, message: &str) -> String {
    format!(
        "{{\"type\":\"error\",\"id\":{},\"message\":{}}}",
        jstr(id),
        jstr(message)
    )
}

/// Coordinator → client admission/auth refusal line. Distinct from an
/// error: nothing went wrong — the coordinator chose not to take the work
/// (`queue_full`, `client_job_quota`, `client_cell_quota`, `auth_failed`),
/// and the client may retry later (except `auth_failed`).
pub fn encode_reject(reason: &str) -> String {
    format!("{{\"type\":\"reject\",\"reason\":{}}}", jstr(reason))
}

// ---------------------------------------------------------------------------
// Line IO
// ---------------------------------------------------------------------------

/// Write one jsonl line and flush (the protocol is interactive — an
/// unflushed lease would deadlock both sides).
pub fn write_line<W: Write>(w: &mut W, line: &str) -> std::io::Result<()> {
    w.write_all(line.as_bytes())?;
    w.write_all(b"\n")?;
    w.flush()
}

/// Read one non-empty line; `Ok(None)` on clean EOF.
pub fn read_line<R: BufRead>(r: &mut R) -> std::io::Result<Option<String>> {
    let mut buf = String::new();
    loop {
        buf.clear();
        let n = r.read_line(&mut buf)?;
        if n == 0 {
            return Ok(None);
        }
        let trimmed = buf.trim();
        if !trimmed.is_empty() {
            return Ok(Some(trimmed.to_string()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rh_core::Geometry;

    fn hash_of(json: &str) -> u64 {
        config_hash(&config_from_value(&parse(json).unwrap()).unwrap())
    }

    #[test]
    fn parser_round_trips_basic_documents() {
        let v = parse(r#"{"a": [1, -2.5, 1e3], "b": "x\ny", "c": null, "d": true}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[0].as_u64(), Some(1));
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[1].as_f64(),
            Some(-2.5)
        );
        assert_eq!(v.get("b").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("c"), Some(&Value::Null));
        assert_eq!(v.get("d").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn parser_preserves_full_u64_range() {
        let v = parse("{\"seed\": 18446744073709551615}").unwrap();
        assert_eq!(v.get("seed").unwrap().as_u64(), Some(u64::MAX));
    }

    #[test]
    fn parser_handles_escapes_and_unicode() {
        let v = parse(r#""a\"b\\cAé""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\cAé"));
        let v = parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
    }

    #[test]
    fn parser_rejects_garbage() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\":1} extra",
            "{'a':1}",
            "nul",
            "1.",
            "-",
            "\"unterminated",
        ] {
            assert!(parse(bad).is_err(), "'{bad}' must be rejected");
        }
    }

    #[test]
    fn jstr_escapes_specials() {
        assert_eq!(jstr("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(
            parse(&jstr("tab\there")).unwrap().as_str(),
            Some("tab\there")
        );
    }

    #[test]
    fn empty_object_is_the_default_config() {
        let cfg = config_from_value(&parse("{}").unwrap()).unwrap();
        let def = SweepConfig::default();
        assert_eq!(cfg.seed, def.seed);
        assert_eq!(cfg.hc_firsts, def.hc_firsts);
        assert_eq!(config_hash(&cfg), config_hash(&def));
    }

    #[test]
    fn config_round_trips_through_json() {
        let cfg = SweepConfig {
            seed: u64::MAX,
            activations: 12_345,
            hc_firsts: vec![999, 123],
            sides: vec![3, 5],
            para_probabilities: vec![0.1, 0.0125],
            data_patterns: vec![rh_core::DataPattern::RowStripe],
            ecc_codeword_bits: 64,
            benign_fraction: 0.3,
            auto_refresh_interval: 7_000,
            geometry: Geometry::tiny(256),
        };
        let back = config_from_value(&parse(&config_to_json(&cfg)).unwrap()).unwrap();
        assert_eq!(back.seed, cfg.seed);
        assert_eq!(back.hc_firsts, cfg.hc_firsts);
        assert_eq!(back.para_probabilities, cfg.para_probabilities);
        assert_eq!(back.data_patterns, cfg.data_patterns);
        assert_eq!(back.benign_fraction, cfg.benign_fraction);
        assert_eq!(config_key(&back), config_key(&cfg));
    }

    #[test]
    fn unknown_and_invalid_config_fields_are_rejected() {
        for bad in [
            "{\"frobnicate\": 1}",
            "{\"hc_firsts\": 5}",
            "{\"hc_firsts\": [0]}",
            "{\"activations\": 0}",
            "{\"seed\": -1}",
            "{\"data_patterns\": [\"zebra\"]}",
            "{\"geometry\": {\"rows\": 4}}",
            "{\"para_probabilities\": [2.0]}",
            "[]",
        ] {
            assert!(
                config_from_value(&parse(bad).unwrap()).is_err(),
                "'{bad}' must be rejected"
            );
        }
    }

    // -- Canonical hash invariances (satellite: two configs that plan
    // identically must hash identically; any axis change must not). --

    #[test]
    fn hash_ignores_field_order_and_whitespace() {
        let a = hash_of(r#"{"activations": 5000, "hc_firsts": [1000, 2000]}"#);
        let b = hash_of("  { \"hc_firsts\" : [ 1000 ,\t2000 ] ,\n    \"activations\" : 5000 }  ");
        assert_eq!(a, b);
    }

    #[test]
    fn hash_ignores_explicit_default_fields() {
        let d = SweepConfig::default();
        let explicit = format!(
            r#"{{"activations": 5000, "benign_fraction": {}, "refresh_interval": {}, "ecc_codeword_bits": 0}}"#,
            d.benign_fraction, d.auto_refresh_interval
        );
        assert_eq!(hash_of(r#"{"activations": 5000}"#), hash_of(&explicit));
    }

    #[test]
    fn hash_ignores_normalization_artifacts() {
        // Duplicate axis values and PARA order vanish at plan time, so they
        // must vanish from the hash too.
        let a = hash_of(
            r#"{"hc_firsts": [1000, 1000, 2000], "para_probabilities": [0.004, 0.0, 0.004]}"#,
        );
        let b = hash_of(r#"{"hc_firsts": [1000, 2000], "para_probabilities": [0.0, 0.004]}"#);
        assert_eq!(a, b);
    }

    #[test]
    fn hash_moves_with_every_axis() {
        let base = hash_of("{}");
        for change in [
            r#"{"activations": 5}"#,
            r#"{"hc_firsts": [1000]}"#,
            r#"{"sides": [2]}"#,
            r#"{"para_probabilities": [0.5]}"#,
            r#"{"data_patterns": ["solid"]}"#,
            r#"{"ecc_codeword_bits": 32}"#,
            r#"{"benign_fraction": 0.2}"#,
            r#"{"refresh_interval": 1}"#,
            r#"{"geometry": {"banks": 8}}"#,
        ] {
            assert_ne!(
                base,
                hash_of(change),
                "axis change '{change}' kept the hash"
            );
        }
        // hc ordering is order-preserving (not sorted) — a reorder is a
        // different sweep document, so it must move the hash.
        assert_ne!(
            hash_of(r#"{"hc_firsts": [1000, 2000]}"#),
            hash_of(r#"{"hc_firsts": [2000, 1000]}"#)
        );
    }

    #[test]
    fn seed_is_excluded_from_hash_but_part_of_key() {
        let a = config_from_value(&parse(r#"{"seed": 1}"#).unwrap()).unwrap();
        let b = config_from_value(&parse(r#"{"seed": 2}"#).unwrap()).unwrap();
        assert_eq!(config_hash(&a), config_hash(&b));
        assert_ne!(config_key(&a), config_key(&b));
    }

    #[test]
    fn run_result_codec_is_bit_exact() {
        let r = RunResult {
            workload: "many_sided(n=8)".into(),
            mitigation: "para(p=0.004)".into(),
            hc_first: 512,
            data_pattern: "rowstripe".into(),
            activations: 100,
            total_flips: 7,
            flipped_rows: 3,
            flips_per_mact: 0.1 + 0.2, // a value with a non-terminating binary tail
            refreshes_issued: 9,
            flips_1to0: 4,
            flips_0to1: 3,
            post_ecc_flips: Some(1),
        };
        let back = result_from_value(&parse(&result_to_json(&r)).unwrap()).unwrap();
        assert_eq!(back.flips_per_mact.to_bits(), r.flips_per_mact.to_bits());
        assert_eq!(back.workload, r.workload);
        assert_eq!(back.post_ecc_flips, Some(1));
        let none = RunResult {
            post_ecc_flips: None,
            ..r
        };
        let back = result_from_value(&parse(&result_to_json(&none)).unwrap()).unwrap();
        assert_eq!(back.post_ecc_flips, None);
    }

    #[test]
    fn worker_messages_round_trip() {
        let shard = ToWorker::Shard {
            job: 3,
            shard: 1,
            list: ShardList::Para,
            indices: vec![0, 2, 5],
            kernel: KernelChoice::Scalar,
            config: SweepConfig::default(),
        };
        match ToWorker::decode(&shard.encode()).unwrap() {
            ToWorker::Shard {
                job,
                shard,
                list,
                indices,
                kernel,
                config,
            } => {
                assert_eq!((job, shard), (3, 1));
                assert_eq!(list, ShardList::Para);
                assert_eq!(indices, vec![0, 2, 5]);
                assert_eq!(kernel, KernelChoice::Scalar);
                assert_eq!(config.seed, SweepConfig::default().seed);
            }
            other => panic!("decoded wrong variant: {other:?}"),
        }
        assert!(matches!(
            ToWorker::decode(&ToWorker::Shutdown.encode()).unwrap(),
            ToWorker::Shutdown
        ));

        let hello = FromWorker::Hello {
            kernel: "avx2".into(),
            pid: 42,
            proto_version: PROTO_VERSION,
            config_epoch: 9,
            auth_nonce: 0,
            auth_proof: None,
        };
        assert!(matches!(
            FromWorker::decode(&hello.encode()).unwrap(),
            FromWorker::Hello {
                pid: 42,
                proto_version: PROTO_VERSION,
                config_epoch: 9,
                ..
            }
        ));
        let beat = FromWorker::Heartbeat { job: 4, shard: 8 };
        assert!(matches!(
            FromWorker::decode(&beat.encode()).unwrap(),
            FromWorker::Heartbeat { job: 4, shard: 8 }
        ));
        let reject = ToWorker::Reject {
            reason: "epoch mismatch".into(),
        };
        match ToWorker::decode(&reject.encode()).unwrap() {
            ToWorker::Reject { reason } => assert_eq!(reason, "epoch mismatch"),
            other => panic!("decoded wrong variant: {other:?}"),
        }
        let done = FromWorker::ShardDone {
            job: 1,
            shard: 2,
            kernel: "scalar".into(),
        };
        assert!(matches!(
            FromWorker::decode(&done.encode()).unwrap(),
            FromWorker::ShardDone {
                job: 1,
                shard: 2,
                ..
            }
        ));
    }

    #[test]
    fn cancel_messages_round_trip() {
        let cancel = ToWorker::Cancel { job: 17 };
        assert!(matches!(
            ToWorker::decode(&cancel.encode()).unwrap(),
            ToWorker::Cancel { job: 17 }
        ));
        let ack = FromWorker::CancelAck { job: 17, shard: 4 };
        assert!(matches!(
            FromWorker::decode(&ack.encode()).unwrap(),
            FromWorker::CancelAck { job: 17, shard: 4 }
        ));
    }

    #[test]
    fn authenticated_hello_round_trips() {
        let proof = auth_proof("hunter2", 0xABCD);
        let hello = FromWorker::Hello {
            kernel: "scalar".into(),
            pid: 7,
            proto_version: PROTO_VERSION,
            config_epoch: 0,
            auth_nonce: 0xABCD,
            auth_proof: Some(proof.clone()),
        };
        match FromWorker::decode(&hello.encode()).unwrap() {
            FromWorker::Hello {
                auth_nonce,
                auth_proof,
                ..
            } => {
                assert_eq!(auth_nonce, 0xABCD);
                assert_eq!(auth_proof.as_deref(), Some(proof.as_str()));
            }
            other => panic!("decoded wrong variant: {other:?}"),
        }
    }

    #[test]
    fn auth_proof_binds_token_and_nonce() {
        let p = auth_proof("secret", 1);
        assert_eq!(p, auth_proof("secret", 1), "proof must be deterministic");
        assert_ne!(p, auth_proof("secret", 2), "nonce must move the proof");
        assert_ne!(p, auth_proof("Secret", 1), "token must move the proof");
        assert_eq!(p.len(), 16, "proofs are 16 hex digits");
    }

    #[test]
    fn constant_time_eq_matches_plain_equality() {
        assert!(constant_time_eq("abcd", "abcd"));
        assert!(!constant_time_eq("abcd", "abce"));
        assert!(!constant_time_eq("abcd", "abc"));
        assert!(constant_time_eq("", ""));
    }

    #[test]
    fn client_messages_accept_bare_configs() {
        match ClientMsg::decode(r#"{"activations": 5000}"#).unwrap() {
            ClientMsg::Submit {
                id,
                config,
                deadline_ms,
            } => {
                assert_eq!(id, None);
                assert_eq!(config.activations, 5000);
                assert_eq!(deadline_ms, None);
            }
            other => panic!("decoded wrong variant: {other:?}"),
        }
        match ClientMsg::decode(r#"{"type":"submit","id":"j1","config":{}}"#).unwrap() {
            ClientMsg::Submit { id, .. } => assert_eq!(id.as_deref(), Some("j1")),
            other => panic!("decoded wrong variant: {other:?}"),
        }
        assert!(matches!(
            ClientMsg::decode(r#"{"type":"cancel","id":"j1"}"#).unwrap(),
            ClientMsg::Cancel { .. }
        ));
        assert!(ClientMsg::decode(r#"{"type":"bogus"}"#).is_err());
    }

    #[test]
    fn client_messages_round_trip_through_encode() {
        let submit = ClientMsg::Submit {
            id: Some("j7".into()),
            config: SweepConfig::default(),
            deadline_ms: Some(1500),
        };
        match ClientMsg::decode(&submit.encode()).unwrap() {
            ClientMsg::Submit {
                id,
                config,
                deadline_ms,
            } => {
                assert_eq!(id.as_deref(), Some("j7"));
                assert_eq!(deadline_ms, Some(1500));
                assert_eq!(config_key(&config), config_key(&SweepConfig::default()));
            }
            other => panic!("decoded wrong variant: {other:?}"),
        }
        let hello = ClientMsg::Hello {
            auth_nonce: 9,
            auth_proof: auth_proof("tok", 9),
        };
        match ClientMsg::decode(&hello.encode()).unwrap() {
            ClientMsg::Hello {
                auth_nonce,
                auth_proof,
            } => {
                assert_eq!(auth_nonce, 9);
                assert_eq!(auth_proof, super::auth_proof("tok", 9));
            }
            other => panic!("decoded wrong variant: {other:?}"),
        }
        match ClientMsg::decode(&ClientMsg::Cancel { id: "j7".into() }.encode()).unwrap() {
            ClientMsg::Cancel { id } => assert_eq!(id, "j7"),
            other => panic!("decoded wrong variant: {other:?}"),
        }
    }

    #[test]
    fn result_envelope_round_trips() {
        let env = ResultEnvelope {
            id: "job-1".into(),
            config_hash: 0xDEAD_BEEF_0000_0001,
            seed: 7,
            served_from_cache: true,
            coalesced: false,
            cache_hits: 3,
            executed_cells: 0,
            checkpoint_cells: 4,
            checkpoint_skipped: 2,
            speculations: 1,
            duplicate_cells: 5,
            evictions: 6,
            queue_depth: 2,
            queue_wait_ms: 120,
            rejected_submits: 3,
            auth_failures: 1,
            cancelled_jobs: 2,
            workers: vec![WorkerStat {
                worker: "local-0".into(),
                kernel: "scalar".into(),
                cells: 4,
            }],
            document: "{\n  \"grid\": []\n}".into(),
        };
        let back = ResultEnvelope::decode(&env.encode()).unwrap();
        assert_eq!(back.config_hash, env.config_hash);
        assert_eq!(back.seed, 7);
        assert!(back.served_from_cache);
        assert_eq!(back.cache_hits, 3);
        assert_eq!(back.workers, env.workers);
        assert_eq!(back.checkpoint_skipped, 2);
        assert_eq!(back.speculations, 1);
        assert_eq!(back.duplicate_cells, 5);
        assert_eq!(back.evictions, 6);
        assert_eq!(back.queue_depth, 2);
        assert_eq!(back.queue_wait_ms, 120);
        assert_eq!(back.rejected_submits, 3);
        assert_eq!(back.auth_failures, 1);
        assert_eq!(back.cancelled_jobs, 2);
        assert_eq!(
            back.document, env.document,
            "document must survive escaping"
        );
    }

    #[test]
    fn pre_pr9_envelope_decodes_with_zero_counters() {
        // The PR 8 envelope shape: none of the job-manager counters. They
        // must decode as 0, not fail the line.
        let legacy = "{\"type\":\"result\",\"id\":\"j\",\"config_hash\":\"0x0000000000000001\",\
                      \"seed\":1,\"served_from_cache\":false,\"coalesced\":false,\
                      \"cache_hits\":0,\"executed_cells\":4,\"checkpoint_cells\":0,\
                      \"workers\":[],\"document\":\"{}\"}";
        let env = ResultEnvelope::decode(legacy).unwrap();
        assert_eq!(env.evictions, 0);
        assert_eq!(env.queue_depth, 0);
        assert_eq!(env.queue_wait_ms, 0);
        assert_eq!(env.rejected_submits, 0);
        assert_eq!(env.auth_failures, 0);
        assert_eq!(env.cancelled_jobs, 0);
    }

    #[test]
    fn reject_line_decodes_to_err_with_reason() {
        let line = encode_reject("queue_full");
        let err = ResultEnvelope::decode(&line).unwrap_err();
        assert!(err.contains("queue_full"), "reason must survive: {err}");
    }

    #[test]
    fn pre_versioning_hello_decodes_as_version_zero() {
        // The PR 7 hello shape, with no proto/config_epoch fields — it must
        // decode (so the coordinator can *vet* it) as version 0.
        let legacy = r#"{"type":"hello","role":"worker","kernel":"scalar","pid":1}"#;
        match FromWorker::decode(legacy).unwrap() {
            FromWorker::Hello {
                proto_version,
                config_epoch,
                ..
            } => {
                assert_eq!(proto_version, 0);
                assert_eq!(config_epoch, 0);
            }
            other => panic!("decoded wrong variant: {other:?}"),
        }
    }

    #[test]
    fn error_envelope_decodes_to_err() {
        let line = encode_error("j9", "no workers");
        let err = ResultEnvelope::decode(&line).unwrap_err();
        assert_eq!(err, "no workers");
    }

    #[test]
    fn read_line_skips_blanks_and_detects_eof() {
        let mut input = std::io::Cursor::new(b"\n\n{\"a\":1}\n".to_vec());
        assert_eq!(read_line(&mut input).unwrap().as_deref(), Some("{\"a\":1}"));
        assert_eq!(read_line(&mut input).unwrap(), None);
    }

    // -- Seeded no-panic fuzz (satellite): byte-level mutations of valid
    // protocol lines must come back as Err, never a panic. --

    /// Every wire shape the service exchanges, as encoded by this codec.
    fn valid_protocol_lines() -> Vec<String> {
        let result = RunResult {
            workload: "many_sided(n=2)".into(),
            mitigation: "para(p=0.5)".into(),
            hc_first: 500,
            data_pattern: "solid".into(),
            activations: 2000,
            total_flips: 3,
            flipped_rows: 2,
            flips_per_mact: 0.1 + 0.2,
            refreshes_issued: 1,
            flips_1to0: 2,
            flips_0to1: 1,
            post_ecc_flips: None,
        };
        vec![
            ToWorker::Shard {
                job: 1,
                shard: 2,
                list: ShardList::Grid,
                indices: vec![0, 1, 7],
                kernel: KernelChoice::Auto,
                config: SweepConfig::default(),
            }
            .encode(),
            ToWorker::Reject {
                reason: "nope".into(),
            }
            .encode(),
            ToWorker::Cancel { job: 3 }.encode(),
            ToWorker::Shutdown.encode(),
            FromWorker::Hello {
                kernel: "scalar".into(),
                pid: 99,
                proto_version: PROTO_VERSION,
                config_epoch: 1,
                auth_nonce: 0xFEED,
                auth_proof: Some(auth_proof("tok", 0xFEED)),
            }
            .encode(),
            FromWorker::Heartbeat { job: 1, shard: 2 }.encode(),
            FromWorker::Cell {
                job: 1,
                shard: 2,
                index: 5,
                kernel: "scalar".into(),
                result: result.clone(),
            }
            .encode(),
            FromWorker::ShardDone {
                job: 1,
                shard: 2,
                kernel: "scalar".into(),
            }
            .encode(),
            FromWorker::CancelAck { job: 1, shard: 2 }.encode(),
            ClientMsg::Submit {
                id: Some("j1".into()),
                config: SweepConfig::default(),
                deadline_ms: Some(250),
            }
            .encode(),
            ClientMsg::Hello {
                auth_nonce: 4,
                auth_proof: auth_proof("tok", 4),
            }
            .encode(),
            ResultEnvelope {
                id: "j1".into(),
                config_hash: 1,
                seed: 2,
                served_from_cache: false,
                coalesced: false,
                cache_hits: 0,
                executed_cells: 8,
                checkpoint_cells: 0,
                checkpoint_skipped: 0,
                speculations: 0,
                duplicate_cells: 0,
                evictions: 0,
                queue_depth: 1,
                queue_wait_ms: 0,
                rejected_submits: 0,
                auth_failures: 0,
                cancelled_jobs: 0,
                workers: vec![],
                document: format!("{{\"grid\":[{}]}}", result_to_json(&result)),
            }
            .encode(),
            encode_error("j1", "boom"),
            encode_reject("queue_full"),
        ]
    }

    /// Feed one (possibly mangled) line to every decoder. The assertion is
    /// in getting back at all: any panic fails the test.
    fn exercise_decoders(line: &str) {
        let _ = parse(line);
        let _ = ToWorker::decode(line);
        let _ = FromWorker::decode(line);
        let _ = ClientMsg::decode(line);
        let _ = ResultEnvelope::decode(line);
    }

    #[test]
    fn fuzz_truncated_lines_err_and_never_panic() {
        // Any proper byte-prefix of a minified JSON object is unbalanced,
        // so truncation must always come back Err — from every decoder.
        let mut rng = rh_core::SplitMix64::new(0xF022_0001);
        for line in valid_protocol_lines() {
            let bytes = line.as_bytes();
            for _ in 0..64 {
                let cut = (rng.gen_range(bytes.len() as u64)) as usize;
                let truncated = String::from_utf8_lossy(&bytes[..cut]).into_owned();
                assert!(
                    parse(&truncated).is_err(),
                    "truncation of '{line}' at {cut} must not parse"
                );
                exercise_decoders(&truncated);
            }
        }
    }

    #[test]
    fn fuzz_clobbered_and_spliced_lines_never_panic() {
        let lines = valid_protocol_lines();
        let mut rng = rh_core::SplitMix64::new(0xF022_0002);
        for line in &lines {
            for _ in 0..128 {
                let mut bytes = line.as_bytes().to_vec();
                match rng.gen_range(3) {
                    // Clobber: overwrite a byte with an arbitrary one.
                    0 => {
                        let at = rng.gen_range(bytes.len() as u64) as usize;
                        bytes[at] = (rng.next_u64() & 0xFF) as u8;
                    }
                    // Splice: paste a random slice of another valid line
                    // into the middle of this one.
                    1 => {
                        let donor = lines[rng.gen_range(lines.len() as u64) as usize].as_bytes();
                        let from = rng.gen_range(donor.len() as u64) as usize;
                        let to = from + rng.gen_range((donor.len() - from) as u64 + 1) as usize;
                        let at = rng.gen_range(bytes.len() as u64 + 1) as usize;
                        bytes.splice(at..at, donor[from..to].iter().copied());
                    }
                    // Delete a span.
                    _ => {
                        let from = rng.gen_range(bytes.len() as u64) as usize;
                        let to = from + rng.gen_range((bytes.len() - from) as u64 + 1) as usize;
                        bytes.drain(from..to);
                    }
                }
                let mangled = String::from_utf8_lossy(&bytes).into_owned();
                exercise_decoders(&mangled);
            }
        }
    }
}
