//! Minimal JSON emission for sweep results.
//!
//! The workspace is dependency-free by design (the container has no crates
//! registry), so rather than pulling in serde we hand-render the small,
//! fixed-shape result document. All strings we emit are crate-controlled
//! identifiers, but they are escaped anyway for robustness.
//!
//! [`render`] is the single definition of the sweep document: the
//! distributed coordinator ([`crate::serve`]) finalizes its slot-merged
//! results through the same function, which is what makes "distributed
//! output is byte-identical to in-process `sweep`" a structural property
//! rather than a re-implementation kept in sync. The config field names
//! rendered here are also the submit-side schema accepted by
//! [`crate::proto::config_from_value`].

use crate::engine::RunResult;
use crate::sweep::SweepOutput;
use std::fmt::Write;

/// Escape a string for inclusion in a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render a finite float; JSON has no NaN/Inf so those become null.
fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// Render one result row. `extended` adds the Section 5 victim-model
/// fields (data pattern, 1→0/0→1 split, post-ECC count); it is off for
/// legacy-axes sweeps so their documents stay byte-identical to the
/// pre-Section-5 reporter.
fn run_result(r: &RunResult, indent: &str, extended: bool) -> String {
    let mut row = format!(
        "{indent}{{\"workload\": \"{}\", \"mitigation\": \"{}\", \"hc_first\": {}, \
         \"activations\": {}, \"total_flips\": {}, \"flipped_rows\": {}, \
         \"flips_per_mact\": {}, \"refreshes_issued\": {}",
        escape(&r.workload),
        escape(&r.mitigation),
        r.hc_first,
        r.activations,
        r.total_flips,
        r.flipped_rows,
        num(r.flips_per_mact),
        r.refreshes_issued,
    );
    if extended {
        let _ = write!(
            row,
            ", \"data_pattern\": \"{}\", \"flips_1to0\": {}, \"flips_0to1\": {}",
            escape(&r.data_pattern),
            r.flips_1to0,
            r.flips_0to1,
        );
        if let Some(post) = r.post_ecc_flips {
            // total_flips above is the raw pre-ECC count; this is what
            // survives correction.
            let _ = write!(row, ", \"post_ecc_flips\": {post}");
        }
    }
    row.push('}');
    row
}

fn result_array(results: &[RunResult], extended: bool) -> String {
    let rows: Vec<String> = results
        .iter()
        .map(|r| run_result(r, "    ", extended))
        .collect();
    format!("[\n{}\n  ]", rows.join(",\n"))
}

/// Render a full [`SweepOutput`] as a pretty-printed JSON document.
///
/// Note the config section deliberately excludes execution options like the
/// thread count: the document must be a pure function of the sweep config so
/// sharded and serial runs diff clean.
pub fn render(out: &SweepOutput) -> String {
    let cfg = &out.config;
    let extended = cfg.extended_victim_model();
    let hc_list: Vec<String> = cfg.hc_firsts.iter().map(|h| h.to_string()).collect();
    let sides_list: Vec<String> = cfg.sides.iter().map(|s| s.to_string()).collect();
    let p_list: Vec<String> = cfg.para_probabilities.iter().map(|p| num(*p)).collect();
    // The Section 5 axes appear in the config section only when they are in
    // play, so default-axes documents keep their pre-Section-5 bytes.
    let victim_model = if extended {
        let patterns: Vec<String> = cfg
            .data_patterns
            .iter()
            .map(|p| format!("\"{}\"", p.name()))
            .collect();
        format!(
            ", \"data_patterns\": [{}], \"ecc_codeword_bits\": {}",
            patterns.join(", "),
            cfg.ecc_codeword_bits
        )
    } else {
        String::new()
    };
    format!(
        "{{\n  \"config\": {{\"seed\": {}, \"activations\": {}, \"hc_firsts\": [{}], \
         \"sides\": [{}], \"para_probabilities\": [{}], \"benign_fraction\": {}, \
         \"refresh_interval\": {}{}, \
         \"geometry\": {{\"channels\": {}, \"ranks\": {}, \"banks\": {}, \"rows_per_bank\": {}}}}},\n  \
         \"grid\": {},\n  \"para_sweep\": {},\n  \"para_monotone\": {}\n}}",
        cfg.seed,
        cfg.activations,
        hc_list.join(", "),
        sides_list.join(", "),
        p_list.join(", "),
        num(cfg.benign_fraction),
        cfg.auto_refresh_interval,
        victim_model,
        cfg.geometry.channels,
        cfg.geometry.ranks,
        cfg.geometry.banks,
        cfg.geometry.rows_per_bank,
        result_array(&out.grid, extended),
        result_array(&out.para_sweep, extended),
        out.para_monotone,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(f64::INFINITY), "null");
        assert_eq!(num(f64::NEG_INFINITY), "null");
        assert_eq!(num(1.5), "1.5");
        assert_eq!(num(0.0), "0");
        assert_eq!(num(-0.25), "-0.25");
    }

    fn sample_result() -> RunResult {
        RunResult {
            workload: "double_sided".into(),
            mitigation: "para(p=0.001)".into(),
            hc_first: 4000,
            data_pattern: "rowstripe".into(),
            activations: 1000,
            total_flips: 7,
            flipped_rows: 2,
            flips_per_mact: 7000.0,
            refreshes_issued: 3,
            flips_1to0: 5,
            flips_0to1: 2,
            post_ecc_flips: Some(1),
        }
    }

    #[test]
    fn non_finite_metrics_never_emit_invalid_json() {
        let r = RunResult {
            flips_per_mact: f64::NAN,
            ..sample_result()
        };
        let s = run_result(&r, "", false);
        assert!(s.contains("\"flips_per_mact\": null"));
        assert!(!s.contains("NaN") && !s.contains("inf"));
    }

    #[test]
    fn run_result_renders_as_object() {
        let s = run_result(&sample_result(), "", false);
        assert!(s.starts_with('{') && s.ends_with('}'));
        assert!(s.contains("\"hc_first\": 4000"));
        assert!(s.contains("\"mitigation\": \"para(p=0.001)\""));
    }

    /// Default-axes documents must not grow fields: the Section 5 columns
    /// appear only in extended mode, and the ECC column only when the run
    /// actually had an ECC layer.
    #[test]
    fn victim_model_fields_are_gated_on_extended_mode() {
        let r = sample_result();
        let legacy = run_result(&r, "", false);
        for field in ["data_pattern", "flips_1to0", "flips_0to1", "post_ecc_flips"] {
            assert!(!legacy.contains(field), "legacy row leaked '{field}'");
        }
        let extended = run_result(&r, "", true);
        assert!(extended.contains("\"data_pattern\": \"rowstripe\""));
        assert!(extended.contains("\"flips_1to0\": 5"));
        assert!(extended.contains("\"flips_0to1\": 2"));
        assert!(extended.contains("\"post_ecc_flips\": 1"));
        let no_ecc = run_result(
            &RunResult {
                post_ecc_flips: None,
                ..r
            },
            "",
            true,
        );
        assert!(no_ecc.contains("\"flips_1to0\""));
        assert!(!no_ecc.contains("post_ecc_flips"));
    }
}
