//! Minimal JSON emission for sweep results.
//!
//! The workspace is dependency-free by design (the container has no crates
//! registry), so rather than pulling in serde we hand-render the small,
//! fixed-shape result document. All strings we emit are crate-controlled
//! identifiers, but they are escaped anyway for robustness.

use crate::engine::RunResult;
use crate::sweep::SweepOutput;
use std::fmt::Write;

/// Escape a string for inclusion in a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render a finite float; JSON has no NaN/Inf so those become null.
fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

fn run_result(r: &RunResult, indent: &str) -> String {
    format!(
        "{indent}{{\"workload\": \"{}\", \"mitigation\": \"{}\", \"hc_first\": {}, \
         \"activations\": {}, \"total_flips\": {}, \"flipped_rows\": {}, \
         \"flips_per_mact\": {}, \"refreshes_issued\": {}}}",
        escape(&r.workload),
        escape(&r.mitigation),
        r.hc_first,
        r.activations,
        r.total_flips,
        r.flipped_rows,
        num(r.flips_per_mact),
        r.refreshes_issued,
    )
}

fn result_array(results: &[RunResult]) -> String {
    let rows: Vec<String> = results.iter().map(|r| run_result(r, "    ")).collect();
    format!("[\n{}\n  ]", rows.join(",\n"))
}

/// Render a full [`SweepOutput`] as a pretty-printed JSON document.
///
/// Note the config section deliberately excludes execution options like the
/// thread count: the document must be a pure function of the sweep config so
/// sharded and serial runs diff clean.
pub fn render(out: &SweepOutput) -> String {
    let cfg = &out.config;
    let hc_list: Vec<String> = cfg.hc_firsts.iter().map(|h| h.to_string()).collect();
    let sides_list: Vec<String> = cfg.sides.iter().map(|s| s.to_string()).collect();
    let p_list: Vec<String> = cfg.para_probabilities.iter().map(|p| num(*p)).collect();
    format!(
        "{{\n  \"config\": {{\"seed\": {}, \"activations\": {}, \"hc_firsts\": [{}], \
         \"sides\": [{}], \"para_probabilities\": [{}], \"benign_fraction\": {}, \
         \"refresh_interval\": {}, \
         \"geometry\": {{\"channels\": {}, \"ranks\": {}, \"banks\": {}, \"rows_per_bank\": {}}}}},\n  \
         \"grid\": {},\n  \"para_sweep\": {},\n  \"para_monotone\": {}\n}}",
        cfg.seed,
        cfg.activations,
        hc_list.join(", "),
        sides_list.join(", "),
        p_list.join(", "),
        num(cfg.benign_fraction),
        cfg.auto_refresh_interval,
        cfg.geometry.channels,
        cfg.geometry.ranks,
        cfg.geometry.banks,
        cfg.geometry.rows_per_bank,
        result_array(&out.grid),
        result_array(&out.para_sweep),
        out.para_monotone,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(f64::INFINITY), "null");
        assert_eq!(num(f64::NEG_INFINITY), "null");
        assert_eq!(num(1.5), "1.5");
        assert_eq!(num(0.0), "0");
        assert_eq!(num(-0.25), "-0.25");
    }

    #[test]
    fn non_finite_metrics_never_emit_invalid_json() {
        let r = RunResult {
            workload: "w".into(),
            mitigation: "m".into(),
            hc_first: 1,
            activations: 0,
            total_flips: 0,
            flipped_rows: 0,
            flips_per_mact: f64::NAN,
            refreshes_issued: 0,
        };
        let s = run_result(&r, "");
        assert!(s.contains("\"flips_per_mact\": null"));
        assert!(!s.contains("NaN") && !s.contains("inf"));
    }

    #[test]
    fn run_result_renders_as_object() {
        let r = RunResult {
            workload: "double_sided".into(),
            mitigation: "para(p=0.001)".into(),
            hc_first: 4000,
            activations: 1000,
            total_flips: 7,
            flipped_rows: 2,
            flips_per_mact: 7000.0,
            refreshes_issued: 3,
        };
        let s = run_result(&r, "");
        assert!(s.starts_with('{') && s.ends_with('}'));
        assert!(s.contains("\"hc_first\": 4000"));
        assert!(s.contains("\"mitigation\": \"para(p=0.001)\""));
    }
}
