//! Deterministic fault injection for the distributed sweep service.
//!
//! Chaos testing is only useful when a failure reproduces: a flaky "kill a
//! worker at some point" harness proves nothing when the bytes diverge once
//! in fifty runs. A [`FaultPlan`] is therefore a *parsed, seeded schedule*
//! of faults — every trigger point is a deterministic function of the spec
//! string, so `--fault-plan crash-after-cells=5` crashes the worker at the
//! same protocol instant on every run, and the chaos suite in CI is a real
//! regression test instead of a dice roll.
//!
//! The spec is a comma-separated list of `key=value` directives:
//!
//! | directive | side | effect |
//! |---|---|---|
//! | `seed=N` | both | seeds byte/offset choices (garbling, cache corruption) |
//! | `crash-after-cells=N` | worker | drop the connection after streaming the N-th cell |
//! | `stall-after-cells=N` | worker | sleep `stall-ms` once, after the N-th cell |
//! | `stall-ms=MS` | worker | duration of the injected stall (default 1000) |
//! | `drop-line=N` | worker | silently drop the N-th outgoing protocol line |
//! | `garble-line=N` | worker | corrupt the N-th outgoing protocol line |
//! | `delay-connect-ms=MS` | worker | sleep before connecting / greeting |
//! | `corrupt-cache-record=N` | coordinator | flip a byte in the N-th persistent-cache record at startup |
//! | `wrong-token=1` | worker | present a corrupted auth proof in the hello |
//! | `cancel-after-cells=N` | coordinator | cancel a job the moment its N-th cell merges |
//! | `slow-client=MS` | coordinator | stall each client reply by MS (a slow-reading client) |
//!
//! Line counts cover the worker's *protocol* lines (hello, cells,
//! shard_done, fail) in stream order; heartbeats ride a side thread and are
//! deliberately excluded so the numbering stays deterministic. Garbled
//! lines are rewritten to start with `#`, which can never begin valid JSON
//! — a garble must always look like corruption to the peer, never decode as
//! a *different* valid message (that would silently poison the merge
//! instead of exercising the recovery path).

use rh_core::{derive_seed, SplitMix64};
use std::time::Duration;

/// Seed used when the spec does not carry an explicit `seed=` directive.
const DEFAULT_SEED: u64 = 0xFA17_F1A6;

/// Default injected stall duration when `stall-ms` is omitted.
const DEFAULT_STALL_MS: u64 = 1_000;

/// What to do after a cell result has been streamed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellFate {
    /// No fault scheduled here.
    Continue,
    /// Sleep this long, then continue — a straggler, not a corpse.
    Stall(Duration),
    /// Drop the connection mid-shard, exactly like a crash.
    Crash,
}

/// What to do with an outgoing protocol line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LineFate {
    /// Send the line unmodified.
    Send,
    /// Pretend the line was lost in transit.
    Drop,
    /// Send this corrupted replacement instead.
    Garble(String),
}

/// A parsed, seeded schedule of injectable faults. Counters live inside, so
/// a plan is consumed by one connection; clone it to reuse the schedule.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    seed: u64,
    crash_after_cells: Option<u64>,
    stall_after_cells: Option<u64>,
    stall_millis: Option<u64>,
    drop_lines: Vec<u64>,
    garble_lines: Vec<u64>,
    delay_connect_millis: u64,
    corrupt_cache_records: Vec<u64>,
    wrong_token: bool,
    cancel_after_cells: Option<u64>,
    slow_client_millis: u64,
    // Runtime counters (1-based: the first cell/line is number 1).
    cells_streamed: u64,
    lines_written: u64,
}

impl FaultPlan {
    /// Parse a `--fault-plan` spec string. An empty spec is an empty plan.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for directive in spec.split(',').map(str::trim).filter(|d| !d.is_empty()) {
            let (key, value) = directive.split_once('=').ok_or_else(|| {
                format!("fault-plan: directive '{directive}' is not of the form key=value")
            })?;
            let num = |what: &str| -> Result<u64, String> {
                value.trim().parse::<u64>().map_err(|_| {
                    format!("fault-plan: {what} wants an unsigned integer, got '{value}'")
                })
            };
            match key.trim() {
                "seed" => plan.seed = num("seed")?,
                "crash-after-cells" => plan.crash_after_cells = Some(num("crash-after-cells")?),
                "stall-after-cells" => plan.stall_after_cells = Some(num("stall-after-cells")?),
                "stall-ms" => plan.stall_millis = Some(num("stall-ms")?),
                "drop-line" => plan.drop_lines.push(num("drop-line")?),
                "garble-line" => plan.garble_lines.push(num("garble-line")?),
                "delay-connect-ms" => plan.delay_connect_millis = num("delay-connect-ms")?,
                "corrupt-cache-record" => plan
                    .corrupt_cache_records
                    .push(num("corrupt-cache-record")?),
                "wrong-token" => plan.wrong_token = num("wrong-token")? != 0,
                "cancel-after-cells" => plan.cancel_after_cells = Some(num("cancel-after-cells")?),
                "slow-client" => plan.slow_client_millis = num("slow-client")?,
                other => {
                    return Err(format!(
                        "fault-plan: unknown directive '{other}' (expected seed, \
                         crash-after-cells, stall-after-cells, stall-ms, drop-line, \
                         garble-line, delay-connect-ms, corrupt-cache-record, \
                         wrong-token, cancel-after-cells, slow-client)"
                    ))
                }
            }
        }
        for zero in [
            "crash-after-cells",
            "stall-after-cells",
            "cancel-after-cells",
        ] {
            let v = match zero {
                "crash-after-cells" => plan.crash_after_cells,
                "stall-after-cells" => plan.stall_after_cells,
                _ => plan.cancel_after_cells,
            };
            if v == Some(0) {
                return Err(format!("fault-plan: {zero} must be at least 1"));
            }
        }
        if plan.drop_lines.contains(&0) || plan.garble_lines.contains(&0) {
            return Err("fault-plan: line numbers are 1-based; 0 never fires".to_string());
        }
        Ok(plan)
    }

    /// True when no fault directive is scheduled (a bare `seed=` counts as
    /// empty: it seeds nothing).
    pub fn is_empty(&self) -> bool {
        self.crash_after_cells.is_none()
            && self.stall_after_cells.is_none()
            && self.drop_lines.is_empty()
            && self.garble_lines.is_empty()
            && self.delay_connect_millis == 0
            && self.corrupt_cache_records.is_empty()
            && !self.wrong_token
            && self.cancel_after_cells.is_none()
            && self.slow_client_millis == 0
    }

    /// Fold the legacy `--exit-after-cells N` knob into the plan; an
    /// explicit `crash-after-cells` directive wins.
    pub fn merge_exit_after_cells(&mut self, exit_after: Option<u64>) {
        if self.crash_after_cells.is_none() {
            self.crash_after_cells = exit_after;
        }
    }

    /// Delay to apply before connecting / greeting the coordinator.
    pub fn connect_delay(&self) -> Option<Duration> {
        (self.delay_connect_millis > 0).then(|| Duration::from_millis(self.delay_connect_millis))
    }

    /// Account one streamed cell and report the scheduled fate. If a stall
    /// and a crash share a trigger count, the stall wins — schedule them at
    /// distinct counts to combine them.
    pub fn on_cell(&mut self) -> CellFate {
        self.cells_streamed += 1;
        if self.stall_after_cells == Some(self.cells_streamed) {
            return CellFate::Stall(Duration::from_millis(
                self.stall_millis.unwrap_or(DEFAULT_STALL_MS),
            ));
        }
        if self.crash_after_cells == Some(self.cells_streamed) {
            return CellFate::Crash;
        }
        CellFate::Continue
    }

    /// The scheduled crash trigger, if any (observability for tests and for
    /// merging the legacy `--exit-after-cells` knob).
    pub fn crash_pending_at(&self) -> Option<u64> {
        self.crash_after_cells
    }

    /// The plan's seed — shared with other seeded mechanisms (reconnect
    /// backoff jitter) so one `seed=` directive pins the whole schedule.
    pub fn seed(&self) -> u64 {
        if self.seed == 0 {
            DEFAULT_SEED
        } else {
            self.seed
        }
    }

    /// Account one outgoing protocol line and report its fate.
    pub fn on_line(&mut self, line: &str) -> LineFate {
        self.lines_written += 1;
        let n = self.lines_written;
        if self.drop_lines.contains(&n) {
            return LineFate::Drop;
        }
        if self.garble_lines.contains(&n) {
            let mut rng = SplitMix64::new(derive_seed(self.seed, &[n]));
            // Keep a seeded-length prefix of the original so the corruption
            // looks like a real torn/garbled transport line, but lead with
            // '#': no JSON document starts with it, so the peer can never
            // mistake the garble for a different valid message.
            let keep = if line.is_empty() {
                0
            } else {
                (rng.next_u64() as usize) % line.len()
            };
            return LineFate::Garble(format!("#garbled#{}", &line[..keep.min(line.len())]));
        }
        LineFate::Send
    }

    /// 1-based indices of persistent-cache records to corrupt at startup.
    pub fn corrupt_cache_records(&self) -> &[u64] {
        &self.corrupt_cache_records
    }

    /// Worker side: present a deliberately wrong auth proof in the hello,
    /// exercising the coordinator's reject + `auth_failures` counter.
    pub fn wrong_token(&self) -> bool {
        self.wrong_token
    }

    /// Coordinator side: cancel a job the moment its N-th cell merges —
    /// replays the mid-job `cancel` teardown without a second client.
    pub fn cancel_after_cells(&self) -> Option<u64> {
        self.cancel_after_cells
    }

    /// Coordinator side: delay before each client reply, simulating a
    /// client that drains its socket slowly (per-connection threads must
    /// keep other clients unaffected).
    pub fn slow_client_delay(&self) -> Option<Duration> {
        (self.slow_client_millis > 0).then(|| Duration::from_millis(self.slow_client_millis))
    }

    /// Deterministically choose the byte to clobber inside record number
    /// `record` of length `len`, and the replacement. The replacement is
    /// never a newline (that would *split* the record instead of corrupting
    /// it) and never the original byte (that would be a no-op).
    pub fn corrupt_byte_for(&self, record: u64, line: &[u8]) -> Option<(usize, u8)> {
        if line.is_empty() {
            return None;
        }
        let mut rng = SplitMix64::new(derive_seed(self.seed ^ 0xC0DE, &[record]));
        let offset = (rng.next_u64() as usize) % line.len();
        let replacement = if line[offset] == b'#' { b'~' } else { b'#' };
        Some((offset, replacement))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_spec_is_an_empty_plan() {
        let plan = FaultPlan::parse("").unwrap();
        assert!(plan.is_empty());
        assert_eq!(plan, FaultPlan::default());
    }

    #[test]
    fn full_spec_round_trips_every_directive() {
        let plan = FaultPlan::parse(
            "seed=7, crash-after-cells=5, stall-after-cells=2, stall-ms=250, \
             drop-line=3, garble-line=4, delay-connect-ms=10, corrupt-cache-record=1, \
             wrong-token=1, cancel-after-cells=6, slow-client=20",
        )
        .unwrap();
        assert!(!plan.is_empty());
        assert_eq!(plan.connect_delay(), Some(Duration::from_millis(10)));
        assert_eq!(plan.corrupt_cache_records(), &[1]);
        assert!(plan.wrong_token());
        assert_eq!(plan.cancel_after_cells(), Some(6));
        assert_eq!(plan.slow_client_delay(), Some(Duration::from_millis(20)));
    }

    #[test]
    fn job_manager_directives_parse_individually() {
        let plan = FaultPlan::parse("wrong-token=1").unwrap();
        assert!(plan.wrong_token() && !plan.is_empty());
        let plan = FaultPlan::parse("wrong-token=0").unwrap();
        assert!(!plan.wrong_token() && plan.is_empty());
        let plan = FaultPlan::parse("cancel-after-cells=2").unwrap();
        assert_eq!(plan.cancel_after_cells(), Some(2));
        let err = FaultPlan::parse("cancel-after-cells=0").unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
        let plan = FaultPlan::parse("slow-client=15").unwrap();
        assert_eq!(plan.slow_client_delay(), Some(Duration::from_millis(15)));
        assert_eq!(
            FaultPlan::parse("slow-client=0")
                .unwrap()
                .slow_client_delay(),
            None
        );
    }

    #[test]
    fn unknown_and_malformed_directives_are_rejected_with_names() {
        let err = FaultPlan::parse("explode=1").unwrap_err();
        assert!(err.contains("unknown directive 'explode'"), "{err}");
        for named in ["wrong-token", "cancel-after-cells", "slow-client"] {
            assert!(err.contains(named), "valid set must name {named}: {err}");
        }
        let err = FaultPlan::parse("crash-after-cells").unwrap_err();
        assert!(err.contains("key=value"), "{err}");
        let err = FaultPlan::parse("stall-ms=soon").unwrap_err();
        assert!(err.contains("unsigned integer"), "{err}");
        let err = FaultPlan::parse("crash-after-cells=0").unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
        let err = FaultPlan::parse("drop-line=0").unwrap_err();
        assert!(err.contains("1-based"), "{err}");
    }

    #[test]
    fn cell_schedule_fires_at_exact_counts() {
        let mut plan =
            FaultPlan::parse("crash-after-cells=3,stall-after-cells=2,stall-ms=5").unwrap();
        assert_eq!(plan.on_cell(), CellFate::Continue);
        assert_eq!(plan.on_cell(), CellFate::Stall(Duration::from_millis(5)));
        assert_eq!(plan.on_cell(), CellFate::Crash);
        assert_eq!(plan.on_cell(), CellFate::Continue);
    }

    #[test]
    fn exit_after_cells_merges_but_never_overrides() {
        let mut plan = FaultPlan::default();
        plan.merge_exit_after_cells(Some(4));
        assert_eq!(plan.crash_pending_at(), Some(4));
        let mut plan = FaultPlan::parse("crash-after-cells=2").unwrap();
        plan.merge_exit_after_cells(Some(9));
        assert_eq!(plan.crash_pending_at(), Some(2));
    }

    #[test]
    fn line_schedule_drops_and_garbles_deterministically() {
        let spec = "seed=42,drop-line=2,garble-line=3";
        let mut a = FaultPlan::parse(spec).unwrap();
        let mut b = FaultPlan::parse(spec).unwrap();
        let line = r#"{"type":"cell","job":1}"#;
        assert_eq!(a.on_line(line), LineFate::Send);
        assert_eq!(a.on_line(line), LineFate::Drop);
        let LineFate::Garble(garbled) = a.on_line(line) else {
            panic!("third line must garble");
        };
        assert!(garbled.starts_with('#'), "garble must never parse as JSON");
        // Same spec, same stream → byte-identical garbling.
        b.on_line(line);
        b.on_line(line);
        assert_eq!(b.on_line(line), LineFate::Garble(garbled));
    }

    #[test]
    fn corrupt_byte_choice_is_seeded_and_never_a_newline_or_noop() {
        let plan = FaultPlan::parse("seed=9,corrupt-cache-record=1").unwrap();
        let line = br#"{"hash":1,"seed":2,"sum":3,"document":"x"}"#;
        let (offset, byte) = plan.corrupt_byte_for(1, line).unwrap();
        assert!(offset < line.len());
        assert_ne!(byte, b'\n');
        assert_ne!(byte, line[offset]);
        assert_eq!(plan.corrupt_byte_for(1, line), Some((offset, byte)));
        assert_eq!(plan.corrupt_byte_for(1, b""), None);
    }
}
