//! Command-line parsing for the sweep driver.
//!
//! Lives in the library (rather than `main.rs`) so every parse and rejection
//! path is unit-testable. Parsing is purely syntactic; semantic validation
//! is shared with programmatic callers via [`SweepConfig::validate`].

use crate::bench::{AnalysisOptions, BenchOptions, SaturationOptions};
use crate::configure::ConfigureOptions;
use crate::faults::FaultPlan;
use crate::serve::{CancelOptions, ServeOptions, SubmitOptions};
use crate::sweep::SweepConfig;
use crate::worker::WorkerOptions;
use rh_core::{DataPattern, KernelChoice};

pub const USAGE: &str = "\
rh-cli — RowHammer mitigation sweep (Kim et al., ISCA 2020 reproduction)

USAGE:
    rh-cli sweep [OPTIONS]
    rh-cli bench [--quick] [--out <PATH>] [--repeat <N>] [--filter <SUBSTR>]
                 [--min-acts-per-sec <RATE>] [--kernel <K>]
    rh-cli bench --saturation [--quick] [--out <PATH>] [--workers <A,B,...>]
                 [--kernel <K>] [--min-cells-per-sec <RATE>]
    rh-cli bench --analysis [--quick] [--out <PATH>] [--repeat <N>]
                 [--min-evals-per-sec <RATE>]
    rh-cli configure --hc <N> --window <N> --target-pfail <P>
                     [--validate] [--trials <N>] [--seed <N>]
    rh-cli serve [--workers <N>] [--listen <ADDR>] [--kernel <K>]
                 [--cache-capacity <N>] [--checkpoint-dir <DIR>]
                 [--shard-cells <N>] [--cache-dir <DIR>] [--config-epoch <N>]
                 [--fallback-after-ms <MS>] [--speculate-after-ms <MS>]
                 [--fault-plan <PLAN>] [--max-pending-jobs <N>]
                 [--max-jobs-per-client <N>] [--max-cells-per-client <N>]
                 [--target-lease-ms <MS>] [--handshake-timeout-ms <MS>]
                 [--auth-token-file <PATH>]
    rh-cli worker [--connect <ADDR>] [--exit-after-cells <N>]
                  [--fault-plan <PLAN>] [--config-epoch <N>]
                  [--retry <N>] [--backoff-ms <MS>]
                  [--auth-token-file <PATH>]
    rh-cli submit --connect <ADDR> [--timeout <SECS>]
                  [--job-deadline-ms <MS>] [--auth-token-file <PATH>]
    rh-cli cancel --connect <ADDR> --id <JOB> [--timeout <SECS>]
                  [--auth-token-file <PATH>]

SWEEP OPTIONS:
    --seed <N>              RNG seed for device + mitigations (default 0xC0FFEE)
    --activations <N>       activation budget per experiment cell (default 200000)
    --hc <A,B,...>          HC_first values to sweep (default 2000,4000,8000,16000)
    --sides <A,B,...>       many-sided aggressor counts, each >= 2 (default 2,4,8,16)
    --para-p <P1,P2,...>    PARA sampling probabilities (default 0.0,0.001,0.004,0.016)
    --data-pattern <P,...>  stored data patterns to sweep: legacy, solid,
                            checkerboard, rowstripe (default legacy; anything
                            beyond legacy adds per-result data_pattern and
                            1->0 / 0->1 flip-direction fields)
    --ecc <BITS>            enable on-die ECC with BITS cells per codeword
                            (corrects one flip per codeword; results then
                            report pre- and post-ECC flip counts; default off)
    --benign-fraction <F>   fraction of benign traffic mixed in (default 0.1)
    --refresh-interval <N>  auto-refresh (tREFW) period in activations,
                            0 disables (default 32000)
    --threads <N>           worker threads for cell execution; output is
                            byte-identical for any value (default: all cores)
    --kernel <K>            victim-settle kernel: auto, scalar, avx2
                            (default auto; output is byte-identical for any
                            kernel — the RH_FORCE_SCALAR env var overrides
                            every choice, for CI fallback coverage)
    -h, --help              print this help

BENCH OPTIONS:
    --quick                 shrink the reference sweep for CI smoke runs
    --out <PATH>            report path (default BENCH_6.json)
    --repeat <N>            timing runs per cell per path, min reported
                            (default 3)
    --filter <SUBSTR>       only run cells whose pattern/workload/mitigation
                            label contains SUBSTR (e.g. 'rowstripe/' selects
                            the Section 5 slice, 'graphene' one mitigation)
    --min-acts-per-sec <R>  exit non-zero if aggregate optimized throughput
                            falls below R (CI perf guard)
    --kernel <K>            settle kernel for the optimized path: auto,
                            scalar, avx2 (default auto; recorded in the
                            report so runs are comparable)

bench times the pinned reference sweep under the optimized hot path (flat
counter tables, batched engine, epoch-based refresh) and the retained
pre-optimization path (map-based counters, unbatched dyn dispatch, eager
refresh), verifies both produce identical results, and writes a JSON report
with before/after throughput plus a per-mitigation breakdown.

SATURATION BENCH OPTIONS (bench --saturation):
    --quick                 shrink the per-cell activation budget for CI
    --out <PATH>            report path (default BENCH_7.json)
    --workers <A,B,...>     worker-pool sizes to measure (default 1,2,4,8)
    --kernel <K>            settle-kernel request propagated to every worker
    --min-cells-per-sec <R> exit non-zero if peak throughput falls below R

bench --saturation measures the distributed service end to end: for each
pool size it starts a coordinator, spawns that many rh-cli worker
processes, submits the default sweep, and records cells/sec from submit to
merged envelope — byte-checking every merged document against the
in-process sweep.

ANALYSIS BENCH OPTIONS (bench --analysis):
    --quick                 drop the largest window from the timed grid
    --out <PATH>            report path (default BENCH_8.json)
    --repeat <N>            timing runs per grid point, min reported
                            (default 3)
    --min-evals-per-sec <R> exit non-zero if the direct form's aggregate
                            throughput falls below R evaluations/sec

bench --analysis times the rh-analysis closed forms (the direct recurrence
and the Markov-chain dual) and the required_p bisection solver over a
pinned (mac, window, p) grid, re-checks the two forms agree within 1e-9 at
every point, and writes a JSON report with per-point and aggregate
evaluation throughput.

CONFIGURE OPTIONS:
    --hc <N>                device HC_first in activations (required, >= 2)
    --window <N>            attack window in activations (required)
    --target-pfail <P>      failure-probability budget over the window,
                            in (0, 1] (required)
    --validate              run a seeded mini-sweep through the simulator
                            and check the recommendation's failure rate
                            lands inside the analytical confidence band
                            (exit non-zero when it does not)
    --trials <N>            windows the mini-sweep simulates (default 400)
    --seed <N>              mini-sweep root seed (default 0xC0FFEE)

configure answers \"what PARA sampling rate do I need\" from the closed-form
failure model (rh-analysis): it prints the smallest p whose analytical
failure probability meets the target, as JSON in the same hand-rolled
style as sweep. See docs/ARCHITECTURE.md, \"Analytical cross-validation\".

SERVE OPTIONS:
    --workers <N>           local worker processes to spawn (default 2)
    --listen <ADDR>         also accept clients and workers over TCP
                            (e.g. 127.0.0.1:4242; port 0 for ephemeral);
                            without it, configs are read as jsonl on stdin
    --kernel <K>            settle-kernel request sent with every shard
    --cache-capacity <N>    result-cache size in documents (default 128)
    --checkpoint-dir <DIR>  append per-cell checkpoints; resubmits resume
    --shard-cells <N>       max cells per shard lease (default 16)
    --cache-dir <DIR>       persistent result cache: completed documents
                            survive coordinator restarts as checksummed
                            jsonl segments; corrupt records are skipped
                            and counted, never served
    --config-epoch <N>      config generation; worker hellos announcing a
                            different epoch are rejected (default 0)
    --fallback-after-ms <MS> graceful degradation: a job stranded this long
                            with no live worker is executed in-process by
                            the submitting thread (default: off, fail fast)
    --speculate-after-ms <MS> floor of the straggler deadline; a lease with
                            no progress past max(floor, 16x the EWMA cell
                            time) is re-leased to another worker and the
                            duplicate results asserted bit-identical
                            (default 10000; 0 disables speculation)
    --fault-plan <PLAN>     coordinator-side fault injection; the useful
                            directives here are corrupt-cache-record=N
                            (clobber one byte of persistent record N before
                            opening the cache), cancel-after-cells=N (cancel
                            the owning job after the Nth merged cell) and
                            slow-client=MS (delay every client reply)
    --max-pending-jobs <N>  admission bound: submits past N unfinished jobs
                            coordinator-wide get a clean reject naming
                            queue_full (default 64)
    --max-jobs-per-client <N> per-client concurrent unfinished-job quota;
                            excess submits are rejected with
                            client_job_quota (default 16)
    --max-cells-per-client <N> per-client quota on queued (not yet merged)
                            cells; rejects name client_cell_quota
                            (default 1000000)
    --target-lease-ms <MS>  adaptive shard sizing: widen or narrow leases
                            so each takes about MS of wall time, using
                            per-list EWMA cell times (PARA cells get much
                            wider shards than grid cells); 0 restores the
                            fixed --shard-cells width; merged output is
                            byte-identical at any setting (default 1500)
    --handshake-timeout-ms <MS> how long a fresh TCP connection gets to
                            produce its first protocol line, which also
                            bounds the auth challenge (default 10000)
    --auth-token-file <PATH> shared secret file; when set, every TCP worker
                            hello and client session must prove knowledge
                            of the token (challenge/response, constant-time
                            compare) or be rejected; local stdio workers
                            spawned by this coordinator are exempt

WORKER OPTIONS:
    --connect <ADDR>        attach to a coordinator over TCP (default:
                            speak the jsonl protocol over stdio, as when
                            spawned by serve)
    --exit-after-cells <N>  fault injection: drop the connection after N
                            cells (for reassignment tests); alias for the
                            fault-plan directive crash-after-cells=N
    --fault-plan <PLAN>     deterministic fault schedule, comma-separated
                            key=value directives: crash-after-cells=N,
                            stall-after-cells=N, stall-ms=MS, drop-line=N,
                            garble-line=N, delay-connect-ms=MS, seed=S
                            (see docs/ARCHITECTURE.md, failure model)
    --config-epoch <N>      config generation announced in the hello; must
                            match the coordinator's (default 0)
    --retry <N>             reconnect attempts after a failed connect or a
                            dropped connection, with seeded exponential
                            backoff; a coordinator 'reject' is never
                            retried (default 0)
    --backoff-ms <MS>       base of the reconnect backoff (default 200)
    --auth-token-file <PATH> shared secret file matching the coordinator's;
                            proven in the hello (required when the
                            coordinator was started with one)

SUBMIT OPTIONS:
    --connect <ADDR>        coordinator address (required)
    --timeout <SECS>        bound the connect and each response wait; on
                            expiry submit exits nonzero naming the deadline
                            (default: wait forever)
    --job-deadline-ms <MS>  stamp every submitted config with a deadline;
                            the coordinator cancels jobs that outlive it
                            and submit exits nonzero (default: none)
    --auth-token-file <PATH> shared secret file; the session opens with an
                            authenticated client hello before any submit

submit reads jsonl sweep configs from stdin ('{}' is the default sweep),
sends each to the coordinator, prints each returned merged document
verbatim on stdout (byte-identical to 'rh-cli sweep' of the same config),
and reports cache/worker metadata on stderr.

CANCEL OPTIONS:
    --connect <ADDR>        coordinator address (required)
    --id <JOB>              job id given at submit time (required)
    --timeout <SECS>        bound the connect and the acknowledgement wait
    --auth-token-file <PATH> shared secret file, as for submit

cancel asks the coordinator to kill one in-flight job: queued shards are
dropped, leased shards are abandoned mid-shard by their workers, and the
waiting submit fails with the cancellation message. Exits nonzero when the
job is unknown or already finished.
";

/// Fully parsed invocation: the sweep config plus execution options that
/// must not influence results (and are therefore kept out of the config).
#[derive(Debug, Clone)]
pub struct CliArgs {
    pub config: SweepConfig,
    pub threads: usize,
    /// Settle-kernel request; like `threads`, it can never influence
    /// results, so it stays out of the config.
    pub kernel: KernelChoice,
}

/// Outcome of parsing the arguments after `sweep`.
#[derive(Debug, Clone)]
pub enum Invocation {
    /// `-h`/`--help` appeared; print usage and exit successfully.
    Help,
    Sweep(CliArgs),
}

/// Outcome of parsing the arguments after `bench`.
#[derive(Debug, Clone)]
pub enum BenchInvocation {
    Help,
    Bench(BenchOptions),
    /// `bench --saturation`: the distributed service throughput bench.
    Saturation(SaturationOptions),
    /// `bench --analysis`: closed-form evaluation throughput.
    Analysis(AnalysisOptions),
}

/// Parse the arguments following the `bench` subcommand. `--saturation` or
/// `--analysis` anywhere switches to that mode's flag set (the modes share
/// `--quick`/`--out` but disagree about everything else).
pub fn parse_bench_args(args: &[String]) -> Result<BenchInvocation, String> {
    if args.iter().any(|a| a == "--saturation") {
        return parse_saturation_args(args);
    }
    if args.iter().any(|a| a == "--analysis") {
        return parse_analysis_args(args);
    }
    let mut opts = BenchOptions::default();
    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| format!("{flag} requires a value"))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => opts.quick = true,
            "--out" => opts.out_path = value(&mut i, "--out")?,
            "--repeat" => {
                let v = value(&mut i, "--repeat")?;
                opts.repeat = v.parse().map_err(|_| format!("invalid --repeat '{v}'"))?;
                if opts.repeat == 0 {
                    return Err("--repeat must be at least 1".to_string());
                }
            }
            "--filter" => opts.filter = Some(value(&mut i, "--filter")?),
            "--kernel" => {
                let v = value(&mut i, "--kernel")?;
                opts.kernel = v.parse()?;
            }
            "--min-acts-per-sec" => {
                let v = value(&mut i, "--min-acts-per-sec")?;
                let rate: f64 = v
                    .parse()
                    .map_err(|_| format!("invalid --min-acts-per-sec '{v}'"))?;
                if !rate.is_finite() || rate <= 0.0 {
                    return Err(format!("--min-acts-per-sec must be positive, got '{v}'"));
                }
                opts.min_acts_per_sec = Some(rate);
            }
            "-h" | "--help" => return Ok(BenchInvocation::Help),
            other => return Err(format!("unknown bench option '{other}'")),
        }
        i += 1;
    }
    Ok(BenchInvocation::Bench(opts))
}

/// Parse `bench --saturation` flags.
fn parse_saturation_args(args: &[String]) -> Result<BenchInvocation, String> {
    let mut opts = SaturationOptions::default();
    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| format!("{flag} requires a value"))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--saturation" => {}
            "--quick" => opts.quick = true,
            "--out" => opts.out_path = value(&mut i, "--out")?,
            "--workers" => {
                opts.worker_counts = parse_list(&value(&mut i, "--workers")?, "--workers")?;
                if opts.worker_counts.contains(&0) {
                    return Err("--workers pool sizes must be at least 1".to_string());
                }
            }
            "--kernel" => {
                let v = value(&mut i, "--kernel")?;
                opts.kernel = v.parse()?;
            }
            "--min-cells-per-sec" => {
                let v = value(&mut i, "--min-cells-per-sec")?;
                let rate: f64 = v
                    .parse()
                    .map_err(|_| format!("invalid --min-cells-per-sec '{v}'"))?;
                if !rate.is_finite() || rate <= 0.0 {
                    return Err(format!("--min-cells-per-sec must be positive, got '{v}'"));
                }
                opts.min_cells_per_sec = Some(rate);
            }
            "-h" | "--help" => return Ok(BenchInvocation::Help),
            other => return Err(format!("unknown bench --saturation option '{other}'")),
        }
        i += 1;
    }
    Ok(BenchInvocation::Saturation(opts))
}

/// Parse `bench --analysis` flags.
fn parse_analysis_args(args: &[String]) -> Result<BenchInvocation, String> {
    let mut opts = AnalysisOptions::default();
    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| format!("{flag} requires a value"))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--analysis" => {}
            "--quick" => opts.quick = true,
            "--out" => opts.out_path = value(&mut i, "--out")?,
            "--repeat" => {
                let v = value(&mut i, "--repeat")?;
                opts.repeat = v.parse().map_err(|_| format!("invalid --repeat '{v}'"))?;
                if opts.repeat == 0 {
                    return Err("--repeat must be at least 1".to_string());
                }
            }
            "--min-evals-per-sec" => {
                let v = value(&mut i, "--min-evals-per-sec")?;
                let rate: f64 = v
                    .parse()
                    .map_err(|_| format!("invalid --min-evals-per-sec '{v}'"))?;
                if !rate.is_finite() || rate <= 0.0 {
                    return Err(format!("--min-evals-per-sec must be positive, got '{v}'"));
                }
                opts.min_evals_per_sec = Some(rate);
            }
            "-h" | "--help" => return Ok(BenchInvocation::Help),
            other => return Err(format!("unknown bench --analysis option '{other}'")),
        }
        i += 1;
    }
    Ok(BenchInvocation::Analysis(opts))
}

/// Outcome of parsing the arguments after `configure`.
#[derive(Debug, Clone)]
pub enum ConfigureInvocation {
    Help,
    Configure(ConfigureOptions),
}

/// Parse the arguments following the `configure` subcommand. Syntactic
/// errors are caught per flag; range checks that also guard programmatic
/// callers (hc >= 2, target in (0, 1]) live in
/// [`crate::configure::run_configure`].
pub fn parse_configure_args(args: &[String]) -> Result<ConfigureInvocation, String> {
    let mut hc_first = None;
    let mut window = None;
    let mut target_pfail = None;
    let mut opts = ConfigureOptions::default();
    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| format!("{flag} requires a value"))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--hc" => {
                let v = value(&mut i, "--hc")?;
                hc_first = Some(v.parse().map_err(|_| format!("invalid --hc '{v}'"))?);
            }
            "--window" => {
                let v = value(&mut i, "--window")?;
                window = Some(v.parse().map_err(|_| format!("invalid --window '{v}'"))?);
            }
            "--target-pfail" => {
                let v = value(&mut i, "--target-pfail")?;
                target_pfail = Some(
                    v.parse()
                        .map_err(|_| format!("invalid --target-pfail '{v}'"))?,
                );
            }
            "--validate" => opts.validate = true,
            "--trials" => {
                let v = value(&mut i, "--trials")?;
                opts.trials = v.parse().map_err(|_| format!("invalid --trials '{v}'"))?;
            }
            "--seed" => {
                let v = value(&mut i, "--seed")?;
                opts.seed = parse_u64_maybe_hex(&v).ok_or(format!("invalid --seed '{v}'"))?;
            }
            "-h" | "--help" => return Ok(ConfigureInvocation::Help),
            other => return Err(format!("unknown configure option '{other}'")),
        }
        i += 1;
    }
    opts.hc_first = hc_first.ok_or("configure requires --hc <N>")?;
    opts.window = window.ok_or("configure requires --window <N>")?;
    opts.target_pfail = target_pfail.ok_or("configure requires --target-pfail <P>")?;
    Ok(ConfigureInvocation::Configure(opts))
}

/// Read a shared-secret token file for `--auth-token-file`: the secret is
/// the file's contents with surrounding whitespace trimmed (so a trailing
/// newline from `echo` never silently changes the token). Empty files are
/// rejected — an empty shared secret authenticates nobody on purpose.
fn read_token_file(path: &str) -> Result<String, String> {
    let raw = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read --auth-token-file '{path}': {e}"))?;
    let token = raw.trim();
    if token.is_empty() {
        return Err(format!("--auth-token-file '{path}' is empty"));
    }
    Ok(token.to_string())
}

/// Outcome of parsing the arguments after `serve`.
#[derive(Debug, Clone)]
pub enum ServeInvocation {
    Help,
    Serve(Box<ServeOptions>),
}

/// Parse the arguments following the `serve` subcommand.
pub fn parse_serve_args(args: &[String]) -> Result<ServeInvocation, String> {
    let mut opts = ServeOptions::default();
    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| format!("{flag} requires a value"))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--workers" => {
                let v = value(&mut i, "--workers")?;
                opts.workers = v.parse().map_err(|_| format!("invalid --workers '{v}'"))?;
            }
            "--listen" => opts.listen = Some(value(&mut i, "--listen")?),
            "--kernel" => {
                let v = value(&mut i, "--kernel")?;
                opts.kernel = v.parse()?;
            }
            "--cache-capacity" => {
                let v = value(&mut i, "--cache-capacity")?;
                opts.cache_capacity = v
                    .parse()
                    .map_err(|_| format!("invalid --cache-capacity '{v}'"))?;
                if opts.cache_capacity == 0 {
                    return Err("--cache-capacity must be at least 1".to_string());
                }
            }
            "--checkpoint-dir" => {
                opts.checkpoint_dir = Some(value(&mut i, "--checkpoint-dir")?.into());
            }
            "--shard-cells" => {
                let v = value(&mut i, "--shard-cells")?;
                opts.shard_cells = v
                    .parse()
                    .map_err(|_| format!("invalid --shard-cells '{v}'"))?;
                if opts.shard_cells == 0 {
                    return Err("--shard-cells must be at least 1".to_string());
                }
            }
            "--cache-dir" => {
                opts.cache_dir = Some(value(&mut i, "--cache-dir")?.into());
            }
            "--config-epoch" => {
                let v = value(&mut i, "--config-epoch")?;
                opts.config_epoch = v
                    .parse()
                    .map_err(|_| format!("invalid --config-epoch '{v}'"))?;
            }
            "--fallback-after-ms" => {
                let v = value(&mut i, "--fallback-after-ms")?;
                let ms: u64 = v
                    .parse()
                    .map_err(|_| format!("invalid --fallback-after-ms '{v}'"))?;
                opts.fallback_after = Some(std::time::Duration::from_millis(ms));
            }
            "--speculate-after-ms" => {
                let v = value(&mut i, "--speculate-after-ms")?;
                let ms: u64 = v
                    .parse()
                    .map_err(|_| format!("invalid --speculate-after-ms '{v}'"))?;
                // 0 disables speculation outright rather than meaning
                // "speculate instantly" — an instant deadline would
                // duplicate every lease.
                opts.speculate_after = (ms > 0).then(|| std::time::Duration::from_millis(ms));
            }
            "--fault-plan" => {
                opts.fault_plan = FaultPlan::parse(&value(&mut i, "--fault-plan")?)?;
            }
            "--max-pending-jobs" => {
                let v = value(&mut i, "--max-pending-jobs")?;
                opts.max_pending_jobs = v
                    .parse()
                    .map_err(|_| format!("invalid --max-pending-jobs '{v}'"))?;
                if opts.max_pending_jobs == 0 {
                    return Err("--max-pending-jobs must be at least 1".to_string());
                }
            }
            "--max-jobs-per-client" => {
                let v = value(&mut i, "--max-jobs-per-client")?;
                opts.max_jobs_per_client = v
                    .parse()
                    .map_err(|_| format!("invalid --max-jobs-per-client '{v}'"))?;
                if opts.max_jobs_per_client == 0 {
                    return Err("--max-jobs-per-client must be at least 1".to_string());
                }
            }
            "--max-cells-per-client" => {
                let v = value(&mut i, "--max-cells-per-client")?;
                opts.max_cells_per_client = v
                    .parse()
                    .map_err(|_| format!("invalid --max-cells-per-client '{v}'"))?;
                if opts.max_cells_per_client == 0 {
                    return Err("--max-cells-per-client must be at least 1".to_string());
                }
            }
            "--target-lease-ms" => {
                // 0 is meaningful here: it turns the adaptive sizer off and
                // restores the fixed --shard-cells width.
                let v = value(&mut i, "--target-lease-ms")?;
                opts.target_lease_ms = v
                    .parse()
                    .map_err(|_| format!("invalid --target-lease-ms '{v}'"))?;
            }
            "--handshake-timeout-ms" => {
                let v = value(&mut i, "--handshake-timeout-ms")?;
                let ms: u64 = v
                    .parse()
                    .map_err(|_| format!("invalid --handshake-timeout-ms '{v}'"))?;
                if ms == 0 {
                    return Err(
                        "--handshake-timeout-ms must be at least 1 (a zero deadline \
                         would reject every connection before its first line)"
                            .to_string(),
                    );
                }
                opts.handshake_timeout = std::time::Duration::from_millis(ms);
            }
            "--auth-token-file" => {
                opts.auth_token = Some(read_token_file(&value(&mut i, "--auth-token-file")?)?);
            }
            "-h" | "--help" => return Ok(ServeInvocation::Help),
            other => return Err(format!("unknown serve option '{other}'")),
        }
        i += 1;
    }
    if opts.workers == 0 && opts.listen.is_none() && opts.fallback_after.is_none() {
        return Err(
            "a coordinator with --workers 0 and no --listen could never execute anything \
             (give it local workers, a listener for TCP workers to attach to, or \
             --fallback-after-ms for in-process execution)"
                .to_string(),
        );
    }
    Ok(ServeInvocation::Serve(Box::new(opts)))
}

/// Outcome of parsing the arguments after `worker`.
#[derive(Debug, Clone)]
pub enum WorkerInvocation {
    Help,
    Worker(Box<WorkerOptions>),
}

/// Parse the arguments following the `worker` subcommand.
pub fn parse_worker_args(args: &[String]) -> Result<WorkerInvocation, String> {
    let mut opts = WorkerOptions::default();
    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| format!("{flag} requires a value"))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--connect" => opts.connect = Some(value(&mut i, "--connect")?),
            "--exit-after-cells" => {
                let v = value(&mut i, "--exit-after-cells")?;
                let n: u64 = v
                    .parse()
                    .map_err(|_| format!("invalid --exit-after-cells '{v}'"))?;
                if n == 0 {
                    return Err("--exit-after-cells must be at least 1".to_string());
                }
                opts.exit_after_cells = Some(n);
            }
            "--fault-plan" => {
                opts.fault_plan = FaultPlan::parse(&value(&mut i, "--fault-plan")?)?;
            }
            "--config-epoch" => {
                let v = value(&mut i, "--config-epoch")?;
                opts.config_epoch = v
                    .parse()
                    .map_err(|_| format!("invalid --config-epoch '{v}'"))?;
            }
            "--retry" => {
                let v = value(&mut i, "--retry")?;
                opts.retries = v.parse().map_err(|_| format!("invalid --retry '{v}'"))?;
            }
            "--backoff-ms" => {
                let v = value(&mut i, "--backoff-ms")?;
                opts.backoff_base_ms = v
                    .parse()
                    .map_err(|_| format!("invalid --backoff-ms '{v}'"))?;
                if opts.backoff_base_ms == 0 {
                    return Err("--backoff-ms must be at least 1".to_string());
                }
            }
            "--auth-token-file" => {
                opts.auth_token = Some(read_token_file(&value(&mut i, "--auth-token-file")?)?);
            }
            "-h" | "--help" => return Ok(WorkerInvocation::Help),
            other => return Err(format!("unknown worker option '{other}'")),
        }
        i += 1;
    }
    Ok(WorkerInvocation::Worker(Box::new(opts)))
}

/// Outcome of parsing the arguments after `submit`.
#[derive(Debug, Clone)]
pub enum SubmitInvocation {
    Help,
    Submit(SubmitOptions),
}

/// Parse the arguments following the `submit` subcommand.
pub fn parse_submit_args(args: &[String]) -> Result<SubmitInvocation, String> {
    let mut connect = None;
    let mut timeout = None;
    let mut deadline_ms = None;
    let mut auth_token = None;
    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| format!("{flag} requires a value"))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--connect" => connect = Some(value(&mut i, "--connect")?),
            "--timeout" => {
                let v = value(&mut i, "--timeout")?;
                let secs: u64 = v.parse().map_err(|_| format!("invalid --timeout '{v}'"))?;
                if secs == 0 {
                    return Err("--timeout must be at least 1 second".to_string());
                }
                timeout = Some(std::time::Duration::from_secs(secs));
            }
            "--job-deadline-ms" => {
                let v = value(&mut i, "--job-deadline-ms")?;
                let ms: u64 = v
                    .parse()
                    .map_err(|_| format!("invalid --job-deadline-ms '{v}'"))?;
                if ms == 0 {
                    return Err(
                        "--job-deadline-ms must be at least 1 (omit the flag for no deadline)"
                            .to_string(),
                    );
                }
                deadline_ms = Some(ms);
            }
            "--auth-token-file" => {
                auth_token = Some(read_token_file(&value(&mut i, "--auth-token-file")?)?);
            }
            "-h" | "--help" => return Ok(SubmitInvocation::Help),
            other => return Err(format!("unknown submit option '{other}'")),
        }
        i += 1;
    }
    let connect = connect.ok_or("submit requires --connect <ADDR>")?;
    Ok(SubmitInvocation::Submit(SubmitOptions {
        connect,
        timeout,
        deadline_ms,
        auth_token,
    }))
}

/// Outcome of parsing the arguments after `cancel`.
#[derive(Debug, Clone)]
pub enum CancelInvocation {
    Help,
    Cancel(CancelOptions),
}

/// Parse the arguments following the `cancel` subcommand.
pub fn parse_cancel_args(args: &[String]) -> Result<CancelInvocation, String> {
    let mut connect = None;
    let mut id = None;
    let mut timeout = None;
    let mut auth_token = None;
    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| format!("{flag} requires a value"))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--connect" => connect = Some(value(&mut i, "--connect")?),
            "--id" => id = Some(value(&mut i, "--id")?),
            "--timeout" => {
                let v = value(&mut i, "--timeout")?;
                let secs: u64 = v.parse().map_err(|_| format!("invalid --timeout '{v}'"))?;
                if secs == 0 {
                    return Err("--timeout must be at least 1 second".to_string());
                }
                timeout = Some(std::time::Duration::from_secs(secs));
            }
            "--auth-token-file" => {
                auth_token = Some(read_token_file(&value(&mut i, "--auth-token-file")?)?);
            }
            "-h" | "--help" => return Ok(CancelInvocation::Help),
            other => return Err(format!("unknown cancel option '{other}'")),
        }
        i += 1;
    }
    let connect = connect.ok_or("cancel requires --connect <ADDR>")?;
    let id = id.ok_or("cancel requires --id <JOB>")?;
    Ok(CancelInvocation::Cancel(CancelOptions {
        connect,
        id,
        timeout,
        auth_token,
    }))
}

/// Parse a comma-separated list, skipping empty items (so trailing commas
/// are tolerated); an *effectively empty* list is rejected here because no
/// flag taking a list accepts zero values.
fn parse_list<T: std::str::FromStr>(s: &str, flag: &str) -> Result<Vec<T>, String> {
    let values: Result<Vec<T>, String> = s
        .split(',')
        .map(str::trim)
        .filter(|x| !x.is_empty())
        .map(|x| {
            x.parse::<T>()
                .map_err(|_| format!("invalid value '{x}' for {flag}"))
        })
        .collect();
    let values = values?;
    if values.is_empty() {
        return Err(format!("{flag} requires at least one value"));
    }
    Ok(values)
}

/// Parse a u64 in decimal or `0x` hexadecimal.
pub fn parse_u64_maybe_hex(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// Parse the arguments following the `sweep` subcommand. Syntactic errors
/// are caught per flag; semantic cross-field validation is delegated to
/// [`SweepConfig::validate`] so the CLI and programmatic callers reject
/// exactly the same configs with the same messages.
pub fn parse_args(args: &[String]) -> Result<Invocation, String> {
    let mut cfg = SweepConfig::default();
    let mut threads = default_threads();
    let mut kernel = KernelChoice::default();
    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| format!("{flag} requires a value"))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                let v = value(&mut i, "--seed")?;
                cfg.seed = parse_u64_maybe_hex(&v).ok_or(format!("invalid --seed '{v}'"))?;
            }
            "--activations" => {
                let v = value(&mut i, "--activations")?;
                cfg.activations = v
                    .parse()
                    .map_err(|_| format!("invalid --activations '{v}'"))?;
            }
            "--hc" => cfg.hc_firsts = parse_list(&value(&mut i, "--hc")?, "--hc")?,
            "--sides" => cfg.sides = parse_list(&value(&mut i, "--sides")?, "--sides")?,
            "--para-p" => {
                cfg.para_probabilities = parse_list(&value(&mut i, "--para-p")?, "--para-p")?;
            }
            "--data-pattern" => {
                // Parsed by hand (not via parse_list) so the rejection
                // message names the valid patterns, not just the bad token.
                let v = value(&mut i, "--data-pattern")?;
                let patterns: Result<Vec<DataPattern>, String> = v
                    .split(',')
                    .map(str::trim)
                    .filter(|x| !x.is_empty())
                    .map(str::parse)
                    .collect();
                cfg.data_patterns = patterns?;
                if cfg.data_patterns.is_empty() {
                    return Err("--data-pattern requires at least one value".to_string());
                }
            }
            "--ecc" => {
                let v = value(&mut i, "--ecc")?;
                let bits: u32 = v.parse().map_err(|_| format!("invalid --ecc '{v}'"))?;
                if bits == 0 {
                    return Err(
                        "--ecc codeword size must be at least 1 cell (omit the flag to \
                         disable ECC)"
                            .to_string(),
                    );
                }
                cfg.ecc_codeword_bits = bits;
            }
            "--benign-fraction" => {
                let v = value(&mut i, "--benign-fraction")?;
                cfg.benign_fraction = v
                    .parse()
                    .map_err(|_| format!("invalid --benign-fraction '{v}'"))?;
            }
            "--refresh-interval" => {
                let v = value(&mut i, "--refresh-interval")?;
                cfg.auto_refresh_interval = v
                    .parse()
                    .map_err(|_| format!("invalid --refresh-interval '{v}'"))?;
            }
            "--threads" => {
                let v = value(&mut i, "--threads")?;
                threads = v.parse().map_err(|_| format!("invalid --threads '{v}'"))?;
                if threads == 0 {
                    return Err("--threads must be at least 1".to_string());
                }
            }
            "--kernel" => {
                let v = value(&mut i, "--kernel")?;
                kernel = v.parse()?;
            }
            "-h" | "--help" => return Ok(Invocation::Help),
            other => return Err(format!("unknown option '{other}'")),
        }
        i += 1;
    }
    cfg.validate()?;
    Ok(Invocation::Sweep(CliArgs {
        config: cfg,
        threads,
        kernel,
    }))
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<CliArgs, String> {
        let owned: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        match parse_args(&owned)? {
            Invocation::Sweep(a) => Ok(a),
            Invocation::Help => panic!("unexpected help invocation for {args:?}"),
        }
    }

    #[test]
    fn defaults_when_no_flags() {
        let a = parse(&[]).unwrap();
        assert_eq!(a.config.seed, 0xC0FFEE);
        assert_eq!(a.config.auto_refresh_interval, 32_000);
        assert_eq!(a.config.data_patterns, vec![DataPattern::Legacy]);
        assert_eq!(a.config.ecc_codeword_bits, 0);
        assert!(!a.config.extended_victim_model());
        assert!(a.threads >= 1);
        assert_eq!(a.kernel, KernelChoice::Auto);
    }

    #[test]
    fn kernel_flag_parses_and_rejects() {
        for (flag, want) in [
            ("auto", KernelChoice::Auto),
            ("scalar", KernelChoice::Scalar),
            ("avx2", KernelChoice::Avx2),
        ] {
            assert_eq!(parse(&["--kernel", flag]).unwrap().kernel, want);
        }
        let err = parse(&["--kernel", "sse2"]).unwrap_err();
        assert!(err.contains("unknown kernel 'sse2'"), "got '{err}'");
        assert!(parse(&["--kernel"]).is_err());
    }

    #[test]
    fn data_pattern_and_ecc_flags_parse() {
        let a = parse(&["--data-pattern", "legacy, rowstripe ,solid", "--ecc", "128"]).unwrap();
        assert_eq!(
            a.config.data_patterns,
            vec![
                DataPattern::Legacy,
                DataPattern::RowStripe,
                DataPattern::Solid
            ]
        );
        assert_eq!(a.config.ecc_codeword_bits, 128);
        assert!(a.config.extended_victim_model());
    }

    #[test]
    fn unknown_data_pattern_is_rejected_naming_the_valid_set() {
        let err = parse(&["--data-pattern", "legacy,zebra"]).unwrap_err();
        assert!(err.contains("unknown data pattern 'zebra'"), "got '{err}'");
        assert!(err.contains("rowstripe"), "error must list the valid set");
    }

    #[test]
    fn zero_and_oversized_ecc_codewords_are_rejected() {
        let err = parse(&["--ecc", "0"]).unwrap_err();
        assert!(err.contains("at least 1"), "got '{err}'");
        let err = parse(&["--ecc", "8193"]).unwrap_err();
        assert!(err.contains("exceeds"), "got '{err}'");
        assert!(parse(&["--ecc", "x"]).is_err());
        assert!(parse(&["--ecc"]).is_err());
        assert!(parse(&["--data-pattern", ","]).is_err());
        assert!(parse(&["--data-pattern"]).is_err());
    }

    #[test]
    fn parses_all_flags() {
        let a = parse(&[
            "--seed",
            "0xBEEF",
            "--activations",
            "5000",
            "--hc",
            "100,200",
            "--sides",
            "2,8",
            "--para-p",
            "0.01,0.001",
            "--benign-fraction",
            "0.25",
            "--refresh-interval",
            "0",
            "--threads",
            "3",
        ])
        .unwrap();
        assert_eq!(a.config.seed, 0xBEEF);
        assert_eq!(a.config.activations, 5000);
        assert_eq!(a.config.hc_firsts, vec![100, 200]);
        assert_eq!(a.config.sides, vec![2, 8]);
        assert_eq!(a.config.para_probabilities, vec![0.01, 0.001], "raw order");
        assert_eq!(a.config.benign_fraction, 0.25);
        assert_eq!(a.config.auto_refresh_interval, 0);
        assert_eq!(a.threads, 3);
    }

    #[test]
    fn hex_and_decimal_seeds() {
        assert_eq!(parse_u64_maybe_hex("0xff"), Some(255));
        assert_eq!(parse_u64_maybe_hex("0XFF"), Some(255));
        assert_eq!(parse_u64_maybe_hex("255"), Some(255));
        assert_eq!(parse_u64_maybe_hex("0x"), None);
        assert_eq!(parse_u64_maybe_hex("zz"), None);
        assert_eq!(parse_u64_maybe_hex("-1"), None);
        assert_eq!(
            parse_u64_maybe_hex("0xffffffffffffffff"),
            Some(u64::MAX),
            "full 64-bit range"
        );
        assert_eq!(parse_u64_maybe_hex("0x10000000000000000"), None, "overflow");
    }

    #[test]
    fn list_parsing_tolerates_spacing_and_trailing_commas() {
        let a = parse(&["--hc", " 100 , 200 ,"]).unwrap();
        assert_eq!(a.config.hc_firsts, vec![100, 200]);
    }

    #[test]
    fn help_flag_wins_over_other_arguments() {
        for args in [&["-h"][..], &["--help"], &["--hc", "100", "--help"]] {
            let owned: Vec<String> = args.iter().map(|s| s.to_string()).collect();
            assert!(matches!(parse_args(&owned), Ok(Invocation::Help)));
        }
    }

    #[test]
    fn para_p_kept_raw_normalization_happens_at_plan_time() {
        // Dedup/sort is owned by SweepConfig::normalized, not the parser,
        // so the reported config and executed grid can never disagree.
        let a = parse(&["--para-p", "0.01,0.0,0.01,0.001"]).unwrap();
        assert_eq!(a.config.para_probabilities, vec![0.01, 0.0, 0.01, 0.001]);
        let n = a.config.normalized();
        assert_eq!(n.para_probabilities, vec![0.0, 0.001, 0.01]);
    }

    #[test]
    fn rejection_paths_have_clear_errors() {
        for (args, needle) in [
            (
                &["--activations", "0"][..],
                "activations must be at least 1",
            ),
            (&["--activations", "x"], "--activations"),
            (&["--seed", "0x"], "--seed"),
            (&["--seed"], "requires a value"),
            (&["--hc", ","], "at least one value"),
            (&["--hc", "1,zero"], "invalid value 'zero'"),
            (&["--hc", "0"], "positive"),
            (&["--sides", "1"], "at least 2"),
            (&["--sides", ""], "at least one value"),
            (&["--para-p", ","], "at least one value"),
            (&["--para-p", "1.5"], "[0, 1]"),
            (&["--para-p", "nope"], "invalid value 'nope'"),
            (&["--benign-fraction", "2.0"], "[0, 1]"),
            (&["--refresh-interval", "-1"], "--refresh-interval"),
            (&["--threads", "0"], "--threads"),
            (&["--threads", "many"], "--threads"),
            (&["--frobnicate"], "unknown option"),
        ] {
            let err = parse(args).expect_err(&format!("{args:?} must be rejected"));
            assert!(
                err.contains(needle),
                "error for {args:?} was '{err}', expected to mention '{needle}'"
            );
        }
    }

    #[test]
    fn bench_args_parse_and_reject() {
        match parse_bench_args(&[]).unwrap() {
            BenchInvocation::Bench(o) => {
                assert!(!o.quick);
                assert_eq!(o.out_path, "BENCH_6.json");
                assert_eq!(o.repeat, 3);
                assert_eq!(o.filter, None);
                assert_eq!(o.min_acts_per_sec, None);
                assert_eq!(o.kernel, KernelChoice::Auto);
            }
            other => panic!("unexpected invocation {other:?}"),
        }
        let owned: Vec<String> = [
            "--quick",
            "--out",
            "x.json",
            "--repeat",
            "5",
            "--filter",
            "graphene",
            "--min-acts-per-sec",
            "1000000",
            "--kernel",
            "scalar",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        match parse_bench_args(&owned).unwrap() {
            BenchInvocation::Bench(o) => {
                assert!(o.quick);
                assert_eq!(o.out_path, "x.json");
                assert_eq!(o.repeat, 5);
                assert_eq!(o.filter.as_deref(), Some("graphene"));
                assert_eq!(o.min_acts_per_sec, Some(1_000_000.0));
                assert_eq!(o.kernel, KernelChoice::Scalar);
            }
            other => panic!("unexpected invocation {other:?}"),
        }
        for bad in [
            &["--out"][..],
            &["--bogus"],
            &["--repeat", "0"],
            &["--repeat", "x"],
            &["--filter"],
            &["--min-acts-per-sec", "-5"],
            &["--min-acts-per-sec", "NaN"],
            &["--min-acts-per-sec", "nope"],
            &["--kernel", "sse2"],
            &["--kernel"],
        ] {
            let owned: Vec<String> = bad.iter().map(|s| s.to_string()).collect();
            assert!(
                parse_bench_args(&owned).is_err(),
                "{bad:?} must be rejected"
            );
        }
        assert!(matches!(
            parse_bench_args(&["--help".to_string()]),
            Ok(BenchInvocation::Help)
        ));
    }

    #[test]
    fn saturation_args_parse_and_reject() {
        let owned: Vec<String> = [
            "--saturation",
            "--quick",
            "--out",
            "sat.json",
            "--workers",
            "1,2,4",
            "--kernel",
            "scalar",
            "--min-cells-per-sec",
            "10",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        match parse_bench_args(&owned).unwrap() {
            BenchInvocation::Saturation(o) => {
                assert!(o.quick);
                assert_eq!(o.out_path, "sat.json");
                assert_eq!(o.worker_counts, vec![1, 2, 4]);
                assert_eq!(o.kernel, KernelChoice::Scalar);
                assert_eq!(o.min_cells_per_sec, Some(10.0));
            }
            other => panic!("unexpected invocation {other:?}"),
        }
        // --saturation anywhere in the args switches flag sets, and the
        // defaults ask for the BENCH_7 shape.
        match parse_bench_args(&["--saturation".to_string()]).unwrap() {
            BenchInvocation::Saturation(o) => {
                assert_eq!(o.out_path, "BENCH_7.json");
                assert_eq!(o.worker_counts, vec![1, 2, 4, 8]);
            }
            other => panic!("unexpected invocation {other:?}"),
        }
        for bad in [
            &["--saturation", "--workers", "0"][..],
            &["--saturation", "--workers", "2,0"],
            &["--saturation", "--workers", "x"],
            &["--saturation", "--min-cells-per-sec", "-1"],
            &["--saturation", "--repeat", "3"], // bench-only flag
        ] {
            let owned: Vec<String> = bad.iter().map(|s| s.to_string()).collect();
            assert!(
                parse_bench_args(&owned).is_err(),
                "{bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn serve_args_parse_and_reject() {
        match parse_serve_args(&[]).unwrap() {
            ServeInvocation::Serve(o) => {
                assert_eq!(o.workers, 2);
                assert_eq!(o.listen, None);
                assert_eq!(o.cache_capacity, crate::cache::DEFAULT_CAPACITY);
                assert!(o.checkpoint_dir.is_none());
            }
            ServeInvocation::Help => panic!("unexpected help"),
        }
        let owned: Vec<String> = [
            "--workers",
            "0",
            "--listen",
            "127.0.0.1:0",
            "--kernel",
            "scalar",
            "--cache-capacity",
            "7",
            "--checkpoint-dir",
            "/tmp/ckpt",
            "--shard-cells",
            "4",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        match parse_serve_args(&owned).unwrap() {
            ServeInvocation::Serve(o) => {
                assert_eq!(o.workers, 0);
                assert_eq!(o.listen.as_deref(), Some("127.0.0.1:0"));
                assert_eq!(o.kernel, KernelChoice::Scalar);
                assert_eq!(o.cache_capacity, 7);
                assert_eq!(
                    o.checkpoint_dir.as_deref(),
                    Some(std::path::Path::new("/tmp/ckpt"))
                );
                assert_eq!(o.shard_cells, 4);
            }
            ServeInvocation::Help => panic!("unexpected help"),
        }
        for bad in [
            // A pool of zero local workers with nowhere for TCP workers to
            // attach can never make progress.
            &["--workers", "0"][..],
            &["--workers", "x"],
            &["--cache-capacity", "0"],
            &["--shard-cells", "0"],
            &["--bogus"],
        ] {
            let owned: Vec<String> = bad.iter().map(|s| s.to_string()).collect();
            assert!(
                parse_serve_args(&owned).is_err(),
                "{bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn worker_and_submit_args_parse_and_reject() {
        match parse_worker_args(&[]).unwrap() {
            WorkerInvocation::Worker(o) => {
                assert_eq!(o.connect, None);
                assert_eq!(o.exit_after_cells, None);
            }
            WorkerInvocation::Help => panic!("unexpected help"),
        }
        let owned: Vec<String> = ["--connect", "127.0.0.1:9", "--exit-after-cells", "3"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        match parse_worker_args(&owned).unwrap() {
            WorkerInvocation::Worker(o) => {
                assert_eq!(o.connect.as_deref(), Some("127.0.0.1:9"));
                assert_eq!(o.exit_after_cells, Some(3));
            }
            WorkerInvocation::Help => panic!("unexpected help"),
        }
        assert!(parse_worker_args(&["--exit-after-cells".to_string(), "0".to_string()]).is_err());
        assert!(parse_worker_args(&["--bogus".to_string()]).is_err());

        let owned: Vec<String> = ["--connect", "127.0.0.1:9"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        match parse_submit_args(&owned).unwrap() {
            SubmitInvocation::Submit(o) => assert_eq!(o.connect, "127.0.0.1:9"),
            SubmitInvocation::Help => panic!("unexpected help"),
        }
        // submit without a coordinator address is meaningless.
        assert!(parse_submit_args(&[]).is_err());
        assert!(parse_submit_args(&["--bogus".to_string()]).is_err());
        assert!(matches!(
            parse_submit_args(&["--help".to_string()]),
            Ok(SubmitInvocation::Help)
        ));
    }

    #[test]
    fn chaos_flags_parse_and_reject() {
        let owned: Vec<String> = [
            "--cache-dir",
            "/tmp/rhcache",
            "--config-epoch",
            "7",
            "--fallback-after-ms",
            "250",
            "--speculate-after-ms",
            "400",
            "--fault-plan",
            "corrupt-cache-record=2",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        match parse_serve_args(&owned).unwrap() {
            ServeInvocation::Serve(o) => {
                assert_eq!(
                    o.cache_dir.as_deref(),
                    Some(std::path::Path::new("/tmp/rhcache"))
                );
                assert_eq!(o.config_epoch, 7);
                assert_eq!(
                    o.fallback_after,
                    Some(std::time::Duration::from_millis(250))
                );
                assert_eq!(
                    o.speculate_after,
                    Some(std::time::Duration::from_millis(400))
                );
                assert_eq!(o.fault_plan.corrupt_cache_records(), &[2]);
            }
            ServeInvocation::Help => panic!("unexpected help"),
        }
        // --speculate-after-ms 0 disables speculation entirely.
        let owned: Vec<String> = ["--speculate-after-ms", "0"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        match parse_serve_args(&owned).unwrap() {
            ServeInvocation::Serve(o) => assert_eq!(o.speculate_after, None),
            ServeInvocation::Help => panic!("unexpected help"),
        }
        // --fallback-after-ms makes a workerless, listenerless coordinator
        // viable (it degrades to in-process execution).
        let owned: Vec<String> = ["--workers", "0", "--fallback-after-ms", "1"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(parse_serve_args(&owned).is_ok());
        // A malformed fault plan is rejected at parse time with the bad
        // directive named.
        let owned: Vec<String> = ["--fault-plan", "explode-now=1"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let err = parse_serve_args(&owned).unwrap_err();
        assert!(err.contains("explode-now"), "got '{err}'");

        let owned: Vec<String> = [
            "--connect",
            "127.0.0.1:9",
            "--fault-plan",
            "crash-after-cells=3,drop-line=2",
            "--config-epoch",
            "9",
            "--retry",
            "4",
            "--backoff-ms",
            "50",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        match parse_worker_args(&owned).unwrap() {
            WorkerInvocation::Worker(o) => {
                assert_eq!(o.fault_plan.crash_pending_at(), Some(3));
                assert_eq!(o.config_epoch, 9);
                assert_eq!(o.retries, 4);
                assert_eq!(o.backoff_base_ms, 50);
            }
            WorkerInvocation::Help => panic!("unexpected help"),
        }
        assert!(parse_worker_args(&["--backoff-ms".into(), "0".into()]).is_err());
        assert!(parse_worker_args(&["--fault-plan".into(), "drop-line=0".into()]).is_err());

        let owned: Vec<String> = ["--connect", "127.0.0.1:9", "--timeout", "5"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        match parse_submit_args(&owned).unwrap() {
            SubmitInvocation::Submit(o) => {
                assert_eq!(o.timeout, Some(std::time::Duration::from_secs(5)));
            }
            SubmitInvocation::Help => panic!("unexpected help"),
        }
        assert!(parse_submit_args(&[
            "--connect".into(),
            "127.0.0.1:9".into(),
            "--timeout".into(),
            "0".into()
        ])
        .is_err());
    }

    /// Write a token file into a scratch dir and return its path.
    fn token_file(tag: &str, contents: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("rh-cli-token-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("token");
        std::fs::write(&path, contents).unwrap();
        path
    }

    #[test]
    fn job_manager_serve_flags_parse_and_reject() {
        let token = token_file("serve", "sekrit\n");
        let owned: Vec<String> = [
            "--max-pending-jobs",
            "3",
            "--max-jobs-per-client",
            "2",
            "--max-cells-per-client",
            "500",
            "--target-lease-ms",
            "0",
            "--handshake-timeout-ms",
            "1500",
            "--auth-token-file",
            token.to_str().unwrap(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        match parse_serve_args(&owned).unwrap() {
            ServeInvocation::Serve(o) => {
                assert_eq!(o.max_pending_jobs, 3);
                assert_eq!(o.max_jobs_per_client, 2);
                assert_eq!(o.max_cells_per_client, 500);
                assert_eq!(o.target_lease_ms, 0, "0 disables the adaptive sizer");
                assert_eq!(o.handshake_timeout, std::time::Duration::from_millis(1500));
                assert_eq!(o.auth_token.as_deref(), Some("sekrit"), "token is trimmed");
            }
            ServeInvocation::Help => panic!("unexpected help"),
        }
        // Defaults: admission on with generous bounds, adaptive sizing on,
        // no auth.
        match parse_serve_args(&[]).unwrap() {
            ServeInvocation::Serve(o) => {
                assert_eq!(o.max_pending_jobs, 64);
                assert_eq!(o.max_jobs_per_client, 16);
                assert_eq!(o.target_lease_ms, 1500);
                assert_eq!(o.handshake_timeout, std::time::Duration::from_secs(10));
                assert_eq!(o.auth_token, None);
            }
            ServeInvocation::Help => panic!("unexpected help"),
        }
        for bad in [
            &["--max-pending-jobs", "0"][..],
            &["--max-pending-jobs", "x"],
            &["--max-jobs-per-client", "0"],
            &["--max-cells-per-client", "0"],
            &["--target-lease-ms", "soon"],
            // A zero handshake deadline would reject every connection.
            &["--handshake-timeout-ms", "0"],
            &["--auth-token-file", "/nonexistent/rh-token"],
        ] {
            let owned: Vec<String> = bad.iter().map(|s| s.to_string()).collect();
            assert!(
                parse_serve_args(&owned).is_err(),
                "{bad:?} must be rejected"
            );
        }
        // An empty (or whitespace-only) token file authenticates nobody.
        let empty = token_file("serve-empty", " \n");
        let owned: Vec<String> = ["--auth-token-file", empty.to_str().unwrap()]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let err = parse_serve_args(&owned).unwrap_err();
        assert!(err.contains("empty"), "got '{err}'");
    }

    #[test]
    fn auth_deadline_and_cancel_flags_parse_and_reject() {
        let token = token_file("client", "hunter2");
        // Worker side: the token lands in WorkerOptions.
        let owned: Vec<String> = [
            "--connect",
            "127.0.0.1:9",
            "--auth-token-file",
            token.to_str().unwrap(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        match parse_worker_args(&owned).unwrap() {
            WorkerInvocation::Worker(o) => assert_eq!(o.auth_token.as_deref(), Some("hunter2")),
            WorkerInvocation::Help => panic!("unexpected help"),
        }
        // Submit side: deadline and token.
        let owned: Vec<String> = [
            "--connect",
            "127.0.0.1:9",
            "--job-deadline-ms",
            "2500",
            "--auth-token-file",
            token.to_str().unwrap(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        match parse_submit_args(&owned).unwrap() {
            SubmitInvocation::Submit(o) => {
                assert_eq!(o.deadline_ms, Some(2500));
                assert_eq!(o.auth_token.as_deref(), Some("hunter2"));
            }
            SubmitInvocation::Help => panic!("unexpected help"),
        }
        // Defaults stay off.
        let owned: Vec<String> = ["--connect", "127.0.0.1:9"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        match parse_submit_args(&owned).unwrap() {
            SubmitInvocation::Submit(o) => {
                assert_eq!(o.deadline_ms, None);
                assert_eq!(o.auth_token, None);
            }
            SubmitInvocation::Help => panic!("unexpected help"),
        }
        assert!(parse_submit_args(&[
            "--connect".into(),
            "127.0.0.1:9".into(),
            "--job-deadline-ms".into(),
            "0".into()
        ])
        .is_err());

        // Cancel verb.
        let owned: Vec<String> = [
            "--connect",
            "127.0.0.1:9",
            "--id",
            "job-42",
            "--timeout",
            "5",
            "--auth-token-file",
            token.to_str().unwrap(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        match parse_cancel_args(&owned).unwrap() {
            CancelInvocation::Cancel(o) => {
                assert_eq!(o.connect, "127.0.0.1:9");
                assert_eq!(o.id, "job-42");
                assert_eq!(o.timeout, Some(std::time::Duration::from_secs(5)));
                assert_eq!(o.auth_token.as_deref(), Some("hunter2"));
            }
            CancelInvocation::Help => panic!("unexpected help"),
        }
        // Both --connect and --id are mandatory; bad flags are named.
        assert!(parse_cancel_args(&[]).is_err());
        assert!(parse_cancel_args(&["--connect".into(), "127.0.0.1:9".into()]).is_err());
        assert!(parse_cancel_args(&["--id".into(), "job-42".into()]).is_err());
        assert!(parse_cancel_args(&["--bogus".into()]).is_err());
        assert!(matches!(
            parse_cancel_args(&["--help".to_string()]),
            Ok(CancelInvocation::Help)
        ));
    }

    #[test]
    fn nan_para_p_is_rejected() {
        // f64::from_str accepts "NaN"; range validation must still catch it.
        let err = parse(&["--para-p", "NaN"]).unwrap_err();
        assert!(err.contains("[0, 1]"), "got '{err}'");
    }
}
