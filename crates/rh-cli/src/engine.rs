//! The simulation engine: one experiment = one (device, workload,
//! mitigation) triple driven for a fixed activation budget.
//!
//! Per activation the engine (1) asks the workload for the next row,
//! (2) lets the mitigation observe it, (3) applies the activation to the
//! device, then (4) applies the mitigation's refresh actions. Activations
//! double as the unit of simulated time: the periodic auto-refresh that
//! real DRAM performs every tREFW is modeled as a full-device refresh every
//! `auto_refresh_interval` activations.
//!
//! The loop is allocation-free: the caller supplies the device (built once
//! per worker thread and reset per cell), and one [`ActionBuf`] sink is
//! cleared and refilled per activation instead of collecting a fresh `Vec`.
//! The engine is generic over [`Device`] so the benchmark harness and
//! differential tests can drive the retained eager reference implementation
//! through the identical loop.

use rh_core::{Device, RowAddr};
use rh_mitigations::{ActionBuf, Mitigation, MitigationAction};
use rh_workloads::Workload;

/// Outcome of a single experiment run.
#[derive(Debug, Clone)]
pub struct RunResult {
    pub workload: String,
    pub mitigation: String,
    pub hc_first: u64,
    pub activations: u64,
    pub total_flips: u64,
    pub flipped_rows: u64,
    pub flips_per_mact: f64,
    pub refreshes_issued: u64,
}

/// Drive `workload` through `mitigation` into `device` for `activations`
/// steps, emitting mitigation actions into the reusable `actions` sink.
///
/// The device must be freshly constructed or reset
/// (`DeviceState::reset_for_cell`) — the engine accounts activations and
/// flips from zero. Determinism: the result is a pure function of the
/// device's tables/seed and the workload/mitigation construction seeds,
/// which is the basis for common-random-number comparisons across
/// mitigations and for byte-identical sharded sweeps.
pub fn run_experiment<D: Device>(
    device: &mut D,
    workload: &mut dyn Workload,
    mitigation: &mut dyn Mitigation,
    activations: u64,
    auto_refresh_interval: u64,
    actions: &mut ActionBuf,
) -> RunResult {
    let geom = *device.geometry();
    for step in 1..=activations {
        let addr: RowAddr = workload.next_access();
        actions.clear();
        mitigation.on_activate(addr, &geom, actions);
        device.activate(addr);
        for action in actions.actions() {
            match *action {
                MitigationAction::RefreshRow(row) => device.refresh_row(row),
                MitigationAction::RefreshAll => device.refresh_all(),
            }
        }
        if auto_refresh_interval > 0 && step % auto_refresh_interval == 0 {
            device.refresh_all();
            mitigation.reset();
        }
    }
    RunResult {
        workload: workload.name(),
        mitigation: mitigation.name(),
        hc_first: device.params().hc_first,
        activations,
        total_flips: device.total_flips(),
        flipped_rows: device.flipped_rows(),
        flips_per_mact: device.flips_per_mact(),
        refreshes_issued: device.refreshes_issued(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rh_core::{DeviceState, EagerDeviceState, Geometry, VictimModelParams};
    use rh_mitigations::NoMitigation;
    use rh_workloads::SingleSided;

    fn run(
        geom: Geometry,
        params: VictimModelParams,
        activations: u64,
        refresh_interval: u64,
    ) -> RunResult {
        let mut device = DeviceState::new(geom, params, 1);
        let mut w = SingleSided::new(RowAddr::bank_row(0, 32));
        run_experiment(
            &mut device,
            &mut w,
            &mut NoMitigation,
            activations,
            refresh_interval,
            &mut ActionBuf::new(),
        )
    }

    #[test]
    fn unmitigated_hammer_flips_auto_refresh_prevents() {
        let geom = Geometry::tiny(64);
        let params = VictimModelParams::with_hc_first(1000);

        let r = run(geom, params, 5_000, 0);
        assert!(r.total_flips > 0, "unmitigated hammering must flip bits");

        // Auto-refresh well below HC_first: no window accumulates enough.
        let r = run(geom, params, 5_000, 500);
        assert_eq!(r.total_flips, 0);
    }

    fn drive<D: Device>(device: &mut D) -> RunResult {
        let mut w = SingleSided::new(RowAddr::bank_row(0, 32));
        run_experiment(
            device,
            &mut w,
            &mut NoMitigation,
            5_000,
            1_500,
            &mut ActionBuf::new(),
        )
    }

    #[test]
    fn optimized_and_eager_devices_agree_through_the_engine() {
        let geom = Geometry::tiny(64);
        let params = VictimModelParams::with_hc_first(1000);
        let a = drive(&mut DeviceState::new(geom, params, 1));
        let b = drive(&mut EagerDeviceState::new(geom, params, 1));
        assert_eq!(a.total_flips, b.total_flips);
        assert_eq!(a.flipped_rows, b.flipped_rows);
        assert_eq!(a.refreshes_issued, b.refreshes_issued);
        assert!(a.total_flips > 0);
    }
}
