//! The simulation engine: one experiment = one (device, workload,
//! mitigation) triple driven for a fixed activation budget.
//!
//! Per activation the engine (1) asks the workload for the next row,
//! (2) lets the mitigation observe it, (3) applies the activation to the
//! device, then (4) applies the mitigation's refresh actions. Activations
//! double as the unit of simulated time: the periodic auto-refresh that
//! real DRAM performs every tREFW is modeled as a full-device refresh every
//! `auto_refresh_interval` activations.
//!
//! ## Hot-loop shape
//!
//! The loop is **batched**: activations are pulled from the workload in
//! fixed-size chunks ([`BATCH`]) into a reusable buffer via
//! [`Workload::fill_batch`] — one virtual call per chunk, with the fill
//! loop monomorphized inside the concrete workload — and the per-chunk
//! inner loop applies mitigation observation, device charge updates, victim
//! settling, and mitigation actions with zero virtual dispatch: the engine
//! is generic over [`Device`] *and* [`Mitigation`], and the executor
//! instantiates it with the [`rh_mitigations::MitigationKind`] enum, so
//! per-activation mitigation dispatch is a match on a variant tag that
//! inlines each `on_activate` body into the loop. Chunks are clipped to the
//! next tREFW boundary, so batching is byte-identical to the unbatched
//! step-at-a-time loop (which the benchmark harness retains as its legacy
//! path).
//!
//! On top of batching, the inner loop **coalesces activation runs**: it
//! keeps a small group of pending `(address, count)` runs and applies each
//! as one [`Device::activate_repeat`] call, which walks the blast window
//! once with register-resident per-victim partial sums and settles once.
//! A repeat of a pending address extends its run; a *new* address may open
//! another run only if the device vouches — [`Device::runs_commute`] —
//! that its window either misses every pending window or meets it only on
//! lanes drawing *equal* quanta from both (then every shared lane's charge
//! is a sum of equal addends, which any interleaving evaluates to the same
//! bits). Under the default radius-2 model that covers exactly the
//! double-/many-sided attack geometry (aggressors 2 rows apart), so the
//! classic alternating patterns coalesce as thoroughly as single-sided
//! repeats. This is exact, not approximate: nothing else touches the
//! device while runs pend, `activate_repeat` performs the identical
//! per-lane fp additions in the identical order, and recorded flips are a
//! monotone function of each lane's (monotone nondecreasing) charge — so
//! settling at flush time records what per-activation settling would have
//! (see the `rh-core` kernel docs). The mitigation still observes every
//! activation individually, so sampling mitigations (PARA) consume their
//! RNG stream and tracker tables count activations exactly as in the
//! step-at-a-time loop; any emitted action — and every tREFW boundary —
//! flushes the pending group before the refresh lands.
//!
//! Two details keep the group bookkeeping off the critical path:
//!
//! * **Hot-run prediction, then one branchless scan.** Attack patterns
//!   cycle their aggressors in order, so the run extended by an
//!   activation is almost always the previously extended one or its
//!   successor — checked with two compares before any scan. On a miss,
//!   membership ("is this address already a pending run?") and proximity
//!   ("could it fail to commute with one?") are answered together by a
//!   single pass over packed two-word address keys kept parallel to the
//!   run list, using the device's [`Device::conflict_radius`] structure
//!   hint. The exact (and slower) pairwise [`Device::runs_commute`] check
//!   only runs for the rare address that lands within the conflict radius
//!   of a pending run.
//! * **Full-group bypass.** When the group is at capacity and a commuting
//!   newcomer arrives (scattered benign traffic, typically), it is applied
//!   immediately as a single activation instead of flushing the group:
//!   commuting with every pending run makes the early application
//!   bit-exact (it is a length-1 run applied eagerly; shared lanes draw
//!   equal quanta, and its early settle is completed by the flush-time
//!   settle of whichever pending run shares the lane). Long-lived
//!   aggressor runs therefore keep coalescing to the chunk end instead of
//!   being flushed and re-walked every time scattered traffic overflows
//!   the group.
//!
//! The loop is allocation-free: the caller supplies the device (built once
//! per worker thread and reset per cell) and an [`EngineScratch`] whose
//! buffers reach steady-state capacity within the first chunk and are
//! reused for the rest of the run.

use rh_core::{Device, RowAddr};
use rh_mitigations::{ActionBuf, Mitigation, MitigationAction};
use rh_workloads::Workload;

/// Activations pulled from the workload per chunk. Large enough to amortize
/// the per-chunk virtual call to nothing, small enough that the chunk
/// buffer (16 bytes/address → 16 KiB) stays L1-resident.
pub const BATCH: usize = 1024;

/// Reusable per-run buffers for the engine hot loop: the mitigation action
/// sink, the workload chunk buffer, and the pending-run group. One instance
/// per worker thread, reused across every cell the worker executes.
#[derive(Debug, Default)]
pub struct EngineScratch {
    /// Sink the mitigation writes refresh actions into (cleared per
    /// activation, capacity retained).
    actions: ActionBuf,
    /// Chunk of upcoming activations (refilled per [`BATCH`], capacity
    /// retained).
    batch: Vec<RowAddr>,
    /// Pending coalesced activation runs, in first-seen order (capacity
    /// retained; bounded by [`RUN_GROUP_CAP`]).
    runs: Vec<(RowAddr, u64)>,
    /// Packed address keys parallel to `runs`, so the per-activation
    /// membership/proximity scan compares two words per entry instead of
    /// chasing struct fields.
    keys: Vec<(u64, u64)>,
}

/// Maximum simultaneously pending runs. Large enough for the widest
/// many-sided pattern in the sweep (8 aggressors) plus a first wave of
/// interleaved benign rows; small enough that the per-activation scan stays
/// a handful of compares. Overflow does not flush: commuting newcomers
/// bypass the group as immediate single activations.
const RUN_GROUP_CAP: usize = 16;

/// Pack an address into the two-word key the group scan compares: channel
/// and rank in the first word, bank and row in the second (row in the low
/// half, so same-bank row distance is one masked subtraction).
#[inline]
fn pack_key(a: RowAddr) -> (u64, u64) {
    (
        ((a.channel as u64) << 32) | a.rank as u64,
        ((a.bank as u64) << 32) | a.row as u64,
    )
}

/// One pass over the pending-run keys answering both questions the
/// coalescer asks about an incoming address: the index of its existing run
/// (`usize::MAX` when absent) and whether it lands within `radius` rows of
/// any same-bank pending run — the only geometry in which it could fail to
/// commute, per the [`Device::conflict_radius`] contract. Written without
/// early exits so the compiler keeps the whole scan branch-free.
#[inline]
fn scan_runs(keys: &[(u64, u64)], key: (u64, u64), radius: u64) -> (usize, bool) {
    let mut found = usize::MAX;
    let mut near = false;
    for (j, &(k0, k1)) in keys.iter().enumerate() {
        if (k0, k1) == key {
            found = j;
        }
        let same_bank = k0 == key.0 && (k1 >> 32) == (key.1 >> 32);
        let dist = (k1 & u64::from(u32::MAX)).abs_diff(key.1 & u64::from(u32::MAX));
        near |= same_bank && dist <= radius;
    }
    (found, near)
}

/// Apply every pending run to the device, in first-seen order (any order
/// is bit-identical — that's the group invariant — but first-seen is
/// deterministic and cache-friendly).
#[inline]
fn flush_runs<D: Device + ?Sized>(
    runs: &mut Vec<(RowAddr, u64)>,
    keys: &mut Vec<(u64, u64)>,
    device: &mut D,
) {
    for &(addr, n) in runs.iter() {
        device.activate_repeat(addr, n);
    }
    runs.clear();
    keys.clear();
}

impl EngineScratch {
    pub fn new() -> Self {
        Self::default()
    }
}

/// Outcome of a single experiment run.
#[derive(Debug, Clone)]
pub struct RunResult {
    pub workload: String,
    pub mitigation: String,
    pub hc_first: u64,
    /// Stored data pattern the device ran under (`"legacy"` for the
    /// pattern-agnostic model).
    pub data_pattern: String,
    pub activations: u64,
    /// Raw (pre-ECC) bit flips recorded by the device.
    pub total_flips: u64,
    pub flipped_rows: u64,
    pub flips_per_mact: f64,
    pub refreshes_issued: u64,
    /// Flips in true-cell rows (1→0); with `flips_0to1` this partitions
    /// `total_flips`.
    pub flips_1to0: u64,
    /// Flips in anti-cell rows (0→1).
    pub flips_0to1: u64,
    /// Flips still visible after on-die ECC; `None` when ECC is disabled.
    pub post_ecc_flips: Option<u64>,
}

/// Drive `workload` through `mitigation` into `device` for `activations`
/// steps, using `scratch` for the chunk buffer and action sink.
///
/// The device must be freshly constructed or reset
/// (`DeviceState::reset_for_cell`) — the engine accounts activations and
/// flips from zero. Determinism: the result is a pure function of the
/// device's tables/seed and the workload/mitigation construction seeds,
/// which is the basis for common-random-number comparisons across
/// mitigations and for byte-identical sharded sweeps. Chunking never
/// crosses a tREFW boundary, and run coalescing is exact (see the module
/// docs), so results are identical for any chunk size — including the
/// unbatched step-at-a-time loop the benchmark harness retains as its
/// legacy path.
pub fn run_experiment<D, W, M>(
    device: &mut D,
    workload: &mut W,
    mitigation: &mut M,
    activations: u64,
    auto_refresh_interval: u64,
    scratch: &mut EngineScratch,
) -> RunResult
where
    D: Device,
    W: Workload + ?Sized,
    M: Mitigation + ?Sized,
{
    let geom = *device.geometry();
    let EngineScratch {
        actions,
        batch,
        runs,
        keys,
    } = scratch;
    runs.clear();
    keys.clear();
    // Structure hint for the proximity prefilter, resolved once per run:
    // `Some(r)` lets the scan rule out conflicts by bank and row distance;
    // `None` (no structure) falls back to the exact pairwise check whenever
    // any other address is pending.
    let conflict_radius = device.conflict_radius();
    // Index of the run extended by the previous activation. Attack
    // patterns cycle their aggressors in order, so the next activation
    // almost always extends run `hot` (single-sided) or `hot + 1`
    // (double-/many-sided cycling) — two compares instead of a group scan.
    let mut hot = 0usize;
    let mut remaining = activations;
    let mut until_refresh = if auto_refresh_interval > 0 {
        auto_refresh_interval
    } else {
        u64::MAX
    };
    while remaining > 0 {
        let n = remaining.min(until_refresh).min(BATCH as u64);
        workload.fill_batch(batch, n as usize);
        for &addr in batch.iter() {
            actions.clear();
            mitigation.on_activate(addr, &geom, actions);
            let key = pack_key(addr);
            // Hot-run prediction, then the group scan on a miss. `near` is
            // irrelevant when a run is found (membership short-circuits the
            // commute question), so the prediction hit reports `true`
            // harmlessly.
            let (found, near) = if keys.get(hot) == Some(&key) {
                (hot, true)
            } else {
                let next = if hot + 1 < keys.len() { hot + 1 } else { 0 };
                if keys.get(next) == Some(&key) {
                    (next, true)
                } else {
                    match conflict_radius {
                        Some(r) => scan_runs(keys, key, u64::from(r)),
                        None => {
                            let found = runs
                                .iter()
                                .position(|run| run.0 == addr)
                                .unwrap_or(usize::MAX);
                            (found, !runs.is_empty())
                        }
                    }
                }
            };
            if actions.is_empty() {
                if found != usize::MAX {
                    runs[found].1 += 1;
                    hot = found;
                } else if !near || runs.iter().all(|run| device.runs_commute(run.0, addr)) {
                    if runs.len() < RUN_GROUP_CAP {
                        hot = runs.len();
                        runs.push((addr, 1));
                        keys.push(key);
                    } else {
                        // Full-group bypass (see the module docs): a
                        // commuting one-off is applied eagerly instead of
                        // flushing the long-lived runs.
                        device.activate(addr);
                    }
                } else {
                    flush_runs(runs, keys, device);
                    runs.push((addr, 1));
                    keys.push(key);
                    hot = 0;
                }
                continue;
            }
            // The mitigation acted: the pending group (folding this
            // activation into its run when the address is already a member)
            // must hit the device before the refresh actions do.
            if found != usize::MAX {
                runs[found].1 += 1;
                flush_runs(runs, keys, device);
            } else {
                flush_runs(runs, keys, device);
                device.activate(addr);
            }
            hot = 0;
            for action in actions.actions() {
                match *action {
                    MitigationAction::RefreshRow(row) => device.refresh_row(row),
                    MitigationAction::RefreshAll => device.refresh_all(),
                }
            }
        }
        // Flush the tail group before the chunk's tREFW boundary fires.
        flush_runs(runs, keys, device);
        remaining -= n;
        if auto_refresh_interval > 0 {
            until_refresh -= n;
            if until_refresh == 0 {
                device.refresh_all();
                mitigation.reset();
                until_refresh = auto_refresh_interval;
            }
        }
    }
    RunResult {
        workload: workload.name(),
        mitigation: mitigation.name(),
        hc_first: device.params().hc_first,
        data_pattern: device.params().data_pattern.name().to_string(),
        activations,
        total_flips: device.total_flips(),
        flipped_rows: device.flipped_rows(),
        flips_per_mact: device.flips_per_mact(),
        refreshes_issued: device.refreshes_issued(),
        flips_1to0: device.flips_1to0(),
        flips_0to1: device.flips_0to1(),
        post_ecc_flips: device.post_ecc_flips(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rh_core::{DeviceState, EagerDeviceState, Geometry, VictimModelParams};
    use rh_mitigations::NoMitigation;
    use rh_workloads::SingleSided;

    fn run(
        geom: Geometry,
        params: VictimModelParams,
        activations: u64,
        refresh_interval: u64,
    ) -> RunResult {
        let mut device = DeviceState::new(geom, params, 1);
        let mut w = SingleSided::new(RowAddr::bank_row(0, 32));
        run_experiment(
            &mut device,
            &mut w,
            &mut NoMitigation,
            activations,
            refresh_interval,
            &mut EngineScratch::new(),
        )
    }

    #[test]
    fn unmitigated_hammer_flips_auto_refresh_prevents() {
        let geom = Geometry::tiny(64);
        let params = VictimModelParams::with_hc_first(1000);

        let r = run(geom, params, 5_000, 0);
        assert!(r.total_flips > 0, "unmitigated hammering must flip bits");

        // Auto-refresh well below HC_first: no window accumulates enough.
        let r = run(geom, params, 5_000, 500);
        assert_eq!(r.total_flips, 0);
    }

    /// Chunking must not move the tREFW boundary: intervals that are not
    /// multiples of BATCH (and smaller than BATCH) must refresh at exactly
    /// the same activation counts as the step-at-a-time loop.
    #[test]
    fn batched_refresh_boundaries_match_unbatched_loop() {
        let geom = Geometry::tiny(64);
        let params = VictimModelParams::with_hc_first(1000);
        for interval in [1u64, 499, 500, 1000, 1023, 1024, 1025, 4096, 7777] {
            for activations in [5_000u64, 5_120] {
                let batched = run(geom, params, activations, interval);
                // Reference: unbatched loop, refresh when step % interval == 0.
                let mut device = DeviceState::new(geom, params, 1);
                let mut w = SingleSided::new(RowAddr::bank_row(0, 32));
                for step in 1..=activations {
                    device.activate(w.next_access());
                    if step % interval == 0 {
                        device.refresh_all();
                    }
                }
                assert_eq!(
                    batched.refreshes_issued,
                    device.refreshes_issued(),
                    "interval {interval} acts {activations}"
                );
                assert_eq!(
                    batched.total_flips,
                    device.total_flips(),
                    "interval {interval} acts {activations}"
                );
            }
        }
    }

    fn drive<D: Device>(device: &mut D) -> RunResult {
        let mut w = SingleSided::new(RowAddr::bank_row(0, 32));
        run_experiment(
            device,
            &mut w,
            &mut NoMitigation,
            5_000,
            1_500,
            &mut EngineScratch::new(),
        )
    }

    #[test]
    fn optimized_and_eager_devices_agree_through_the_engine() {
        let geom = Geometry::tiny(64);
        let params = VictimModelParams::with_hc_first(1000);
        let a = drive(&mut DeviceState::new(geom, params, 1));
        let b = drive(&mut EagerDeviceState::new(geom, params, 1));
        assert_eq!(a.total_flips, b.total_flips);
        assert_eq!(a.flipped_rows, b.flipped_rows);
        assert_eq!(a.refreshes_issued, b.refreshes_issued);
        assert!(a.total_flips > 0);
    }

    /// A mitigation that refreshes one victim of every `k`-th activation —
    /// built to break coalesced runs mid-stream, so the flush ordering
    /// (pending run before the action's refresh) is what's under test.
    struct EveryKth {
        k: u64,
        seen: u64,
    }

    impl Mitigation for EveryKth {
        fn name(&self) -> String {
            format!("every-{}th", self.k)
        }

        fn on_activate(&mut self, addr: RowAddr, geom: &Geometry, out: &mut ActionBuf) {
            self.seen += 1;
            if self.seen.is_multiple_of(self.k) && addr.row + 1 < geom.rows_per_bank {
                out.refresh_row(RowAddr {
                    row: addr.row + 1,
                    ..addr
                });
            }
        }

        fn reset(&mut self) {}
    }

    /// The coalescer must be invisible: with a mitigation firing actions at
    /// arbitrary points inside same-address runs, the engine must match the
    /// definitional step-at-a-time loop on every observable. The eager
    /// reference keeps the default one-at-a-time `activate_repeat`, so
    /// driving it through the same engine exercises exactly that
    /// comparison; `k` sweeps runs broken at different offsets.
    #[test]
    fn coalesced_runs_broken_by_mitigation_actions_match_stepwise_loop() {
        let geom = Geometry::tiny(64);
        let params = VictimModelParams::with_hc_first(300);
        for k in [1u64, 2, 3, 7, 64, 1000] {
            let mut fast = DeviceState::new(geom, params, 1);
            let mut w = SingleSided::new(RowAddr::bank_row(0, 32));
            let a = run_experiment(
                &mut fast,
                &mut w,
                &mut EveryKth { k, seen: 0 },
                20_000,
                7_777,
                &mut EngineScratch::new(),
            );
            let mut eager = EagerDeviceState::new(geom, params, 1);
            let mut w = SingleSided::new(RowAddr::bank_row(0, 32));
            let b = run_experiment(
                &mut eager,
                &mut w,
                &mut EveryKth { k, seen: 0 },
                20_000,
                7_777,
                &mut EngineScratch::new(),
            );
            assert_eq!(a.total_flips, b.total_flips, "k={k}");
            assert_eq!(a.flipped_rows, b.flipped_rows, "k={k}");
            assert_eq!(a.refreshes_issued, b.refreshes_issued, "k={k}");
            assert_eq!(a.flips_1to0, b.flips_1to0, "k={k}");
            assert_eq!(a.flips_0to1, b.flips_0to1, "k={k}");
            if k > 3 {
                assert!(a.total_flips > 0, "k={k} must exercise flips");
            }
        }
    }

    /// The full-group bypass and the packed-key scan must also be
    /// invisible when the traffic mixes wide aggressor sets with scattered
    /// benign rows — the geometry that exercises overflow, proximity
    /// conflicts, and eager application together.
    #[test]
    fn mixed_benign_traffic_matches_eager_reference() {
        use rh_workloads::WorkloadSpec;
        let geom = Geometry {
            channels: 1,
            ranks: 1,
            banks: 2,
            rows_per_bank: 256,
        };
        let params = VictimModelParams::with_hc_first(400);
        for spec in [
            WorkloadSpec::SingleSided,
            WorkloadSpec::DoubleSided,
            WorkloadSpec::ManySided { sides: 8 },
        ] {
            let mut w = spec.build(&geom, 0.25, 0xBE7C4).unwrap();
            let mut fast = DeviceState::new(geom, params, 1);
            let a = run_experiment(
                &mut fast,
                &mut w,
                &mut NoMitigation,
                50_000,
                7_777,
                &mut EngineScratch::new(),
            );
            let mut w = spec.build(&geom, 0.25, 0xBE7C4).unwrap();
            let mut eager = EagerDeviceState::new(geom, params, 1);
            let b = run_experiment(
                &mut eager,
                &mut w,
                &mut NoMitigation,
                50_000,
                7_777,
                &mut EngineScratch::new(),
            );
            assert_eq!(a.total_flips, b.total_flips, "{}", a.workload);
            assert_eq!(a.flipped_rows, b.flipped_rows, "{}", a.workload);
            assert_eq!(a.flips_1to0, b.flips_1to0, "{}", a.workload);
            assert_eq!(a.flips_0to1, b.flips_0to1, "{}", a.workload);
            assert!(a.total_flips > 0, "{} must exercise flips", a.workload);
        }
    }
}
