//! The simulation engine: one experiment = one (device, workload,
//! mitigation) triple driven for a fixed activation budget.
//!
//! Per activation the engine (1) asks the workload for the next row,
//! (2) lets the mitigation observe it, (3) applies the activation to the
//! device, then (4) applies the mitigation's refresh actions. Activations
//! double as the unit of simulated time: the periodic auto-refresh that
//! real DRAM performs every tREFW is modeled as a full-device refresh every
//! `auto_refresh_interval` activations.

use rh_core::{DeviceState, Geometry, VictimModelParams};
use rh_mitigations::{Mitigation, MitigationAction};
use rh_workloads::Workload;

/// Outcome of a single experiment run.
#[derive(Debug, Clone)]
pub struct RunResult {
    pub workload: String,
    pub mitigation: String,
    pub hc_first: u64,
    pub activations: u64,
    pub total_flips: u64,
    pub flipped_rows: u64,
    pub flips_per_mact: f64,
    pub refreshes_issued: u64,
}

/// Drive `workload` through `mitigation` into a fresh device for
/// `activations` steps.
///
/// `device_seed` fixes the per-row threshold jitter, so two runs with the
/// same seed simulate byte-identical devices — the basis for
/// common-random-number comparisons across mitigations.
pub fn run_experiment(
    geom: Geometry,
    params: VictimModelParams,
    device_seed: u64,
    workload: &mut dyn Workload,
    mitigation: &mut dyn Mitigation,
    activations: u64,
    auto_refresh_interval: u64,
) -> RunResult {
    let mut device = DeviceState::new(geom, params, device_seed);
    for step in 1..=activations {
        let addr = workload.next_access();
        let actions = mitigation.on_activate(addr, &geom);
        device.activate(addr);
        for action in actions {
            match action {
                MitigationAction::RefreshRow(row) => device.refresh_row(row),
                MitigationAction::RefreshAll => device.refresh_all(),
            }
        }
        if auto_refresh_interval > 0 && step % auto_refresh_interval == 0 {
            device.refresh_all();
            mitigation.reset();
        }
    }
    RunResult {
        workload: workload.name(),
        mitigation: mitigation.name(),
        hc_first: params.hc_first,
        activations,
        total_flips: device.total_flips(),
        flipped_rows: device.flipped_rows(),
        flips_per_mact: device.flips_per_mact(),
        refreshes_issued: device.refreshes_issued(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rh_core::RowAddr;
    use rh_mitigations::NoMitigation;
    use rh_workloads::SingleSided;

    #[test]
    fn unmitigated_hammer_flips_auto_refresh_prevents() {
        let geom = Geometry::tiny(64);
        let params = VictimModelParams::with_hc_first(1000);

        let mut w = SingleSided::new(RowAddr::bank_row(0, 32));
        let r = run_experiment(geom, params, 1, &mut w, &mut NoMitigation, 5_000, 0);
        assert!(r.total_flips > 0, "unmitigated hammering must flip bits");

        // Auto-refresh well below HC_first: no window accumulates enough.
        let mut w = SingleSided::new(RowAddr::bank_row(0, 32));
        let r = run_experiment(geom, params, 1, &mut w, &mut NoMitigation, 5_000, 500);
        assert_eq!(r.total_flips, 0);
    }
}
