//! The simulation engine: one experiment = one (device, workload,
//! mitigation) triple driven for a fixed activation budget.
//!
//! Per activation the engine (1) asks the workload for the next row,
//! (2) lets the mitigation observe it, (3) applies the activation to the
//! device, then (4) applies the mitigation's refresh actions. Activations
//! double as the unit of simulated time: the periodic auto-refresh that
//! real DRAM performs every tREFW is modeled as a full-device refresh every
//! `auto_refresh_interval` activations.
//!
//! ## Hot-loop shape
//!
//! The loop is **batched**: activations are pulled from the workload in
//! fixed-size chunks ([`BATCH`]) into a reusable buffer via
//! [`Workload::fill_batch`] — one virtual call per chunk, with the fill
//! loop monomorphized inside the concrete workload — and the per-chunk
//! inner loop applies mitigation observation, device charge updates, victim
//! settling, and mitigation actions with zero virtual dispatch: the engine
//! is generic over [`Device`] *and* [`Mitigation`], and the executor
//! instantiates it with the [`rh_mitigations::MitigationKind`] enum, so
//! per-activation mitigation dispatch is a match on a variant tag that
//! inlines each `on_activate` body into the loop. Chunks are clipped to the
//! next tREFW boundary, so batching is byte-identical to the unbatched
//! step-at-a-time loop (which the benchmark harness retains as its legacy
//! path).
//!
//! The loop is allocation-free: the caller supplies the device (built once
//! per worker thread and reset per cell) and an [`EngineScratch`] whose
//! action sink and chunk buffer reach steady-state capacity within the
//! first chunk and are reused for the rest of the run.

use rh_core::{Device, RowAddr};
use rh_mitigations::{ActionBuf, Mitigation, MitigationAction};
use rh_workloads::Workload;

/// Activations pulled from the workload per chunk. Large enough to amortize
/// the per-chunk virtual call to nothing, small enough that the chunk
/// buffer (16 bytes/address → 16 KiB) stays L1-resident.
pub const BATCH: usize = 1024;

/// Reusable per-run buffers for the engine hot loop: the mitigation action
/// sink and the workload chunk buffer. One instance per worker thread,
/// reused across every cell the worker executes.
#[derive(Debug, Default)]
pub struct EngineScratch {
    /// Sink the mitigation writes refresh actions into (cleared per
    /// activation, capacity retained).
    actions: ActionBuf,
    /// Chunk of upcoming activations (refilled per [`BATCH`], capacity
    /// retained).
    batch: Vec<RowAddr>,
}

impl EngineScratch {
    pub fn new() -> Self {
        Self::default()
    }
}

/// Outcome of a single experiment run.
#[derive(Debug, Clone)]
pub struct RunResult {
    pub workload: String,
    pub mitigation: String,
    pub hc_first: u64,
    /// Stored data pattern the device ran under (`"legacy"` for the
    /// pattern-agnostic model).
    pub data_pattern: String,
    pub activations: u64,
    /// Raw (pre-ECC) bit flips recorded by the device.
    pub total_flips: u64,
    pub flipped_rows: u64,
    pub flips_per_mact: f64,
    pub refreshes_issued: u64,
    /// Flips in true-cell rows (1→0); with `flips_0to1` this partitions
    /// `total_flips`.
    pub flips_1to0: u64,
    /// Flips in anti-cell rows (0→1).
    pub flips_0to1: u64,
    /// Flips still visible after on-die ECC; `None` when ECC is disabled.
    pub post_ecc_flips: Option<u64>,
}

/// Drive `workload` through `mitigation` into `device` for `activations`
/// steps, using `scratch` for the chunk buffer and action sink.
///
/// The device must be freshly constructed or reset
/// (`DeviceState::reset_for_cell`) — the engine accounts activations and
/// flips from zero. Determinism: the result is a pure function of the
/// device's tables/seed and the workload/mitigation construction seeds,
/// which is the basis for common-random-number comparisons across
/// mitigations and for byte-identical sharded sweeps. Chunking never
/// crosses a tREFW boundary, so results are identical for any chunk size —
/// including the unbatched step-at-a-time loop the benchmark harness
/// retains as its legacy path.
pub fn run_experiment<D, W, M>(
    device: &mut D,
    workload: &mut W,
    mitigation: &mut M,
    activations: u64,
    auto_refresh_interval: u64,
    scratch: &mut EngineScratch,
) -> RunResult
where
    D: Device,
    W: Workload + ?Sized,
    M: Mitigation + ?Sized,
{
    let geom = *device.geometry();
    let EngineScratch { actions, batch } = scratch;
    let mut remaining = activations;
    let mut until_refresh = if auto_refresh_interval > 0 {
        auto_refresh_interval
    } else {
        u64::MAX
    };
    while remaining > 0 {
        let n = remaining.min(until_refresh).min(BATCH as u64);
        workload.fill_batch(batch, n as usize);
        for &addr in batch.iter() {
            actions.clear();
            mitigation.on_activate(addr, &geom, actions);
            device.activate(addr);
            for action in actions.actions() {
                match *action {
                    MitigationAction::RefreshRow(row) => device.refresh_row(row),
                    MitigationAction::RefreshAll => device.refresh_all(),
                }
            }
        }
        remaining -= n;
        if auto_refresh_interval > 0 {
            until_refresh -= n;
            if until_refresh == 0 {
                device.refresh_all();
                mitigation.reset();
                until_refresh = auto_refresh_interval;
            }
        }
    }
    RunResult {
        workload: workload.name(),
        mitigation: mitigation.name(),
        hc_first: device.params().hc_first,
        data_pattern: device.params().data_pattern.name().to_string(),
        activations,
        total_flips: device.total_flips(),
        flipped_rows: device.flipped_rows(),
        flips_per_mact: device.flips_per_mact(),
        refreshes_issued: device.refreshes_issued(),
        flips_1to0: device.flips_1to0(),
        flips_0to1: device.flips_0to1(),
        post_ecc_flips: device.post_ecc_flips(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rh_core::{DeviceState, EagerDeviceState, Geometry, VictimModelParams};
    use rh_mitigations::NoMitigation;
    use rh_workloads::SingleSided;

    fn run(
        geom: Geometry,
        params: VictimModelParams,
        activations: u64,
        refresh_interval: u64,
    ) -> RunResult {
        let mut device = DeviceState::new(geom, params, 1);
        let mut w = SingleSided::new(RowAddr::bank_row(0, 32));
        run_experiment(
            &mut device,
            &mut w,
            &mut NoMitigation,
            activations,
            refresh_interval,
            &mut EngineScratch::new(),
        )
    }

    #[test]
    fn unmitigated_hammer_flips_auto_refresh_prevents() {
        let geom = Geometry::tiny(64);
        let params = VictimModelParams::with_hc_first(1000);

        let r = run(geom, params, 5_000, 0);
        assert!(r.total_flips > 0, "unmitigated hammering must flip bits");

        // Auto-refresh well below HC_first: no window accumulates enough.
        let r = run(geom, params, 5_000, 500);
        assert_eq!(r.total_flips, 0);
    }

    /// Chunking must not move the tREFW boundary: intervals that are not
    /// multiples of BATCH (and smaller than BATCH) must refresh at exactly
    /// the same activation counts as the step-at-a-time loop.
    #[test]
    fn batched_refresh_boundaries_match_unbatched_loop() {
        let geom = Geometry::tiny(64);
        let params = VictimModelParams::with_hc_first(1000);
        for interval in [1u64, 499, 500, 1000, 1023, 1024, 1025, 4096, 7777] {
            for activations in [5_000u64, 5_120] {
                let batched = run(geom, params, activations, interval);
                // Reference: unbatched loop, refresh when step % interval == 0.
                let mut device = DeviceState::new(geom, params, 1);
                let mut w = SingleSided::new(RowAddr::bank_row(0, 32));
                for step in 1..=activations {
                    device.activate(w.next_access());
                    if step % interval == 0 {
                        device.refresh_all();
                    }
                }
                assert_eq!(
                    batched.refreshes_issued,
                    device.refreshes_issued(),
                    "interval {interval} acts {activations}"
                );
                assert_eq!(
                    batched.total_flips,
                    device.total_flips(),
                    "interval {interval} acts {activations}"
                );
            }
        }
    }

    fn drive<D: Device>(device: &mut D) -> RunResult {
        let mut w = SingleSided::new(RowAddr::bank_row(0, 32));
        run_experiment(
            device,
            &mut w,
            &mut NoMitigation,
            5_000,
            1_500,
            &mut EngineScratch::new(),
        )
    }

    #[test]
    fn optimized_and_eager_devices_agree_through_the_engine() {
        let geom = Geometry::tiny(64);
        let params = VictimModelParams::with_hc_first(1000);
        let a = drive(&mut DeviceState::new(geom, params, 1));
        let b = drive(&mut EagerDeviceState::new(geom, params, 1));
        assert_eq!(a.total_flips, b.total_flips);
        assert_eq!(a.flipped_rows, b.flipped_rows);
        assert_eq!(a.refreshes_issued, b.refreshes_issued);
        assert!(a.total_flips > 0);
    }
}
