//! `rh-cli configure` — invert the closed-form failure model into a
//! deployable PARA sampling rate.
//!
//! The sweep answers "what happens at this `p`"; `configure` answers the
//! question an operator actually asks: *what sampling rate do I need* for a
//! device with a given `HC_first`, an attack window of `W` activations, and
//! a failure-probability budget. The answer comes straight from
//! `rh-analysis`' inverse solver — no simulation — and `--validate` then
//! runs a seeded mini-sweep through the real engine and checks the
//! recommendation statistically (the same empirical-vs-analytical contract
//! the crossval harness enforces; see `tests/crossval.rs` and
//! docs/ARCHITECTURE.md, "Analytical cross-validation").
//!
//! ## Mapping the closed form onto the engine
//!
//! The analytical model counts *trials*; the engine counts *activations*,
//! and the two are off by one on both axes. Per activation the engine runs
//! mitigation-observes → activate (leak + settle) → refresh-actions-apply,
//! so a sample at activation `t` resets the victim's charge *after* the
//! leak of activation `t` has already landed. The victim therefore flips at
//! activation `t` iff the `hc_first − 1` activations *before* `t` all
//! escaped sampling — whether `t` itself is sampled is irrelevant, and the
//! first activation of the window (nothing before it to reset) contributes
//! charge unconditionally. A window of `window` activations fails exactly
//! when activations `2..=window` contain a run of `hc_first − 1`
//! consecutive unsampled trials:
//!
//! ```text
//! P_fail(engine: p, hc_first, window)
//!     = p_fail_direct(p, hc_first − 1, window − 1)
//! ```
//!
//! [`analytic_pfail`] owns this shift; the crossval harness pins it with a
//! deterministic `p = 0` off-by-one probe, so a drift in engine ordering
//! breaks a test instead of silently skewing every recommendation. The
//! correspondence is exact (not approximate) under the conditions
//! [`empirical_failure_rate`] sets up: zero threshold jitter (thresholds are
//! exactly `hc_first`), a single-sided aggressor at distance-1 coupling 1.0,
//! auto-refresh off, and PARA's one-RNG-draw-per-activation sampling.

use crate::bench::{fnum, jstr};
use crate::engine::{run_experiment, EngineScratch};
use rh_analysis::{p_fail_direct, p_fail_dual, required_p, wilson_interval};
use rh_core::{
    derive_seed, DeviceState, DeviceTables, Geometry, Kernel, RowAddr, VictimModelParams,
};
use rh_mitigations::Para;
use rh_workloads::SingleSided;
use std::fmt::Write as _;

/// The z deviate every seeded statistical assertion in this workspace uses:
/// ~1e-5 two-sided normal tail. Wide enough that a fixed-seed draw
/// essentially never lands outside its band (the assertions stay
/// deterministic in practice), tight enough that a wrong model or a broken
/// engine-to-analytic mapping still fails loudly.
pub const CROSSVAL_Z: f64 = 4.417;

/// Options for one `configure` invocation.
#[derive(Debug, Clone)]
pub struct ConfigureOptions {
    /// Device `HC_first` (must be ≥ 2: the activation→trial shift needs at
    /// least one pre-flip trial to sample).
    pub hc_first: u64,
    /// Attack window in activations.
    pub window: u64,
    /// Failure-probability budget over the window, in (0, 1].
    pub target_pfail: f64,
    /// Run the confirming mini-sweep after solving.
    pub validate: bool,
    /// Independent seeded windows the mini-sweep simulates.
    pub trials: u64,
    /// Root seed for the mini-sweep (per-trial PARA seeds derive from it).
    pub seed: u64,
}

impl Default for ConfigureOptions {
    fn default() -> Self {
        Self {
            hc_first: 8192,
            window: 64_000,
            target_pfail: 0.001,
            validate: false,
            trials: 400,
            seed: 0xC0FFEE,
        }
    }
}

/// Outcome of the `--validate` mini-sweep.
#[derive(Debug, Clone)]
pub struct ValidationOutcome {
    pub trials: u64,
    pub failures: u64,
    pub seed: u64,
    pub empirical_rate: f64,
    /// Wilson band of `failures`-of-`trials` at [`CROSSVAL_Z`].
    pub band_lo: f64,
    pub band_hi: f64,
    /// The band contains the analytical prediction AND is consistent with
    /// the target being met (`band_lo <= target`).
    pub pass: bool,
}

/// Full `configure` outcome: the recommendation plus the evidence for it.
#[derive(Debug, Clone)]
pub struct ConfigureReport {
    pub hc_first: u64,
    pub window: u64,
    pub target_pfail: f64,
    /// Smallest sampling rate whose analytical failure probability meets
    /// the target.
    pub recommended_p: f64,
    /// `P_fail` at the recommendation, by the direct recurrence.
    pub analytic_pfail: f64,
    /// The same quantity by the Markov-chain dual — independent algebra.
    pub analytic_pfail_dual: f64,
    /// `|direct − dual|`; the report fails if this exceeds 1e-9.
    pub divergence: f64,
    pub validation: Option<ValidationOutcome>,
}

impl ConfigureReport {
    /// A report is healthy when the two closed forms agree and the
    /// mini-sweep (if run) confirmed the recommendation.
    pub fn healthy(&self) -> bool {
        self.divergence < 1e-9 && self.validation.as_ref().is_none_or(|v| v.pass)
    }
}

/// The engine's failure probability for a PARA-mitigated single-sided
/// attack, in closed form — `p_fail_direct` with the activation→trial shift
/// documented in the module header. `hc_first` must be ≥ 2.
pub fn analytic_pfail(p: f64, hc_first: u64, window: u64) -> f64 {
    assert!(hc_first >= 2, "hc_first {hc_first} must be at least 2");
    if window == 0 {
        return 0.0;
    }
    p_fail_direct(p, hc_first - 1, window - 1)
}

/// Same shift, dual evaluation (for the agreement cross-check).
pub fn analytic_pfail_dual(p: f64, hc_first: u64, window: u64) -> f64 {
    assert!(hc_first >= 2, "hc_first {hc_first} must be at least 2");
    if window == 0 {
        return 0.0;
    }
    p_fail_dual(p, hc_first - 1, window - 1)
}

/// Smallest sampling rate meeting `target_pfail` for the engine's model.
pub fn recommended_p(hc_first: u64, window: u64, target_pfail: f64) -> f64 {
    assert!(hc_first >= 2, "hc_first {hc_first} must be at least 2");
    if window == 0 {
        return 0.0;
    }
    required_p(hc_first - 1, window - 1, target_pfail)
}

/// Simulate `trials` independent attack windows through the real engine and
/// count how many end with at least one bit flip. Returns
/// `(failures, trials)`.
///
/// This is the shared empirical arm of the statistical contract: the
/// crossval harness and `configure --validate` both call it, so they can
/// never drift apart on what "the simulator's failure rate" means. The
/// setup pins every condition the closed form assumes: zero threshold
/// jitter, the legacy data pattern, auto-refresh off, a single-sided
/// aggressor with no benign traffic, and one independent PARA stream per
/// trial (seeds derived from `seed` and the trial index, so any subset of
/// trials reproduces bit-exactly).
pub fn empirical_failure_rate(
    p: f64,
    hc_first: u64,
    window: u64,
    trials: u64,
    seed: u64,
) -> (u64, u64) {
    assert!(hc_first >= 2, "hc_first {hc_first} must be at least 2");
    let geom = Geometry::tiny(64);
    let params = VictimModelParams {
        // Thresholds exactly hc_first — the analytic run length is sharp.
        threshold_jitter: 0.0,
        ..VictimModelParams::with_hc_first(hc_first)
    };
    let tables = DeviceTables::shared(geom, params, derive_seed(seed, &[0]))
        .expect("tiny geometry and jitter-free params are always valid");
    let mut device = DeviceState::with_tables_and_kernel(tables.clone(), Kernel::auto());
    let mut scratch = EngineScratch::new();
    let aggressor = RowAddr::bank_row(0, 32);
    let mut failures = 0u64;
    for trial in 0..trials {
        device.reset_for_cell(tables.clone());
        let mut workload = SingleSided::new(aggressor);
        let mut para = Para::new(p, 2, derive_seed(seed, &[1, trial]));
        let result = run_experiment(
            &mut device,
            &mut workload,
            &mut para,
            window,
            0, // auto-refresh off: the window is the only reset horizon
            &mut scratch,
        );
        if result.total_flips > 0 {
            failures += 1;
        }
    }
    (failures, trials)
}

/// Solve for the sampling rate and (optionally) validate it empirically.
pub fn run_configure(opts: &ConfigureOptions) -> Result<ConfigureReport, String> {
    if opts.hc_first < 2 {
        return Err("--hc must be at least 2".to_string());
    }
    if opts.window == 0 {
        return Err("--window must be at least 1 activation".to_string());
    }
    if !(opts.target_pfail > 0.0 && opts.target_pfail <= 1.0) {
        return Err(format!(
            "--target-pfail must be in (0, 1], got {}",
            opts.target_pfail
        ));
    }
    if opts.validate && opts.trials == 0 {
        return Err("--trials must be at least 1".to_string());
    }
    let p = recommended_p(opts.hc_first, opts.window, opts.target_pfail);
    let direct = analytic_pfail(p, opts.hc_first, opts.window);
    let dual = analytic_pfail_dual(p, opts.hc_first, opts.window);
    let validation = if opts.validate {
        let (failures, trials) =
            empirical_failure_rate(p, opts.hc_first, opts.window, opts.trials, opts.seed);
        let (band_lo, band_hi) = wilson_interval(failures, trials, CROSSVAL_Z);
        Some(ValidationOutcome {
            trials,
            failures,
            seed: opts.seed,
            empirical_rate: failures as f64 / trials as f64,
            band_lo,
            band_hi,
            // Two checks: the band contains the analytical prediction (the
            // model and the engine agree), and the data is consistent with
            // the target being met (the recommendation works).
            pass: band_lo <= direct && direct <= band_hi && band_lo <= opts.target_pfail,
        })
    } else {
        None
    };
    Ok(ConfigureReport {
        hc_first: opts.hc_first,
        window: opts.window,
        target_pfail: opts.target_pfail,
        recommended_p: p,
        analytic_pfail: direct,
        analytic_pfail_dual: dual,
        divergence: (direct - dual).abs(),
        validation,
    })
}

/// Probabilities need full shortest-round-trip precision (a recommendation
/// rounded to 3 decimals is a different recommendation); `fnum`'s fixed
/// format is for wall-clock seconds.
fn fprob(x: f64) -> String {
    if x.is_finite() {
        x.to_string()
    } else {
        "null".to_string()
    }
}

/// Render the report as a JSON document, in the same hand-rolled style as
/// the sweep and bench emitters.
pub fn render_configure(report: &ConfigureReport) -> String {
    let mut validation = "null".to_string();
    if let Some(v) = &report.validation {
        validation = format!(
            "{{\n    \"trials\": {},\n    \"failures\": {},\n    \"seed\": {},\n    \
             \"empirical_rate\": {},\n    \"band_z\": {},\n    \"band_lo\": {},\n    \
             \"band_hi\": {},\n    \"pass\": {}\n  }}",
            v.trials,
            v.failures,
            v.seed,
            fprob(v.empirical_rate),
            fnum(CROSSVAL_Z),
            fprob(v.band_lo),
            fprob(v.band_hi),
            v.pass,
        );
    }
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\n  \"configure\": {},\n  \
         \"hc_first\": {},\n  \
         \"window_activations\": {},\n  \
         \"target_pfail\": {},\n  \
         \"recommended_p\": {},\n  \
         \"analytic_pfail\": {},\n  \
         \"analytic_pfail_dual\": {},\n  \
         \"divergence\": {},\n  \
         \"validation\": {validation}\n}}",
        jstr("PARA sampling rate from the closed-form failure model"),
        report.hc_first,
        report.window,
        fprob(report.target_pfail),
        fprob(report.recommended_p),
        fprob(report.analytic_pfail),
        fprob(report.analytic_pfail_dual),
        fprob(report.divergence),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recommendation_meets_the_target_analytically() {
        for &(hc, window, target) in &[
            (8u64, 1_000u64, 0.5f64),
            (16, 4_096, 0.1),
            (64, 64_000, 0.01),
        ] {
            let p = recommended_p(hc, window, target);
            assert!(
                analytic_pfail(p, hc, window) <= target,
                "hc={hc} w={window}: p={p} misses {target}"
            );
            // Minimality, through the same shifted mapping the CLI reports.
            let shy = p * (1.0 - 1e-6);
            assert!(analytic_pfail(shy, hc, window) > target);
        }
    }

    #[test]
    fn run_configure_reports_agreeing_forms() {
        let report = run_configure(&ConfigureOptions {
            hc_first: 16,
            window: 2_000,
            target_pfail: 0.25,
            validate: false,
            ..ConfigureOptions::default()
        })
        .unwrap();
        assert!(report.divergence < 1e-9);
        assert!(report.healthy());
        assert!(report.validation.is_none());
        let doc = render_configure(&report);
        assert!(doc.contains("\"recommended_p\""));
        assert!(doc.contains("\"validation\": null"));
        // The emitted document must be machine-readable by our own parser.
        let value = crate::proto::parse(&doc).expect("configure JSON must parse");
        assert_eq!(value.get("hc_first").and_then(|v| v.as_u64()), Some(16));
    }

    #[test]
    fn rejections_name_the_offending_flag() {
        for (opts, needle) in [
            (
                ConfigureOptions {
                    hc_first: 1,
                    ..ConfigureOptions::default()
                },
                "--hc",
            ),
            (
                ConfigureOptions {
                    window: 0,
                    ..ConfigureOptions::default()
                },
                "--window",
            ),
            (
                ConfigureOptions {
                    target_pfail: 0.0,
                    ..ConfigureOptions::default()
                },
                "--target-pfail",
            ),
            (
                ConfigureOptions {
                    target_pfail: 1.5,
                    ..ConfigureOptions::default()
                },
                "--target-pfail",
            ),
            (
                ConfigureOptions {
                    validate: true,
                    trials: 0,
                    ..ConfigureOptions::default()
                },
                "--trials",
            ),
        ] {
            let err = run_configure(&opts).unwrap_err();
            assert!(err.contains(needle), "got '{err}'");
        }
    }

    /// A tiny validated run end to end: deterministic seed, must pass.
    #[test]
    fn validated_configure_passes_on_a_small_point() {
        let report = run_configure(&ConfigureOptions {
            hc_first: 8,
            window: 1_200,
            target_pfail: 0.5,
            validate: true,
            trials: 120,
            seed: 0xC0FFEE,
        })
        .unwrap();
        let v = report.validation.as_ref().expect("validation ran");
        assert!(
            v.pass,
            "empirical {}/{} band [{}, {}] vs analytic {}",
            v.failures, v.trials, v.band_lo, v.band_hi, report.analytic_pfail
        );
        assert!(report.healthy());
        let doc = render_configure(&report);
        assert!(doc.contains("\"pass\": true"));
    }
}
