//! `rh-cli serve` — the coordinator of the distributed sweep service.
//!
//! The thread-level executor ([`crate::exec`]) promoted one level up: the
//! coordinator accepts sweep configs (jsonl over stdin, or over a TCP
//! listener that multiplexes clients and workers), expands each through
//! [`SweepPlan::from_config`], chunks the plan's cell lists into shard
//! leases, schedules the leases across a pool of `rh-cli worker` processes
//! (spawned locally over stdio pipes, or attached over TCP), and merges the
//! streamed per-cell results back into plan order. The merged document is
//! **byte-identical to an in-process `rh-cli sweep` run of the same
//! config** regardless of shard layout, worker count, worker arrival
//! order, or mid-job worker death — the PR 2 determinism invariant
//! generalized from threads to processes and hosts. This works because a
//! cell result is a pure function of `(config, cell index)` and the merge
//! is slot-addressed: *where* a result came from can't matter.
//!
//! Service machinery layered on top:
//!
//! * **Result cache** ([`crate::cache`]): completed documents are stored
//!   under the canonical `(config_hash, seed)` key; a repeated request is
//!   served from memory without touching a worker, observable via the
//!   `served_from_cache` flag and coordinator-lifetime `cache_hits`
//!   counter in the response envelope.
//! * **Single-flight dedup**: a submit whose key matches an in-flight job
//!   doesn't execute — it waits on that job and is served from the cache
//!   the moment the primary lands (`coalesced: true`). N concurrent
//!   identical requests cost one execution.
//! * **Checkpointing**: with `--checkpoint-dir`, every merged cell is
//!   appended to a jsonl file keyed by `(config_hash, seed, list)`. A
//!   resubmit after a crash or cancel loads the file, fills the slots it
//!   covers, and schedules only the missing cells (`checkpoint_cells` in
//!   the envelope counts the restored ones).
//! * **Worker-death recovery**: a worker connection dropping mid-shard
//!   requeues the lease minus the cells that already streamed back; another
//!   worker re-executes only the remainder. Determinism makes re-execution
//!   harmless by construction.
//! * **Back-pressure**: all transports are blocking pipes/TCP streams. A
//!   coordinator that falls behind stops draining, the worker's writes
//!   stall, and the pipeline self-throttles — no unbounded buffering
//!   anywhere.
//! * **Admission control**: the job queue is bounded (`--max-pending-jobs`)
//!   and each client identity is bounded in concurrent jobs and queued
//!   cells; a submit over any bound gets a clean
//!   `{"type":"reject","reason":...}` line instead of an unbounded wait,
//!   observable via `rejected_submits` in later envelopes.
//! * **Deadlines & cancellation**: `submit --job-deadline-ms` expires a
//!   job that hasn't merged in time, and `rh-cli cancel <id>` kills one
//!   mid-flight. Either way workers are told to abandon the job's cells
//!   *mid-shard* (a `cancel` lease message, acknowledged with
//!   `cancel_ack`, never requeued) instead of burning the rest of the
//!   lease.
//! * **Adaptive shard sizing**: lease width is driven by a smoothed
//!   per-cell wall time kept per cell list, targeting a fixed wall time
//!   per lease (`--target-lease-ms`, 0 = fixed `--shard-cells` width).
//!   Cheap PARA cells get proportionally wider shards, shrinking
//!   straggler exposure; the merge is slot-addressed, so any width yields
//!   byte-identical output.
//! * **Authentication**: with `--auth-token-file`, worker hellos and
//!   client sessions must carry a proof derived from the shared token and
//!   a caller-chosen nonce ([`proto::auth_proof`], compared in constant
//!   time). Failures are rejected cleanly and counted. Coordinator-spawned
//!   stdio workers are exempt — the pipe itself is the trust boundary;
//!   auth guards the TCP front door.

use crate::cache::{corrupt_cache_segments, PersistentCache, ResultCache};
use crate::engine::RunResult;
use crate::faults::FaultPlan;
use crate::json;
use crate::plan::SweepPlan;
use crate::proto::{
    self, encode_error, fnv1a64, read_line, write_line, ClientMsg, FromWorker, ResultEnvelope,
    ShardList, ToWorker, WorkerStat, PROTO_VERSION,
};
use crate::sweep::{SweepConfig, SweepOutput};
use rh_core::KernelChoice;
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long [`Coordinator::start`] waits for locally-spawned workers to say
/// hello before giving up (covers debug-build startup on a loaded box).
const HELLO_TIMEOUT: Duration = Duration::from_secs(60);

/// Straggler deadline = `max(speculate_after, EWMA-per-cell × FACTOR)`:
/// a lease whose last progress is older than the deadline is speculatively
/// re-leased. The factor leaves an order of magnitude of headroom over the
/// observed cell time so normal jitter never triggers a duplicate.
const SPECULATE_EWMA_FACTOR: f64 = 16.0;

/// EWMA smoothing for the observed per-cell wall time.
const EWMA_ALPHA: f64 = 0.3;

/// Polling cadence of the in-process fallback waiter.
const FALLBACK_TICK: Duration = Duration::from_millis(25);

/// Configuration for [`Coordinator::start`] (the parsed `rh-cli serve`
/// flags, plus test-only knobs).
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Local worker processes to spawn over stdio pipes.
    pub workers: usize,
    /// TCP address to listen on for clients and late-attaching workers
    /// (e.g. `127.0.0.1:4242`, port 0 for ephemeral).
    pub listen: Option<String>,
    /// Settle-kernel request propagated to every shard lease.
    pub kernel: KernelChoice,
    /// Result-cache capacity in documents.
    pub cache_capacity: usize,
    /// Directory for per-shard checkpoint files; `None` disables
    /// checkpointing.
    pub checkpoint_dir: Option<PathBuf>,
    /// Maximum cells per shard lease.
    pub shard_cells: usize,
    /// Worker executable to spawn; defaults to the current executable
    /// (tests point it at the real `rh-cli` binary).
    pub worker_program: Option<PathBuf>,
    /// Extra argv per local worker index (fault injection in tests:
    /// `["--exit-after-cells", "7"]` for worker 0 only).
    pub worker_extra_args: Vec<Vec<String>>,
    /// Coordinator-side fault plan. Today the only coordinator-side
    /// directive is `corrupt-cache-record=N`, applied to the persistent
    /// cache segments *before* they are opened (simulating disk rot across
    /// a restart).
    pub fault_plan: FaultPlan,
    /// Directory for the persistent result cache; `None` keeps results in
    /// memory only.
    pub cache_dir: Option<PathBuf>,
    /// Graceful degradation: when a job has waited this long without any
    /// live worker, the submitting thread claims the job's leases and
    /// executes them in-process. `None` (default) preserves fail-fast.
    pub fallback_after: Option<Duration>,
    /// Config generation; a worker announcing a different epoch in its
    /// hello is rejected before it can lease anything.
    pub config_epoch: u64,
    /// Floor of the straggler deadline for speculative re-execution;
    /// `None` disables speculation.
    pub speculate_after: Option<Duration>,
    /// Admission bound: maximum unfinished jobs coordinator-wide; a submit
    /// past it is rejected with reason `queue_full`.
    pub max_pending_jobs: usize,
    /// Per-client bound on concurrent unfinished jobs (`client_job_quota`).
    pub max_jobs_per_client: usize,
    /// Per-client bound on queued (not yet merged) cells across that
    /// client's unfinished jobs (`client_cell_quota`).
    pub max_cells_per_client: usize,
    /// Wall-time target per lease in milliseconds for the adaptive shard
    /// sizer; `0` disables it and restores the fixed `shard_cells` width.
    pub target_lease_ms: u64,
    /// How long a fresh TCP connection gets to produce its first line
    /// (also the auth-challenge deadline, since the proof rides that
    /// first line).
    pub handshake_timeout: Duration,
    /// Shared secret for worker/client authentication; `None` (default)
    /// accepts anyone, as before.
    pub auth_token: Option<String>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            workers: 2,
            listen: None,
            kernel: KernelChoice::Auto,
            cache_capacity: crate::cache::DEFAULT_CAPACITY,
            checkpoint_dir: None,
            shard_cells: 16,
            worker_program: None,
            worker_extra_args: Vec::new(),
            fault_plan: FaultPlan::default(),
            cache_dir: None,
            fallback_after: None,
            config_epoch: 0,
            speculate_after: Some(Duration::from_secs(10)),
            max_pending_jobs: 64,
            max_jobs_per_client: 16,
            max_cells_per_client: 1_000_000,
            target_lease_ms: 1_500,
            handshake_timeout: Duration::from_secs(10),
            auth_token: None,
        }
    }
}

/// One schedulable unit: a contiguous-ish slice of one job's cell list.
#[derive(Debug, Clone)]
struct Lease {
    job: u64,
    shard: u64,
    list: ShardList,
    indices: Vec<usize>,
}

/// Terminal state of a job: the rendered document, or an error.
type JobOutcome = Result<String, String>;

/// A lease currently executing on a worker, tracked for supervision: the
/// speculation supervisor re-leases the still-missing cells of any entry
/// whose `last_progress` (cell arrival or heartbeat) has gone stale.
struct ActiveLease {
    lease: Lease,
    last_progress: Instant,
    /// Already re-leased once; never speculate the same lease twice.
    speculated: bool,
    /// Which worker holds the lease — keys the per-worker EWMA the
    /// straggler deadline prefers over the global one.
    worker: String,
}

struct Job {
    plan: Arc<SweepPlan>,
    key: (u64, u64),
    kernel: KernelChoice,
    grid: Vec<Option<RunResult>>,
    para: Vec<Option<RunResult>>,
    /// Unfilled slots remaining before the job can merge.
    remaining: usize,
    executed_cells: u64,
    checkpoint_cells: u64,
    /// Checkpoint records skipped as garbled/torn during restore.
    checkpoint_skipped: u64,
    /// Straggler leases speculatively re-executed.
    speculations: u64,
    /// Duplicate cell completions, each asserted bit-exact before counting.
    duplicate_cells: u64,
    /// Worker name → (resolved kernel, cells contributed).
    workers: BTreeMap<String, (String, u64)>,
    /// Which client identity admitted this job (quota accounting).
    client: String,
    /// Wall-clock bound from `submit --job-deadline-ms`; an unmerged job
    /// past it is expired exactly like a cancel.
    deadline: Option<Instant>,
    /// When the job was admitted; anchors `queue_wait_ms`.
    admitted_at: Instant,
    /// Admission → first merged/restored cell, for the envelope.
    queue_wait_ms: Option<u64>,
    done: Option<JobOutcome>,
}

impl Job {
    fn slot(&mut self, list: ShardList, index: usize) -> Option<&mut Option<RunResult>> {
        match list {
            ShardList::Grid => self.grid.get_mut(index),
            ShardList::Para => self.para.get_mut(index),
        }
    }
}

struct State {
    jobs: HashMap<u64, Job>,
    /// Client-visible job ids (for `cancel`).
    named: HashMap<String, u64>,
    queue: VecDeque<Lease>,
    cache: ResultCache,
    /// Crash-safe on-disk cache behind the LRU (`--cache-dir`).
    persistent: Option<PersistentCache>,
    /// Key → job id of the in-flight execution (single-flight dedup).
    inflight: HashMap<(u64, u64), u64>,
    /// Shard id → supervision record for every lease out on a worker.
    active: HashMap<u64, ActiveLease>,
    /// Smoothed per-cell wall time (milliseconds), fed by cell arrivals;
    /// the adaptive half of the straggler deadline.
    ewma_cell_millis: Option<f64>,
    /// Per-worker smoothed cell time — sharper straggler deadlines than
    /// the global EWMA on heterogeneous pools.
    worker_ewma_ms: HashMap<String, f64>,
    /// Per-list smoothed cell time (`[grid, para]`), feeding the adaptive
    /// shard sizer: PARA cells run ~40× cheaper than grid cells, so one
    /// blended number would size both lists wrong.
    list_ewma_ms: [Option<f64>; 2],
    next_job: u64,
    next_shard: u64,
    /// Workers currently connected (past hello + vetting).
    live_workers: usize,
    /// Locally-spawned workers that have said hello (the start barrier).
    local_hellos: usize,
    /// A local worker exited before hello (spawn failure).
    spawn_failed: Option<String>,
    /// Connections whose first line was not a decodable hello or client
    /// message (logged and dropped, never panicked on).
    rejected_connections: u64,
    /// Workers refused for protocol-version or config-epoch skew.
    rejected_workers: u64,
    /// Submits answered from the persistent (on-disk) cache.
    disk_hits: u64,
    /// Submits refused by admission control or quotas (or client auth).
    rejected_submits: u64,
    /// Worker hellos and client sessions refused for a bad auth proof.
    auth_failures: u64,
    /// Jobs canceled by a client, an expired deadline, or a fault plan.
    cancelled_jobs: u64,
    /// Coordinator-lifetime merged-cell count (drives the
    /// `cancel-after-cells` fault arm).
    merged_cells_total: u64,
    shutting_down: bool,
}

struct Inner {
    state: Mutex<State>,
    /// Signaled when leases are queued or the service shuts down.
    work: Condvar,
    /// Signaled on job completion, hello, and failure.
    done: Condvar,
    kernel: KernelChoice,
    checkpoint_dir: Option<PathBuf>,
    shard_cells: usize,
    /// TCP listen mode: workers may attach later, so an empty pool blocks
    /// instead of failing jobs.
    allow_late_workers: bool,
    /// Required `config_epoch` in worker hellos.
    config_epoch: u64,
    /// In-process fallback deadline (`None` = fail fast, the pre-existing
    /// behavior).
    fallback_after: Option<Duration>,
    /// Speculation floor (`None` = no speculation).
    speculate_after: Option<Duration>,
    /// Admission bound on unfinished jobs coordinator-wide.
    max_pending_jobs: usize,
    /// Per-client concurrent-job quota.
    max_jobs_per_client: usize,
    /// Per-client queued-cell quota.
    max_cells_per_client: usize,
    /// Adaptive shard sizer target (ms per lease); 0 = fixed width.
    target_lease_ms: u64,
    /// First-line (and auth-challenge) deadline for TCP connections.
    handshake_timeout: Duration,
    /// Shared secret; `None` accepts unauthenticated peers.
    auth_token: Option<String>,
    /// Coordinator-side `slow-client` fault: injected latency before each
    /// client reply.
    slow_client_delay: Option<Duration>,
    /// Coordinator-side `cancel-after-cells` fault: cancel the job whose
    /// cell is the Nth merged coordinator-wide.
    cancel_after_cells: Option<u64>,
}

/// A running coordinator. Submit jobs via [`Coordinator::submit`] (the TCP
/// listener and the CLI's stdin loop both funnel into it).
pub struct Coordinator {
    inner: Arc<Inner>,
    children: Mutex<Vec<Child>>,
    handlers: Mutex<Vec<JoinHandle<()>>>,
    listen_addr: Option<SocketAddr>,
}

impl Coordinator {
    /// Spawn local workers, bind the listener (if any), and wait for every
    /// local worker's hello so submits never race worker startup.
    pub fn start(opts: ServeOptions) -> Result<Self, String> {
        // The coordinator-side fault plan runs *before* the persistent
        // cache opens: injected corruption is indistinguishable from real
        // disk rot, so recovery is exercised on the same code path.
        let persistent = match &opts.cache_dir {
            Some(dir) => {
                if !opts.fault_plan.corrupt_cache_records().is_empty() {
                    let clobbered = corrupt_cache_segments(dir, &opts.fault_plan)?;
                    eprintln!(
                        "rh-serve: fault plan clobbered {clobbered} persistent cache record(s)"
                    );
                }
                Some(PersistentCache::open(dir)?)
            }
            None => None,
        };
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                jobs: HashMap::new(),
                named: HashMap::new(),
                queue: VecDeque::new(),
                cache: ResultCache::new(opts.cache_capacity),
                persistent,
                inflight: HashMap::new(),
                active: HashMap::new(),
                ewma_cell_millis: None,
                worker_ewma_ms: HashMap::new(),
                list_ewma_ms: [None, None],
                next_job: 0,
                next_shard: 0,
                live_workers: 0,
                local_hellos: 0,
                spawn_failed: None,
                rejected_connections: 0,
                rejected_workers: 0,
                disk_hits: 0,
                rejected_submits: 0,
                auth_failures: 0,
                cancelled_jobs: 0,
                merged_cells_total: 0,
                shutting_down: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
            kernel: opts.kernel,
            checkpoint_dir: opts.checkpoint_dir.clone(),
            shard_cells: opts.shard_cells.max(1),
            allow_late_workers: opts.listen.is_some(),
            config_epoch: opts.config_epoch,
            fallback_after: opts.fallback_after,
            speculate_after: opts.speculate_after,
            max_pending_jobs: opts.max_pending_jobs.max(1),
            max_jobs_per_client: opts.max_jobs_per_client.max(1),
            max_cells_per_client: opts.max_cells_per_client.max(1),
            target_lease_ms: opts.target_lease_ms,
            handshake_timeout: opts.handshake_timeout,
            auth_token: opts.auth_token.clone(),
            slow_client_delay: opts.fault_plan.slow_client_delay(),
            cancel_after_cells: opts.fault_plan.cancel_after_cells(),
        });
        if let Some(dir) = &inner.checkpoint_dir {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("cannot create checkpoint dir {}: {e}", dir.display()))?;
        }

        let listen_addr = match &opts.listen {
            Some(addr) => {
                let listener =
                    TcpListener::bind(addr).map_err(|e| format!("cannot listen on {addr}: {e}"))?;
                let bound = listener
                    .local_addr()
                    .map_err(|e| format!("local_addr: {e}"))?;
                let accept_inner = Arc::clone(&inner);
                // Detached: dies with the process. Joining would require
                // interrupting accept(), which std can't do portably.
                std::thread::spawn(move || accept_loop(&accept_inner, &listener));
                Some(bound)
            }
            None => None,
        };

        let coordinator = Self {
            inner,
            children: Mutex::new(Vec::new()),
            handlers: Mutex::new(Vec::new()),
            listen_addr,
        };

        if coordinator.inner.speculate_after.is_some() {
            let sup = Arc::clone(&coordinator.inner);
            let handle = std::thread::spawn(move || supervise_stragglers(&sup));
            coordinator
                .handlers
                .lock()
                .expect("handler lock")
                .push(handle);
        }

        let program = match &opts.worker_program {
            Some(p) => p.clone(),
            None => std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?,
        };
        for i in 0..opts.workers {
            coordinator.spawn_local_worker(&program, i, &opts)?;
        }

        // Hello barrier: a submit issued right after start() must find the
        // whole pool live.
        let deadline = std::time::Instant::now() + HELLO_TIMEOUT;
        let mut st = coordinator.inner.state.lock().expect("coordinator lock");
        while st.local_hellos < opts.workers {
            if let Some(err) = &st.spawn_failed {
                return Err(format!("local worker failed to start: {err}"));
            }
            let left = deadline.saturating_duration_since(std::time::Instant::now());
            if left.is_zero() {
                return Err(format!(
                    "timed out waiting for {} local workers to say hello",
                    opts.workers
                ));
            }
            let (guard, _) = coordinator
                .inner
                .done
                .wait_timeout(st, left)
                .expect("coordinator lock");
            st = guard;
        }
        drop(st);
        Ok(coordinator)
    }

    fn spawn_local_worker(
        &self,
        program: &Path,
        index: usize,
        opts: &ServeOptions,
    ) -> Result<(), String> {
        let mut cmd = Command::new(program);
        cmd.arg("worker");
        // Locally-spawned workers inherit the coordinator's epoch so they
        // pass their own hello vetting; test args come later and can
        // override it (last flag wins) to exercise the rejection path.
        cmd.args(["--config-epoch", &opts.config_epoch.to_string()]);
        if let Some(extra) = opts.worker_extra_args.get(index) {
            cmd.args(extra);
        }
        // Environment inherited on purpose: RH_FORCE_SCALAR set on the
        // coordinator reaches every local worker's own resolve().
        let mut child = cmd
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .map_err(|e| format!("cannot spawn worker {}: {e}", program.display()))?;
        let stdin = child.stdin.take().expect("piped stdin");
        let stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
        let inner = Arc::clone(&self.inner);
        let name = format!("local-{index}");
        let handle = std::thread::spawn(move || worker_handler(&inner, &name, stdout, stdin, true));
        self.handlers.lock().expect("handler lock").push(handle);
        self.children.lock().expect("children lock").push(child);
        Ok(())
    }

    /// The bound TCP address, when listening (port 0 resolves here).
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.listen_addr
    }

    /// Submit one config and block until its envelope is ready (cache hit,
    /// coalesced onto an in-flight twin, or executed). The in-process
    /// caller is the `local` client identity with no deadline; rejections
    /// surface as plain errors here.
    pub fn submit(&self, id: Option<String>, cfg: &SweepConfig) -> Result<ResultEnvelope, String> {
        self.submit_detailed(id, cfg, "local", None)
            .map_err(SubmitError::into_message)
    }

    /// [`Coordinator::submit`] with an explicit client identity and
    /// optional deadline, distinguishing admission rejections from
    /// execution failures.
    pub fn submit_detailed(
        &self,
        id: Option<String>,
        cfg: &SweepConfig,
        client: &str,
        deadline_ms: Option<u64>,
    ) -> Result<ResultEnvelope, SubmitError> {
        Inner::submit(&self.inner, id, cfg, client, deadline_ms)
    }

    /// Cancel a named in-flight job: queued leases are dropped, waiters get
    /// an error, checkpointed cells survive for a later resubmit. Returns
    /// false for unknown/finished ids.
    pub fn cancel(&self, id: &str) -> bool {
        cancel_by_name(&self.inner, id)
    }

    /// Lifetime cache hits (the observable served-from-cache counter).
    pub fn cache_hits(&self) -> u64 {
        self.inner
            .state
            .lock()
            .expect("coordinator lock")
            .cache
            .hits()
    }

    /// Count of currently-connected workers.
    pub fn live_workers(&self) -> usize {
        self.inner
            .state
            .lock()
            .expect("coordinator lock")
            .live_workers
    }

    /// Workers refused at hello time for protocol-version or config-epoch
    /// skew.
    pub fn rejected_workers(&self) -> u64 {
        self.inner
            .state
            .lock()
            .expect("coordinator lock")
            .rejected_workers
    }

    /// Connections dropped because their first line decoded as neither a
    /// worker hello nor a client message.
    pub fn rejected_connections(&self) -> u64 {
        self.inner
            .state
            .lock()
            .expect("coordinator lock")
            .rejected_connections
    }

    /// Submits served from the persistent (on-disk) cache.
    pub fn disk_hits(&self) -> u64 {
        self.inner.state.lock().expect("coordinator lock").disk_hits
    }

    /// Unfinished jobs currently held — the number admission control
    /// weighs against `--max-pending-jobs`.
    pub fn queue_depth(&self) -> u64 {
        self.inner
            .state
            .lock()
            .expect("coordinator lock")
            .jobs
            .values()
            .filter(|j| j.done.is_none())
            .count() as u64
    }

    /// Submits refused by admission control, quotas, or client auth.
    pub fn rejected_submits(&self) -> u64 {
        self.inner
            .state
            .lock()
            .expect("coordinator lock")
            .rejected_submits
    }

    /// Worker hellos and client sessions refused for a bad auth proof.
    pub fn auth_failures(&self) -> u64 {
        self.inner
            .state
            .lock()
            .expect("coordinator lock")
            .auth_failures
    }

    /// Jobs canceled by a client, an expired deadline, or a fault plan.
    pub fn cancelled_jobs(&self) -> u64 {
        self.inner
            .state
            .lock()
            .expect("coordinator lock")
            .cancelled_jobs
    }

    /// Documents evicted from the in-memory LRU result cache.
    pub fn evictions(&self) -> u64 {
        self.inner
            .state
            .lock()
            .expect("coordinator lock")
            .cache
            .evictions()
    }

    /// Corrupt or torn persistent-cache records skipped since open.
    pub fn cache_corrupt_skipped(&self) -> u64 {
        self.inner
            .state
            .lock()
            .expect("coordinator lock")
            .persistent
            .as_ref()
            .map_or(0, PersistentCache::corrupt_skipped)
    }

    /// Stop accepting work, shut down workers, and join handler threads.
    pub fn shutdown(&self) {
        {
            let mut st = self.inner.state.lock().expect("coordinator lock");
            if st.shutting_down {
                return;
            }
            st.shutting_down = true;
            for job in st.jobs.values_mut() {
                if job.done.is_none() {
                    job.done = Some(Err("coordinator shutting down".to_string()));
                }
            }
            st.queue.clear();
            st.inflight.clear();
            self.inner.work.notify_all();
            self.inner.done.notify_all();
        }
        for handle in self.handlers.lock().expect("handler lock").drain(..) {
            let _ = handle.join();
        }
        for child in self.children.lock().expect("children lock").iter_mut() {
            // Handlers already sent shutdown; reap (or kill a wedged one).
            match child.try_wait() {
                Ok(Some(_)) => {}
                _ => {
                    let _ = child.kill();
                    let _ = child.wait();
                }
            }
        }
    }
}

impl Drop for Coordinator {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// How a submit failed: refused at the door (admission control, quota,
/// auth — the wire's `{"type":"reject"}` line), or admitted but failed to
/// execute (the wire's `{"type":"error"}` line).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// Machine-readable rejection reason (`queue_full`,
    /// `client_job_quota`, `client_cell_quota`, `auth_failed`).
    Rejected(String),
    Failed(String),
}

impl SubmitError {
    /// Flatten into a single error message for callers that don't
    /// distinguish the two.
    pub fn into_message(self) -> String {
        match self {
            SubmitError::Rejected(reason) => format!("rejected: {reason}"),
            SubmitError::Failed(e) => e,
        }
    }
}

impl Inner {
    fn submit(
        inner: &Arc<Inner>,
        id: Option<String>,
        cfg: &SweepConfig,
        client: &str,
        deadline_ms: Option<u64>,
    ) -> Result<ResultEnvelope, SubmitError> {
        let key = proto::config_key(cfg);
        let plan = Arc::new(SweepPlan::from_config(cfg).map_err(SubmitError::Failed)?);
        let mut st = inner.state.lock().expect("coordinator lock");
        if st.shutting_down {
            return Err(SubmitError::Failed("coordinator shutting down".to_string()));
        }
        let id = id.unwrap_or_else(|| format!("job-{}", st.next_job));

        // 1. Cache: the in-memory LRU first, then the persistent segments
        //    (which survive coordinator restarts); a disk hit warms the LRU.
        if let Some(document) = st.cache.get(key) {
            let stats = EnvStats {
                served_from_cache: true,
                ..EnvStats::default()
            };
            return Ok(envelope(&id, key, &st, stats, document));
        }
        if let Some(document) = st.persistent.as_mut().and_then(|p| p.get(key)) {
            st.cache.put(key, document.clone());
            st.cache.count_hit();
            st.disk_hits += 1;
            let stats = EnvStats {
                served_from_cache: true,
                ..EnvStats::default()
            };
            return Ok(envelope(&id, key, &st, stats, document));
        }

        // 2. Coalesce onto an identical in-flight job.
        if let Some(&primary) = st.inflight.get(&key) {
            loop {
                let outcome = st
                    .jobs
                    .get(&primary)
                    .and_then(|j| j.done.clone())
                    .or_else(|| {
                        st.shutting_down
                            .then(|| Err("coordinator shutting down".into()))
                    });
                match outcome {
                    Some(Ok(_)) => {
                        // Served from the cache the primary just filled — a
                        // real cache hit, plus the coalesced marker.
                        let document = st
                            .cache
                            .get(key)
                            .expect("primary job inserts before completing");
                        let stats = EnvStats {
                            served_from_cache: true,
                            coalesced: true,
                            ..EnvStats::default()
                        };
                        return Ok(envelope(&id, key, &st, stats, document));
                    }
                    Some(Err(e)) => return Err(SubmitError::Failed(e)),
                    None => st = inner.done.wait(st).expect("coordinator lock"),
                }
            }
        }

        // 3. Admission control. Only genuinely new work is gated: cache
        //    hits and coalesced waits above cost no worker time. Reasons
        //    are machine-readable — they travel the wire as
        //    `{"type":"reject","reason":...}`.
        let job_cells = plan.grid.len() + plan.para_sweep.len();
        let pending = st.jobs.values().filter(|j| j.done.is_none());
        let (mut total, mut mine, mut my_cells) = (0usize, 0usize, 0usize);
        for job in pending {
            total += 1;
            if job.client == client {
                mine += 1;
                my_cells += job.remaining;
            }
        }
        let refused = if total >= inner.max_pending_jobs {
            Some("queue_full")
        } else if mine >= inner.max_jobs_per_client {
            Some("client_job_quota")
        } else if my_cells + job_cells > inner.max_cells_per_client {
            Some("client_cell_quota")
        } else {
            None
        };
        if let Some(reason) = refused {
            st.rejected_submits += 1;
            eprintln!("rh-serve: rejecting submit '{id}' from {client}: {reason}");
            return Err(SubmitError::Rejected(reason.to_string()));
        }

        // 4. New job.
        let job_id = st.next_job;
        st.next_job += 1;
        let mut job = Job {
            grid: vec![None; plan.grid.len()],
            para: vec![None; plan.para_sweep.len()],
            remaining: plan.grid.len() + plan.para_sweep.len(),
            plan: Arc::clone(&plan),
            key,
            kernel: inner.kernel,
            executed_cells: 0,
            checkpoint_cells: 0,
            checkpoint_skipped: 0,
            speculations: 0,
            duplicate_cells: 0,
            workers: BTreeMap::new(),
            client: client.to_string(),
            deadline: deadline_ms.map(|ms| Instant::now() + Duration::from_millis(ms)),
            admitted_at: Instant::now(),
            queue_wait_ms: None,
            done: None,
        };
        if let Some(dir) = &inner.checkpoint_dir {
            load_checkpoints(dir, &mut job);
        }

        if job.remaining == 0 {
            // Fully restored from checkpoints: no worker needed at all.
            job.queue_wait_ms = Some(0);
            let document = finalize_document(&job);
            st.cache.put(key, document.clone());
            persist_document(&mut st, key, &document);
            let stats = EnvStats {
                checkpoint_cells: job.checkpoint_cells,
                checkpoint_skipped: job.checkpoint_skipped,
                ..EnvStats::default()
            };
            job.done = Some(Ok(document.clone()));
            st.jobs.insert(job_id, job);
            st.named.insert(id.clone(), job_id);
            inner.done.notify_all();
            return Ok(envelope(&id, key, &st, stats, document));
        }

        if st.live_workers == 0 && !inner.allow_late_workers && inner.fallback_after.is_none() {
            return Err(SubmitError::Failed(
                "no live workers and none can attach (start with --workers or --listen)"
                    .to_string(),
            ));
        }

        // Queue shard leases for the missing cells, sized per list by the
        // adaptive controller (or the fixed width when it's off).
        let mut leases = Vec::new();
        for (list, slots) in [(ShardList::Grid, &job.grid), (ShardList::Para, &job.para)] {
            let missing: Vec<usize> = slots
                .iter()
                .enumerate()
                .filter_map(|(i, s)| s.is_none().then_some(i))
                .collect();
            let width = adaptive_width(inner, &st, list);
            for chunk in missing.chunks(width) {
                let shard = st.next_shard;
                st.next_shard += 1;
                leases.push(Lease {
                    job: job_id,
                    shard,
                    list,
                    indices: chunk.to_vec(),
                });
            }
        }
        st.jobs.insert(job_id, job);
        st.named.insert(id.clone(), job_id);
        st.inflight.insert(key, job_id);
        st.queue.extend(leases);
        inner.work.notify_all();

        // 5. Wait for the merge. With `--fallback-after`, a job stranded
        //    without any live worker past the deadline is claimed by this
        //    very thread: its queued leases are pulled and executed
        //    in-process — degraded to exactly what `rh-cli sweep` does,
        //    which by the determinism invariant yields the same bytes.
        //    A `--job-deadline-ms` expiry is enforced here too: past it
        //    the job dies exactly like a client cancel (workers abandon
        //    its cells at the next boundary).
        let started = Instant::now();
        let job_deadline = st.jobs[&job_id].deadline;
        loop {
            let outcome = st.jobs.get(&job_id).and_then(|j| j.done.clone());
            match outcome {
                Some(Ok(document)) => {
                    let stats = EnvStats::from_job(&st.jobs[&job_id]);
                    return Ok(envelope(&id, key, &st, stats, document));
                }
                Some(Err(e)) => return Err(SubmitError::Failed(e)),
                None => {
                    if let Some(dl) = job_deadline {
                        if Instant::now() >= dl {
                            cancel_job(
                                inner,
                                &mut st,
                                job_id,
                                &format!("job '{id}' deadline expired"),
                            );
                            continue;
                        }
                    }
                    if let Some(deadline) = inner.fallback_after {
                        if st.live_workers == 0 && started.elapsed() >= deadline {
                            let mine: Vec<Lease> = st
                                .queue
                                .iter()
                                .filter(|l| l.job == job_id)
                                .cloned()
                                .collect();
                            if !mine.is_empty() {
                                st.queue.retain(|l| l.job != job_id);
                                eprintln!(
                                    "rh-serve: no live worker after {deadline:?}; \
                                     executing job {job_id} in-process"
                                );
                                drop(st);
                                run_leases_in_process(inner, &mine);
                                st = inner.state.lock().expect("coordinator lock");
                                continue;
                            }
                        }
                        st = inner
                            .done
                            .wait_timeout(st, FALLBACK_TICK)
                            .expect("coordinator lock")
                            .0;
                    } else if let Some(dl) = job_deadline {
                        // Bounded wait: nothing notifies on wall-clock
                        // expiry, so sleep at most up to the deadline.
                        let left = dl
                            .saturating_duration_since(Instant::now())
                            .max(Duration::from_millis(1));
                        st = inner
                            .done
                            .wait_timeout(st, left)
                            .expect("coordinator lock")
                            .0;
                    } else {
                        st = inner.done.wait(st).expect("coordinator lock");
                    }
                }
            }
        }
    }
}

/// Per-job statistics carried into a response envelope.
#[derive(Default)]
struct EnvStats {
    served_from_cache: bool,
    coalesced: bool,
    executed_cells: u64,
    checkpoint_cells: u64,
    checkpoint_skipped: u64,
    speculations: u64,
    duplicate_cells: u64,
    queue_wait_ms: u64,
    workers: Vec<WorkerStat>,
}

impl EnvStats {
    fn from_job(job: &Job) -> Self {
        Self {
            served_from_cache: false,
            coalesced: false,
            executed_cells: job.executed_cells,
            checkpoint_cells: job.checkpoint_cells,
            checkpoint_skipped: job.checkpoint_skipped,
            speculations: job.speculations,
            duplicate_cells: job.duplicate_cells,
            queue_wait_ms: job.queue_wait_ms.unwrap_or(0),
            workers: job
                .workers
                .iter()
                .map(|(name, (kernel, cells))| WorkerStat {
                    worker: name.clone(),
                    kernel: kernel.clone(),
                    cells: *cells,
                })
                .collect(),
        }
    }
}

/// Build a response envelope (cache_hits snapshots the lifetime counter).
fn envelope(
    id: &str,
    key: (u64, u64),
    st: &State,
    stats: EnvStats,
    document: String,
) -> ResultEnvelope {
    ResultEnvelope {
        id: id.to_string(),
        config_hash: key.0,
        seed: key.1,
        served_from_cache: stats.served_from_cache,
        coalesced: stats.coalesced,
        cache_hits: st.cache.hits(),
        executed_cells: stats.executed_cells,
        checkpoint_cells: stats.checkpoint_cells,
        checkpoint_skipped: stats.checkpoint_skipped,
        speculations: stats.speculations,
        duplicate_cells: stats.duplicate_cells,
        evictions: st.cache.evictions(),
        queue_depth: st.jobs.values().filter(|j| j.done.is_none()).count() as u64,
        queue_wait_ms: stats.queue_wait_ms,
        rejected_submits: st.rejected_submits,
        auth_failures: st.auth_failures,
        cancelled_jobs: st.cancelled_jobs,
        workers: stats.workers,
        document,
    }
}

/// How many cells the next lease of `list` should carry: enough that the
/// lease takes ~`target_lease_ms` of wall time at the list's smoothed
/// per-cell rate. Before any observation (or with the sizer off) the fixed
/// `shard_cells` width applies; the result is clamped so a pathological
/// EWMA can neither starve the pool with single-cell leases nor swallow a
/// whole job in one lease.
fn adaptive_width(inner: &Inner, st: &State, list: ShardList) -> usize {
    /// Upper bound on adaptive lease width — bounds both the wire message
    /// size and the blast radius of one worker death.
    const MAX_ADAPTIVE_CELLS: usize = 1_024;
    if inner.target_lease_ms == 0 {
        return inner.shard_cells;
    }
    match st.list_ewma_ms[list_slot(list)] {
        Some(ms) if ms > 0.0 => {
            let ideal = (inner.target_lease_ms as f64 / ms).round() as usize;
            ideal.clamp(1, MAX_ADAPTIVE_CELLS)
        }
        _ => inner.shard_cells,
    }
}

/// Index of a list's slot in [`State::list_ewma_ms`].
fn list_slot(list: ShardList) -> usize {
    match list {
        ShardList::Grid => 0,
        ShardList::Para => 1,
    }
}

/// Write a completed document through to the persistent cache (when one is
/// configured). A write failure degrades durability, not the response —
/// log and move on.
fn persist_document(st: &mut MutexGuard<'_, State>, key: (u64, u64), document: &str) {
    if let Some(p) = st.persistent.as_mut() {
        if let Err(e) = p.put(key, document) {
            eprintln!("rh-serve: persistent cache write failed: {e}");
        }
    }
}

/// Graceful degradation: execute a stranded job's leases on the submitting
/// thread, merging through the same [`record_cell`] path workers use (so
/// checkpointing, duplicate assertions, and completion all behave
/// identically).
fn run_leases_in_process(inner: &Arc<Inner>, leases: &[Lease]) {
    for lease in leases {
        let (config, kernel) = {
            let st = inner.state.lock().expect("coordinator lock");
            let Some(job) = st.jobs.get(&lease.job) else {
                continue;
            };
            if job.done.is_some() {
                continue;
            }
            (job.plan.config.clone(), job.kernel)
        };
        let resolved = match kernel.resolve() {
            Ok(k) => k,
            Err(e) => {
                let mut st = inner.state.lock().expect("coordinator lock");
                fail_job(inner, &mut st, lease.job, &e);
                continue;
            }
        };
        let sweep_plan = match SweepPlan::from_config(&config) {
            Ok(p) => p,
            Err(e) => {
                let mut st = inner.state.lock().expect("coordinator lock");
                fail_job(inner, &mut st, lease.job, &e);
                continue;
            }
        };
        let cells = match lease.list {
            ShardList::Grid => &sweep_plan.grid,
            ShardList::Para => &sweep_plan.para_sweep,
        };
        let leased: Vec<_> = lease.indices.iter().map(|&i| cells[i].clone()).collect();
        let tables = crate::exec::build_table_cache(&sweep_plan, &leased);
        let mut runner = crate::exec::Worker::with_kernel(resolved);
        for (&index, cell) in lease.indices.iter().zip(&leased) {
            let result = runner.run_cell(&sweep_plan, cell, &tables);
            let mut st = inner.state.lock().expect("coordinator lock");
            record_cell(
                inner,
                &mut st,
                "in-process",
                resolved.name(),
                lease.job,
                lease.shard,
                lease.list,
                index,
                result,
            );
        }
    }
}

/// The speculation supervisor: ticks while the coordinator is alive,
/// re-leasing the still-missing cells of any active lease whose progress
/// (cell arrival or heartbeat) is older than the adaptive deadline — the
/// per-worker EWMA when that worker has history, else the global one.
/// Determinism makes the duplicate execution harmless; [`record_cell`]
/// asserts the duplicates really are bit-exact.
fn supervise_stragglers(inner: &Arc<Inner>) {
    let floor = inner.speculate_after.expect("supervisor requires a floor");
    let tick = (floor / 8).max(Duration::from_millis(25));
    let mut st = inner.state.lock().expect("coordinator lock");
    loop {
        if st.shutting_down {
            return;
        }
        let now = Instant::now();
        let stale: Vec<u64> = st
            .active
            .iter()
            .filter(|(_, a)| {
                if a.speculated {
                    return false;
                }
                let ewma = st
                    .worker_ewma_ms
                    .get(&a.worker)
                    .copied()
                    .or(st.ewma_cell_millis);
                let deadline = match ewma {
                    Some(ms) => {
                        floor.max(Duration::from_millis((ms * SPECULATE_EWMA_FACTOR) as u64))
                    }
                    None => floor,
                };
                now.duration_since(a.last_progress) >= deadline
            })
            .map(|(&shard, _)| shard)
            .collect();
        for shard in stale {
            speculate(inner, &mut st, shard);
        }
        st = inner
            .work
            .wait_timeout(st, tick)
            .expect("coordinator lock")
            .0;
    }
}

/// Re-lease one straggling shard's missing cells under a fresh shard id.
/// The original lease stays out — whichever copy finishes a cell first
/// fills the slot, and the loser must agree bit-for-bit.
fn speculate(inner: &Arc<Inner>, st: &mut MutexGuard<'_, State>, shard: u64) {
    let Some(active) = st.active.get(&shard) else {
        return;
    };
    let lease = active.lease.clone();
    let Some(job) = st.jobs.get_mut(&lease.job) else {
        st.active.remove(&shard);
        return;
    };
    if job.done.is_some() {
        st.active.remove(&shard);
        return;
    }
    let missing: Vec<usize> = lease
        .indices
        .iter()
        .copied()
        .filter(|&i| job.slot(lease.list, i).is_some_and(|s| s.is_none()))
        .collect();
    if missing.is_empty() {
        return;
    }
    job.speculations += 1;
    let twin_shard = st.next_shard;
    st.next_shard += 1;
    eprintln!(
        "rh-serve: speculating {} stale cell(s) of job {} shard {shard} as shard {twin_shard}",
        missing.len(),
        lease.job,
    );
    st.queue.push_back(Lease {
        job: lease.job,
        shard: twin_shard,
        list: lease.list,
        indices: missing,
    });
    if let Some(a) = st.active.get_mut(&shard) {
        a.speculated = true;
    }
    inner.work.notify_all();
}

/// Render a completed job's merged document — exactly what
/// [`crate::sweep::run_sweep`] would have produced in-process.
fn finalize_document(job: &Job) -> String {
    let grid: Vec<RunResult> = job
        .grid
        .iter()
        .map(|s| s.clone().expect("job complete"))
        .collect();
    let para_sweep: Vec<RunResult> = job
        .para
        .iter()
        .map(|s| s.clone().expect("job complete"))
        .collect();
    let para_monotone = para_sweep
        .windows(2)
        .all(|w| w[1].total_flips <= w[0].total_flips);
    let out = SweepOutput {
        config: job.plan.config.clone(),
        grid,
        para_sweep,
        para_monotone,
    };
    json::render(&out)
}

// ---------------------------------------------------------------------------
// Checkpointing
// ---------------------------------------------------------------------------

fn checkpoint_path(dir: &Path, key: (u64, u64), list: ShardList) -> PathBuf {
    dir.join(format!(
        "ckpt-{:016x}-{}-{}.jsonl",
        key.0,
        key.1,
        list.name()
    ))
}

/// Checksum binding a checkpoint record's index to its result payload, so
/// a flipped byte anywhere in the record is detected rather than merged.
fn checkpoint_sum(index: usize, result_json: &str) -> u64 {
    fnv1a64(format!("{index}:{result_json}").as_bytes())
}

/// One record of a checkpoint file, parsed and checksum-verified. `None`
/// means the record is torn or garbled and must be skipped (and counted).
fn decode_checkpoint_line(line: &str) -> Option<(usize, RunResult)> {
    let v = proto::parse(line).ok()?;
    let index = v.get("index").and_then(proto::Value::as_usize)?;
    let sum = v.get("sum").and_then(proto::Value::as_u64)?;
    let result_value = v.get("result")?;
    let result = proto::result_from_value(result_value).ok()?;
    // Re-render for the sum check: render(parse(x)) is canonical here
    // because the writer produced `result_to_json` output in the first
    // place, and a flipped byte inside a number or bool changes it.
    let result_json = proto::result_to_json(&result);
    (checkpoint_sum(index, &result_json) == sum).then_some((index, result))
}

/// Load whatever a previous run checkpointed for this job's key, filling
/// result slots so only the remainder gets scheduled. Torn lines (a crash
/// mid-append) and garbled records (checksum mismatch) are skipped and
/// counted — a bad record costs one cell, not the file, and the skip is
/// observable as `checkpoint_skipped` in the envelope.
fn load_checkpoints(dir: &Path, job: &mut Job) {
    for list in [ShardList::Grid, ShardList::Para] {
        let path = checkpoint_path(dir, job.key, list);
        let Ok(contents) = std::fs::read_to_string(&path) else {
            continue;
        };
        for line in contents.lines() {
            match decode_checkpoint_line(line) {
                Some((index, result)) => {
                    if let Some(slot @ None) = job.slot(list, index) {
                        *slot = Some(result);
                        job.remaining -= 1;
                        job.checkpoint_cells += 1;
                    }
                }
                None => {
                    job.checkpoint_skipped += 1;
                    eprintln!(
                        "rh-serve: skipping garbled checkpoint record in {} \
                         ({} skipped for this job so far)",
                        path.display(),
                        job.checkpoint_skipped
                    );
                }
            }
        }
    }
}

/// Append one merged cell to its job's checkpoint file.
fn checkpoint_cell(dir: &Path, key: (u64, u64), list: ShardList, index: usize, r: &RunResult) {
    let path = checkpoint_path(dir, key, list);
    let result_json = proto::result_to_json(r);
    let line = format!(
        "{{\"index\":{index},\"sum\":{},\"result\":{result_json}}}\n",
        checkpoint_sum(index, &result_json)
    );
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| f.write_all(line.as_bytes()));
    if let Err(e) = written {
        eprintln!(
            "rh-serve: checkpoint append to {} failed: {e}",
            path.display()
        );
    }
}

// ---------------------------------------------------------------------------
// Worker handling
// ---------------------------------------------------------------------------

/// Per-worker-connection loop: consume and vet the hello, then lease
/// shards and merge the streamed results until the connection drops or the
/// service shuts down. `local` marks coordinator-spawned workers (they
/// count toward the start barrier).
fn worker_handler<R: BufRead, W: Write>(
    inner: &Arc<Inner>,
    name: &str,
    mut reader: R,
    mut writer: W,
    local: bool,
) {
    // Hello first — a connection that says anything else is not a worker.
    match read_line(&mut reader) {
        Ok(Some(line)) => match FromWorker::decode(&line) {
            Ok(FromWorker::Hello {
                proto_version,
                config_epoch,
                auth_nonce,
                auth_proof,
                ..
            }) => {
                if !vet_worker(
                    inner,
                    name,
                    proto_version,
                    config_epoch,
                    auth_nonce,
                    auth_proof.as_deref(),
                    &mut writer,
                    local,
                ) {
                    return;
                }
            }
            _ => {
                register_spawn_failure(inner, name, "first message was not hello", local);
                return;
            }
        },
        _ => {
            register_spawn_failure(inner, name, "connection closed before hello", local);
            return;
        }
    };
    worker_session(inner, name, &mut reader, &mut writer, local);
}

/// Vet a worker hello against this coordinator's protocol version, config
/// epoch, and (for TCP-attached workers) the shared auth token. A mismatch
/// gets a terminal `reject` line (so the worker exits instead of
/// retrying), a log line, and a counter bump — and, for a locally-spawned
/// worker, fails coordinator startup, since a local pool that can never
/// attach is a configuration error. Local stdio workers skip the auth
/// check: the coordinator spawned them itself over a private pipe.
#[allow(clippy::too_many_arguments)]
fn vet_worker<W: Write>(
    inner: &Arc<Inner>,
    name: &str,
    proto_version: u64,
    config_epoch: u64,
    auth_nonce: u64,
    auth_proof: Option<&str>,
    writer: &mut W,
    local: bool,
) -> bool {
    let mut auth_failed = false;
    let reason = if proto_version != PROTO_VERSION {
        Some(format!(
            "protocol version {proto_version} does not match coordinator version {PROTO_VERSION}"
        ))
    } else if config_epoch != inner.config_epoch {
        Some(format!(
            "config epoch {config_epoch} does not match coordinator epoch {}",
            inner.config_epoch
        ))
    } else if let Some(token) = inner.auth_token.as_ref().filter(|_| !local) {
        let expected = proto::auth_proof(token, auth_nonce);
        if auth_proof.is_some_and(|p| proto::constant_time_eq(p, &expected)) {
            None
        } else {
            auth_failed = true;
            Some("auth proof missing or invalid".to_string())
        }
    } else {
        None
    };
    let Some(reason) = reason else {
        return true;
    };
    eprintln!("rh-serve: rejecting worker {name}: {reason}");
    {
        let mut st = inner.state.lock().expect("coordinator lock");
        st.rejected_workers += 1;
        if auth_failed {
            st.auth_failures += 1;
        }
    }
    let _ = write_line(
        writer,
        &ToWorker::Reject {
            reason: reason.clone(),
        }
        .encode(),
    );
    register_spawn_failure(inner, name, &reason, local);
    false
}

/// [`worker_handler`] for TCP connections whose hello the accept loop
/// already consumed (to tell workers from clients).
fn worker_session<R: BufRead, W: Write>(
    inner: &Arc<Inner>,
    name: &str,
    reader: &mut R,
    writer: &mut W,
    local: bool,
) {
    {
        let mut st = inner.state.lock().expect("coordinator lock");
        st.live_workers += 1;
        if local {
            st.local_hellos += 1;
        }
        inner.done.notify_all();
    }

    // Jobs this connection has already told the worker to abandon — one
    // `cancel` per job per connection is enough.
    let mut cancel_sent: HashSet<u64> = HashSet::new();

    loop {
        // Dequeue one live lease (or exit on shutdown).
        let lease = {
            let mut st = inner.state.lock().expect("coordinator lock");
            loop {
                if st.shutting_down {
                    drop(st);
                    let _ = write_line(writer, &ToWorker::Shutdown.encode());
                    worker_gone(inner, name, local);
                    return;
                }
                match st.queue.pop_front() {
                    Some(lease) => {
                        let alive = st.jobs.get(&lease.job).is_some_and(|j| j.done.is_none());
                        if alive {
                            break lease;
                        }
                        // Lease of a canceled/failed job: discard, keep looking.
                    }
                    None => st = inner.work.wait(st).expect("coordinator lock"),
                }
            }
        };

        // Materialize the wire lease outside the lock (configs are small,
        // but writes can block on back-pressure).
        let (config, kernel) = {
            let st = inner.state.lock().expect("coordinator lock");
            let job = &st.jobs[&lease.job];
            (job.plan.config.clone(), job.kernel)
        };
        let msg = ToWorker::Shard {
            job: lease.job,
            shard: lease.shard,
            list: lease.list,
            indices: lease.indices.clone(),
            kernel,
            config,
        };
        if write_line(writer, &msg.encode()).is_err() {
            requeue(inner, &lease);
            worker_gone(inner, name, local);
            return;
        }
        {
            // Register for supervision: the speculation supervisor watches
            // this entry's progress timestamps.
            let mut st = inner.state.lock().expect("coordinator lock");
            st.active.insert(
                lease.shard,
                ActiveLease {
                    lease: lease.clone(),
                    last_progress: Instant::now(),
                    speculated: false,
                    worker: name.to_string(),
                },
            );
        }

        // Drain the shard's result stream. Messages for *other* shards can
        // legitimately appear here (a worker flushing the tail of a lease
        // we already closed as complete) and are merged, never confused
        // with the current lease's lifecycle.
        loop {
            let line = match read_line(reader) {
                Ok(Some(line)) => line,
                // Died mid-shard: requeue whatever it didn't deliver.
                Ok(None) | Err(_) => {
                    let mut st = inner.state.lock().expect("coordinator lock");
                    st.active.remove(&lease.shard);
                    drop(st);
                    requeue(inner, &lease);
                    worker_gone(inner, name, local);
                    return;
                }
            };
            let msg = match FromWorker::decode(&line) {
                Ok(msg) => msg,
                Err(_) => {
                    // A garbled line (lossy link, fault injection): the
                    // payload is lost but jsonl framing survives, so the
                    // stream stays decodable. Any cell the line carried is
                    // re-leased when this shard closes short.
                    eprintln!("rh-serve: dropping garbled line from {name}");
                    continue;
                }
            };
            match msg {
                FromWorker::Cell {
                    job,
                    shard,
                    index,
                    kernel,
                    result,
                } => {
                    let mut st = inner.state.lock().expect("coordinator lock");
                    record_cell(
                        inner, &mut st, name, &kernel, job, shard, lease.list, index, result,
                    );
                    // A cell for a canceled/expired/failed job means the
                    // worker is still burning cells it can't use: tell it
                    // to abandon the job mid-shard. The worker acks and
                    // drops the rest of the lease — never requeued.
                    let dead = st
                        .jobs
                        .get(&job)
                        .is_none_or(|j| matches!(j.done, Some(Err(_))));
                    // Every leased slot filled (possibly with help from a
                    // speculative twin): the lease is complete even if the
                    // closing shard_done gets lost.
                    let settled = shard == lease.shard && lease_settled(&mut st, &lease);
                    if settled {
                        st.active.remove(&lease.shard);
                    }
                    drop(st);
                    if dead
                        && cancel_sent.insert(job)
                        && write_line(writer, &ToWorker::Cancel { job }.encode()).is_err()
                    {
                        requeue(inner, &lease);
                        worker_gone(inner, name, local);
                        return;
                    }
                    if settled {
                        break;
                    }
                }
                FromWorker::CancelAck { job: _, shard } => {
                    // The worker abandoned the lease at a cell boundary;
                    // its remaining cells die with the job — requeue-free
                    // teardown by design.
                    let mut st = inner.state.lock().expect("coordinator lock");
                    st.active.remove(&shard);
                    if shard == lease.shard {
                        break;
                    }
                }
                FromWorker::Heartbeat { .. } => {
                    // Liveness only: the pulse proves the socket (and the
                    // read loop) is alive. It deliberately does NOT reset
                    // the speculation clock — a worker that beats but
                    // delivers no cells is exactly the straggler the
                    // supervisor exists to route around.
                }
                FromWorker::ShardDone { job, shard, kernel } => {
                    let mut st = inner.state.lock().expect("coordinator lock");
                    if let Some(j) = st.jobs.get_mut(&job) {
                        // The per-lease resolution is authoritative for this
                        // worker's report entry.
                        if let Some(stat) = j.workers.get_mut(name) {
                            stat.0 = kernel;
                        }
                    }
                    if shard == lease.shard {
                        st.active.remove(&lease.shard);
                        drop(st);
                        // A dropped line may have swallowed a cell: requeue
                        // whatever the closed shard left unfilled.
                        requeue(inner, &lease);
                        break;
                    }
                }
                FromWorker::Fail {
                    job,
                    shard,
                    message,
                } => {
                    let mut st = inner.state.lock().expect("coordinator lock");
                    fail_job(inner, &mut st, job, &message);
                    if shard == lease.shard {
                        st.active.remove(&lease.shard);
                        break;
                    }
                }
                FromWorker::Hello { .. } => {} // duplicate hello: ignore
            }
        }
    }
}

/// True when every slot a lease covers is filled — or its job is already
/// finished — so the serving connection can close the lease out.
fn lease_settled(st: &mut MutexGuard<'_, State>, lease: &Lease) -> bool {
    let Some(job) = st.jobs.get_mut(&lease.job) else {
        return true;
    };
    if job.done.is_some() {
        return true;
    }
    lease
        .indices
        .iter()
        .all(|&i| job.slot(lease.list, i).is_none_or(|s| s.is_some()))
}

/// Merge one streamed cell into its job. A cell landing in an
/// already-filled slot (speculative twin, or re-execution after a lossy
/// link) is **asserted bit-exact** against the occupant: agreement is
/// counted in `duplicate_cells`; divergence is a determinism violation and
/// fails the job loudly — a wrong answer must never win a race silently.
/// `kernel` is the per-cell resolved kernel the worker reported.
#[allow(clippy::too_many_arguments)]
fn record_cell(
    inner: &Arc<Inner>,
    st: &mut MutexGuard<'_, State>,
    worker: &str,
    kernel: &str,
    job_id: u64,
    shard: u64,
    list: ShardList,
    index: usize,
    result: RunResult,
) {
    // Supervision bookkeeping first: this arrival is progress for its
    // shard, and its wall time feeds the straggler deadline's EWMAs
    // (global and per-worker) plus the per-list EWMA behind the adaptive
    // shard sizer.
    let now = Instant::now();
    if let Some(active) = st.active.get_mut(&shard) {
        let sample_ms = now.duration_since(active.last_progress).as_secs_f64() * 1e3;
        active.last_progress = now;
        let fold = |prev: Option<f64>| match prev {
            Some(prev) => EWMA_ALPHA * sample_ms + (1.0 - EWMA_ALPHA) * prev,
            None => sample_ms,
        };
        st.ewma_cell_millis = Some(fold(st.ewma_cell_millis));
        let per_worker = st.worker_ewma_ms.get(worker).copied();
        st.worker_ewma_ms
            .insert(worker.to_string(), fold(per_worker));
        st.list_ewma_ms[list_slot(list)] = Some(fold(st.list_ewma_ms[list_slot(list)]));
    }

    let Some(job) = st.jobs.get_mut(&job_id) else {
        return;
    };
    if job.done.is_some() {
        return;
    }
    let key = job.key;
    let Some(slot) = job.slot(list, index) else {
        return;
    };
    if let Some(existing) = slot {
        // Bit-exact comparison via the canonical wire rendering: floats
        // travel as IEEE bit patterns, so equal strings ⇔ equal bits.
        if proto::result_to_json(existing) == proto::result_to_json(&result) {
            job.duplicate_cells += 1;
        } else {
            let message = format!(
                "determinism violation: {} cell {index} of job {job_id} diverged \
                 between workers (duplicate from {worker} disagrees with the \
                 merged result)",
                list.name()
            );
            eprintln!("rh-serve: {message}");
            fail_job(inner, st, job_id, &message);
        }
        return;
    }
    *slot = Some(result.clone());
    job.remaining -= 1;
    job.executed_cells += 1;
    if job.queue_wait_ms.is_none() {
        job.queue_wait_ms = Some(now.duration_since(job.admitted_at).as_millis() as u64);
    }
    let stat = job
        .workers
        .entry(worker.to_string())
        .or_insert_with(|| (kernel.to_string(), 0));
    if stat.0 != kernel {
        stat.0 = kernel.to_string();
    }
    stat.1 += 1;
    let complete = job.remaining == 0;
    st.merged_cells_total += 1;
    if !complete && Some(st.merged_cells_total) == inner.cancel_after_cells {
        // Chaos arm: the job owning the Nth merged cell coordinator-wide
        // is canceled mid-flight, exercising the whole cancel pipeline
        // (teardown, worker-side abandonment, counters) on a schedule.
        eprintln!(
            "rh-serve: fault plan canceling job {job_id} after {} cells",
            st.merged_cells_total
        );
        cancel_job(
            inner,
            st,
            job_id,
            "canceled by fault plan (cancel-after-cells)",
        );
        return;
    }
    if let Some(dir) = &inner.checkpoint_dir {
        checkpoint_cell(dir, key, list, index, &result);
    }
    if complete {
        let document = finalize_document(&st.jobs[&job_id]);
        st.cache.put(key, document.clone());
        persist_document(st, key, &document);
        st.inflight.remove(&key);
        if let Some(job) = st.jobs.get_mut(&job_id) {
            job.done = Some(Ok(document));
        }
        inner.done.notify_all();
    }
}

/// Fail one job (worker-reported permanent error): waiters wake with the
/// message, queued leases are dropped.
fn fail_job(inner: &Arc<Inner>, st: &mut MutexGuard<'_, State>, job_id: u64, message: &str) {
    if let Some(job) = st.jobs.get_mut(&job_id) {
        if job.done.is_none() {
            let key = job.key;
            job.done = Some(Err(message.to_string()));
            st.inflight.remove(&key);
            st.queue.retain(|l| l.job != job_id);
            st.active.retain(|_, a| a.lease.job != job_id);
            inner.done.notify_all();
        }
    }
}

/// Requeue a dead worker's lease, minus the cells it already streamed back.
fn requeue(inner: &Arc<Inner>, lease: &Lease) {
    let mut st = inner.state.lock().expect("coordinator lock");
    let Some(job) = st.jobs.get_mut(&lease.job) else {
        return;
    };
    if job.done.is_some() {
        return;
    }
    let mut rest = lease.clone();
    rest.indices
        .retain(|&i| job.slot(lease.list, i).is_some_and(|s| s.is_none()));
    if !rest.indices.is_empty() {
        st.queue.push_front(rest);
        inner.work.notify_all();
    }
}

/// Account a worker disconnect. When the pool empties, no late workers can
/// ever attach, and in-process fallback is off, pending jobs fail fast
/// instead of hanging (with fallback on, the submitting threads pick the
/// stranded leases up themselves).
fn worker_gone(inner: &Arc<Inner>, name: &str, _local: bool) {
    let mut st = inner.state.lock().expect("coordinator lock");
    st.live_workers = st.live_workers.saturating_sub(1);
    if st.live_workers == 0
        && !inner.allow_late_workers
        && inner.fallback_after.is_none()
        && !st.shutting_down
    {
        let stuck: Vec<u64> = st
            .jobs
            .iter()
            .filter(|(_, j)| j.done.is_none())
            .map(|(&id, _)| id)
            .collect();
        for job_id in stuck {
            fail_job(
                inner,
                &mut st,
                job_id,
                &format!("all workers exited (last was {name})"),
            );
        }
    }
}

fn register_spawn_failure(inner: &Arc<Inner>, name: &str, why: &str, local: bool) {
    if local {
        let mut st = inner.state.lock().expect("coordinator lock");
        st.spawn_failed = Some(format!("{name}: {why}"));
        inner.done.notify_all();
    }
}

// ---------------------------------------------------------------------------
// TCP front door
// ---------------------------------------------------------------------------

/// Accept loop: every connection's first line says what it is — a worker
/// hello (vetted before any lease), or a client message. Anything else is
/// a logged, counted, per-connection rejection; the listener itself never
/// panics or hangs on a bad peer.
fn accept_loop(inner: &Arc<Inner>, listener: &TcpListener) {
    for stream in listener.incoming() {
        let Ok(stream) = stream else { continue };
        let inner = Arc::clone(inner);
        std::thread::spawn(move || {
            let peer = stream
                .peer_addr()
                .map(|a| a.to_string())
                .unwrap_or_else(|_| "unknown".to_string());
            // `--handshake-timeout-ms`: a connect-and-say-nothing peer must
            // not pin a thread forever, and an authenticated first line
            // (the proof rides the hello) must arrive within the same
            // deadline.
            let _ = stream.set_read_timeout(Some(inner.handshake_timeout));
            let Ok(read_half) = stream.try_clone() else {
                return;
            };
            let mut reader = BufReader::new(read_half);
            let mut writer = stream;
            let first = match read_line(&mut reader) {
                Ok(Some(first)) => first,
                Ok(None) => return, // silent hangup: nothing to log
                Err(_) => {
                    reject_connection(&inner, &peer, &mut writer, "no first line before timeout");
                    return;
                }
            };
            // The timeout only guards the greeting: attached workers
            // legitimately idle between leases. (The clones share one
            // socket, so clearing it on either half clears both.)
            let _ = writer.set_read_timeout(None);
            route_first(&inner, &peer, &first, &mut reader, &mut writer);
        });
    }
}

/// Dispatch a connection on its first line. Factored off the TCP accept
/// path so garbage-greeting handling is unit-testable over in-memory
/// streams.
fn route_first<R: BufRead, W: Write>(
    inner: &Arc<Inner>,
    peer: &str,
    first: &str,
    reader: &mut R,
    writer: &mut W,
) {
    let parsed = proto::parse(first);
    let is_worker_hello = parsed.as_ref().is_ok_and(|v| {
        v.get("type").and_then(proto::Value::as_str) == Some("hello")
            && v.get("role").and_then(proto::Value::as_str) == Some("worker")
    });
    if is_worker_hello {
        let name = format!("tcp-{peer}");
        match FromWorker::decode(first) {
            Ok(FromWorker::Hello {
                proto_version,
                config_epoch,
                auth_nonce,
                auth_proof,
                ..
            }) => {
                if vet_worker(
                    inner,
                    &name,
                    proto_version,
                    config_epoch,
                    auth_nonce,
                    auth_proof.as_deref(),
                    writer,
                    false,
                ) {
                    worker_session(inner, &name, reader, writer, false);
                }
            }
            _ => reject_connection(inner, peer, writer, "malformed worker hello"),
        }
    } else if parsed.is_ok() {
        client_session(inner, peer, first, reader, writer);
    } else {
        reject_connection(inner, peer, writer, "first line is not a protocol message");
    }
}

/// Log, count, and answer a connection whose greeting was garbage. The
/// error line is best-effort — the peer may already be gone.
fn reject_connection<W: Write>(inner: &Arc<Inner>, peer: &str, writer: &mut W, why: &str) {
    {
        let mut st = inner.state.lock().expect("coordinator lock");
        st.rejected_connections += 1;
    }
    eprintln!("rh-serve: rejecting connection from {peer}: {why}");
    let _ = write_line(writer, &encode_error("", why));
}

/// One client connection: handle its first line, then every further line
/// until EOF. Submits run to completion in order; a bad line yields an
/// error envelope, not a dropped connection. When the coordinator holds an
/// auth token, the session must open with a valid `client_hello` —
/// anything else gets `{"type":"reject","reason":"auth_failed"}` and the
/// connection is closed.
fn client_session<R: BufRead, W: Write>(
    inner: &Arc<Inner>,
    peer: &str,
    first: &str,
    reader: &mut R,
    writer: &mut W,
) {
    // Client identity for quota accounting: the peer IP (not IP:port — a
    // client opening many connections is still one client). In-memory
    // test transports pass a plain label through unchanged.
    let client = peer.rsplit_once(':').map_or(peer, |(host, _)| host);
    let mut authed = inner.auth_token.is_none();
    let mut line = first.to_string();
    loop {
        let mut hangup = false;
        let reply = match ClientMsg::decode(&line) {
            Ok(ClientMsg::Hello {
                auth_nonce,
                auth_proof,
            }) => match &inner.auth_token {
                Some(token)
                    if proto::constant_time_eq(
                        &auth_proof,
                        &proto::auth_proof(token, auth_nonce),
                    ) =>
                {
                    authed = true;
                    "{\"type\":\"hello_ok\"}".to_string()
                }
                Some(_) => {
                    let mut st = inner.state.lock().expect("coordinator lock");
                    st.auth_failures += 1;
                    eprintln!("rh-serve: rejecting client {peer}: bad auth proof");
                    hangup = true;
                    proto::encode_reject("auth_failed")
                }
                // No token required: the hello is a harmless ping.
                None => "{\"type\":\"hello_ok\"}".to_string(),
            },
            Ok(ClientMsg::Submit { .. }) | Ok(ClientMsg::Cancel { .. }) if !authed => {
                let mut st = inner.state.lock().expect("coordinator lock");
                st.auth_failures += 1;
                st.rejected_submits += 1;
                eprintln!("rh-serve: rejecting client {peer}: not authenticated");
                hangup = true;
                proto::encode_reject("auth_failed")
            }
            Ok(ClientMsg::Submit {
                id,
                config,
                deadline_ms,
            }) => {
                let label = id.clone().unwrap_or_default();
                match Inner::submit(inner, id, &config, client, deadline_ms) {
                    Ok(env) => env.encode(),
                    Err(SubmitError::Rejected(reason)) => proto::encode_reject(&reason),
                    Err(SubmitError::Failed(e)) => encode_error(&label, &e),
                }
            }
            Ok(ClientMsg::Cancel { id }) => {
                let canceled = cancel_by_name(inner, &id);
                format!(
                    "{{\"type\":\"cancel_ack\",\"id\":{},\"canceled\":{canceled}}}",
                    proto::jstr(&id)
                )
            }
            Err(e) => encode_error("", &e),
        };
        // `slow-client` chaos arm: a client that drains replies slowly.
        // Injected coordinator-side so the latency (and the back-pressure
        // it creates) is deterministic under test.
        if let Some(delay) = inner.slow_client_delay {
            std::thread::sleep(delay);
        }
        if write_line(writer, &reply).is_err() || hangup {
            return;
        }
        match read_line(reader) {
            Ok(Some(next)) => line = next,
            _ => return,
        }
    }
}

fn cancel_by_name(inner: &Arc<Inner>, id: &str) -> bool {
    let mut st = inner.state.lock().expect("coordinator lock");
    let Some(&job_id) = st.named.get(id) else {
        return false;
    };
    cancel_job(inner, &mut st, job_id, &format!("job '{id}' canceled"))
}

/// Kill one unfinished job — client cancel, deadline expiry, and the
/// `cancel-after-cells` fault all land here. Queued leases are dropped;
/// leases already out on workers are *not* requeued: the serving
/// connection notices the dead job on its next cell and sends the worker a
/// `cancel` so the rest of the lease is abandoned mid-shard. Checkpointed
/// cells survive for a later resubmit. Returns false for unknown/finished
/// jobs.
fn cancel_job(
    inner: &Arc<Inner>,
    st: &mut MutexGuard<'_, State>,
    job_id: u64,
    message: &str,
) -> bool {
    let Some(job) = st.jobs.get_mut(&job_id) else {
        return false;
    };
    if job.done.is_some() {
        return false;
    }
    let key = job.key;
    job.done = Some(Err(message.to_string()));
    st.cancelled_jobs += 1;
    st.inflight.remove(&key);
    st.queue.retain(|l| l.job != job_id);
    st.active.retain(|_, a| a.lease.job != job_id);
    inner.done.notify_all();
    true
}

// ---------------------------------------------------------------------------
// CLI entry points
// ---------------------------------------------------------------------------

/// `rh-cli serve`: start the coordinator, then serve clients — over TCP
/// when `--listen` is given (this call then parks forever), else jsonl on
/// stdin with envelopes on stdout.
pub fn run_serve(opts: ServeOptions) -> Result<(), String> {
    let listening = opts.listen.is_some();
    let coordinator = Coordinator::start(opts)?;
    if listening {
        let addr = coordinator.local_addr().expect("listen mode binds");
        eprintln!("rh-serve: listening on {addr}");
        loop {
            std::thread::sleep(Duration::from_secs(3600));
        }
    }
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout().lock();
    let mut reader = stdin.lock();
    while let Some(line) = read_line(&mut reader).map_err(|e| format!("stdin: {e}"))? {
        let reply = match ClientMsg::decode(&line) {
            Ok(ClientMsg::Submit {
                id,
                config,
                deadline_ms,
            }) => {
                let label = id.clone().unwrap_or_default();
                match coordinator.submit_detailed(id, &config, "stdin", deadline_ms) {
                    Ok(env) => env.encode(),
                    Err(SubmitError::Rejected(reason)) => proto::encode_reject(&reason),
                    Err(SubmitError::Failed(e)) => encode_error(&label, &e),
                }
            }
            Ok(ClientMsg::Cancel { id }) => {
                let canceled = coordinator.cancel(&id);
                format!(
                    "{{\"type\":\"cancel_ack\",\"id\":{},\"canceled\":{canceled}}}",
                    proto::jstr(&id)
                )
            }
            // The stdin operator started this process; auth guards the
            // TCP front door, so a local hello is just acknowledged.
            Ok(ClientMsg::Hello { .. }) => "{\"type\":\"hello_ok\"}".to_string(),
            Err(e) => encode_error("", &e),
        };
        write_line(&mut stdout, &reply).map_err(|e| format!("stdout: {e}"))?;
    }
    coordinator.shutdown();
    Ok(())
}

/// Parsed `rh-cli submit` options (a thin TCP client for CI and scripts).
#[derive(Debug, Clone, Default)]
pub struct SubmitOptions {
    pub connect: String,
    /// Bound on both the connect and each response read (`--timeout`);
    /// `None` blocks indefinitely, as before. On expiry the client exits
    /// nonzero with a message naming the deadline — a wedged coordinator
    /// must not wedge CI with it.
    pub timeout: Option<Duration>,
    /// `--job-deadline-ms`: stamped onto every submitted config so the
    /// coordinator expires jobs that outlive it.
    pub deadline_ms: Option<u64>,
    /// Shared secret (`--auth-token-file`): the session opens with an
    /// authenticated `client_hello` before any submit.
    pub auth_token: Option<String>,
}

/// Connect to the coordinator, bounded by `timeout` when one is set (the
/// same deadline then bounds every response read).
fn connect_coordinator(connect: &str, timeout: Option<Duration>) -> Result<TcpStream, String> {
    let Some(timeout) = timeout else {
        return TcpStream::connect(connect)
            .map_err(|e| format!("cannot connect to {connect}: {e}"));
    };
    let addrs: Vec<SocketAddr> = connect
        .to_socket_addrs()
        .map_err(|e| format!("cannot resolve {connect}: {e}"))?
        .collect();
    let mut last = format!("{connect} resolved to no addresses");
    for addr in addrs {
        match TcpStream::connect_timeout(&addr, timeout) {
            Ok(stream) => {
                stream
                    .set_read_timeout(Some(timeout))
                    .map_err(|e| format!("set read timeout: {e}"))?;
                return Ok(stream);
            }
            Err(e) => last = format!("cannot connect to {addr} within {timeout:?}: {e}"),
        }
    }
    Err(last)
}

/// Open a client session with an authenticated `client_hello` and wait for
/// the coordinator's `hello_ok`; a reject fails the whole invocation
/// before any work is sent.
fn client_auth_handshake<R: BufRead, W: Write>(
    reader: &mut R,
    writer: &mut W,
    token: &str,
) -> Result<(), String> {
    let nonce = rh_core::SplitMix64::new(rh_core::derive_seed(
        0xC11E_47E5,
        &[u64::from(std::process::id())],
    ))
    .next_u64();
    let hello = ClientMsg::Hello {
        auth_nonce: nonce,
        auth_proof: proto::auth_proof(token, nonce),
    };
    write_line(writer, &hello.encode()).map_err(|e| format!("send hello: {e}"))?;
    let reply = read_line(reader)
        .map_err(|e| format!("recv hello_ok: {e}"))?
        .ok_or("coordinator closed the connection during auth")?;
    let v = proto::parse(&reply)?;
    match v.get("type").and_then(proto::Value::as_str) {
        Some("hello_ok") => Ok(()),
        Some("reject") => Err(format!(
            "authentication rejected: {}",
            v.get("reason")
                .and_then(proto::Value::as_str)
                .unwrap_or("unknown reason")
        )),
        _ => Err(format!("unexpected auth reply: {reply}")),
    }
}

/// `rh-cli submit`: read config lines from stdin, send each to the
/// coordinator at `--connect`, print each returned **document** verbatim on
/// stdout (so output byte-diffs directly against `rh-cli sweep`) with the
/// envelope metadata on stderr. Errors exit nonzero.
pub fn run_submit(opts: &SubmitOptions) -> Result<(), String> {
    let stream = connect_coordinator(&opts.connect, opts.timeout)?;
    let mut reader = BufReader::new(
        stream
            .try_clone()
            .map_err(|e| format!("clone stream: {e}"))?,
    );
    let mut writer = stream;

    // Authenticate first when a token was given: one client_hello carrying
    // a seeded nonce and the shared-secret proof, answered by hello_ok (or
    // a reject, which fails the whole run before any config is sent).
    if let Some(token) = &opts.auth_token {
        client_auth_handshake(&mut reader, &mut writer, token)?;
    }

    let stdin = std::io::stdin();
    let mut input = stdin.lock();
    let mut stdout = std::io::stdout().lock();
    while let Some(line) = read_line(&mut input).map_err(|e| format!("stdin: {e}"))? {
        // A `--job-deadline-ms` is stamped into each submit by decoding
        // and re-encoding the line; without one the line is forwarded
        // verbatim (bare configs included).
        let line = match opts.deadline_ms {
            None => line,
            Some(ms) => match ClientMsg::decode(&line) {
                Ok(ClientMsg::Submit {
                    id,
                    config,
                    deadline_ms,
                }) => ClientMsg::Submit {
                    id,
                    config,
                    deadline_ms: deadline_ms.or(Some(ms)),
                }
                .encode(),
                _ => line,
            },
        };
        write_line(&mut writer, &line).map_err(|e| format!("send: {e}"))?;
        let reply = read_line(&mut reader)
            .map_err(|e| match opts.timeout {
                Some(t)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    format!("no response from {} within {t:?}", opts.connect)
                }
                _ => format!("recv: {e}"),
            })?
            .ok_or("coordinator closed the connection")?;
        let env = ResultEnvelope::decode(&reply)?;
        eprintln!(
            "rh-submit: id={} hash={:#018x} seed={} cached={} coalesced={} cache_hits={} \
             executed={} checkpointed={} ckpt_skipped={} speculations={} duplicates={} \
             evictions={} queue_depth={} queue_wait_ms={} rejected={} auth_failures={} \
             cancelled={} workers={}",
            env.id,
            env.config_hash,
            env.seed,
            env.served_from_cache,
            env.coalesced,
            env.cache_hits,
            env.executed_cells,
            env.checkpoint_cells,
            env.checkpoint_skipped,
            env.speculations,
            env.duplicate_cells,
            env.evictions,
            env.queue_depth,
            env.queue_wait_ms,
            env.rejected_submits,
            env.auth_failures,
            env.cancelled_jobs,
            env.workers
                .iter()
                .map(|w| format!("{}:{}({})", w.worker, w.kernel, w.cells))
                .collect::<Vec<_>>()
                .join(","),
        );
        // Document plus the trailing newline `rh-cli sweep` prints, so the
        // two outputs diff byte-for-byte.
        stdout
            .write_all(env.document.as_bytes())
            .and_then(|()| stdout.write_all(b"\n"))
            .and_then(|()| stdout.flush())
            .map_err(|e| format!("stdout: {e}"))?;
    }
    Ok(())
}

/// Parsed `rh-cli cancel` options (the client verb for killing an
/// in-flight job by its submit id).
#[derive(Debug, Clone, Default)]
pub struct CancelOptions {
    pub connect: String,
    /// The job id to cancel (the `id` given at submit time).
    pub id: String,
    pub timeout: Option<Duration>,
    pub auth_token: Option<String>,
}

/// `rh-cli cancel`: ask the coordinator to kill one in-flight job. Exits
/// nonzero when the job is unknown or already finished (`canceled:false`),
/// so scripts can tell a real cancellation from a no-op.
pub fn run_cancel(opts: &CancelOptions) -> Result<(), String> {
    let stream = connect_coordinator(&opts.connect, opts.timeout)?;
    let mut reader = BufReader::new(
        stream
            .try_clone()
            .map_err(|e| format!("clone stream: {e}"))?,
    );
    let mut writer = stream;
    if let Some(token) = &opts.auth_token {
        client_auth_handshake(&mut reader, &mut writer, token)?;
    }
    let msg = ClientMsg::Cancel {
        id: opts.id.clone(),
    };
    write_line(&mut writer, &msg.encode()).map_err(|e| format!("send: {e}"))?;
    let reply = read_line(&mut reader)
        .map_err(|e| format!("recv: {e}"))?
        .ok_or("coordinator closed the connection")?;
    let v = proto::parse(&reply)?;
    match v.get("type").and_then(proto::Value::as_str) {
        Some("cancel_ack") => match v.get("canceled").and_then(proto::Value::as_bool) {
            Some(true) => {
                eprintln!("rh-cancel: job '{}' canceled", opts.id);
                Ok(())
            }
            _ => Err(format!("job '{}' is unknown or already finished", opts.id)),
        },
        Some("reject") => Err(format!(
            "cancel rejected: {}",
            v.get("reason")
                .and_then(proto::Value::as_str)
                .unwrap_or("unknown reason")
        )),
        _ => Err(format!("unexpected cancel reply: {reply}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn small_config() -> SweepConfig {
        SweepConfig {
            activations: 2_000,
            hc_firsts: vec![500],
            sides: vec![2],
            para_probabilities: vec![0.0],
            geometry: rh_core::Geometry::tiny(64),
            ..SweepConfig::default()
        }
    }

    /// A bare coordinator core with no workers, listener, or threads —
    /// just the shared state the handler functions operate on.
    fn test_inner() -> Arc<Inner> {
        test_inner_custom(None, usize::MAX, usize::MAX, usize::MAX)
    }

    /// [`test_inner`] with admission/auth knobs for the job-manager tests.
    fn test_inner_custom(
        auth_token: Option<String>,
        max_pending_jobs: usize,
        max_jobs_per_client: usize,
        max_cells_per_client: usize,
    ) -> Arc<Inner> {
        Arc::new(Inner {
            state: Mutex::new(State {
                jobs: HashMap::new(),
                named: HashMap::new(),
                queue: VecDeque::new(),
                cache: ResultCache::new(8),
                persistent: None,
                inflight: HashMap::new(),
                active: HashMap::new(),
                ewma_cell_millis: None,
                worker_ewma_ms: HashMap::new(),
                list_ewma_ms: [None, None],
                next_job: 0,
                next_shard: 0,
                live_workers: 0,
                local_hellos: 0,
                spawn_failed: None,
                rejected_connections: 0,
                rejected_workers: 0,
                disk_hits: 0,
                rejected_submits: 0,
                auth_failures: 0,
                cancelled_jobs: 0,
                merged_cells_total: 0,
                shutting_down: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
            kernel: KernelChoice::Auto,
            checkpoint_dir: None,
            shard_cells: 4,
            allow_late_workers: true,
            config_epoch: 0,
            fallback_after: None,
            speculate_after: None,
            max_pending_jobs,
            max_jobs_per_client,
            max_cells_per_client,
            target_lease_ms: 1_500,
            handshake_timeout: Duration::from_secs(10),
            auth_token,
            slow_client_delay: None,
            cancel_after_cells: None,
        })
    }

    /// Insert a fresh job for `cfg` and return its id plus the reference
    /// per-cell results of the grid list (executed in-process).
    fn seed_job(inner: &Arc<Inner>, cfg: &SweepConfig) -> (u64, Vec<RunResult>) {
        let plan = Arc::new(SweepPlan::from_config(cfg).expect("valid config"));
        let results = crate::exec::execute_cells(&plan, &plan.grid, 1);
        let mut st = inner.state.lock().unwrap();
        let job_id = st.next_job;
        st.next_job += 1;
        let job = Job {
            grid: vec![None; plan.grid.len()],
            para: vec![None; plan.para_sweep.len()],
            remaining: plan.grid.len() + plan.para_sweep.len(),
            plan: Arc::clone(&plan),
            key: (0xABCD, cfg.seed),
            kernel: KernelChoice::Auto,
            executed_cells: 0,
            checkpoint_cells: 0,
            checkpoint_skipped: 0,
            speculations: 0,
            duplicate_cells: 0,
            workers: BTreeMap::new(),
            client: "test-client".to_string(),
            deadline: None,
            admitted_at: Instant::now(),
            queue_wait_ms: None,
            done: None,
        };
        st.jobs.insert(job_id, job);
        (job_id, results)
    }

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "rh-serve-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    #[test]
    fn garbage_first_lines_are_rejected_not_panicked() {
        let inner = test_inner();
        let garbage = [
            "not json at all",
            "{\"type\":\"hello\",\"role\":\"worker\"",
            "\u{0}\u{1}\u{2}garbage",
            "GET / HTTP/1.1",
        ];
        for first in garbage {
            let mut reader = Cursor::new(Vec::new());
            let mut out = Vec::new();
            route_first(&inner, "test-peer", first, &mut reader, &mut out);
            let reply = String::from_utf8(out).expect("utf8 reply");
            assert!(
                reply.contains("\"type\":\"error\""),
                "garbage '{first}' must get an error line, got '{reply}'"
            );
        }
        let st = inner.state.lock().unwrap();
        assert_eq!(st.rejected_connections, garbage.len() as u64);
        assert_eq!(st.live_workers, 0, "no garbage line may register a worker");
    }

    #[test]
    fn valid_json_non_hello_goes_to_the_client_path() {
        let inner = test_inner();
        let mut reader = Cursor::new(Vec::new());
        let mut out = Vec::new();
        route_first(
            &inner,
            "peer",
            "{\"type\":\"bogus\"}",
            &mut reader,
            &mut out,
        );
        let reply = String::from_utf8(out).unwrap();
        assert!(
            reply.contains("unknown client message type"),
            "got '{reply}'"
        );
        assert_eq!(inner.state.lock().unwrap().rejected_connections, 0);
    }

    #[test]
    fn version_and_epoch_skew_get_a_terminal_reject_line() {
        let inner = test_inner();
        for (hello, needle) in [
            (
                FromWorker::Hello {
                    kernel: "scalar".into(),
                    pid: 1,
                    proto_version: PROTO_VERSION + 1,
                    config_epoch: 0,
                    auth_nonce: 0,
                    auth_proof: None,
                },
                "protocol version",
            ),
            (
                FromWorker::Hello {
                    kernel: "scalar".into(),
                    pid: 1,
                    proto_version: PROTO_VERSION,
                    config_epoch: 3,
                    auth_nonce: 0,
                    auth_proof: None,
                },
                "config epoch",
            ),
        ] {
            let mut reader = Cursor::new(Vec::new());
            let mut out = Vec::new();
            route_first(&inner, "peer", &hello.encode(), &mut reader, &mut out);
            let reply = String::from_utf8(out).unwrap();
            let msg = ToWorker::decode(reply.trim()).expect("a decodable reject line");
            match msg {
                ToWorker::Reject { reason } => {
                    assert!(reason.contains(needle), "got reason '{reason}'");
                }
                other => panic!("expected reject, got {other:?}"),
            }
        }
        let st = inner.state.lock().unwrap();
        assert_eq!(st.rejected_workers, 2);
        assert_eq!(st.live_workers, 0);
    }

    /// A pre-versioning hello (no proto field) decodes as version 0 and is
    /// rejected by the same vetting, not crashed on.
    #[test]
    fn legacy_hello_is_rejected_as_version_zero() {
        let inner = test_inner();
        let mut reader = Cursor::new(Vec::new());
        let mut out = Vec::new();
        route_first(
            &inner,
            "peer",
            "{\"type\":\"hello\",\"role\":\"worker\",\"kernel\":\"scalar\",\"pid\":7}",
            &mut reader,
            &mut out,
        );
        let reply = String::from_utf8(out).unwrap();
        assert!(reply.contains("protocol version 0"), "got '{reply}'");
        assert_eq!(inner.state.lock().unwrap().rejected_workers, 1);
    }

    #[test]
    fn duplicate_cells_must_agree_bit_for_bit() {
        let inner = test_inner();
        let cfg = small_config();
        let (job_id, results) = seed_job(&inner, &cfg);
        let r0 = results[0].clone();

        let mut st = inner.state.lock().unwrap();
        record_cell(
            &inner,
            &mut st,
            "w1",
            "scalar",
            job_id,
            0,
            ShardList::Grid,
            0,
            r0.clone(),
        );
        assert_eq!(st.jobs[&job_id].executed_cells, 1);
        assert_eq!(st.jobs[&job_id].duplicate_cells, 0);

        // A bit-exact duplicate (speculative twin finishing second) is
        // counted, not merged twice.
        record_cell(
            &inner,
            &mut st,
            "w2",
            "scalar",
            job_id,
            1,
            ShardList::Grid,
            0,
            r0.clone(),
        );
        assert_eq!(st.jobs[&job_id].executed_cells, 1);
        assert_eq!(st.jobs[&job_id].duplicate_cells, 1);
        assert!(st.jobs[&job_id].done.is_none());

        // A diverging duplicate is a determinism violation: the job fails
        // loudly instead of letting either copy win the race.
        let mut diverged = r0.clone();
        diverged.total_flips += 1;
        record_cell(
            &inner,
            &mut st,
            "w3",
            "scalar",
            job_id,
            2,
            ShardList::Grid,
            0,
            diverged,
        );
        match &st.jobs[&job_id].done {
            Some(Err(e)) => assert!(e.contains("determinism violation"), "got '{e}'"),
            other => panic!("diverged duplicate must fail the job, got {other:?}"),
        }
    }

    #[test]
    fn garbled_checkpoint_records_are_skipped_and_counted() {
        let dir = scratch("ckpt-garble");
        let cfg = small_config();
        let inner = test_inner();
        let (job_id, results) = seed_job(&inner, &cfg);
        let key = inner.state.lock().unwrap().jobs[&job_id].key;

        checkpoint_cell(&dir, key, ShardList::Grid, 0, &results[0]);
        checkpoint_cell(&dir, key, ShardList::Para, 0, &results[0]);

        // Flip bytes mid-record in the para file: parseable or not, the
        // checksum no longer matches and the record must not be trusted.
        let path = checkpoint_path(&dir, key, ShardList::Para);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] = bytes[mid].wrapping_add(1);
        bytes[mid + 1] = bytes[mid + 1].wrapping_add(1);
        std::fs::write(&path, &bytes).unwrap();

        let plan = Arc::new(SweepPlan::from_config(&cfg).unwrap());
        let mut job = Job {
            grid: vec![None; plan.grid.len()],
            para: vec![None; plan.para_sweep.len()],
            remaining: plan.grid.len() + plan.para_sweep.len(),
            plan,
            key,
            kernel: KernelChoice::Auto,
            executed_cells: 0,
            checkpoint_cells: 0,
            checkpoint_skipped: 0,
            speculations: 0,
            duplicate_cells: 0,
            workers: BTreeMap::new(),
            client: "test-client".to_string(),
            deadline: None,
            admitted_at: Instant::now(),
            queue_wait_ms: None,
            done: None,
        };
        load_checkpoints(&dir, &mut job);
        assert_eq!(job.checkpoint_cells, 1, "the good grid record restores");
        assert_eq!(job.checkpoint_skipped, 1, "the garbled para record skips");
        assert!(job.grid[0].is_some());
        assert!(
            job.para[0].is_none(),
            "a garbled record must not fill a slot"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn speculate_releases_only_the_missing_cells_once() {
        let inner = test_inner();
        let cfg = small_config();
        let (job_id, results) = seed_job(&inner, &cfg);
        let grid_len = results.len();
        assert!(grid_len >= 1);

        let lease = Lease {
            job: job_id,
            shard: 0,
            list: ShardList::Grid,
            indices: (0..grid_len).collect(),
        };
        let mut st = inner.state.lock().unwrap();
        st.next_shard = 1;
        st.active.insert(
            0,
            ActiveLease {
                lease,
                last_progress: Instant::now(),
                speculated: false,
                worker: "w1".to_string(),
            },
        );
        speculate(&inner, &mut st, 0);
        assert_eq!(st.jobs[&job_id].speculations, 1);
        let twin = st.queue.back().expect("a twin lease queued").clone();
        assert_eq!(twin.indices, (0..grid_len).collect::<Vec<_>>());
        assert_ne!(twin.shard, 0, "the twin runs under a fresh shard id");
        assert!(st.active[&0].speculated);

        // Speculating the same shard again is a no-op by construction: the
        // supervisor filters on the flag, and even a direct call only adds
        // cells that are still missing.
        record_cell(
            &inner,
            &mut st,
            "w1",
            "scalar",
            job_id,
            0,
            ShardList::Grid,
            0,
            results[0].clone(),
        );
        let queued_before = st.queue.len();
        speculate(&inner, &mut st, 0);
        let twin2 = st.queue.back().unwrap();
        if st.queue.len() > queued_before {
            assert!(
                !twin2.indices.contains(&0),
                "a filled slot must not be re-leased"
            );
        }
        drop(st);
    }

    /// Graceful degradation end to end: a coordinator with no workers and
    /// no listener still answers — the submitting thread executes the
    /// leases in-process, and the document is byte-identical to the
    /// in-process sweep.
    #[test]
    fn fallback_executes_in_process_when_no_worker_attaches() {
        let cfg = small_config();
        let expected = json::render(
            &crate::sweep::run_sweep_with_kernel(&cfg, 1, KernelChoice::Auto).unwrap(),
        );
        let coordinator = Coordinator::start(ServeOptions {
            workers: 0,
            fallback_after: Some(Duration::from_millis(10)),
            speculate_after: None,
            ..ServeOptions::default()
        })
        .expect("workerless coordinator starts when fallback is armed");
        let env = coordinator
            .submit(Some("fb".into()), &cfg)
            .expect("fallback submit succeeds");
        assert_eq!(env.document, expected, "fallback must be byte-identical");
        assert_eq!(
            env.workers.len(),
            1,
            "exactly one (in-process) worker entry"
        );
        assert_eq!(env.workers[0].worker, "in-process");
        assert!(env.executed_cells > 0);
        coordinator.shutdown();
    }

    #[test]
    fn admission_rejects_past_the_queue_bound() {
        let inner = test_inner_custom(None, 1, usize::MAX, usize::MAX);
        let cfg = small_config();
        // One unfinished job occupies the whole queue.
        seed_job(&inner, &cfg);
        match Inner::submit(&inner, Some("late".into()), &cfg, "someone-else", None) {
            Err(SubmitError::Rejected(reason)) => assert_eq!(reason, "queue_full"),
            other => panic!("expected a queue_full reject, got {other:?}"),
        }
        let st = inner.state.lock().unwrap();
        assert_eq!(st.rejected_submits, 1);
        assert_eq!(st.jobs.len(), 1, "a rejected submit creates no job");
    }

    #[test]
    fn per_client_quotas_reject_with_distinct_reasons() {
        // Job quota: the seeded job already belongs to "test-client".
        let inner = test_inner_custom(None, usize::MAX, 1, usize::MAX);
        let cfg = small_config();
        seed_job(&inner, &cfg);
        match Inner::submit(&inner, None, &cfg, "test-client", None) {
            Err(SubmitError::Rejected(reason)) => assert_eq!(reason, "client_job_quota"),
            other => panic!("expected a client_job_quota reject, got {other:?}"),
        }

        // Cell quota: this 2-cell job alone exceeds a 1-cell allowance.
        let inner = test_inner_custom(None, usize::MAX, usize::MAX, 1);
        match Inner::submit(&inner, None, &cfg, "fresh-client", None) {
            Err(SubmitError::Rejected(reason)) => assert_eq!(reason, "client_cell_quota"),
            other => panic!("expected a client_cell_quota reject, got {other:?}"),
        }
        assert_eq!(inner.state.lock().unwrap().rejected_submits, 1);
    }

    #[test]
    fn deadline_expiry_cancels_the_job_and_fails_the_submit() {
        // No workers and no fallback: the job can only end via its
        // deadline, enforced by the waiting thread itself.
        let inner = test_inner();
        let cfg = small_config();
        let t0 = Instant::now();
        let err = Inner::submit(&inner, Some("dl".into()), &cfg, "local", Some(60))
            .expect_err("the deadline must expire");
        assert!(t0.elapsed() >= Duration::from_millis(60));
        match err {
            SubmitError::Failed(e) => assert!(e.contains("deadline expired"), "got '{e}'"),
            other => panic!("expected a deadline failure, got {other:?}"),
        }
        let st = inner.state.lock().unwrap();
        assert_eq!(st.cancelled_jobs, 1);
        assert!(
            st.queue.is_empty(),
            "an expired job's leases leave the queue"
        );
    }

    #[test]
    fn cancel_kills_queued_leases_and_wakes_waiters() {
        let inner = test_inner();
        let cfg = small_config();
        let (job_id, _) = seed_job(&inner, &cfg);
        {
            let mut st = inner.state.lock().unwrap();
            let key = st.jobs[&job_id].key;
            st.named.insert("the-job".into(), job_id);
            st.inflight.insert(key, job_id);
            st.queue.push_back(Lease {
                job: job_id,
                shard: 0,
                list: ShardList::Grid,
                indices: vec![0],
            });
            st.active.insert(
                1,
                ActiveLease {
                    lease: Lease {
                        job: job_id,
                        shard: 1,
                        list: ShardList::Para,
                        indices: vec![0],
                    },
                    last_progress: Instant::now(),
                    speculated: false,
                    worker: "w1".to_string(),
                },
            );
        }
        assert!(cancel_by_name(&inner, "the-job"));
        {
            let st = inner.state.lock().unwrap();
            assert!(st.queue.is_empty(), "queued leases are dropped");
            assert!(st.active.is_empty(), "leased shards are forgotten");
            assert!(st.inflight.is_empty(), "no coalescing onto a dead job");
            assert_eq!(st.cancelled_jobs, 1);
            match &st.jobs[&job_id].done {
                Some(Err(e)) => assert!(e.contains("canceled"), "got '{e}'"),
                other => panic!("cancel must fail the job, got {other:?}"),
            }
        }
        // Cancel is not idempotent on purpose: the second call reports
        // there was nothing left to cancel, as does an unknown id.
        assert!(!cancel_by_name(&inner, "the-job"));
        assert!(!cancel_by_name(&inner, "never-submitted"));
        assert_eq!(inner.state.lock().unwrap().cancelled_jobs, 1);
    }

    #[test]
    fn adaptive_width_targets_the_lease_time_per_list() {
        // test_inner: target_lease_ms 1500, fixed shard_cells 4.
        let inner = test_inner();
        let mut st = inner.state.lock().unwrap();
        // No EWMA yet (cold start): fall back to the fixed width.
        assert_eq!(adaptive_width(&inner, &st, ShardList::Grid), 4);
        // Each list is sized from its own cell-time estimate: slow grid
        // cells get narrow leases, cheap PARA cells wide ones.
        st.list_ewma_ms[0] = Some(100.0);
        st.list_ewma_ms[1] = Some(2.5);
        assert_eq!(adaptive_width(&inner, &st, ShardList::Grid), 15);
        assert_eq!(adaptive_width(&inner, &st, ShardList::Para), 600);
        // Pathological estimates clamp instead of degenerating.
        st.list_ewma_ms[0] = Some(1e9);
        assert_eq!(adaptive_width(&inner, &st, ShardList::Grid), 1);
        st.list_ewma_ms[1] = Some(0.000_1);
        assert_eq!(adaptive_width(&inner, &st, ShardList::Para), 1_024);
    }

    #[test]
    fn worker_auth_rejects_bad_proofs_and_accepts_good_ones() {
        let inner = test_inner_custom(Some("sekrit".into()), usize::MAX, usize::MAX, usize::MAX);
        let nonce = 0xDEAD_BEEF;
        let good = proto::auth_proof("sekrit", nonce);
        let mut out = Vec::new();
        assert!(vet_worker(
            &inner,
            "w-good",
            PROTO_VERSION,
            0,
            nonce,
            Some(&good),
            &mut out,
            false,
        ));
        assert!(out.is_empty(), "an accepted hello gets no reject line");

        // Wrong token and missing proof both fail closed.
        let wrong = proto::auth_proof("not-sekrit", nonce);
        let mut out = Vec::new();
        assert!(!vet_worker(
            &inner,
            "w-wrong",
            PROTO_VERSION,
            0,
            nonce,
            Some(&wrong),
            &mut out,
            false,
        ));
        let reply = String::from_utf8(out).unwrap();
        assert!(reply.contains("auth proof"), "got '{reply}'");
        assert!(!vet_worker(
            &inner,
            "w-silent",
            PROTO_VERSION,
            0,
            nonce,
            None,
            &mut Vec::new(),
            false,
        ));

        // Local stdio workers are exempt: the pipe to a child this
        // coordinator spawned is already a trust boundary.
        assert!(vet_worker(
            &inner,
            "local-0",
            PROTO_VERSION,
            0,
            0,
            None,
            &mut Vec::new(),
            true,
        ));

        let st = inner.state.lock().unwrap();
        assert_eq!(st.auth_failures, 2);
        assert_eq!(st.rejected_workers, 2);
    }

    #[test]
    fn client_sessions_authenticate_before_submitting() {
        let inner = test_inner_custom(Some("sekrit".into()), usize::MAX, usize::MAX, usize::MAX);
        let nonce = 7u64;

        // A valid client hello is answered with hello_ok.
        let hello = ClientMsg::Hello {
            auth_nonce: nonce,
            auth_proof: proto::auth_proof("sekrit", nonce),
        };
        let mut reader = Cursor::new(Vec::new());
        let mut out = Vec::new();
        route_first(
            &inner,
            "10.0.0.7:1234",
            &hello.encode(),
            &mut reader,
            &mut out,
        );
        let reply = String::from_utf8(out).unwrap();
        assert!(reply.contains("hello_ok"), "got '{reply}'");

        // A wrong proof gets a machine-readable auth_failed reject.
        let bad = ClientMsg::Hello {
            auth_nonce: nonce,
            auth_proof: proto::auth_proof("guess", nonce),
        };
        let mut reader = Cursor::new(Vec::new());
        let mut out = Vec::new();
        route_first(
            &inner,
            "10.0.0.7:1235",
            &bad.encode(),
            &mut reader,
            &mut out,
        );
        let reply = String::from_utf8(out).unwrap();
        assert!(reply.contains("\"type\":\"reject\""), "got '{reply}'");
        assert!(reply.contains("auth_failed"), "got '{reply}'");

        // A submit on an unauthenticated session is refused outright — the
        // config is never admitted, let alone executed.
        let submit = ClientMsg::Submit {
            id: Some("sneaky".into()),
            config: small_config(),
            deadline_ms: None,
        };
        let mut reader = Cursor::new(Vec::new());
        let mut out = Vec::new();
        route_first(
            &inner,
            "10.0.0.7:1236",
            &submit.encode(),
            &mut reader,
            &mut out,
        );
        let reply = String::from_utf8(out).unwrap();
        assert!(reply.contains("auth_failed"), "got '{reply}'");

        let st = inner.state.lock().unwrap();
        assert_eq!(st.auth_failures, 2, "the bad hello and the bare submit");
        assert!(st.jobs.is_empty(), "nothing was admitted");
    }

    /// Envelope counters surface the job-manager state: evictions from the
    /// result cache, rejected submits, auth failures, cancellations, and
    /// the queue depth at answer time.
    #[test]
    fn envelope_carries_job_manager_counters() {
        let inner = test_inner();
        let cfg = small_config();
        let (job_id, _) = seed_job(&inner, &cfg);
        {
            let mut st = inner.state.lock().unwrap();
            st.rejected_submits = 3;
            st.auth_failures = 2;
            st.cancelled_jobs = 1;
            st.jobs.get_mut(&job_id).unwrap().queue_wait_ms = Some(12);
        }
        let st = inner.state.lock().unwrap();
        let stats = EnvStats::from_job(&st.jobs[&job_id]);
        let env = envelope("e", (1, 2), &st, stats, "{}".to_string());
        assert_eq!(env.rejected_submits, 3);
        assert_eq!(env.auth_failures, 2);
        assert_eq!(env.cancelled_jobs, 1);
        assert_eq!(env.queue_wait_ms, 12);
        assert_eq!(env.queue_depth, 1, "the seeded job is still unfinished");
    }
}
