//! `rh-cli serve` — the coordinator of the distributed sweep service.
//!
//! The thread-level executor ([`crate::exec`]) promoted one level up: the
//! coordinator accepts sweep configs (jsonl over stdin, or over a TCP
//! listener that multiplexes clients and workers), expands each through
//! [`SweepPlan::from_config`], chunks the plan's cell lists into shard
//! leases, schedules the leases across a pool of `rh-cli worker` processes
//! (spawned locally over stdio pipes, or attached over TCP), and merges the
//! streamed per-cell results back into plan order. The merged document is
//! **byte-identical to an in-process `rh-cli sweep` run of the same
//! config** regardless of shard layout, worker count, worker arrival
//! order, or mid-job worker death — the PR 2 determinism invariant
//! generalized from threads to processes and hosts. This works because a
//! cell result is a pure function of `(config, cell index)` and the merge
//! is slot-addressed: *where* a result came from can't matter.
//!
//! Service machinery layered on top:
//!
//! * **Result cache** ([`crate::cache`]): completed documents are stored
//!   under the canonical `(config_hash, seed)` key; a repeated request is
//!   served from memory without touching a worker, observable via the
//!   `served_from_cache` flag and coordinator-lifetime `cache_hits`
//!   counter in the response envelope.
//! * **Single-flight dedup**: a submit whose key matches an in-flight job
//!   doesn't execute — it waits on that job and is served from the cache
//!   the moment the primary lands (`coalesced: true`). N concurrent
//!   identical requests cost one execution.
//! * **Checkpointing**: with `--checkpoint-dir`, every merged cell is
//!   appended to a jsonl file keyed by `(config_hash, seed, list)`. A
//!   resubmit after a crash or cancel loads the file, fills the slots it
//!   covers, and schedules only the missing cells (`checkpoint_cells` in
//!   the envelope counts the restored ones).
//! * **Worker-death recovery**: a worker connection dropping mid-shard
//!   requeues the lease minus the cells that already streamed back; another
//!   worker re-executes only the remainder. Determinism makes re-execution
//!   harmless by construction.
//! * **Back-pressure**: all transports are blocking pipes/TCP streams. A
//!   coordinator that falls behind stops draining, the worker's writes
//!   stall, and the pipeline self-throttles — no unbounded buffering
//!   anywhere.

use crate::cache::ResultCache;
use crate::engine::RunResult;
use crate::json;
use crate::plan::SweepPlan;
use crate::proto::{
    self, encode_error, read_line, write_line, ClientMsg, FromWorker, ResultEnvelope, ShardList,
    ToWorker, WorkerStat,
};
use crate::sweep::{SweepConfig, SweepOutput};
use rh_core::KernelChoice;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;

/// How long [`Coordinator::start`] waits for locally-spawned workers to say
/// hello before giving up (covers debug-build startup on a loaded box).
const HELLO_TIMEOUT: Duration = Duration::from_secs(60);

/// Configuration for [`Coordinator::start`] (the parsed `rh-cli serve`
/// flags, plus test-only knobs).
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Local worker processes to spawn over stdio pipes.
    pub workers: usize,
    /// TCP address to listen on for clients and late-attaching workers
    /// (e.g. `127.0.0.1:4242`, port 0 for ephemeral).
    pub listen: Option<String>,
    /// Settle-kernel request propagated to every shard lease.
    pub kernel: KernelChoice,
    /// Result-cache capacity in documents.
    pub cache_capacity: usize,
    /// Directory for per-shard checkpoint files; `None` disables
    /// checkpointing.
    pub checkpoint_dir: Option<PathBuf>,
    /// Maximum cells per shard lease.
    pub shard_cells: usize,
    /// Worker executable to spawn; defaults to the current executable
    /// (tests point it at the real `rh-cli` binary).
    pub worker_program: Option<PathBuf>,
    /// Extra argv per local worker index (fault injection in tests:
    /// `["--exit-after-cells", "7"]` for worker 0 only).
    pub worker_extra_args: Vec<Vec<String>>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            workers: 2,
            listen: None,
            kernel: KernelChoice::Auto,
            cache_capacity: crate::cache::DEFAULT_CAPACITY,
            checkpoint_dir: None,
            shard_cells: 16,
            worker_program: None,
            worker_extra_args: Vec::new(),
        }
    }
}

/// One schedulable unit: a contiguous-ish slice of one job's cell list.
#[derive(Debug, Clone)]
struct Lease {
    job: u64,
    shard: u64,
    list: ShardList,
    indices: Vec<usize>,
}

/// Terminal state of a job: the rendered document, or an error.
type JobOutcome = Result<String, String>;

struct Job {
    plan: Arc<SweepPlan>,
    key: (u64, u64),
    kernel: KernelChoice,
    grid: Vec<Option<RunResult>>,
    para: Vec<Option<RunResult>>,
    /// Unfilled slots remaining before the job can merge.
    remaining: usize,
    executed_cells: u64,
    checkpoint_cells: u64,
    /// Worker name → (resolved kernel, cells contributed).
    workers: BTreeMap<String, (String, u64)>,
    done: Option<JobOutcome>,
}

impl Job {
    fn slot(&mut self, list: ShardList, index: usize) -> Option<&mut Option<RunResult>> {
        match list {
            ShardList::Grid => self.grid.get_mut(index),
            ShardList::Para => self.para.get_mut(index),
        }
    }
}

struct State {
    jobs: HashMap<u64, Job>,
    /// Client-visible job ids (for `cancel`).
    named: HashMap<String, u64>,
    queue: VecDeque<Lease>,
    cache: ResultCache,
    /// Key → job id of the in-flight execution (single-flight dedup).
    inflight: HashMap<(u64, u64), u64>,
    next_job: u64,
    next_shard: u64,
    /// Workers currently connected (past hello).
    live_workers: usize,
    /// Locally-spawned workers that have said hello (the start barrier).
    local_hellos: usize,
    /// A local worker exited before hello (spawn failure).
    spawn_failed: Option<String>,
    shutting_down: bool,
}

struct Inner {
    state: Mutex<State>,
    /// Signaled when leases are queued or the service shuts down.
    work: Condvar,
    /// Signaled on job completion, hello, and failure.
    done: Condvar,
    kernel: KernelChoice,
    checkpoint_dir: Option<PathBuf>,
    shard_cells: usize,
    /// TCP listen mode: workers may attach later, so an empty pool blocks
    /// instead of failing jobs.
    allow_late_workers: bool,
}

/// A running coordinator. Submit jobs via [`Coordinator::submit`] (the TCP
/// listener and the CLI's stdin loop both funnel into it).
pub struct Coordinator {
    inner: Arc<Inner>,
    children: Mutex<Vec<Child>>,
    handlers: Mutex<Vec<JoinHandle<()>>>,
    listen_addr: Option<SocketAddr>,
}

impl Coordinator {
    /// Spawn local workers, bind the listener (if any), and wait for every
    /// local worker's hello so submits never race worker startup.
    pub fn start(opts: ServeOptions) -> Result<Self, String> {
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                jobs: HashMap::new(),
                named: HashMap::new(),
                queue: VecDeque::new(),
                cache: ResultCache::new(opts.cache_capacity),
                inflight: HashMap::new(),
                next_job: 0,
                next_shard: 0,
                live_workers: 0,
                local_hellos: 0,
                spawn_failed: None,
                shutting_down: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
            kernel: opts.kernel,
            checkpoint_dir: opts.checkpoint_dir.clone(),
            shard_cells: opts.shard_cells.max(1),
            allow_late_workers: opts.listen.is_some(),
        });
        if let Some(dir) = &inner.checkpoint_dir {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("cannot create checkpoint dir {}: {e}", dir.display()))?;
        }

        let listen_addr = match &opts.listen {
            Some(addr) => {
                let listener =
                    TcpListener::bind(addr).map_err(|e| format!("cannot listen on {addr}: {e}"))?;
                let bound = listener
                    .local_addr()
                    .map_err(|e| format!("local_addr: {e}"))?;
                let accept_inner = Arc::clone(&inner);
                // Detached: dies with the process. Joining would require
                // interrupting accept(), which std can't do portably.
                std::thread::spawn(move || accept_loop(&accept_inner, &listener));
                Some(bound)
            }
            None => None,
        };

        let coordinator = Self {
            inner,
            children: Mutex::new(Vec::new()),
            handlers: Mutex::new(Vec::new()),
            listen_addr,
        };

        let program = match &opts.worker_program {
            Some(p) => p.clone(),
            None => std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?,
        };
        for i in 0..opts.workers {
            coordinator.spawn_local_worker(&program, i, &opts)?;
        }

        // Hello barrier: a submit issued right after start() must find the
        // whole pool live.
        let deadline = std::time::Instant::now() + HELLO_TIMEOUT;
        let mut st = coordinator.inner.state.lock().expect("coordinator lock");
        while st.local_hellos < opts.workers {
            if let Some(err) = &st.spawn_failed {
                return Err(format!("local worker failed to start: {err}"));
            }
            let left = deadline.saturating_duration_since(std::time::Instant::now());
            if left.is_zero() {
                return Err(format!(
                    "timed out waiting for {} local workers to say hello",
                    opts.workers
                ));
            }
            let (guard, _) = coordinator
                .inner
                .done
                .wait_timeout(st, left)
                .expect("coordinator lock");
            st = guard;
        }
        drop(st);
        Ok(coordinator)
    }

    fn spawn_local_worker(
        &self,
        program: &Path,
        index: usize,
        opts: &ServeOptions,
    ) -> Result<(), String> {
        let mut cmd = Command::new(program);
        cmd.arg("worker");
        if let Some(extra) = opts.worker_extra_args.get(index) {
            cmd.args(extra);
        }
        // Environment inherited on purpose: RH_FORCE_SCALAR set on the
        // coordinator reaches every local worker's own resolve().
        let mut child = cmd
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .map_err(|e| format!("cannot spawn worker {}: {e}", program.display()))?;
        let stdin = child.stdin.take().expect("piped stdin");
        let stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
        let inner = Arc::clone(&self.inner);
        let name = format!("local-{index}");
        let handle = std::thread::spawn(move || worker_handler(&inner, &name, stdout, stdin, true));
        self.handlers.lock().expect("handler lock").push(handle);
        self.children.lock().expect("children lock").push(child);
        Ok(())
    }

    /// The bound TCP address, when listening (port 0 resolves here).
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.listen_addr
    }

    /// Submit one config and block until its envelope is ready (cache hit,
    /// coalesced onto an in-flight twin, or executed).
    pub fn submit(&self, id: Option<String>, cfg: &SweepConfig) -> Result<ResultEnvelope, String> {
        Inner::submit(&self.inner, id, cfg)
    }

    /// Cancel a named in-flight job: queued leases are dropped, waiters get
    /// an error, checkpointed cells survive for a later resubmit. Returns
    /// false for unknown/finished ids.
    pub fn cancel(&self, id: &str) -> bool {
        cancel_by_name(&self.inner, id)
    }

    /// Lifetime cache hits (the observable served-from-cache counter).
    pub fn cache_hits(&self) -> u64 {
        self.inner
            .state
            .lock()
            .expect("coordinator lock")
            .cache
            .hits()
    }

    /// Count of currently-connected workers.
    pub fn live_workers(&self) -> usize {
        self.inner
            .state
            .lock()
            .expect("coordinator lock")
            .live_workers
    }

    /// Stop accepting work, shut down workers, and join handler threads.
    pub fn shutdown(&self) {
        {
            let mut st = self.inner.state.lock().expect("coordinator lock");
            if st.shutting_down {
                return;
            }
            st.shutting_down = true;
            for job in st.jobs.values_mut() {
                if job.done.is_none() {
                    job.done = Some(Err("coordinator shutting down".to_string()));
                }
            }
            st.queue.clear();
            st.inflight.clear();
            self.inner.work.notify_all();
            self.inner.done.notify_all();
        }
        for handle in self.handlers.lock().expect("handler lock").drain(..) {
            let _ = handle.join();
        }
        for child in self.children.lock().expect("children lock").iter_mut() {
            // Handlers already sent shutdown; reap (or kill a wedged one).
            match child.try_wait() {
                Ok(Some(_)) => {}
                _ => {
                    let _ = child.kill();
                    let _ = child.wait();
                }
            }
        }
    }
}

impl Drop for Coordinator {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl Inner {
    fn submit(
        inner: &Arc<Inner>,
        id: Option<String>,
        cfg: &SweepConfig,
    ) -> Result<ResultEnvelope, String> {
        let key = proto::config_key(cfg);
        let plan = Arc::new(SweepPlan::from_config(cfg)?);
        let mut st = inner.state.lock().expect("coordinator lock");
        if st.shutting_down {
            return Err("coordinator shutting down".to_string());
        }
        let id = id.unwrap_or_else(|| format!("job-{}", st.next_job));

        // 1. Cache.
        if let Some(document) = st.cache.get(key) {
            return Ok(envelope(
                &id,
                key,
                &st,
                true,
                false,
                0,
                0,
                Vec::new(),
                document,
            ));
        }

        // 2. Coalesce onto an identical in-flight job.
        if let Some(&primary) = st.inflight.get(&key) {
            loop {
                let outcome = st
                    .jobs
                    .get(&primary)
                    .and_then(|j| j.done.clone())
                    .or_else(|| {
                        st.shutting_down
                            .then(|| Err("coordinator shutting down".into()))
                    });
                match outcome {
                    Some(Ok(_)) => {
                        // Served from the cache the primary just filled — a
                        // real cache hit, plus the coalesced marker.
                        let document = st
                            .cache
                            .get(key)
                            .expect("primary job inserts before completing");
                        return Ok(envelope(
                            &id,
                            key,
                            &st,
                            true,
                            true,
                            0,
                            0,
                            Vec::new(),
                            document,
                        ));
                    }
                    Some(Err(e)) => return Err(e),
                    None => st = inner.done.wait(st).expect("coordinator lock"),
                }
            }
        }

        // 3. New job.
        let job_id = st.next_job;
        st.next_job += 1;
        let mut job = Job {
            grid: vec![None; plan.grid.len()],
            para: vec![None; plan.para_sweep.len()],
            remaining: plan.grid.len() + plan.para_sweep.len(),
            plan: Arc::clone(&plan),
            key,
            kernel: inner.kernel,
            executed_cells: 0,
            checkpoint_cells: 0,
            workers: BTreeMap::new(),
            done: None,
        };
        if let Some(dir) = &inner.checkpoint_dir {
            load_checkpoints(dir, &mut job);
        }

        if job.remaining == 0 {
            // Fully restored from checkpoints: no worker needed at all.
            let document = finalize_document(&job);
            st.cache.put(key, document.clone());
            let checkpoint_cells = job.checkpoint_cells;
            job.done = Some(Ok(document.clone()));
            st.jobs.insert(job_id, job);
            st.named.insert(id.clone(), job_id);
            inner.done.notify_all();
            return Ok(envelope(
                &id,
                key,
                &st,
                false,
                false,
                0,
                checkpoint_cells,
                Vec::new(),
                document,
            ));
        }

        if st.live_workers == 0 && !inner.allow_late_workers {
            return Err(
                "no live workers and none can attach (start with --workers or --listen)"
                    .to_string(),
            );
        }

        // Queue shard leases for the missing cells.
        let mut leases = Vec::new();
        for (list, slots) in [(ShardList::Grid, &job.grid), (ShardList::Para, &job.para)] {
            let missing: Vec<usize> = slots
                .iter()
                .enumerate()
                .filter_map(|(i, s)| s.is_none().then_some(i))
                .collect();
            for chunk in missing.chunks(inner.shard_cells) {
                let shard = st.next_shard;
                st.next_shard += 1;
                leases.push(Lease {
                    job: job_id,
                    shard,
                    list,
                    indices: chunk.to_vec(),
                });
            }
        }
        st.jobs.insert(job_id, job);
        st.named.insert(id.clone(), job_id);
        st.inflight.insert(key, job_id);
        st.queue.extend(leases);
        inner.work.notify_all();

        // 4. Wait for the merge.
        loop {
            let outcome = st.jobs.get(&job_id).and_then(|j| j.done.clone());
            match outcome {
                Some(Ok(document)) => {
                    let job = &st.jobs[&job_id];
                    let workers = job
                        .workers
                        .iter()
                        .map(|(name, (kernel, cells))| WorkerStat {
                            worker: name.clone(),
                            kernel: kernel.clone(),
                            cells: *cells,
                        })
                        .collect();
                    let (executed, checkpointed) = (job.executed_cells, job.checkpoint_cells);
                    return Ok(envelope(
                        &id,
                        key,
                        &st,
                        false,
                        false,
                        executed,
                        checkpointed,
                        workers,
                        document,
                    ));
                }
                Some(Err(e)) => return Err(e),
                None => st = inner.done.wait(st).expect("coordinator lock"),
            }
        }
    }
}

/// Build a response envelope (cache_hits snapshots the lifetime counter).
#[allow(clippy::too_many_arguments)]
fn envelope(
    id: &str,
    key: (u64, u64),
    st: &State,
    served_from_cache: bool,
    coalesced: bool,
    executed_cells: u64,
    checkpoint_cells: u64,
    workers: Vec<WorkerStat>,
    document: String,
) -> ResultEnvelope {
    ResultEnvelope {
        id: id.to_string(),
        config_hash: key.0,
        seed: key.1,
        served_from_cache,
        coalesced,
        cache_hits: st.cache.hits(),
        executed_cells,
        checkpoint_cells,
        workers,
        document,
    }
}

/// Render a completed job's merged document — exactly what
/// [`crate::sweep::run_sweep`] would have produced in-process.
fn finalize_document(job: &Job) -> String {
    let grid: Vec<RunResult> = job
        .grid
        .iter()
        .map(|s| s.clone().expect("job complete"))
        .collect();
    let para_sweep: Vec<RunResult> = job
        .para
        .iter()
        .map(|s| s.clone().expect("job complete"))
        .collect();
    let para_monotone = para_sweep
        .windows(2)
        .all(|w| w[1].total_flips <= w[0].total_flips);
    let out = SweepOutput {
        config: job.plan.config.clone(),
        grid,
        para_sweep,
        para_monotone,
    };
    json::render(&out)
}

// ---------------------------------------------------------------------------
// Checkpointing
// ---------------------------------------------------------------------------

fn checkpoint_path(dir: &Path, key: (u64, u64), list: ShardList) -> PathBuf {
    dir.join(format!(
        "ckpt-{:016x}-{}-{}.jsonl",
        key.0,
        key.1,
        list.name()
    ))
}

/// Load whatever a previous run checkpointed for this job's key, filling
/// result slots so only the remainder gets scheduled. Unparseable lines
/// (a crash mid-append) are skipped — a torn tail costs one cell, not the
/// file.
fn load_checkpoints(dir: &Path, job: &mut Job) {
    for list in [ShardList::Grid, ShardList::Para] {
        let path = checkpoint_path(dir, job.key, list);
        let Ok(contents) = std::fs::read_to_string(&path) else {
            continue;
        };
        for line in contents.lines() {
            let Ok(v) = proto::parse(line) else { continue };
            let Some(index) = v.get("index").and_then(proto::Value::as_usize) else {
                continue;
            };
            let Some(result) = v
                .get("result")
                .and_then(|r| proto::result_from_value(r).ok())
            else {
                continue;
            };
            if let Some(slot @ None) = job.slot(list, index) {
                *slot = Some(result);
                job.remaining -= 1;
                job.checkpoint_cells += 1;
            }
        }
    }
}

/// Append one merged cell to its job's checkpoint file.
fn checkpoint_cell(dir: &Path, key: (u64, u64), list: ShardList, index: usize, r: &RunResult) {
    let path = checkpoint_path(dir, key, list);
    let line = format!(
        "{{\"index\":{index},\"result\":{}}}\n",
        proto::result_to_json(r)
    );
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| f.write_all(line.as_bytes()));
    if let Err(e) = written {
        eprintln!(
            "rh-serve: checkpoint append to {} failed: {e}",
            path.display()
        );
    }
}

// ---------------------------------------------------------------------------
// Worker handling
// ---------------------------------------------------------------------------

/// Per-worker-connection loop: consume the hello, then lease shards and
/// merge the streamed results until the connection drops or the service
/// shuts down. `local` marks coordinator-spawned workers (they count toward
/// the start barrier).
fn worker_handler<R: BufRead, W: Write>(
    inner: &Arc<Inner>,
    name: &str,
    mut reader: R,
    mut writer: W,
    local: bool,
) {
    // Hello first — a connection that says anything else is not a worker.
    match read_line(&mut reader) {
        Ok(Some(line)) => match FromWorker::decode(&line) {
            Ok(FromWorker::Hello { .. }) => {}
            _ => {
                register_spawn_failure(inner, name, "first message was not hello", local);
                return;
            }
        },
        _ => {
            register_spawn_failure(inner, name, "connection closed before hello", local);
            return;
        }
    };
    worker_session(inner, name, &mut reader, &mut writer, local);
}

/// [`worker_handler`] for TCP connections whose hello the accept loop
/// already consumed (to tell workers from clients).
fn worker_session<R: BufRead, W: Write>(
    inner: &Arc<Inner>,
    name: &str,
    reader: &mut R,
    writer: &mut W,
    local: bool,
) {
    {
        let mut st = inner.state.lock().expect("coordinator lock");
        st.live_workers += 1;
        if local {
            st.local_hellos += 1;
        }
        inner.done.notify_all();
    }

    loop {
        // Dequeue one live lease (or exit on shutdown).
        let lease = {
            let mut st = inner.state.lock().expect("coordinator lock");
            loop {
                if st.shutting_down {
                    drop(st);
                    let _ = write_line(writer, &ToWorker::Shutdown.encode());
                    worker_gone(inner, name, local);
                    return;
                }
                match st.queue.pop_front() {
                    Some(lease) => {
                        let alive = st.jobs.get(&lease.job).is_some_and(|j| j.done.is_none());
                        if alive {
                            break lease;
                        }
                        // Lease of a canceled/failed job: discard, keep looking.
                    }
                    None => st = inner.work.wait(st).expect("coordinator lock"),
                }
            }
        };

        // Materialize the wire lease outside the lock (configs are small,
        // but writes can block on back-pressure).
        let (config, kernel) = {
            let st = inner.state.lock().expect("coordinator lock");
            let job = &st.jobs[&lease.job];
            (job.plan.config.clone(), job.kernel)
        };
        let msg = ToWorker::Shard {
            job: lease.job,
            shard: lease.shard,
            list: lease.list,
            indices: lease.indices.clone(),
            kernel,
            config,
        };
        if write_line(writer, &msg.encode()).is_err() {
            requeue(inner, &lease);
            worker_gone(inner, name, local);
            return;
        }

        // Drain the shard's result stream.
        loop {
            let line = match read_line(reader) {
                Ok(Some(line)) => line,
                // Died mid-shard: requeue whatever it didn't deliver.
                Ok(None) | Err(_) => {
                    requeue(inner, &lease);
                    worker_gone(inner, name, local);
                    return;
                }
            };
            let msg = match FromWorker::decode(&line) {
                Ok(msg) => msg,
                Err(_) => {
                    requeue(inner, &lease);
                    worker_gone(inner, name, local);
                    return;
                }
            };
            match msg {
                FromWorker::Cell {
                    job,
                    index,
                    kernel,
                    result,
                    ..
                } => {
                    let mut st = inner.state.lock().expect("coordinator lock");
                    record_cell(
                        inner, &mut st, name, &kernel, job, lease.list, index, result,
                    );
                }
                FromWorker::ShardDone { job, kernel, .. } => {
                    let mut st = inner.state.lock().expect("coordinator lock");
                    if let Some(j) = st.jobs.get_mut(&job) {
                        // The per-lease resolution is authoritative for this
                        // worker's report entry.
                        if let Some(stat) = j.workers.get_mut(name) {
                            stat.0 = kernel;
                        }
                    }
                    break;
                }
                FromWorker::Fail { job, message, .. } => {
                    let mut st = inner.state.lock().expect("coordinator lock");
                    fail_job(inner, &mut st, job, &message);
                    break;
                }
                FromWorker::Hello { .. } => {} // duplicate hello: ignore
            }
        }
    }
}

/// Merge one streamed cell into its job (idempotent: re-executed cells from
/// a reassigned shard overwrite nothing and count nothing). `kernel` is the
/// per-cell resolved kernel the worker reported.
#[allow(clippy::too_many_arguments)]
fn record_cell(
    inner: &Arc<Inner>,
    st: &mut MutexGuard<'_, State>,
    worker: &str,
    kernel: &str,
    job_id: u64,
    list: ShardList,
    index: usize,
    result: RunResult,
) {
    let Some(job) = st.jobs.get_mut(&job_id) else {
        return;
    };
    if job.done.is_some() {
        return;
    }
    let key = job.key;
    let Some(slot) = job.slot(list, index) else {
        return;
    };
    if slot.is_some() {
        return;
    }
    *slot = Some(result.clone());
    job.remaining -= 1;
    job.executed_cells += 1;
    let stat = job
        .workers
        .entry(worker.to_string())
        .or_insert_with(|| (kernel.to_string(), 0));
    if stat.0 != kernel {
        stat.0 = kernel.to_string();
    }
    stat.1 += 1;
    let complete = job.remaining == 0;
    if let Some(dir) = &inner.checkpoint_dir {
        checkpoint_cell(dir, key, list, index, &result);
    }
    if complete {
        let document = finalize_document(&st.jobs[&job_id]);
        st.cache.put(key, document.clone());
        st.inflight.remove(&key);
        if let Some(job) = st.jobs.get_mut(&job_id) {
            job.done = Some(Ok(document));
        }
        inner.done.notify_all();
    }
}

/// Fail one job (worker-reported permanent error): waiters wake with the
/// message, queued leases are dropped.
fn fail_job(inner: &Arc<Inner>, st: &mut MutexGuard<'_, State>, job_id: u64, message: &str) {
    if let Some(job) = st.jobs.get_mut(&job_id) {
        if job.done.is_none() {
            let key = job.key;
            job.done = Some(Err(message.to_string()));
            st.inflight.remove(&key);
            st.queue.retain(|l| l.job != job_id);
            inner.done.notify_all();
        }
    }
}

/// Requeue a dead worker's lease, minus the cells it already streamed back.
fn requeue(inner: &Arc<Inner>, lease: &Lease) {
    let mut st = inner.state.lock().expect("coordinator lock");
    let Some(job) = st.jobs.get_mut(&lease.job) else {
        return;
    };
    if job.done.is_some() {
        return;
    }
    let mut rest = lease.clone();
    rest.indices
        .retain(|&i| job.slot(lease.list, i).is_some_and(|s| s.is_none()));
    if !rest.indices.is_empty() {
        st.queue.push_front(rest);
        inner.work.notify_all();
    }
}

/// Account a worker disconnect. When the pool empties and no late workers
/// can ever attach, pending jobs fail fast instead of hanging.
fn worker_gone(inner: &Arc<Inner>, name: &str, _local: bool) {
    let mut st = inner.state.lock().expect("coordinator lock");
    st.live_workers = st.live_workers.saturating_sub(1);
    if st.live_workers == 0 && !inner.allow_late_workers && !st.shutting_down {
        let stuck: Vec<u64> = st
            .jobs
            .iter()
            .filter(|(_, j)| j.done.is_none())
            .map(|(&id, _)| id)
            .collect();
        for job_id in stuck {
            fail_job(
                inner,
                &mut st,
                job_id,
                &format!("all workers exited (last was {name})"),
            );
        }
    }
}

fn register_spawn_failure(inner: &Arc<Inner>, name: &str, why: &str, local: bool) {
    if local {
        let mut st = inner.state.lock().expect("coordinator lock");
        st.spawn_failed = Some(format!("{name}: {why}"));
        inner.done.notify_all();
    }
}

// ---------------------------------------------------------------------------
// TCP front door
// ---------------------------------------------------------------------------

/// Accept loop: every connection's first line says what it is — a worker
/// hello, or a client message (which is handled and followed by more).
fn accept_loop(inner: &Arc<Inner>, listener: &TcpListener) {
    for stream in listener.incoming() {
        let Ok(stream) = stream else { continue };
        let inner = Arc::clone(inner);
        std::thread::spawn(move || {
            let peer = stream
                .peer_addr()
                .map(|a| a.to_string())
                .unwrap_or_else(|_| "unknown".to_string());
            let Ok(read_half) = stream.try_clone() else {
                return;
            };
            let mut reader = BufReader::new(read_half);
            let mut writer = stream;
            let Ok(Some(first)) = read_line(&mut reader) else {
                return;
            };
            let is_worker_hello = proto::parse(&first).is_ok_and(|v| {
                v.get("type").and_then(proto::Value::as_str) == Some("hello")
                    && v.get("role").and_then(proto::Value::as_str) == Some("worker")
            });
            if is_worker_hello {
                let name = format!("tcp-{peer}");
                worker_session(&inner, &name, &mut reader, &mut writer, false);
            } else {
                client_session(&inner, &first, &mut reader, &mut writer);
            }
        });
    }
}

/// One client connection: handle its first line, then every further line
/// until EOF. Submits run to completion in order; a bad line yields an
/// error envelope, not a dropped connection.
fn client_session<R: BufRead, W: Write>(
    inner: &Arc<Inner>,
    first: &str,
    reader: &mut R,
    writer: &mut W,
) {
    let mut line = first.to_string();
    loop {
        let reply = match ClientMsg::decode(&line) {
            Ok(ClientMsg::Submit { id, config }) => {
                let label = id.clone().unwrap_or_default();
                match Inner::submit(inner, id, &config) {
                    Ok(env) => env.encode(),
                    Err(e) => encode_error(&label, &e),
                }
            }
            Ok(ClientMsg::Cancel { id }) => {
                let canceled = cancel_by_name(inner, &id);
                format!(
                    "{{\"type\":\"cancel_ack\",\"id\":{},\"canceled\":{canceled}}}",
                    proto::jstr(&id)
                )
            }
            Err(e) => encode_error("", &e),
        };
        if write_line(writer, &reply).is_err() {
            return;
        }
        match read_line(reader) {
            Ok(Some(next)) => line = next,
            _ => return,
        }
    }
}

fn cancel_by_name(inner: &Arc<Inner>, id: &str) -> bool {
    let mut st = inner.state.lock().expect("coordinator lock");
    let Some(&job_id) = st.named.get(id) else {
        return false;
    };
    let Some(job) = st.jobs.get_mut(&job_id) else {
        return false;
    };
    if job.done.is_some() {
        return false;
    }
    let key = job.key;
    job.done = Some(Err(format!("job '{id}' canceled")));
    st.inflight.remove(&key);
    st.queue.retain(|l| l.job != job_id);
    inner.done.notify_all();
    true
}

// ---------------------------------------------------------------------------
// CLI entry points
// ---------------------------------------------------------------------------

/// `rh-cli serve`: start the coordinator, then serve clients — over TCP
/// when `--listen` is given (this call then parks forever), else jsonl on
/// stdin with envelopes on stdout.
pub fn run_serve(opts: ServeOptions) -> Result<(), String> {
    let listening = opts.listen.is_some();
    let coordinator = Coordinator::start(opts)?;
    if listening {
        let addr = coordinator.local_addr().expect("listen mode binds");
        eprintln!("rh-serve: listening on {addr}");
        loop {
            std::thread::sleep(Duration::from_secs(3600));
        }
    }
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout().lock();
    let mut reader = stdin.lock();
    while let Some(line) = read_line(&mut reader).map_err(|e| format!("stdin: {e}"))? {
        let reply = match ClientMsg::decode(&line) {
            Ok(ClientMsg::Submit { id, config }) => {
                let label = id.clone().unwrap_or_default();
                match coordinator.submit(id, &config) {
                    Ok(env) => env.encode(),
                    Err(e) => encode_error(&label, &e),
                }
            }
            Ok(ClientMsg::Cancel { id }) => {
                let canceled = coordinator.cancel(&id);
                format!(
                    "{{\"type\":\"cancel_ack\",\"id\":{},\"canceled\":{canceled}}}",
                    proto::jstr(&id)
                )
            }
            Err(e) => encode_error("", &e),
        };
        write_line(&mut stdout, &reply).map_err(|e| format!("stdout: {e}"))?;
    }
    coordinator.shutdown();
    Ok(())
}

/// Parsed `rh-cli submit` options (a thin TCP client for CI and scripts).
#[derive(Debug, Clone, Default)]
pub struct SubmitOptions {
    pub connect: String,
}

/// `rh-cli submit`: read config lines from stdin, send each to the
/// coordinator at `--connect`, print each returned **document** verbatim on
/// stdout (so output byte-diffs directly against `rh-cli sweep`) with the
/// envelope metadata on stderr. Errors exit nonzero.
pub fn run_submit(opts: &SubmitOptions) -> Result<(), String> {
    let stream = TcpStream::connect(&opts.connect)
        .map_err(|e| format!("cannot connect to {}: {e}", opts.connect))?;
    let mut reader = BufReader::new(
        stream
            .try_clone()
            .map_err(|e| format!("clone stream: {e}"))?,
    );
    let mut writer = stream;
    let stdin = std::io::stdin();
    let mut input = stdin.lock();
    let mut stdout = std::io::stdout().lock();
    while let Some(line) = read_line(&mut input).map_err(|e| format!("stdin: {e}"))? {
        write_line(&mut writer, &line).map_err(|e| format!("send: {e}"))?;
        let reply = read_line(&mut reader)
            .map_err(|e| format!("recv: {e}"))?
            .ok_or("coordinator closed the connection")?;
        let env = ResultEnvelope::decode(&reply)?;
        eprintln!(
            "rh-submit: id={} hash={:#018x} seed={} cached={} coalesced={} cache_hits={} \
             executed={} checkpointed={} workers={}",
            env.id,
            env.config_hash,
            env.seed,
            env.served_from_cache,
            env.coalesced,
            env.cache_hits,
            env.executed_cells,
            env.checkpoint_cells,
            env.workers
                .iter()
                .map(|w| format!("{}:{}({})", w.worker, w.kernel, w.cells))
                .collect::<Vec<_>>()
                .join(","),
        );
        // Document plus the trailing newline `rh-cli sweep` prints, so the
        // two outputs diff byte-for-byte.
        stdout
            .write_all(env.document.as_bytes())
            .and_then(|()| stdout.write_all(b"\n"))
            .and_then(|()| stdout.flush())
            .map_err(|e| format!("stdout: {e}"))?;
    }
    Ok(())
}
