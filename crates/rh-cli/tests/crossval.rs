//! Statistical cross-validation: the simulator against the closed form.
//!
//! Every other correctness argument in this workspace is differential
//! (optimized ≡ reference, distributed ≡ in-process), which cannot catch a
//! bug both paths share. This harness checks the engine against an
//! *external* ground truth: at matched `(p, HC_first, window)` points it
//! simulates many independent seeded attack windows, counts how many end in
//! a bit flip, and asserts the empirical failure rate lands inside the
//! Wilson confidence band around `rh-analysis`' closed-form prediction.
//!
//! The contract (see docs/ARCHITECTURE.md, "Analytical cross-validation"):
//!
//! * Bands use `CROSSVAL_Z` (~1e-5 two-sided tail) and fixed seeds, so each
//!   assertion is deterministic in practice — it either always passes or
//!   always fails for a given engine + model.
//! * A failure here means the engine's failure statistics drifted from the
//!   run-length model (or the activation→trial mapping broke — the
//!   off-by-one probe below localizes that case). It is *not* a flaky test
//!   to be re-run.
//!
//! `RH_CROSSVAL_QUICK=1` shrinks the per-point trial count for CI's
//! analysis-gate job; the points themselves never change.

use rh_cli::configure::{
    analytic_pfail, analytic_pfail_dual, empirical_failure_rate, recommended_p, run_configure,
    ConfigureOptions, CROSSVAL_Z,
};
use rh_core::derive_seed;

const ROOT_SEED: u64 = 0xC0FFEE;

/// Trials per matched point: enough for the Wilson band to have real
/// discriminating power, shrunk under `RH_CROSSVAL_QUICK=1` for CI.
fn trials_per_point() -> u64 {
    if std::env::var("RH_CROSSVAL_QUICK").is_ok_and(|v| v == "1") {
        120
    } else {
        300
    }
}

/// The matched points: `(HC_first, window, target P_fail)` chosen so the
/// solved sampling rates span the deployable range and the analytical
/// failure probabilities stay far from 0 and 1, where a ~100-trial
/// empirical rate still carries information.
const POINTS: [(u64, u64, f64); 7] = [
    (6, 800, 0.3),
    (8, 1_500, 0.5),
    (10, 2_000, 0.7),
    (12, 2_500, 0.4),
    (16, 3_000, 0.5),
    (20, 4_000, 0.6),
    (24, 5_000, 0.25),
];

/// The tentpole acceptance gate: at every matched point, the empirical
/// per-window failure rate must land inside the analytical confidence
/// band, and the two closed forms must agree within 1e-9.
#[test]
fn empirical_failure_rates_match_the_closed_form_at_matched_points() {
    assert!(POINTS.len() >= 6, "the contract names at least 6 points");
    let trials = trials_per_point();
    for (i, &(hc, window, target)) in POINTS.iter().enumerate() {
        let p = recommended_p(hc, window, target);
        let analytic = analytic_pfail(p, hc, window);
        let dual = analytic_pfail_dual(p, hc, window);
        assert!(
            (analytic - dual).abs() <= 1e-9,
            "point {i}: direct {analytic} vs dual {dual}"
        );
        // The solver lands the failure probability essentially on the
        // target; both must sit away from the degenerate extremes or the
        // statistical check has no power.
        assert!(
            (0.05..=0.95).contains(&analytic),
            "point {i}: analytic {analytic} too extreme to test statistically"
        );
        let seed = derive_seed(ROOT_SEED, &[i as u64]);
        let (failures, n) = empirical_failure_rate(p, hc, window, trials, seed);
        let (lo, hi) = rh_analysis::wilson_interval(failures, n, CROSSVAL_Z);
        assert!(
            lo <= analytic && analytic <= hi,
            "point {i} (hc={hc}, w={window}, p={p}): empirical {failures}/{n} gives band \
             [{lo}, {hi}], analytic {analytic} outside — the engine's failure statistics \
             drifted from the run-length model"
        );
    }
}

/// Pin the activation→trial shift: with `p = 0` (never sample, auto-refresh
/// off) the first flip lands at exactly activation `HC_first`, so a window
/// of `HC_first` activations always fails and one of `HC_first − 1` never
/// does. If the engine's per-activation ordering (observe → leak → refresh)
/// ever changes, this deterministic probe fails before the statistical
/// assertions turn into noise.
#[test]
fn off_by_one_mapping_is_pinned_at_p_zero() {
    for &hc in &[5u64, 17, 50] {
        let seed = derive_seed(ROOT_SEED, &[0xFF, hc]);
        assert_eq!(
            empirical_failure_rate(0.0, hc, hc, 1, seed),
            (1, 1),
            "hc={hc}: a window of exactly HC_first unsampled activations must flip"
        );
        assert_eq!(
            empirical_failure_rate(0.0, hc, hc - 1, 1, seed),
            (0, 1),
            "hc={hc}: one activation short of HC_first must not flip"
        );
        // And p = 1 (sample everything) can never fail.
        assert_eq!(empirical_failure_rate(1.0, hc, 4 * hc, 3, seed), (0, 3));
    }
}

/// The harness is seeded end to end: the same point re-simulated gives
/// bit-identical counts (re-runs of a red CI job reproduce, not re-roll).
#[test]
fn crossval_trials_are_deterministic() {
    let (hc, window, target) = POINTS[1];
    let p = recommended_p(hc, window, target);
    let seed = derive_seed(ROOT_SEED, &[1]);
    let first = empirical_failure_rate(p, hc, window, 40, seed);
    let second = empirical_failure_rate(p, hc, window, 40, seed);
    assert_eq!(first, second);
    // A different seed draws a different sample path (40 windows at a
    // mid-range P_fail collide with negligible probability).
    let other = empirical_failure_rate(p, hc, window, 40, derive_seed(ROOT_SEED, &[2]));
    assert_ne!(
        first, other,
        "independent seeds must draw independent paths"
    );
}

/// The acceptance criterion for `configure`: its recommended `p`, re-swept
/// through the simulator, meets the target failure probability (the
/// validation band contains the analytical prediction and is consistent
/// with the target).
#[test]
fn configure_recommendation_round_trips_through_the_simulator() {
    let report = run_configure(&ConfigureOptions {
        hc_first: 10,
        window: 2_000,
        target_pfail: 0.5,
        validate: true,
        trials: trials_per_point(),
        seed: ROOT_SEED,
    })
    .expect("configure must run");
    let v = report.validation.as_ref().expect("validation requested");
    assert!(
        v.pass,
        "recommendation p={} failed validation: {}/{} failures, band [{}, {}], \
         analytic {}, target {}",
        report.recommended_p,
        v.failures,
        v.trials,
        v.band_lo,
        v.band_hi,
        report.analytic_pfail,
        report.target_pfail
    );
    assert!(report.healthy());
    // The analytical side of the round trip: the recommendation meets the
    // target, and one part in a million less sampling would not.
    assert!(report.analytic_pfail <= report.target_pfail);
    assert!(analytic_pfail(report.recommended_p * (1.0 - 1e-6), 10, 2_000) > 0.5);
}
