//! End-to-end tests for the distributed sweep service: a real coordinator
//! driving real `rh-cli worker` processes (via `CARGO_BIN_EXE_rh-cli`),
//! asserting the PR's core invariant — the merged document is byte-identical
//! to the in-process sweep no matter how many workers run it, where they
//! attach from, or whether one of them dies mid-job.

use rh_cli::{
    json, run_sweep_with_kernel, run_worker, Coordinator, ServeOptions, SweepConfig, WorkerOptions,
};
use rh_core::{Geometry, KernelChoice};
use std::path::PathBuf;
use std::sync::OnceLock;

fn worker_bin() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_rh-cli"))
}

/// The in-process reference document for the *default* config — computed
/// once (it is the expensive part of this suite) and shared by every
/// byte-identity assertion.
fn default_reference() -> &'static str {
    static DOC: OnceLock<String> = OnceLock::new();
    DOC.get_or_init(|| {
        let out = run_sweep_with_kernel(&SweepConfig::default(), 2, KernelChoice::Auto)
            .expect("default config is valid");
        json::render(&out)
    })
}

fn default_cell_count() -> u64 {
    let plan = rh_cli::SweepPlan::from_config(&SweepConfig::default()).unwrap();
    (plan.grid.len() + plan.para_sweep.len()) as u64
}

/// A deliberately small config for the service-machinery tests (cache,
/// checkpoints, TCP attach) where sweep size is irrelevant.
fn small_config() -> SweepConfig {
    SweepConfig {
        activations: 2_000,
        hc_firsts: vec![500],
        sides: vec![2],
        para_probabilities: vec![0.0],
        geometry: Geometry::tiny(64),
        ..SweepConfig::default()
    }
}

fn small_reference() -> String {
    let out = run_sweep_with_kernel(&small_config(), 1, KernelChoice::Auto).unwrap();
    json::render(&out)
}

fn opts_with_workers(workers: usize) -> ServeOptions {
    ServeOptions {
        workers,
        worker_program: Some(worker_bin()),
        ..ServeOptions::default()
    }
}

/// A per-test scratch directory under the target-adjacent temp dir.
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rh-distributed-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// ISSUE 7 acceptance: distributed output is byte-identical to the
/// in-process sweep for the default config at worker counts 1, 2, and 4.
#[test]
fn distributed_default_sweep_is_byte_identical_at_1_2_4_workers() {
    let reference = default_reference();
    let total = default_cell_count();
    for workers in [1usize, 2, 4] {
        let coordinator = Coordinator::start(opts_with_workers(workers))
            .unwrap_or_else(|e| panic!("start with {workers} workers: {e}"));
        let env = coordinator
            .submit(None, &SweepConfig::default())
            .unwrap_or_else(|e| panic!("submit with {workers} workers: {e}"));
        coordinator.shutdown();
        assert_eq!(
            env.document, reference,
            "{workers}-worker document must match the in-process sweep byte-for-byte"
        );
        assert!(!env.served_from_cache);
        assert_eq!(env.executed_cells, total);
        assert!(!env.workers.is_empty());
        let cells: u64 = env.workers.iter().map(|w| w.cells).sum();
        assert_eq!(
            cells, total,
            "per-worker cell counts must partition the plan"
        );
    }
}

/// ISSUE 7 acceptance: one injected worker kill mid-job — the dropped
/// shard's remainder is reassigned and the bytes still match.
#[test]
fn worker_death_mid_job_reassigns_and_stays_byte_identical() {
    let mut opts = opts_with_workers(2);
    // Worker 0 drops its connection after streaming its 5th cell —
    // mid-shard, with no shard_done, exactly like a crash.
    opts.worker_extra_args = vec![vec!["--exit-after-cells".into(), "5".into()]];
    let coordinator = Coordinator::start(opts).expect("start");
    let env = coordinator
        .submit(None, &SweepConfig::default())
        .expect("job must survive the worker death");
    assert_eq!(
        coordinator.live_workers(),
        1,
        "the killed worker must be accounted as gone"
    );
    coordinator.shutdown();

    assert_eq!(
        env.document,
        default_reference(),
        "document after a mid-job worker kill must still match the in-process sweep"
    );
    let total = default_cell_count();
    assert_eq!(
        env.executed_cells, total,
        "every cell executes exactly once"
    );
    let dead = env
        .workers
        .iter()
        .find(|w| w.worker == "local-0")
        .expect("the doomed worker streamed cells before dying");
    assert_eq!(
        dead.cells, 5,
        "exactly the pre-crash cells count for local-0"
    );
    let cells: u64 = env.workers.iter().map(|w| w.cells).sum();
    assert_eq!(
        cells, total,
        "reassignment must not duplicate or drop cells"
    );
}

/// ISSUE 7 acceptance: a repeated identical request is served from the
/// cache without re-executing, observably (flag + counter in the envelope).
#[test]
fn repeated_submit_is_served_from_cache_without_reexecution() {
    let coordinator = Coordinator::start(opts_with_workers(1)).expect("start");
    let cfg = small_config();
    let first = coordinator.submit(None, &cfg).expect("first submit");
    assert!(!first.served_from_cache);
    assert!(first.executed_cells > 0);
    assert_eq!(first.cache_hits, 0);

    let second = coordinator.submit(None, &cfg).expect("second submit");
    assert!(
        second.served_from_cache,
        "identical resubmit must hit the cache"
    );
    assert_eq!(second.executed_cells, 0, "cache hits execute nothing");
    assert!(second.workers.is_empty(), "no worker touches a cached job");
    assert_eq!(second.cache_hits, 1, "the lifetime counter must tick");
    assert_eq!(second.document, first.document);
    assert_eq!(second.config_hash, first.config_hash);
    assert_eq!(coordinator.cache_hits(), 1);

    // A different seed is a different key: through the plan again.
    let reseeded = SweepConfig {
        seed: cfg.seed + 1,
        ..cfg
    };
    let third = coordinator.submit(None, &reseeded).expect("third submit");
    assert!(!third.served_from_cache);
    assert_eq!(
        third.config_hash, first.config_hash,
        "seed stays out of the hash"
    );
    assert_ne!(third.seed, first.seed);
    coordinator.shutdown();
}

/// Checkpointing end to end: a crash-killed job leaves per-cell state on
/// disk; a resubmit (even from a *new* coordinator) executes only the
/// remainder; a third run restores everything without a single worker.
#[test]
fn checkpoints_survive_crashes_and_make_resubmits_incremental() {
    let dir = scratch_dir("ckpt");
    let cfg = small_config();
    let reference = small_reference();
    let total = {
        let plan = rh_cli::SweepPlan::from_config(&cfg).unwrap();
        (plan.grid.len() + plan.para_sweep.len()) as u64
    };

    // Run 1: the only worker dies after 5 cells; with nobody left to attach
    // the job fails — but the 5 merged cells are already checkpointed.
    let mut opts = opts_with_workers(1);
    opts.checkpoint_dir = Some(dir.clone());
    opts.worker_extra_args = vec![vec!["--exit-after-cells".into(), "5".into()]];
    let coordinator = Coordinator::start(opts).expect("start");
    let err = coordinator
        .submit(Some("doomed".into()), &cfg)
        .expect_err("sole worker died: the job cannot finish");
    assert!(err.contains("workers exited"), "got: {err}");
    coordinator.shutdown();

    // Run 2: a fresh coordinator over the same directory resumes — only the
    // missing cells execute, and the merged bytes are unaffected by the
    // checkpoint/execute split.
    let mut opts = opts_with_workers(1);
    opts.checkpoint_dir = Some(dir.clone());
    let coordinator = Coordinator::start(opts).expect("start");
    let env = coordinator.submit(None, &cfg).expect("resumed submit");
    coordinator.shutdown();
    assert_eq!(
        env.checkpoint_cells, 5,
        "the crashed run's cells must be restored"
    );
    assert_eq!(env.executed_cells, total - 5, "only the remainder executes");
    assert_eq!(env.document, reference, "resume must not change the bytes");

    // Run 3: everything is on disk now; no worker is needed at all.
    let mut opts = opts_with_workers(1);
    opts.checkpoint_dir = Some(dir.clone());
    let coordinator = Coordinator::start(opts).expect("start");
    let env = coordinator.submit(None, &cfg).expect("restored submit");
    coordinator.shutdown();
    assert_eq!(env.checkpoint_cells, total);
    assert_eq!(env.executed_cells, 0);
    assert!(env.workers.is_empty());
    assert_eq!(env.document, reference);

    let _ = std::fs::remove_dir_all(&dir);
}

/// TCP loopback: a coordinator with *zero* local workers and a listener;
/// two workers attach over TCP (in-process threads running the real worker
/// entry point) and the submitted job comes back byte-identical.
#[test]
fn tcp_attached_workers_produce_identical_bytes() {
    let coordinator = Coordinator::start(ServeOptions {
        workers: 0,
        listen: Some("127.0.0.1:0".to_string()),
        worker_program: Some(worker_bin()),
        ..ServeOptions::default()
    })
    .expect("start listener");
    let addr = coordinator.local_addr().expect("bound").to_string();

    let attached: Vec<_> = (0..2)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                run_worker(&WorkerOptions {
                    connect: Some(addr),
                    ..WorkerOptions::default()
                })
            })
        })
        .collect();

    let env = coordinator.submit(None, &small_config()).expect("submit");
    assert_eq!(env.document, small_reference());
    assert!(!env.workers.is_empty());
    assert!(
        env.workers.iter().all(|w| w.worker.starts_with("tcp-")),
        "all execution came over TCP: {:?}",
        env.workers
    );

    coordinator.shutdown();
    for handle in attached {
        handle
            .join()
            .expect("worker thread")
            .expect("worker exits cleanly on shutdown");
    }
}

/// Satellite: the coordinator's `--kernel` request rides every lease, each
/// worker reports what it resolved, and the merged report records it per
/// worker. Scalar is forced here so the assertion is host-independent.
#[test]
fn kernel_request_propagates_and_is_recorded_per_worker() {
    let mut opts = opts_with_workers(2);
    opts.kernel = KernelChoice::Scalar;
    let coordinator = Coordinator::start(opts).expect("start");
    let env = coordinator.submit(None, &small_config()).expect("submit");
    coordinator.shutdown();
    assert!(!env.workers.is_empty());
    for stat in &env.workers {
        assert_eq!(
            stat.kernel, "scalar",
            "worker {} must run (and report) the requested scalar kernel",
            stat.worker
        );
    }

    // And the scalar-forced document still matches the auto-kernel
    // reference — kernels can never change results, only speed.
    assert_eq!(env.document, small_reference());
}
