//! Job-manager suite: the supervised multi-job coordinator end to end.
//!
//! Every scenario here exercises one pillar of the job manager — admission
//! control and quotas, deadlines and cancellation, shared-secret
//! authentication, and adaptive shard sizing — while holding the same north
//! star as `distributed.rs` and `chaos.rs`: an admitted, uncancelled job's
//! merged document is byte-identical to the in-process sweep, and every
//! reject, expiry, and auth failure is observable in the envelope counters.

use rh_cli::serve::SubmitError;
use rh_cli::{
    json, run_cancel, run_sweep_with_kernel, run_worker, CancelOptions, Coordinator, FaultPlan,
    ServeOptions, SweepConfig, WorkerOptions,
};
use rh_core::{Geometry, KernelChoice};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn worker_bin() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_rh-cli"))
}

/// The chaos-suite shape (8 grid + 2 PARA cells, tiny geometry) with a
/// caller-chosen seed, so concurrent submits are genuinely distinct jobs
/// (identical configs would coalesce and never reach admission control).
fn job_config(seed: u64) -> SweepConfig {
    SweepConfig {
        seed,
        activations: 2_000,
        hc_firsts: vec![500, 600, 700, 800],
        sides: vec![2, 4],
        para_probabilities: vec![0.0, 0.5],
        geometry: Geometry::tiny(64),
        ..SweepConfig::default()
    }
}

fn reference(seed: u64) -> String {
    json::render(&run_sweep_with_kernel(&job_config(seed), 1, KernelChoice::Auto).unwrap())
}

/// Pillar 1 + 2: a saturated queue rejects cleanly, and a job that can
/// never run dies by its deadline rather than hanging its client forever.
#[test]
fn saturated_queue_rejects_cleanly_and_deadlines_expire() {
    // No workers and a listener nobody attaches to: admitted jobs stay
    // pending until their deadline, keeping the one-job queue full.
    let coordinator = Arc::new(
        Coordinator::start(ServeOptions {
            workers: 0,
            listen: Some("127.0.0.1:0".to_string()),
            max_pending_jobs: 1,
            ..ServeOptions::default()
        })
        .expect("start"),
    );
    let a = {
        let c = Arc::clone(&coordinator);
        std::thread::spawn(move || {
            c.submit_detailed(Some("a".into()), &job_config(1), "client-a", Some(2_500))
        })
    };
    // Wait until A actually occupies the queue before probing — on a
    // single-CPU host the spawned thread may not have run yet, and a probe
    // that wins that race would fill the queue itself and reject *A*.
    for _ in 0..200 {
        if coordinator.queue_depth() >= 1 {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(coordinator.queue_depth(), 1, "job A must be admitted first");
    // While A is pending the queue is full and B is refused with a
    // machine-readable reason.
    let rejected = match coordinator.submit_detailed(None, &job_config(2), "client-b", Some(300)) {
        Err(SubmitError::Rejected(reason)) => reason,
        other => panic!("expected a queue_full reject, got {other:?}"),
    };
    assert_eq!(rejected, "queue_full");

    let err = a
        .join()
        .expect("submit thread")
        .expect_err("no worker ever attached: the deadline must fire");
    match err {
        SubmitError::Failed(e) => assert!(e.contains("deadline expired"), "got '{e}'"),
        other => panic!("expected a deadline failure, got {other:?}"),
    }
    assert!(coordinator.rejected_submits() >= 1);
    assert!(
        coordinator.cancelled_jobs() >= 1,
        "expiry counts as a cancel"
    );
    coordinator.shutdown();
}

/// Pillar 2 + 4: `rh-cli cancel` kills a pending job by name over an
/// authenticated TCP session; the waiting submit fails with the
/// cancellation message, and a wrong token cannot cancel anything.
#[test]
fn cancel_verb_kills_a_pending_job_over_authenticated_tcp() {
    let coordinator = Arc::new(
        Coordinator::start(ServeOptions {
            workers: 0,
            listen: Some("127.0.0.1:0".to_string()),
            auth_token: Some("cancel-secret".to_string()),
            ..ServeOptions::default()
        })
        .expect("start"),
    );
    let addr = coordinator.local_addr().expect("bound").to_string();
    let a = {
        let c = Arc::clone(&coordinator);
        std::thread::spawn(move || {
            c.submit_detailed(Some("doomed".into()), &job_config(3), "local", None)
        })
    };

    // Retry until the submit thread has admitted the job (before that the
    // id is unknown and cancel exits nonzero).
    let opts = CancelOptions {
        connect: addr,
        id: "doomed".to_string(),
        timeout: Some(Duration::from_secs(10)),
        auth_token: Some("cancel-secret".to_string()),
    };
    let mut canceled = false;
    for _ in 0..500 {
        if run_cancel(&opts).is_ok() {
            canceled = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(canceled, "the pending job must be cancelable by name");

    let err = a
        .join()
        .expect("submit thread")
        .expect_err("a canceled job fails its waiter");
    match err {
        SubmitError::Failed(e) => assert!(e.contains("canceled"), "got '{e}'"),
        other => panic!("expected a cancellation failure, got {other:?}"),
    }
    assert_eq!(coordinator.cancelled_jobs(), 1);

    // Nothing left to cancel: clean nonzero, not a hang or a panic.
    assert!(run_cancel(&opts).is_err());
    // And a wrong token never even reaches the job table.
    let auth_failures_before = coordinator.auth_failures();
    let bad = CancelOptions {
        auth_token: Some("guess".to_string()),
        ..opts
    };
    assert!(run_cancel(&bad).is_err());
    assert!(coordinator.auth_failures() > auth_failures_before);
    assert_eq!(
        coordinator.cancelled_jobs(),
        1,
        "the bad client canceled nothing"
    );
    coordinator.shutdown();
}

/// Pillar 4: a worker presenting a bad proof is rejected at the door
/// (counted, terminal for the worker), while the authenticated worker
/// completes the job byte-identically.
#[test]
fn wrong_token_worker_is_rejected_and_an_authenticated_worker_serves_the_job() {
    let coordinator = Coordinator::start(ServeOptions {
        workers: 0,
        listen: Some("127.0.0.1:0".to_string()),
        auth_token: Some("sekrit".to_string()),
        ..ServeOptions::default()
    })
    .expect("start");
    let addr = coordinator.local_addr().expect("bound").to_string();

    // The wrong-token fault corrupts the proof even though the worker
    // holds the real token — exactly a compromised or misconfigured peer.
    let bad_addr = addr.clone();
    let bad = std::thread::spawn(move || {
        run_worker(&WorkerOptions {
            connect: Some(bad_addr),
            fault_plan: FaultPlan::parse("wrong-token=1").expect("plan"),
            auth_token: Some("sekrit".to_string()),
            ..WorkerOptions::default()
        })
    });
    let err = bad
        .join()
        .expect("worker thread")
        .expect_err("a bad proof must be terminal for the worker");
    assert!(err.contains("auth"), "got: {err}");
    assert_eq!(coordinator.auth_failures(), 1);
    assert_eq!(coordinator.live_workers(), 0, "the impostor never leases");

    // The honest worker attaches and the job's bytes are unaffected.
    let good = std::thread::spawn(move || {
        run_worker(&WorkerOptions {
            connect: Some(addr),
            auth_token: Some("sekrit".to_string()),
            ..WorkerOptions::default()
        })
    });
    let env = coordinator.submit(None, &job_config(4)).expect("submit");
    assert_eq!(env.document, reference(4));
    assert_eq!(
        env.auth_failures, 1,
        "the envelope surfaces the failed hello"
    );
    coordinator.shutdown();
    let _ = good.join().expect("worker thread");
}

/// Pillar 3: adaptive shard sizing is on by default and byte-identical at
/// every target and pool size — including a warmed coordinator whose EWMAs
/// actively resize the second job's leases.
#[test]
fn adaptive_shard_sizing_is_byte_identical_at_every_setting() {
    let first_ref = reference(10);
    let second_ref = reference(11);
    for (workers, target_lease_ms) in [(1usize, 1u64), (2, 1_500), (2, 0), (2, 100_000)] {
        let coordinator = Coordinator::start(ServeOptions {
            workers,
            worker_program: Some(worker_bin()),
            target_lease_ms,
            ..ServeOptions::default()
        })
        .expect("start");
        // The first job runs on cold EWMAs (fixed width); the second is
        // sized from the times the first one taught the controller.
        let first = coordinator.submit(None, &job_config(10)).expect("cold job");
        assert_eq!(
            first.document, first_ref,
            "workers={workers} target={target_lease_ms}"
        );
        let second = coordinator.submit(None, &job_config(11)).expect("warm job");
        assert_eq!(
            second.document, second_ref,
            "workers={workers} target={target_lease_ms}"
        );
        coordinator.shutdown();
    }
}

/// Satellite (a): the result cache's evictions are observable in the
/// envelope — a one-slot cache must evict on the second distinct job.
#[test]
fn cache_evictions_are_surfaced_in_the_envelope() {
    let coordinator = Coordinator::start(ServeOptions {
        workers: 1,
        worker_program: Some(worker_bin()),
        cache_capacity: 1,
        ..ServeOptions::default()
    })
    .expect("start");
    let a = coordinator
        .submit(None, &job_config(20))
        .expect("first job");
    assert_eq!(a.evictions, 0);
    let b = coordinator
        .submit(None, &job_config(21))
        .expect("second job");
    assert!(
        b.evictions >= 1,
        "the one-slot cache must have evicted the first document: {b:?}"
    );
    assert_eq!(coordinator.evictions(), b.evictions);
    coordinator.shutdown();
}
