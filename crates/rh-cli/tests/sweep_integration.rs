//! End-to-end sweep tests over a reduced grid (kept small so the debug-mode
//! test suite stays fast).

use rh_cli::{run_sweep, SweepConfig};
use rh_core::Geometry;

fn small_config() -> SweepConfig {
    SweepConfig {
        seed: 0xBEEF,
        activations: 30_000,
        hc_firsts: vec![1_000, 2_000, 4_000, 8_000],
        para_probabilities: vec![0.0, 0.002, 0.008, 0.032],
        benign_fraction: 0.1,
        geometry: Geometry::tiny(4096),
    }
}

#[test]
fn sweep_covers_full_grid() {
    let out = run_sweep(&small_config());
    // 4 HC_first x 3 workloads x 4 mitigations (baseline + 3 real ones).
    assert_eq!(out.grid.len(), 4 * 3 * 4);
    let workloads: std::collections::HashSet<_> =
        out.grid.iter().map(|r| r.workload.clone()).collect();
    assert_eq!(workloads.len(), 3);
    let mitigations: std::collections::HashSet<_> =
        out.grid.iter().map(|r| r.mitigation.clone()).collect();
    assert!(mitigations.len() >= 4);
}

#[test]
fn para_flips_monotone_and_actually_decreasing() {
    let out = run_sweep(&small_config());
    assert!(out.para_monotone, "flips must be non-increasing in PARA p");
    let flips: Vec<u64> = out.para_sweep.iter().map(|r| r.total_flips).collect();
    assert!(
        flips.first().unwrap() > flips.last().unwrap(),
        "sweep must show a real decrease: {flips:?}"
    );
}

#[test]
fn unmitigated_flips_grow_as_hc_first_drops() {
    let out = run_sweep(&small_config());
    // For the double-sided workload with no mitigation, a weaker device
    // (lower HC_first) must flip at least as many bits.
    let mut baseline: Vec<(u64, u64)> = out
        .grid
        .iter()
        .filter(|r| r.mitigation == "none" && r.workload.starts_with("double_sided"))
        .map(|r| (r.hc_first, r.total_flips))
        .collect();
    baseline.sort();
    assert_eq!(baseline.len(), 4);
    for pair in baseline.windows(2) {
        assert!(
            pair[0].1 >= pair[1].1,
            "lower HC_first must not flip fewer bits: {baseline:?}"
        );
    }
    assert!(baseline[0].1 > 0, "weakest device must flip under attack");
}

#[test]
fn mitigations_reduce_flips_versus_baseline() {
    let out = run_sweep(&small_config());
    let hc = 1_000;
    let flips_of = |mit_prefix: &str| -> u64 {
        out.grid
            .iter()
            .filter(|r| {
                r.hc_first == hc
                    && r.workload.starts_with("double_sided")
                    && r.mitigation.starts_with(mit_prefix)
            })
            .map(|r| r.total_flips)
            .sum()
    };
    let none = flips_of("none");
    assert!(none > 0);
    assert!(flips_of("graphene") < none, "graphene must beat baseline");
    assert!(flips_of("refresh") < none, "refresh must beat baseline");
}

#[test]
fn sweep_adapts_victim_to_small_geometries() {
    // The victim row is derived from the geometry, so a small bank must
    // run without panicking (rows 2047–2049 used to index out of bounds).
    let cfg = SweepConfig {
        activations: 2_000,
        hc_firsts: vec![500],
        geometry: Geometry::tiny(64),
        ..small_config()
    };
    let out = run_sweep(&cfg);
    assert_eq!(out.grid.len(), 12);
}

#[test]
fn sweep_is_deterministic() {
    let a = run_sweep(&small_config());
    let b = run_sweep(&small_config());
    let fa: Vec<u64> = a.grid.iter().map(|r| r.total_flips).collect();
    let fb: Vec<u64> = b.grid.iter().map(|r| r.total_flips).collect();
    assert_eq!(fa, fb);
}
