//! End-to-end sweep tests over a reduced grid (kept small so the debug-mode
//! test suite stays fast).

use rh_cli::{json, run_sweep, RunResult, SweepConfig, SweepOutput};
use rh_core::{DataPattern, Geometry};

/// Reduced grid: 3 HC_first × (2 classic + 2 many-sided) × 5 mitigations,
/// two tREFW windows per cell.
fn small_config() -> SweepConfig {
    SweepConfig {
        seed: 0xBEEF,
        activations: 24_000,
        hc_firsts: vec![1_000, 2_000, 8_000],
        sides: vec![2, 8],
        para_probabilities: vec![0.0, 0.002, 0.008, 0.032],
        benign_fraction: 0.1,
        auto_refresh_interval: 12_000,
        geometry: Geometry::tiny(4096),
        ..SweepConfig::default()
    }
}

fn small_sweep() -> SweepOutput {
    run_sweep(&small_config(), 1).expect("small config is valid")
}

#[test]
fn sweep_covers_full_grid() {
    let out = small_sweep();
    // 3 HC_first x 4 workloads x 5 mitigations.
    assert_eq!(out.grid.len(), 3 * 4 * 5);
    let workloads: std::collections::HashSet<_> =
        out.grid.iter().map(|r| r.workload.clone()).collect();
    assert_eq!(workloads.len(), 4);
    let mitigations: std::collections::HashSet<_> =
        out.grid.iter().map(|r| r.mitigation.clone()).collect();
    assert!(mitigations.len() >= 5);
}

#[test]
fn threads_do_not_change_the_bytes() {
    // The per-worker device reuse (`reset_for_cell`) means different thread
    // counts split cells across workers differently — the bytes must still
    // be identical at every count (1, 2, and 8 exercise "one worker runs
    // everything", "workers see interleaved shards", and "more workers than
    // some shards").
    let cfg = small_config();
    let serial = json::render(&run_sweep(&cfg, 1).unwrap());
    for threads in [2, 8] {
        let sharded = json::render(&run_sweep(&cfg, threads).unwrap());
        assert_eq!(
            serial, sharded,
            "sweep at --threads {threads} must be byte-identical to serial"
        );
    }
}

/// The benchmark harness's two engine paths (optimized epoch-based device
/// with shared tables vs. retained eager reference) must agree end-to-end
/// on a reduced reference sweep — the same equivalence check `rh-cli bench`
/// enforces at full scale.
#[test]
fn bench_quick_paths_are_equivalent() {
    let report = rh_cli::run_bench(&rh_cli::BenchOptions {
        quick: true,
        out_path: String::new(), // not written by run_bench; render-only
        repeat: 1,               // timing precision is irrelevant here
        ..rh_cli::BenchOptions::default()
    })
    .expect("quick bench must run");
    assert!(report.equivalent, "optimized and eager paths diverged");
    assert_eq!(report.cells.len(), 90);
    let doc = rh_cli::bench::render(&report);
    assert!(doc.contains("\"equivalent\": true"));
}

#[test]
fn para_flips_monotone_and_actually_decreasing() {
    let out = small_sweep();
    assert!(out.para_monotone, "flips must be non-increasing in PARA p");
    let flips: Vec<u64> = out.para_sweep.iter().map(|r| r.total_flips).collect();
    assert!(
        flips.first().unwrap() > flips.last().unwrap(),
        "sweep must show a real decrease: {flips:?}"
    );
}

#[test]
fn unmitigated_flips_grow_as_hc_first_drops() {
    let out = small_sweep();
    // For the double-sided workload with no mitigation, a weaker device
    // (lower HC_first) must flip at least as many bits.
    let mut baseline: Vec<(u64, u64)> = out
        .grid
        .iter()
        .filter(|r| r.mitigation == "none" && r.workload.starts_with("double_sided"))
        .map(|r| (r.hc_first, r.total_flips))
        .collect();
    baseline.sort();
    assert_eq!(baseline.len(), 3);
    for pair in baseline.windows(2) {
        assert!(
            pair[0].1 >= pair[1].1,
            "lower HC_first must not flip fewer bits: {baseline:?}"
        );
    }
    assert!(baseline[0].1 > 0, "weakest device must flip under attack");
}

#[test]
fn mitigations_reduce_flips_versus_baseline() {
    let out = small_sweep();
    let hc = 1_000;
    let flips_of = |mit_prefix: &str| -> u64 {
        out.grid
            .iter()
            .filter(|r| {
                r.hc_first == hc
                    && r.workload.starts_with("double_sided")
                    && r.mitigation.starts_with(mit_prefix)
            })
            .map(|r| r.total_flips)
            .sum()
    };
    let none = flips_of("none");
    assert!(none > 0);
    assert!(flips_of("graphene") < none, "graphene must beat baseline");
    assert!(flips_of("refresh") < none, "refresh must beat baseline");
    assert!(
        flips_of("trr") < none,
        "TRR must hold against the double-sided attack it was designed for"
    );
}

/// The paper's (and TRRespass's) headline mitigation finding: deployed
/// small-table TRR collapses once many-sided patterns exceed its per-window
/// refresh budget at low HC_first, while an adequately provisioned Graphene
/// keeps the device flip-free under the identical stream.
#[test]
fn trr_collapses_under_many_sided_while_graphene_holds() {
    let out = small_sweep();
    let hc_min = *small_config().hc_firsts.iter().min().unwrap();
    let wide_cells: Vec<&RunResult> = out
        .grid
        .iter()
        .filter(|r| r.hc_first == hc_min && r.workload.starts_with("many_sided(n=8)"))
        .collect();
    assert!(!wide_cells.is_empty());
    let trr = wide_cells
        .iter()
        .find(|r| r.mitigation.starts_with("trr(k=16"))
        .expect("TRR cell present");
    assert!(
        trr.total_flips > 0,
        "16-entry TRR must fail under 8-sided hammering at HC_first={hc_min}"
    );
    let graphene = wide_cells
        .iter()
        .find(|r| r.mitigation.starts_with("graphene"))
        .expect("graphene cell present");
    assert_eq!(
        graphene.total_flips, 0,
        "adequately-sized graphene must keep the device flip-free"
    );
}

/// TRR's failure is HC_first-dependent: at the top of the axis one refresh
/// window cannot accumulate enough disturbance, so the same TRR that fails
/// on weak devices protects strong ones — the generational story.
#[test]
fn trr_failure_appears_only_at_low_hc_first() {
    let out = small_sweep();
    let trr_flips = |hc: u64| -> u64 {
        out.grid
            .iter()
            .filter(|r| {
                r.hc_first == hc
                    && r.workload.starts_with("many_sided(n=8)")
                    && r.mitigation.starts_with("trr")
            })
            .map(|r| r.total_flips)
            .sum()
    };
    assert!(trr_flips(1_000) > 0, "weak device must break TRR");
    assert_eq!(trr_flips(8_000), 0, "strong device must survive TRR-only");
}

#[test]
fn sweep_adapts_victim_to_small_geometries() {
    // The victim row is derived from the geometry, so a small bank must
    // run without panicking.
    let cfg = SweepConfig {
        activations: 2_000,
        hc_firsts: vec![500],
        geometry: Geometry::tiny(64),
        ..small_config()
    };
    let out = run_sweep(&cfg, 2).unwrap();
    assert_eq!(out.grid.len(), 4 * 5);
}

#[test]
fn output_config_reflects_executed_grid() {
    // Duplicate axis values collapse at normalization time, and the output
    // reports the normalized config — so a consumer can always derive the
    // grid shape from the config section.
    let cfg = SweepConfig {
        activations: 1_000,
        hc_firsts: vec![500, 500, 800],
        sides: vec![4, 4],
        para_probabilities: vec![0.01, 0.0, 0.01],
        geometry: Geometry::tiny(64),
        ..small_config()
    };
    let out = run_sweep(&cfg, 2).unwrap();
    assert_eq!(out.config.hc_firsts, vec![500, 800]);
    assert_eq!(out.config.sides, vec![4]);
    assert_eq!(out.config.para_probabilities, vec![0.0, 0.01]);
    assert_eq!(out.grid.len(), 2 * 3 * 5);
    assert_eq!(out.para_sweep.len(), 2);
}

#[test]
fn invalid_configs_are_rejected_not_paniced() {
    let mut cfg = small_config();
    cfg.activations = 0;
    assert!(run_sweep(&cfg, 1).is_err());

    let mut cfg = small_config();
    cfg.sides = vec![4096];
    assert!(run_sweep(&cfg, 1).is_err(), "oversized pattern must error");

    let mut cfg = small_config();
    cfg.para_probabilities.clear();
    assert!(run_sweep(&cfg, 1).is_err());
}

/// A config exercising the Section 5 axes: every data pattern plus on-die
/// ECC, on the unmitigated low-HC corner so flips actually occur.
fn victim_model_config() -> SweepConfig {
    SweepConfig {
        activations: 24_000,
        hc_firsts: vec![1_000],
        sides: vec![8],
        data_patterns: vec![
            DataPattern::Legacy,
            DataPattern::Solid,
            DataPattern::Checkerboard,
            DataPattern::RowStripe,
        ],
        ecc_codeword_bits: 128,
        ..small_config()
    }
}

#[test]
fn default_axes_emit_no_victim_model_fields() {
    // The acceptance contract's test half: a default-axes document must not
    // contain any of the new fields (the byte-for-byte comparison against
    // the pre-PR binary is run in CI / during development).
    let doc = json::render(&small_sweep());
    for field in [
        "data_pattern",
        "flips_1to0",
        "flips_0to1",
        "post_ecc_flips",
        "ecc_codeword_bits",
    ] {
        assert!(!doc.contains(field), "default sweep leaked '{field}'");
    }
}

#[test]
fn victim_model_sweep_is_thread_invariant_and_reports_new_fields() {
    let cfg = victim_model_config();
    let serial = json::render(&run_sweep(&cfg, 1).unwrap());
    let sharded = json::render(&run_sweep(&cfg, 8).unwrap());
    assert_eq!(serial, sharded, "extended axes must stay byte-identical");
    assert!(serial
        .contains("\"data_patterns\": [\"legacy\", \"solid\", \"checkerboard\", \"rowstripe\"]"));
    assert!(serial.contains("\"ecc_codeword_bits\": 128"));
    assert!(serial.contains("\"data_pattern\": \"rowstripe\""));
    assert!(serial.contains("\"flips_1to0\""));
    assert!(serial.contains("\"post_ecc_flips\""));
}

#[test]
fn data_pattern_ordering_matches_section_5() {
    let out = run_sweep(&victim_model_config(), 2).unwrap();
    let unmitigated_flips = |pattern: &str| -> u64 {
        out.grid
            .iter()
            .filter(|r| r.mitigation == "none" && r.data_pattern == pattern)
            .map(|r| r.total_flips)
            .sum()
    };
    let legacy = unmitigated_flips("legacy");
    let solid = unmitigated_flips("solid");
    let stripe = unmitigated_flips("rowstripe");
    assert!(legacy > 0 && stripe > 0);
    // Solid (uniform data, weakest coupling, only true-cell rows charged)
    // must flip strictly less than the pattern-agnostic model; the
    // worst-case row-stripe must beat solid — the paper's Section 5.1
    // ordering.
    assert!(
        solid < legacy,
        "solid ({solid}) must flip less than legacy ({legacy})"
    );
    assert!(
        stripe > solid,
        "rowstripe ({stripe}) must flip more than solid ({solid})"
    );
}

#[test]
fn flip_directions_partition_totals_and_follow_orientation() {
    let out = run_sweep(&victim_model_config(), 2).unwrap();
    for r in &out.grid {
        assert_eq!(
            r.flips_1to0 + r.flips_0to1,
            r.total_flips,
            "direction split must partition total flips in {}/{}/{}",
            r.data_pattern,
            r.workload,
            r.mitigation
        );
        if r.data_pattern == "solid" {
            // All-1s data can only discharge true-cells: 1→0 exclusively.
            assert_eq!(r.flips_0to1, 0, "solid produced 0→1 flips");
        }
    }
    // The striped pattern flips in both directions somewhere in the grid.
    let stripe_0to1: u64 = out
        .grid
        .iter()
        .filter(|r| r.data_pattern == "rowstripe")
        .map(|r| r.flips_0to1)
        .sum();
    assert!(stripe_0to1 > 0, "rowstripe never flipped an anti-cell row");
}

#[test]
fn ecc_masks_flips_but_never_adds_them() {
    let out = run_sweep(&victim_model_config(), 2).unwrap();
    let mut some_masking = false;
    for r in &out.grid {
        let post = r
            .post_ecc_flips
            .expect("ECC enabled: every cell reports a post-ECC count");
        assert!(
            post <= r.total_flips,
            "ECC added flips in {}/{}/{}",
            r.data_pattern,
            r.workload,
            r.mitigation
        );
        if post < r.total_flips {
            some_masking = true;
        }
    }
    assert!(some_masking, "ECC never corrected anything across the grid");
}

#[test]
fn sweep_is_deterministic() {
    let a = run_sweep(&small_config(), 1).unwrap();
    let b = run_sweep(&small_config(), 1).unwrap();
    let fa: Vec<u64> = a.grid.iter().map(|r| r.total_flips).collect();
    let fb: Vec<u64> = b.grid.iter().map(|r| r.total_flips).collect();
    assert_eq!(fa, fb);
}
