//! Seeded round-trip property test for the proto config codec.
//!
//! The distributed protocol's one serialization contract: for any valid
//! `SweepConfig`, `config_to_json → parse → config_from_value →
//! config_to_json` is **byte-stable** — the re-encoding equals the first
//! encoding exactly. Byte stability is what the persistent cache,
//! checkpoint records, and request dedup all key on, so a drift here
//! (a float formatted differently, a field reordered) would silently
//! invalidate every cached artifact. The generator below drives every axis
//! the codec carries — patterns, ECC, sides, PARA probabilities including
//! exact-binary and awkward decimals, geometry corners, extreme seeds —
//! across a few hundred seeded draws.
//!
//! The dual obligation: unknown-field rejection must keep firing. A typoed
//! axis name in a submitted config must fail loudly, not silently run the
//! default sweep — so every generated config is re-submitted with each of
//! its top-level keys mutated, and every mutation must be rejected naming
//! the unknown field.

use rh_cli::proto::{config_from_value, config_hash, config_to_json, parse};
use rh_cli::SweepConfig;
use rh_core::{DataPattern, Geometry, SplitMix64};

/// Draw one valid config covering every codec axis. Values are chosen from
/// small pools rather than raw bit-noise so the draws stay valid under
/// `SweepConfig::validate` while still hitting the representational edge
/// cases (u64::MAX seeds, denormal-adjacent probabilities, 1-row banks).
fn gen_config(rng: &mut SplitMix64) -> SweepConfig {
    let pick = |rng: &mut SplitMix64, n: usize| rng.gen_range(n as u64) as usize;
    let seed_pool: [u64; 5] = [0, 1, 0xC0FFEE, u64::MAX, 0x8000_0000_0000_0000];
    let hc_pool: [u64; 6] = [1, 100, 2_000, 4_800, 139_000, u64::MAX];
    let sides_pool: [usize; 4] = [2, 3, 16, 64];
    // Exact binary fractions, shortest-round-trip-awkward decimals, and the
    // boundary values the validator admits.
    let p_pool: [f64; 8] = [0.0, 1.0, 0.5, 0.001, 0.004, 0.1 + 0.2, 1e-300, 0.062_5];
    let pattern_pool: [DataPattern; 4] = [
        DataPattern::Legacy,
        DataPattern::Solid,
        DataPattern::Checkerboard,
        DataPattern::RowStripe,
    ];
    let draw_list = |rng: &mut SplitMix64, max_len: usize| -> Vec<usize> {
        let len = 1 + pick(rng, max_len);
        (0..len).map(|_| rng.next_u64() as usize).collect()
    };
    SweepConfig {
        seed: seed_pool[pick(rng, seed_pool.len())],
        activations: 1 + rng.gen_range(1 << 40),
        hc_firsts: draw_list(rng, 4)
            .into_iter()
            .map(|i| hc_pool[i % hc_pool.len()])
            .collect(),
        sides: draw_list(rng, 4)
            .into_iter()
            .map(|i| sides_pool[i % sides_pool.len()])
            .collect(),
        para_probabilities: draw_list(rng, 6)
            .into_iter()
            .map(|i| p_pool[i % p_pool.len()])
            .collect(),
        data_patterns: draw_list(rng, 4)
            .into_iter()
            .map(|i| pattern_pool[i % pattern_pool.len()])
            .collect(),
        ecc_codeword_bits: [0u32, 1, 64, 128, 8192][pick(rng, 5)],
        benign_fraction: [0.0, 0.1, 0.25, 1.0, 0.333_333_333_333_333_3][pick(rng, 5)],
        auto_refresh_interval: [0u64, 1, 32_000, u64::MAX][pick(rng, 4)],
        geometry: Geometry {
            channels: [1u32, 2][pick(rng, 2)],
            ranks: [1u32, 4][pick(rng, 2)],
            banks: [1u32, 4, 16][pick(rng, 3)],
            rows_per_bank: [1u32, 64, 4_096, u32::MAX][pick(rng, 4)],
        },
    }
}

fn fields_match(a: &SweepConfig, b: &SweepConfig) {
    assert_eq!(a.seed, b.seed);
    assert_eq!(a.activations, b.activations);
    assert_eq!(a.hc_firsts, b.hc_firsts);
    assert_eq!(a.sides, b.sides);
    assert_eq!(a.para_probabilities, b.para_probabilities, "bit-exact f64s");
    assert_eq!(a.data_patterns, b.data_patterns);
    assert_eq!(a.ecc_codeword_bits, b.ecc_codeword_bits);
    assert_eq!(a.benign_fraction, b.benign_fraction);
    assert_eq!(a.auto_refresh_interval, b.auto_refresh_interval);
    assert_eq!(a.geometry, b.geometry);
}

#[test]
fn encode_decode_encode_is_byte_stable_across_every_axis() {
    let mut rng = SplitMix64::new(0x5EED_C0DE);
    for draw in 0..300 {
        let cfg = gen_config(&mut rng);
        cfg.validate()
            .unwrap_or_else(|e| panic!("draw {draw}: generator made an invalid config: {e}"));
        let encoded = config_to_json(&cfg);
        let value = parse(&encoded)
            .unwrap_or_else(|e| panic!("draw {draw}: encoding did not parse: {e}\n{encoded}"));
        let decoded = config_from_value(&value)
            .unwrap_or_else(|e| panic!("draw {draw}: decode failed: {e}\n{encoded}"));
        fields_match(&cfg, &decoded);
        let re_encoded = config_to_json(&decoded);
        assert_eq!(
            encoded, re_encoded,
            "draw {draw}: re-encoding drifted from the first encoding"
        );
        // The cache/dedup key must survive the round trip too — it hashes
        // semantic content (normalized axes, float bit patterns), so a
        // decode that preserved bytes but moved bits would show up here.
        assert_eq!(config_hash(&cfg), config_hash(&decoded), "draw {draw}");
    }
}

/// Mutate each top-level key of a freshly encoded config and assert the
/// decoder rejects every mutation by name. Driven off the real encoding
/// (not a hand-written list) so a field added to the codec later is
/// automatically covered.
#[test]
fn unknown_field_rejection_fires_on_every_mutated_key() {
    let mut rng = SplitMix64::new(0xBAD_F1E1D);
    for draw in 0..25 {
        let cfg = gen_config(&mut rng);
        let encoded = config_to_json(&cfg);
        let keys: Vec<String> = parse(&encoded)
            .expect("encoding parses")
            .as_object()
            .expect("config encodes as an object")
            .iter()
            .map(|(k, _)| k.clone())
            .collect();
        assert!(keys.len() >= 10, "codec should carry every axis");
        for key in keys {
            let needle = format!("\"{key}\":");
            let mutated_key = format!("{key}_typo");
            let mutated = encoded.replace(&needle, &format!("\"{mutated_key}\":"));
            assert_ne!(mutated, encoded, "draw {draw}: key '{key}' not found");
            let value = parse(&mutated).expect("mutation keeps the JSON well-formed");
            let err = config_from_value(&value).expect_err(&format!(
                "draw {draw}: mutated key '{mutated_key}' must be rejected"
            ));
            assert!(
                err.contains(&mutated_key),
                "draw {draw}: rejection must name the unknown field, got '{err}'"
            );
        }
    }
    // The nested geometry keys get the same treatment.
    let encoded = config_to_json(&SweepConfig::default());
    for gkey in ["channels", "ranks", "banks", "rows_per_bank"] {
        let mutated = encoded.replace(&format!("\"{gkey}\":"), &format!("\"{gkey}_typo\":"));
        let value = parse(&mutated).expect("mutation keeps the JSON well-formed");
        let err = config_from_value(&value).expect_err("mutated geometry key must be rejected");
        assert!(
            err.contains(&format!("{gkey}_typo")),
            "rejection must name the unknown geometry field, got '{err}'"
        );
    }
}
